"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.physical.parameters import (
    AXI4_PROTOCOL,
    LIGHTWEIGHT_PROTOCOL,
    ArchitecturalParameters,
)
from repro.physical.technology import TECH_22NM
from repro.simulator.simulation import SimulationConfig
from repro.toolchain.predict import PredictionToolchain


@pytest.fixture
def small_params() -> ArchitecturalParameters:
    """A small 4x4 architecture used by most physical-model and toolchain tests."""
    return ArchitecturalParameters(
        num_tiles=16,
        endpoint_area_ge=5e6,
        frequency_hz=1.0e9,
        link_bandwidth_bits=128,
        technology=TECH_22NM,
        protocol=AXI4_PROTOCOL,
        name="test-4x4",
    )


@pytest.fixture
def tiny_params() -> ArchitecturalParameters:
    """A tiny 2x3 architecture for fast exact tests."""
    return ArchitecturalParameters(
        num_tiles=6,
        endpoint_area_ge=1e6,
        frequency_hz=1.0e9,
        link_bandwidth_bits=64,
        technology=TECH_22NM,
        protocol=LIGHTWEIGHT_PROTOCOL,
        name="test-2x3",
    )


@pytest.fixture
def fast_sim_config() -> SimulationConfig:
    """Short simulation phases so that cycle-accurate tests stay quick."""
    return SimulationConfig(
        injection_rate=0.05,
        warmup_cycles=100,
        measurement_cycles=200,
        drain_max_cycles=1500,
        packet_size_flits=2,
        num_vcs=4,
        buffer_depth_flits=2,
        seed=11,
    )


@pytest.fixture
def small_toolchain(small_params: ArchitecturalParameters) -> PredictionToolchain:
    """Analytical toolchain bound to the small 4x4 architecture."""
    return PredictionToolchain(small_params)
