"""Unit tests for repro.utils.galois (finite field arithmetic)."""

import pytest

from repro.utils.galois import GaloisField
from repro.utils.validation import ValidationError


class TestConstruction:
    def test_prime_field(self):
        gf = GaloisField(7)
        assert gf.order == 7
        assert gf.characteristic == 7
        assert gf.degree == 1

    def test_extension_field(self):
        gf = GaloisField(8)
        assert gf.order == 8
        assert gf.characteristic == 2
        assert gf.degree == 3

    def test_rejects_non_prime_power(self):
        with pytest.raises(ValidationError):
            GaloisField(6)
        with pytest.raises(ValidationError):
            GaloisField(12)

    def test_rejects_too_small(self):
        with pytest.raises(ValidationError):
            GaloisField(1)

    def test_elements_range(self):
        gf = GaloisField(9)
        assert list(gf.elements()) == list(range(9))


class TestPrimeFieldArithmetic:
    def test_addition_mod_p(self):
        gf = GaloisField(5)
        assert gf.add(3, 4) == 2

    def test_subtraction_mod_p(self):
        gf = GaloisField(5)
        assert gf.sub(1, 3) == 3

    def test_multiplication_mod_p(self):
        gf = GaloisField(7)
        assert gf.mul(3, 5) == 1

    def test_inverse(self):
        gf = GaloisField(11)
        for a in range(1, 11):
            assert gf.mul(a, gf.inverse(a)) == 1

    def test_zero_has_no_inverse(self):
        gf = GaloisField(5)
        with pytest.raises(ValidationError):
            gf.inverse(0)

    def test_pow(self):
        gf = GaloisField(7)
        assert gf.pow(3, 0) == 1
        assert gf.pow(3, 6) == 1  # Fermat's little theorem

    def test_rejects_out_of_range_element(self):
        gf = GaloisField(5)
        with pytest.raises(ValidationError):
            gf.add(5, 1)


class TestExtensionFieldArithmetic:
    @pytest.mark.parametrize("q", [4, 8, 9, 16, 27])
    def test_every_nonzero_element_invertible(self, q):
        gf = GaloisField(q)
        for a in range(1, q):
            assert gf.mul(a, gf.inverse(a)) == 1

    @pytest.mark.parametrize("q", [4, 8, 9])
    def test_addition_is_commutative_and_has_identity(self, q):
        gf = GaloisField(q)
        for a in range(q):
            assert gf.add(a, 0) == a
            for b in range(q):
                assert gf.add(a, b) == gf.add(b, a)

    @pytest.mark.parametrize("q", [4, 8, 9])
    def test_multiplication_distributes_over_addition(self, q):
        gf = GaloisField(q)
        for a in range(q):
            for b in range(q):
                for c in range(q):
                    assert gf.mul(a, gf.add(b, c)) == gf.add(gf.mul(a, b), gf.mul(a, c))

    def test_characteristic_two_self_inverse_addition(self):
        gf = GaloisField(8)
        for a in range(8):
            assert gf.add(a, a) == 0
            assert gf.neg(a) == a


class TestPrimitiveElement:
    @pytest.mark.parametrize("q", [2, 3, 4, 5, 7, 8, 9, 13, 16, 25])
    def test_primitive_element_generates_multiplicative_group(self, q):
        gf = GaloisField(q)
        powers = gf.powers_of_primitive()
        assert len(powers) == q - 1
        assert len(set(powers)) == q - 1
        assert 0 not in powers
        assert powers[0] == 1
