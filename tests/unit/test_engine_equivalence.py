"""Cross-engine differential tests: ``soa`` must equal ``reference`` exactly.

The pinned goldens in ``test_simulation_golden.py`` anchor both engines to the
pre-refactor kernel on five fixed scenarios; these tests go wider: a seeded
sweep of randomized small scenarios — topology family x grid x traffic/trace x
load x router configuration — runs every scenario through every registered
engine and asserts the full :class:`SimulationStats` (per-phase statistics
included) are **identical**, field for field, with no tolerance.

The scenario list is generated from a fixed seed, so failures are exactly
reproducible; the generator favours small grids and short phase windows to
keep the sweep fast while still crossing the kernel's distinct regimes
(saturation, escape-layer fallback, multi-cycle links, trace replay).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.sparse_hamming import SparseHammingGraph
from repro.simulator.engine import ENGINE_FACTORIES, available_engines
from repro.simulator.simulation import SimulationConfig, Simulator
from repro.simulator.sweep import replay_trace
from repro.topologies.flattened_butterfly import FlattenedButterflyTopology
from repro.topologies.mesh import MeshTopology
from repro.topologies.ring import RingTopology
from repro.topologies.torus import TorusTopology
from repro.workloads import make_workload_trace

ENGINES = available_engines()

#: Topology families the generator draws from (keyed for test ids).
_TOPOLOGIES = {
    "mesh": lambda rows, cols: MeshTopology(rows, cols),
    "torus": lambda rows, cols: TorusTopology(rows, cols),
    "ring": lambda rows, cols: RingTopology(rows, cols),
    "flattened_butterfly": lambda rows, cols: FlattenedButterflyTopology(rows, cols),
    # s_r/s_c = {2} is valid for every grid the generator draws (3..5 per axis).
    "sparse_hamming": lambda rows, cols: SparseHammingGraph(rows, cols, s_r={2}, s_c={2}),
}

_TRAFFIC = ("uniform", "transpose", "tornado", "neighbor", "bit_complement")

_WORKLOADS = {
    "dnn_inference": dict(layers=3, layer_window=40, fan_out=2),
    "mpi_collective": dict(collective="allreduce_ring", step_cycles=5),
    "stencil2d": dict(iterations=2, iteration_window=20),
    "onoff": dict(duration=120, burst_rate=0.4),
}


def _random_scenarios(count: int, seed: int = 2024):
    """Deterministically draw ``count`` randomized scenario descriptions."""
    rng = np.random.default_rng(seed)
    scenarios = []
    topo_keys = sorted(_TOPOLOGIES)
    workload_keys = sorted(_WORKLOADS)
    for index in range(count):
        rows = int(rng.integers(3, 6))
        cols = int(rng.integers(3, 6))
        topo_key = topo_keys[int(rng.integers(len(topo_keys)))]
        num_vcs = int(rng.choice([1, 2, 4, 8]))
        config = dict(
            injection_rate=float(rng.choice([0.02, 0.08, 0.20, 0.45])),
            packet_size_flits=int(rng.choice([1, 2, 4])),
            num_vcs=num_vcs,
            buffer_depth_flits=int(rng.choice([1, 2, 4])),
            router_pipeline_cycles=int(rng.choice([1, 2, 3])),
            warmup_cycles=int(rng.choice([0, 50, 120])),
            measurement_cycles=int(rng.choice([80, 150, 250])),
            drain_max_cycles=int(rng.choice([400, 800])),
            seed=int(rng.integers(0, 10_000)),
        )
        traffic = _TRAFFIC[int(rng.integers(len(_TRAFFIC)))]
        if traffic == "transpose" and rows != cols:
            traffic = "uniform"
        workload = None
        if rng.random() < 0.35:
            workload = workload_keys[int(rng.integers(len(workload_keys)))]
        link_latency = int(rng.choice([0, 0, 2, 4]))  # 0 = single-cycle links
        scenarios.append(
            pytest.param(
                (topo_key, rows, cols, traffic, workload, link_latency, config),
                id=f"{index:02d}-{topo_key}-{workload or traffic}",
            )
        )
    return scenarios


def _run(scenario, engine: str):
    topo_key, rows, cols, traffic, workload, link_latency, config = scenario
    topology = _TOPOLOGIES[topo_key](rows, cols)
    link_latencies = (
        {link: link_latency for link in topology.links} if link_latency else None
    )
    if workload is not None:
        trace = make_workload_trace(
            workload, rows, cols, seed=config["seed"], **_WORKLOADS[workload]
        )
        # Replay ignores the injection/phase knobs but honours the router
        # configuration — keep the randomized VC/buffer/pipeline draw so the
        # trace path is cross-checked beyond the default router too.
        sim_config = SimulationConfig(
            num_vcs=config["num_vcs"],
            buffer_depth_flits=config["buffer_depth_flits"],
            router_pipeline_cycles=config["router_pipeline_cycles"],
            drain_max_cycles=5000,
            seed=1,
            engine=engine,
        )
        return replay_trace(
            topology, trace, config=sim_config, link_latencies=link_latencies
        )
    sim_config = SimulationConfig(traffic=traffic, engine=engine, **config)
    return Simulator(topology, sim_config, link_latencies=link_latencies).run()


@pytest.mark.parametrize("scenario", _random_scenarios(20))
def test_engines_produce_identical_stats(scenario):
    per_engine = {
        engine: dataclasses.asdict(_run(scenario, engine)) for engine in ENGINES
    }
    baseline = per_engine[ENGINES[0]]
    for engine in ENGINES[1:]:
        assert per_engine[engine] == baseline, (
            f"engine {engine!r} diverged from {ENGINES[0]!r} on {scenario}"
        )


def test_equivalence_sweep_exercises_both_kernel_modes():
    # Regression guard for the generator itself: the fixed seed must keep
    # producing a mix of synthetic and trace-replay scenarios.
    scenarios = [param.values[0] for param in _random_scenarios(20)]
    workloads = [scenario[4] for scenario in scenarios]
    assert any(workload is not None for workload in workloads)
    assert any(workload is None for workload in workloads)


def test_engine_registry_is_consistent():
    assert set(ENGINE_FACTORIES) == {"reference", "soa", "sanitizer"}
    for name, factory in ENGINE_FACTORIES.items():
        assert factory.name == name
