"""Cross-engine differential tests: every engine must match ``reference``.

The pinned goldens in ``test_simulation_golden.py`` anchor the engines to the
pre-refactor kernel on five fixed scenarios; these tests go wider: a seeded
sweep of randomized small scenarios — topology family x grid x traffic/trace x
load x router configuration — runs every scenario through every registered
engine (``reference``, ``soa``, ``sanitizer``, ``vec``) and asserts the full
:class:`SimulationStats` (per-phase statistics included) are **identical**,
field for field, with no tolerance.  The ``vec`` engine's batch axis is
cross-checked too: batching several lanes of a scenario must leave each
lane's statistics bit-identical to its solo run.

The scenarios come from :mod:`repro.devtools.scenarios` (shared with
``tools/gen_scenarios.py`` and the ``repro devtools replay-scenario`` CLI),
so every scenario is a pure function of ``(generator seed, index)`` — and a
failing assertion prints the one-line command that reproduces it.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.devtools.scenarios import (
    diff_stats,
    generate_scenarios,
    run_scenario,
)
from repro.simulator.engine import ENGINE_FACTORIES, available_engines
from repro.simulator.sweep import run_batch

ENGINES = available_engines()

#: Size of the differential sweep (scenario indices 0..N-1 of the default
#: generator seed).
SWEEP_SIZE = 40

_SCENARIOS = generate_scenarios(SWEEP_SIZE)


def _params(scenarios):
    return [pytest.param(scenario, id=scenario.label) for scenario in scenarios]


@pytest.mark.parametrize("scenario", _params(_SCENARIOS))
def test_engines_produce_identical_stats(scenario):
    baseline_engine = ENGINES[0]
    baseline = run_scenario(scenario, baseline_engine)
    for engine in ENGINES[1:]:
        stats = run_scenario(scenario, engine)
        differences = diff_stats(baseline_engine, baseline, engine, stats)
        assert not differences, (
            f"engine {engine!r} diverged from {baseline_engine!r} on scenario "
            f"{scenario.label} — reproduce with: {scenario.repro_command()}\n"
            + "\n".join(differences)
        )


# Batching is pure scheduling: fusing lanes into one vec kernel must not
# change any lane's statistics.  Every 4th sweep scenario keeps the check
# broad (synthetic and replay scenarios both batch) without doubling the
# sweep's runtime.
@pytest.mark.parametrize("scenario", _params(_SCENARIOS[::4]))
def test_vec_batched_matches_sequential(scenario):
    topology = scenario.build_topology()
    link_latencies = (
        {link: scenario.link_latency for link in topology.links}
        if scenario.link_latency
        else None
    )
    base = scenario.simulation_config("vec")
    trace = scenario.build_trace()
    if trace is not None:
        configs = [base] * 3
        traces = [trace] * 3
    else:
        # Vary the lane seeds so the batch holds genuinely different runs.
        configs = [
            dataclasses.replace(base, seed=base.seed + offset) for offset in range(3)
        ]
        traces = None
    batched = run_batch(
        topology, configs, link_latencies=link_latencies, traces=traces
    )
    for lane, (config, stats) in enumerate(zip(configs, batched)):
        solo_scenario = dataclasses.replace(
            scenario, config={**scenario.config, "seed": config.seed}
        )
        solo = run_scenario(solo_scenario if trace is None else scenario, "vec")
        differences = diff_stats("solo", solo, f"batched[{lane}]", stats)
        assert not differences, (
            f"vec batch lane {lane} diverged from its solo run on scenario "
            f"{scenario.label} — reproduce with: "
            f"{scenario.repro_command()} --batched\n" + "\n".join(differences)
        )


def test_equivalence_sweep_exercises_both_kernel_modes():
    # Regression guard for the generator itself: the fixed seed must keep
    # producing a mix of synthetic and trace-replay scenarios.
    workloads = [scenario.workload for scenario in _SCENARIOS]
    assert any(workload is not None for workload in workloads)
    assert any(workload is None for workload in workloads)


def test_scenarios_are_reproducible_from_seed_and_index():
    # (seed, index) is the whole identity: regenerating a prefix of the
    # sequence yields the exact same scenarios the sweep ran.
    regenerated = generate_scenarios(10)
    assert regenerated == _SCENARIOS[:10]


def test_engine_registry_is_consistent():
    assert set(ENGINE_FACTORIES) == {"reference", "soa", "sanitizer", "vec"}
    for name, factory in ENGINE_FACTORIES.items():
        assert factory.name == name
