"""Unit tests for :mod:`repro.physical.link_latency`.

Pins the cycle-boundary behaviour of the round-up: a wire whose delay is an
exact number of cycles must get exactly that many cycles even when the float
product carries rounding noise (``3.0000000000004`` is 3 cycles, not 4),
while genuinely fractional delays still round up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.link_latency import _ceil_with_tolerance, link_latency_cycles


@dataclass
class _LinearDelayParams:
    """Stand-in for ArchitecturalParameters with a controllable delay function.

    ``f_mm_to_s`` is linear (``seconds_per_mm * distance``), so the test can
    place the delay-frequency product exactly on or near a cycle boundary.
    """

    seconds_per_mm: float
    frequency_hz: float = 1.0e9

    def f_mm_to_s(self, distance_mm: float) -> float:
        return self.seconds_per_mm * distance_mm


@dataclass
class _Grid:
    cell_width_mm: float = 1.0
    cell_height_mm: float = 1.0


class TestCeilWithTolerance:
    def test_exact_integers_unchanged(self):
        for value in (1.0, 2.0, 3.0, 17.0):
            assert _ceil_with_tolerance(value) == int(value)

    def test_noise_above_boundary_snaps_down(self):
        # The motivating case: floating-point noise just above an integer.
        assert _ceil_with_tolerance(3.0000000000004) == 3
        assert _ceil_with_tolerance(1.0000000000001) == 1

    def test_noise_below_boundary_snaps_to_integer(self):
        assert _ceil_with_tolerance(2.9999999999998) == 3

    def test_real_fractions_still_round_up(self):
        assert _ceil_with_tolerance(3.001) == 4
        assert _ceil_with_tolerance(1.5) == 2
        assert _ceil_with_tolerance(0.25) == 1

    def test_tolerance_is_relative(self):
        # At magnitude 1e6, 1e-4 absolute is within the 1e-9 relative band.
        assert _ceil_with_tolerance(1.0e6 + 1.0e-4) == 1_000_000
        # But a same-magnitude excess far beyond the band still rounds up.
        assert _ceil_with_tolerance(1.0e6 + 10.0) == 1_000_010


class TestLinkLatencyCycles:
    def test_exact_boundary_is_not_bumped(self):
        # 1 ns/mm at 1 GHz: a 3 mm link is exactly 3 cycles.  The product
        # (3 * 1e-9) * 1e9 is not exactly 3.0 in binary floating point — this
        # is precisely the case the tolerant ceil exists for.
        params = _LinearDelayParams(seconds_per_mm=1.0e-9)
        assert link_latency_cycles(params, _Grid(), horizontal_cells=3, vertical_cells=0) == 3

    def test_every_integer_length_maps_to_its_cycle_count(self):
        params = _LinearDelayParams(seconds_per_mm=1.0e-9)
        for cells in range(1, 33):
            latency = link_latency_cycles(params, _Grid(), cells, 0)
            assert latency == cells, f"{cells} cells -> {latency} cycles"

    def test_fractional_delay_rounds_up(self):
        params = _LinearDelayParams(seconds_per_mm=1.5e-9)
        # 1 mm -> 1.5 cycles -> 2; 2 mm -> 3.0 cycles -> 3.
        assert link_latency_cycles(params, _Grid(), 1, 0) == 2
        assert link_latency_cycles(params, _Grid(), 2, 0) == 3

    def test_minimum_latency_is_one_cycle(self):
        params = _LinearDelayParams(seconds_per_mm=1.0e-12)
        assert link_latency_cycles(params, _Grid(), 1, 0) == 1
        assert link_latency_cycles(params, _Grid(), 0, 0) == 1

    def test_mixed_horizontal_vertical_lengths_add(self):
        params = _LinearDelayParams(seconds_per_mm=1.0e-9)
        grid = _Grid(cell_width_mm=2.0, cell_height_mm=1.0)
        # 2 * 2 mm + 3 * 1 mm = 7 mm -> exactly 7 cycles.
        assert link_latency_cycles(params, grid, 2, 3) == 7
