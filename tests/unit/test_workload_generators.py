"""Unit tests of the workload generators and their registry."""

from __future__ import annotations

import hashlib

import pytest

from repro.utils.validation import ValidationError
from repro.workloads import (
    WORKLOAD_FACTORIES,
    available_workloads,
    check_workload_name,
    generate_mpi_collective,
    generate_onoff,
    make_workload_trace,
)

#: Fixed-parameter generation cases on a 3x4 grid, seed 13.  The SHA-256
#: digests pin the canonical JSONL bytes: trace generation must stay
#: byte-stable across runs, processes, and refactors (regenerate these
#: constants only for an *intentional* generator change, and call it out).
GOLDEN_CASES = {
    "dnn_inference": dict(
        layers=3, layer_window=32, activations_per_tile=2, fan_out=2, packet_size_flits=4
    ),
    "mpi_collective": dict(collective="allreduce_ring", step_cycles=4, chunk_size_flits=2),
    "stencil2d": dict(iterations=2, iteration_window=16, halo_size_flits=2),
    "onoff": dict(
        duration=96, burst_rate=0.25, p_on_off=0.2, p_off_on=0.1,
        packet_size_flits=2, phases=3,
    ),
}

GOLDEN_SHA256 = {
    "dnn_inference": "597e7853d3b6c5b7084951cbcbc1b874573d87c072cf34cb3ce475d22e5eb7c0",
    "mpi_collective": "eb6ef9dc509846faa6c4fb71f9906f1b4083c6f31268f207467b9309e803f8d1",
    "stencil2d": "d134d2c48e91e96672ffb5ac02413f53b219cd737204ad6d38d412939b840902",
    "onoff": "75af2f659d2213193e9a9b784b5be196186597e29c1f8dd270627ccbee97f481",
}


def test_registry_enumerates_all_generators():
    assert available_workloads() == sorted(WORKLOAD_FACTORIES)
    assert set(WORKLOAD_FACTORIES) == {
        "dnn_inference",
        "mpi_collective",
        "stencil2d",
        "onoff",
    }


def test_unknown_workload_rejected():
    with pytest.raises(ValidationError, match="unknown workload 'bogus'"):
        check_workload_name("bogus")
    with pytest.raises(ValidationError, match="unknown workload"):
        make_workload_trace("bogus", 4, 4)


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_generation_is_byte_stable(name):
    trace = make_workload_trace(name, 3, 4, seed=13, **GOLDEN_CASES[name])
    again = make_workload_trace(name, 3, 4, seed=13, **GOLDEN_CASES[name])
    data = trace.to_jsonl_bytes()
    assert data == again.to_jsonl_bytes()
    assert hashlib.sha256(data).hexdigest() == GOLDEN_SHA256[name], (
        f"{name} trace bytes drifted from the golden digest; regenerate only "
        f"for an intentional generator change"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_generated_traces_are_valid_and_phased(name):
    trace = make_workload_trace(name, 3, 4, seed=13, **GOLDEN_CASES[name])
    assert trace.num_tiles == 12
    assert trace.num_packets > 0
    assert trace.phases  # every family produces named phases by default
    assert trace.meta["generator"] == name
    if name != "mpi_collective":  # collectives are seed-independent
        assert trace.meta["seed"] == 13
    # Every record falls inside a phase window (phase-aware stats cover all).
    table = trace.phase_of_cycle_table()
    assert all(table[cycle] >= 0 for cycle in trace.cycles)


def test_different_seeds_differ_for_randomized_generators():
    a = make_workload_trace("dnn_inference", 4, 4, seed=1)
    b = make_workload_trace("dnn_inference", 4, 4, seed=2)
    assert a.to_jsonl_bytes() != b.to_jsonl_bytes()
    a = make_workload_trace("onoff", 4, 4, seed=1)
    b = make_workload_trace("onoff", 4, 4, seed=2)
    assert a.to_jsonl_bytes() != b.to_jsonl_bytes()


def test_dnn_inference_phases_follow_layers():
    trace = make_workload_trace("dnn_inference", 4, 4, seed=0, layers=3, layer_window=20)
    assert trace.phase_names == ("layer0", "layer1", "layer2")
    assert trace.duration == 60


def test_mpi_collective_variants():
    ring = generate_mpi_collective(2, 2, collective="allreduce_ring", step_cycles=2)
    assert ring.phase_names == ("reduce_scatter", "allgather")
    # N-1 steps per half, every tile sends once per step.
    assert ring.num_packets == 2 * 3 * 4
    tree = generate_mpi_collective(2, 2, collective="allreduce_tree", step_cycles=2)
    assert tree.phase_names == ("reduce", "broadcast")
    # Binary tree over 4 tiles: 2 rounds of 2+1 sends each way.
    assert tree.num_packets == 6
    alltoall = generate_mpi_collective(2, 2, collective="alltoall", step_cycles=2)
    assert alltoall.phase_names == ("alltoall",)
    assert alltoall.num_packets == 4 * 3
    with pytest.raises(ValidationError, match="unknown collective"):
        generate_mpi_collective(2, 2, collective="gossip")


def test_stencil_sends_one_halo_per_grid_neighbour():
    trace = make_workload_trace("stencil2d", 3, 3, seed=0, iterations=1)
    # 3x3 grid: 4 corner tiles x2 + 4 edge tiles x3 + 1 centre x4 = 24 halos.
    assert trace.num_packets == 24
    assert trace.phase_names == ("iter0",)


def test_onoff_unphased_background():
    trace = generate_onoff(4, 4, seed=7, duration=64, phases=0)
    assert trace.phases == ()


def test_mpi_collective_is_seed_independent():
    a = generate_mpi_collective(2, 2, seed=1)
    b = generate_mpi_collective(2, 2, seed=2)
    assert a.to_jsonl_bytes() == b.to_jsonl_bytes()
    assert "seed" not in a.meta


def test_unknown_parameters_rejected_up_front():
    # Unknown generator kwargs fail as ValidationError at the registry, not
    # as a TypeError deep inside a campaign run.
    with pytest.raises(ValidationError, match="unknown parameters \\['bogus'\\]"):
        make_workload_trace("stencil2d", 4, 4, bogus=1)


def test_degenerate_grids_rejected():
    with pytest.raises(ValidationError, match="at least 2 tiles"):
        make_workload_trace("stencil2d", 1, 1)
    with pytest.raises(ValidationError, match="at least 2 tiles"):
        make_workload_trace("dnn_inference", -4, -4)
    with pytest.raises(ValidationError, match="at least 2 tiles"):
        make_workload_trace("mpi_collective", 0, 4)


def test_parameter_validation():
    with pytest.raises(ValidationError, match="layers"):
        make_workload_trace("dnn_inference", 2, 2, layers=0)
    with pytest.raises(ValidationError, match="layers <= num_tiles"):
        make_workload_trace("dnn_inference", 2, 2, layers=5)
    with pytest.raises(ValidationError, match="burst_rate"):
        make_workload_trace("onoff", 2, 2, burst_rate=1.5)
    with pytest.raises(ValidationError, match="no records"):
        make_workload_trace("onoff", 2, 2, burst_rate=0.0)
