"""Regression tests of the runner's memoization backends.

Satellite coverage for two historical failure modes:

* a worker killed mid-write leaving a *truncated* cache entry that poisoned
  every later run of the same spec — writes are now atomic
  (temp file + ``os.replace``);
* a stale or renamed entry whose payload did not match the requested
  ``spec_id`` crashing the load — malformed or mismatched entries are now
  treated as cache misses (warned once per cache) and recomputed.
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from repro.experiments import DirectoryCache, ExperimentRunner, ExperimentSpec
from repro.experiments.serialization import prediction_to_dict


def spec_for(topology: str = "mesh", **overrides) -> ExperimentSpec:
    kwargs = dict(topology=topology, rows=4, cols=4, traffic="uniform",
                  performance_mode="analytical")
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


def test_atomic_save_leaves_no_temp_files(tmp_path):
    cache = DirectoryCache(tmp_path)
    spec = spec_for()
    cache.save(spec, spec.run())
    entries = sorted(path.name for path in tmp_path.iterdir())
    assert entries == [f"{spec.spec_id}.json"]
    assert not any(name.endswith(".tmp") for name in entries)


def test_save_replaces_atomically_over_existing_entry(tmp_path):
    cache = DirectoryCache(tmp_path)
    spec = spec_for()
    prediction = spec.run()
    cache.save(spec, prediction)
    before = cache.path_for(spec).read_text()
    cache.save(spec, prediction)
    assert cache.path_for(spec).read_text() == before
    assert sorted(tmp_path.iterdir()) == [cache.path_for(spec)]


def test_truncated_entry_is_miss_and_recomputed(tmp_path):
    """A partial write (simulated kill mid-write) must not poison the cache."""
    runner = ExperimentRunner(cache_dir=tmp_path)
    spec = spec_for()
    reference = runner.run(spec)[0]
    assert reference.cached is False

    # Simulate the pre-atomic-write failure mode: a torn, half-written file.
    path = runner.cache.path_for(spec)
    full = path.read_text()
    path.write_text(full[: len(full) // 2])

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = runner.run(spec)[0]
    assert result.cached is False
    assert prediction_to_dict(result.prediction) == prediction_to_dict(
        reference.prediction
    )
    assert runner.cache.invalid_entries == 1
    assert any("invalid cache entry" in str(w.message) for w in caught)

    # The recompute healed the entry on disk: next run is a clean hit.
    assert runner.run(spec)[0].cached is True


def test_spec_id_mismatch_is_miss(tmp_path):
    """An entry whose stored spec hashes differently is rejected, not served."""
    runner = ExperimentRunner(cache_dir=tmp_path)
    mesh, torus = spec_for(), spec_for("torus")
    runner.run(torus)
    # A renamed/stale file: torus payload sitting at the mesh spec's path.
    os.replace(runner.cache.path_for(torus), runner.cache.path_for(mesh))

    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        result = runner.run(mesh)[0]
    assert result.cached is False
    assert result.spec.topology == "mesh"
    assert runner.cache.invalid_entries == 1


def test_missing_result_key_is_miss(tmp_path):
    runner = ExperimentRunner(cache_dir=tmp_path)
    spec = spec_for()
    runner.run(spec)
    path = runner.cache.path_for(spec)
    payload = json.loads(path.read_text())
    del payload["result"]
    path.write_text(json.dumps(payload))

    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        assert runner.run(spec)[0].cached is False


def test_invalid_entries_warn_once_per_cache(tmp_path):
    runner = ExperimentRunner(cache_dir=tmp_path)
    mesh, torus = spec_for(), spec_for("torus")
    runner.run(mesh)
    runner.run(torus)
    for spec in (mesh, torus):
        runner.cache.path_for(spec).write_text("{broken")

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        runner.run(mesh)
        runner.run(torus)
    cache_warnings = [w for w in caught if "invalid cache entry" in str(w.message)]
    assert len(cache_warnings) == 1
    assert runner.cache.invalid_entries == 2
