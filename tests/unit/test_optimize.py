"""Unit tests for :mod:`repro.optimize`: spaces, specs, objectives, constraints,
and the toolchain screening layer they drive."""

from __future__ import annotations

import pytest

from repro.arch.knc import KNC_SCENARIOS
from repro.optimize import Candidate, Constraints, Objective, SearchSpace, SearchSpec
from repro.toolchain import pair_weights_from_trace, screen_topologies
from repro.toolchain.results import PredictionResult
from repro.simulator.statistics import PhaseStats
from repro.topologies.mesh import MeshTopology
from repro.utils.validation import ValidationError
from repro.workloads import make_workload_trace


# --------------------------------------------------------------- search space
class TestSearchSpace:
    def test_enumerates_default_and_sampled_families(self):
        space = SearchSpace(
            rows=4,
            cols=4,
            families={
                "mesh": {},
                "torus": {},
                "sparse_hamming": {"max_configurations": 8},
            },
        )
        candidates = space.enumerate_candidates()
        assert len(candidates) == 10
        assert space.size() == 10
        families = {candidate.topology for candidate in candidates}
        assert families == {"mesh", "torus", "sparse_hamming"}

    def test_small_sparse_hamming_space_is_exhaustive(self):
        # 3x3: 2^(1+1) = 4 configurations; a larger cap enumerates them all.
        space = SearchSpace(
            rows=3, cols=3, families={"sparse_hamming": {"max_configurations": 16}}
        )
        assert space.size() == 4

    def test_enumeration_is_deterministic_per_seed(self):
        def expand(seed):
            return SearchSpace(
                rows=8,
                cols=8,
                families={"sparse_hamming": {"max_configurations": 12}},
                seed=seed,
            ).enumerate_candidates()

        assert expand(3) == expand(3)
        assert expand(3) != expand(4)

    def test_grid_block_expands_cartesian_product(self):
        space = SearchSpace(
            rows=4,
            cols=4,
            families={"ruche": {"grid": {"row_skip": [2, 3], "col_skip": [0, 2]}}},
        )
        candidates = space.enumerate_candidates()
        assert len(candidates) == 4
        assert all(candidate.topology == "ruche" for candidate in candidates)
        kwargs = [dict(candidate.topology_kwargs) for candidate in candidates]
        assert {"row_skip": 3, "col_skip": 2} in kwargs

    def test_inapplicable_families_are_skipped(self):
        # Hypercube needs power-of-two dimensions; 3x3 drops it silently.
        space = SearchSpace(rows=3, cols=3, families={"mesh": {}, "hypercube": {}})
        assert [c.topology for c in space.enumerate_candidates()] == ["mesh"]

    def test_duplicate_candidates_collapse(self):
        space = SearchSpace(
            rows=4,
            cols=4,
            families={"ruche": {"grid": {"row_skip": [2, 2]}}},
        )
        assert space.size() == 1

    def test_rejects_unknown_family(self):
        with pytest.raises(ValidationError, match="unknown topology"):
            SearchSpace(rows=4, cols=4, families={"nope": {}})

    def test_rejects_unknown_block_keys(self):
        with pytest.raises(ValidationError, match="unknown block keys"):
            SearchSpace(rows=4, cols=4, families={"mesh": {"radix": 4}})

    def test_rejects_max_configurations_off_sparse_hamming(self):
        with pytest.raises(ValidationError, match="sparse_hamming"):
            SearchSpace(rows=4, cols=4, families={"mesh": {"max_configurations": 4}})

    def test_rejects_grid_and_sample_together(self):
        with pytest.raises(ValidationError, match="mutually exclusive"):
            SearchSpace(
                rows=4,
                cols=4,
                families={
                    "sparse_hamming": {"max_configurations": 4, "grid": {"s_r": [[2]]}}
                },
            )

    def test_rejects_empty_family_set(self):
        with pytest.raises(ValidationError, match="at least one topology family"):
            SearchSpace(rows=4, cols=4, families={})


class TestCandidate:
    def test_builds_the_described_topology(self):
        candidate = Candidate(
            topology="sparse_hamming", topology_kwargs={"s_r": [2], "s_c": []}
        )
        topology = candidate.build(4, 4)
        assert topology.num_tiles == 16
        assert "Hamming" in topology.name

    def test_sort_key_is_canonical(self):
        a = Candidate(topology="sparse_hamming", topology_kwargs={"s_r": [2], "s_c": []})
        b = Candidate(topology="sparse_hamming", topology_kwargs={"s_c": [], "s_r": [2]})
        assert a.sort_key == b.sort_key

    def test_candidates_are_hashable(self):
        a = Candidate(topology="sparse_hamming", topology_kwargs={"s_r": [2], "s_c": []})
        b = Candidate(topology="sparse_hamming", topology_kwargs={"s_c": [], "s_r": [2]})
        assert len({a, b}) == 1
        assert hash(a) == hash(b)

    def test_rejects_unknown_topology(self):
        with pytest.raises(ValidationError):
            Candidate(topology="nope")

    def test_build_rejects_bad_generator_kwargs_cleanly(self):
        candidate = Candidate(topology="torus", topology_kwargs={"bogus": 1})
        with pytest.raises(ValidationError, match="invalid topology kwargs"):
            candidate.build(4, 4)


# ----------------------------------------------------------------- objectives
def _prediction(latency=10.0, throughput=0.5, phases=None):
    return PredictionResult(
        topology_name="t",
        area_overhead=0.1,
        total_area_mm2=100.0,
        noc_power_w=5.0,
        zero_load_latency_cycles=latency,
        saturation_throughput=throughput,
        performance_mode="simulation",
        physical=None,
        details={"phases": phases} if phases else {},
    )


def _phase(name, created=10, delivered=10, latency=20.0):
    return PhaseStats(
        name=name,
        start_cycle=0,
        end_cycle=64,
        packets_created=created,
        packets_delivered=delivered,
        flits_delivered=delivered * 4,
        offered_load=0.1,
        throughput=0.1,
        average_packet_latency=latency,
        p99_packet_latency=latency,
        average_hops=2.0,
    )


class TestObjective:
    def test_latency_objective_scores_latency(self):
        objective = Objective(metric="zero_load_latency")
        assert objective.lower_is_better
        assert objective.prediction_score(_prediction(latency=12.0)) == 12.0

    def test_throughput_objective_negates(self):
        objective = Objective(metric="saturation_throughput")
        assert not objective.lower_is_better
        better = objective.prediction_score(_prediction(throughput=0.6))
        worse = objective.prediction_score(_prediction(throughput=0.3))
        assert better < worse

    def test_workload_objective_requires_workload(self):
        with pytest.raises(ValidationError, match="needs a workload"):
            Objective(metric="workload_latency")

    def test_synthetic_objective_rejects_workload_and_phase(self):
        with pytest.raises(ValidationError, match="does not take a workload"):
            Objective(metric="zero_load_latency", workload={"name": "onoff"})
        with pytest.raises(ValidationError, match="does not take a phase"):
            Objective(metric="zero_load_latency", phase="layer0")

    def test_undelivered_packets_dominate_workload_score(self):
        objective = Objective(
            metric="workload_latency", workload={"name": "dnn_inference"}
        )
        clean = _prediction(latency=50.0, phases={"p": _phase("p")})
        lossy = _prediction(
            latency=5.0, phases={"p": _phase("p", created=10, delivered=9)}
        )
        assert objective.prediction_score(clean) < objective.prediction_score(lossy)

    def test_unphased_replays_still_pay_the_undelivered_penalty(self):
        # An onoff trace with phases=0 replays without per-phase stats; the
        # penalty must then come from the overall replay counters (live or
        # the serialized replay_counts of a cached prediction).
        objective = Objective(metric="workload_latency", workload={"name": "onoff"})
        clean = _prediction(latency=50.0)
        clean.details["replay_counts"] = {"packets_created": 40, "packets_delivered": 40}
        lossy = _prediction(latency=5.0)
        lossy.details["replay_counts"] = {"packets_created": 40, "packets_delivered": 30}
        assert objective.prediction_score(clean) < objective.prediction_score(lossy)

    def test_phase_objective_scores_that_phase_only(self):
        objective = Objective(
            metric="workload_latency",
            workload={"name": "dnn_inference"},
            phase="hot",
        )
        prediction = _prediction(
            latency=99.0,
            phases={"cold": _phase("cold", latency=5.0), "hot": _phase("hot", latency=42.0)},
        )
        assert objective.prediction_score(prediction) == 42.0

    def test_phase_objective_rejects_unknown_phase(self):
        objective = Objective(
            metric="workload_latency",
            workload={"name": "dnn_inference"},
            phase="missing",
        )
        with pytest.raises(ValidationError, match="no phase 'missing'"):
            objective.prediction_score(_prediction(phases={"p": _phase("p")}))

    def test_round_trips_through_dict(self):
        objective = Objective(
            metric="workload_latency",
            workload={"name": "stencil2d", "seed": 3},
            phase="iter0",
        )
        assert Objective.from_dict(objective.to_dict()) == objective

    def test_rejects_unknown_metric_and_keys(self):
        with pytest.raises(ValidationError, match="unknown objective metric"):
            Objective(metric="latency")
        with pytest.raises(ValidationError, match="unknown objective keys"):
            Objective.from_dict({"metric": "zero_load_latency", "extra": 1})


class TestConstraints:
    def test_violations_cover_all_three_budgets(self):
        constraints = Constraints(
            max_area_overhead=0.10, max_power_w=1.0, max_link_length=2
        )
        estimates = screen_topologies(
            [MeshTopology(4, 4)], KNC_SCENARIOS["a"].parameters().scaled(num_tiles=16)
        )
        # A mesh is cheap: only the (absurdly tight) power budget can trip.
        reasons = constraints.violations(estimates[0])
        assert any("power" in reason for reason in reasons)
        assert not any("link length" in reason for reason in reasons)

    def test_link_length_violation_is_standalone(self):
        constraints = Constraints(max_link_length=1)
        assert constraints.link_length_violation(1) is None
        assert "budget 1" in constraints.link_length_violation(3)

    def test_round_trips_through_dict(self):
        constraints = Constraints(max_area_overhead=0.4, max_link_length=4)
        assert Constraints.from_dict(constraints.to_dict()) == constraints
        assert Constraints.from_dict({}) == Constraints()

    def test_rejects_bad_budgets(self):
        with pytest.raises(ValidationError):
            Constraints(max_area_overhead=0.0)
        with pytest.raises(ValidationError):
            Constraints(max_power_w=-1.0)
        with pytest.raises(ValidationError):
            Constraints(max_link_length=0)
        with pytest.raises(ValidationError, match="unknown constraint keys"):
            Constraints.from_dict({"max_area": 0.4})


# ------------------------------------------------------------------ screening
class TestScreening:
    def test_trace_weights_sum_to_one(self):
        trace = make_workload_trace("stencil2d", 4, 4, iterations=2)
        weights = pair_weights_from_trace(trace)
        assert sum(weights.values()) == pytest.approx(1.0)
        assert all(src != dst for src, dst in weights)

    def test_trace_weighted_estimate_differs_from_uniform(self):
        # Stencil traffic is pure nearest-neighbour: its trace-weighted
        # latency must undercut the all-pairs uniform estimate on a mesh.
        trace = make_workload_trace("stencil2d", 4, 4, iterations=2)
        [estimate] = screen_topologies(
            [MeshTopology(4, 4)], KNC_SCENARIOS["a"].parameters().scaled(num_tiles=16), trace=trace
        )
        assert estimate.trace_latency_cycles is not None
        assert estimate.trace_latency_cycles < estimate.zero_load_latency_cycles

    def test_no_trace_means_no_trace_metrics(self):
        [estimate] = screen_topologies(
            [MeshTopology(4, 4)], KNC_SCENARIOS["a"].parameters().scaled(num_tiles=16)
        )
        assert estimate.trace_latency_cycles is None
        assert estimate.trace_saturation_throughput is None
        assert estimate.max_link_length == 1


# ---------------------------------------------------------------- search spec
class TestSearchSpec:
    def _spec(self, **overrides):
        kwargs = dict(
            rows=4,
            cols=4,
            space={"mesh": {}, "sparse_hamming": {"max_configurations": 4}},
            objective={"metric": "zero_load_latency"},
            survivors=2,
        )
        kwargs.update(overrides)
        return SearchSpec(**kwargs)

    def test_json_round_trip_preserves_identity(self):
        spec = self._spec(
            objective={
                "metric": "workload_latency",
                "workload": {"name": "stencil2d", "seed": 1},
            },
            constraints={"max_area_overhead": 0.4},
        )
        rebuilt = SearchSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.search_id == spec.search_id

    def test_label_not_part_of_identity(self):
        assert self._spec(label="a") == self._spec(label="b")
        assert self._spec(label="a").search_id == self._spec(label="b").search_id

    def test_different_seed_changes_identity(self):
        assert self._spec(seed=0).search_id != self._spec(seed=1).search_id

    def test_rejects_unknown_fields_and_missing_space(self):
        with pytest.raises(ValidationError, match="unknown search-spec fields"):
            SearchSpec.from_dict({"rows": 4, "cols": 4, "space": {"mesh": {}}, "x": 1})
        with pytest.raises(ValidationError, match="missing required fields"):
            SearchSpec.from_dict({"rows": 4, "cols": 4})

    def test_probe_validates_shared_sim_and_arch(self):
        with pytest.raises(ValidationError, match="unknown simulation override"):
            self._spec(sim={"bogus": 1})
        with pytest.raises(ValidationError, match="unknown arch override"):
            self._spec(arch={"bogus": 1})

    def test_rejects_bad_survivors_and_baseline(self):
        with pytest.raises(ValidationError, match="survivors"):
            self._spec(survivors=0)
        with pytest.raises(ValidationError, match="unknown baseline"):
            self._spec(baseline="nope")

    def test_rejects_bad_baseline_kwargs_at_construction(self):
        # Invalid baseline kwargs must fail here, not after the whole search
        # has run and the baseline is finally evaluated.
        with pytest.raises(ValidationError, match="invalid topology kwargs"):
            self._spec(baseline="torus", baseline_kwargs={"bogus": 1})
        # An inapplicable baseline fails fast too (hypercube needs 2^k dims).
        with pytest.raises(ValidationError, match="not applicable"):
            SearchSpec(
                rows=3, cols=3, space={"mesh": {}}, survivors=1, baseline="hypercube"
            )

    def test_candidate_spec_merges_rung_overrides(self):
        spec = self._spec(sim={"drain_max_cycles": 2000}, scenario="a")
        candidate = Candidate(topology="mesh")
        full = spec.candidate_spec(candidate)
        scaled = spec.candidate_spec(candidate, sim_overrides={"drain_max_cycles": 500})
        assert full.sim["drain_max_cycles"] == 2000
        assert scaled.sim["drain_max_cycles"] == 500
        assert full.performance_mode == "simulation"
        assert full.spec_id != scaled.spec_id

    def test_workload_objective_flows_into_candidate_specs(self):
        spec = self._spec(
            objective={
                "metric": "workload_latency",
                "workload": {"name": "stencil2d", "seed": 2},
            }
        )
        candidate_spec = spec.candidate_spec(Candidate(topology="torus"))
        assert candidate_spec.workload == {"name": "stencil2d", "seed": 2}

    def test_describe_mentions_objective_and_families(self):
        text = self._spec().describe()
        assert "mesh" in text and "sparse_hamming" in text
        assert "zero-load" in text


class TestEngineInSearch:
    def test_engine_flows_into_every_candidate_spec(self):
        spec = SearchSpec(
            rows=4,
            cols=4,
            space={"mesh": {}, "torus": {}},
            objective={"metric": "zero_load_latency"},
            sim={"engine": "soa", "drain_max_cycles": 500},
            survivors=2,
        )
        candidate_spec = spec.candidate_spec(Candidate(topology="torus"))
        assert candidate_spec.build_simulation_config().engine == "soa"
        # Rung budget overrides merge on top without dropping the engine.
        scaled = spec.candidate_spec(
            Candidate(topology="torus"), sim_overrides={"drain_max_cycles": 250}
        )
        assert scaled.sim["engine"] == "soa"
        assert scaled.sim["drain_max_cycles"] == 250

    def test_engine_does_not_change_candidate_identity(self):
        base = SearchSpec(
            rows=4, cols=4, space={"mesh": {}},
            objective={"metric": "zero_load_latency"},
        )
        soa = base.with_overrides(sim={"engine": "soa"})
        # The search ids differ (different declarative spec) but the derived
        # experiment specs share their memoization identity.
        assert (
            base.candidate_spec(Candidate(topology="mesh")).spec_id
            == soa.candidate_spec(Candidate(topology="mesh")).spec_id
        )

    def test_unknown_engine_rejected_at_spec_construction(self):
        with pytest.raises(ValidationError, match="unknown simulation engine"):
            SearchSpec(
                rows=4, cols=4, space={"mesh": {}},
                objective={"metric": "zero_load_latency"},
                sim={"engine": "numpy"},
            )
