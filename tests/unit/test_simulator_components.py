"""Unit tests for simulator building blocks: flits, traffic, routing tables, network."""

import numpy as np
import pytest

from repro.simulator.flit import Flit, Packet, packet_to_flits
from repro.simulator.network import NetworkConfig, build_network
from repro.simulator.routing_tables import build_routing_tables
from repro.simulator.traffic import (
    BitComplementTraffic,
    HotspotTraffic,
    InjectionProcess,
    NeighborTraffic,
    TornadoTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
    make_traffic_pattern,
)
from repro.topologies.base import Link
from repro.topologies.mesh import MeshTopology
from repro.topologies.ring import RingTopology
from repro.topologies.slimnoc import SlimNoCTopology
from repro.topologies.torus import TorusTopology
from repro.core.sparse_hamming import SparseHammingGraph
from repro.utils.validation import ValidationError


class TestPacketAndFlit:
    def test_packet_segmentation(self):
        packet = Packet(1, 0, 5, 4, creation_cycle=10)
        flits = packet_to_flits(packet)
        assert len(flits) == 4
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(f.destination == 5 for f in flits)

    def test_single_flit_packet_is_head_and_tail(self):
        flits = packet_to_flits(Packet(1, 0, 1, 1, creation_cycle=0))
        assert flits[0].is_head and flits[0].is_tail

    def test_latency_accessors(self):
        packet = Packet(1, 0, 5, 2, creation_cycle=10)
        assert packet.total_latency is None
        packet.injection_cycle = 12
        packet.arrival_cycle = 30
        assert packet.total_latency == 20
        assert packet.network_latency == 18

    def test_rejects_self_traffic_and_empty_packets(self):
        with pytest.raises(ValidationError):
            Packet(1, 3, 3, 4, creation_cycle=0)
        with pytest.raises(ValidationError):
            Packet(1, 0, 1, 0, creation_cycle=0)


class TestTrafficPatterns:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_uniform_never_sends_to_self(self):
        pattern = UniformRandomTraffic(16)
        for source in range(16):
            for _ in range(50):
                assert pattern.destination(source, self.rng) != source

    def test_uniform_covers_all_destinations(self):
        pattern = UniformRandomTraffic(8)
        seen = {pattern.destination(0, self.rng) for _ in range(500)}
        assert seen == set(range(1, 8))

    def test_transpose_swaps_row_and_column(self):
        pattern = TransposeTraffic(16, 4, 4)
        # tile (1, 2) = 6 -> tile (2, 1) = 9
        assert pattern.destination(6, self.rng) == 9

    def test_transpose_requires_square_grid(self):
        with pytest.raises(ValidationError):
            TransposeTraffic(8, 2, 4)

    def test_bit_complement(self):
        pattern = BitComplementTraffic(16)
        assert pattern.destination(0, self.rng) == 15
        assert pattern.destination(5, self.rng) == 10

    def test_tornado_offset(self):
        pattern = TornadoTraffic(16)
        assert pattern.destination(0, self.rng) == 7
        assert pattern.destination(10, self.rng) == (10 + 7) % 16

    def test_neighbor(self):
        pattern = NeighborTraffic(16)
        assert pattern.destination(3, self.rng) == 4
        assert pattern.destination(15, self.rng) == 0

    def test_hotspot_prefers_hotspots(self):
        pattern = HotspotTraffic(16, hotspots=(5,), hotspot_fraction=1.0)
        destinations = {pattern.destination(0, self.rng) for _ in range(20)}
        assert destinations == {5}

    def test_hotspot_validation(self):
        with pytest.raises(ValidationError):
            HotspotTraffic(16, hotspots=())
        with pytest.raises(ValidationError):
            HotspotTraffic(16, hotspots=(99,))

    def test_factory_by_name(self):
        topo = MeshTopology(4, 4)
        for name in ("uniform", "transpose", "bit_complement", "tornado", "neighbor", "hotspot"):
            pattern = make_traffic_pattern(name, topo)
            destination = pattern.destination(0, self.rng)
            assert 0 <= destination < 16

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValidationError):
            make_traffic_pattern("nonsense", MeshTopology(4, 4))


class TestInjectionProcess:
    def test_zero_rate_creates_no_packets(self):
        process = InjectionProcess(UniformRandomTraffic(16), 0.0, 4, seed=1)
        assert process.packets_for_cycle(0) == []

    def test_rate_controls_expected_packet_count(self):
        process = InjectionProcess(UniformRandomTraffic(64), 0.4, 4, seed=2)
        total = sum(len(process.packets_for_cycle(c)) for c in range(500))
        expected = 0.4 / 4 * 64 * 500
        assert abs(total - expected) / expected < 0.15

    def test_reproducible_with_seed(self):
        a = InjectionProcess(UniformRandomTraffic(16), 0.5, 2, seed=7)
        b = InjectionProcess(UniformRandomTraffic(16), 0.5, 2, seed=7)
        assert [a.packets_for_cycle(c) for c in range(20)] == [
            b.packets_for_cycle(c) for c in range(20)
        ]

    def test_rejects_invalid_rate(self):
        with pytest.raises(ValidationError):
            InjectionProcess(UniformRandomTraffic(16), 1.5, 4)


class TestRoutingTables:
    @pytest.mark.parametrize(
        "topology",
        [
            MeshTopology(4, 4),
            TorusTopology(4, 4),
            RingTopology(3, 3),
            SparseHammingGraph(4, 6, s_r={3}, s_c={2}),
            SlimNoCTopology(5, 10),
        ],
        ids=lambda t: t.name,
    )
    def test_minimal_routes_are_hop_minimal(self, topology):
        import networkx as nx

        tables = build_routing_tables(topology)
        shortest = dict(nx.all_pairs_shortest_path_length(topology.graph))
        for source in topology.tiles():
            for destination in topology.tiles():
                if source == destination:
                    continue
                path = tables.path(source, destination)
                assert len(path) - 1 == shortest[source][destination]

    def test_escape_routes_reach_destination(self):
        topology = TorusTopology(4, 4)
        tables = build_routing_tables(topology)
        for source in topology.tiles():
            for destination in topology.tiles():
                if source == destination:
                    continue
                path = tables.path(source, destination, escape=True)
                assert path[0] == source and path[-1] == destination

    def test_escape_routes_follow_spanning_tree(self):
        topology = MeshTopology(4, 4)
        tables = build_routing_tables(topology)
        tree_edges = {
            tuple(sorted((node, parent)))
            for node, parent in enumerate(tables.tree_parent)
            if parent >= 0
        }
        for source in topology.tiles():
            for destination in topology.tiles():
                if source == destination:
                    continue
                path = tables.path(source, destination, escape=True)
                for a, b in zip(path[:-1], path[1:]):
                    assert tuple(sorted((a, b))) in tree_edges

    def test_escape_channel_dependencies_are_acyclic(self):
        # Up*/down* on a tree: a path never takes an "up" move after a "down"
        # move, where "up" means moving to the tree parent.
        topology = TorusTopology(4, 4)
        tables = build_routing_tables(topology)
        parent = tables.tree_parent
        for source in topology.tiles():
            for destination in topology.tiles():
                if source == destination:
                    continue
                path = tables.path(source, destination, escape=True)
                gone_down = False
                for a, b in zip(path[:-1], path[1:]):
                    moving_up = parent[a] == b
                    if moving_up:
                        assert not gone_down
                    else:
                        gone_down = True

    def test_average_minimal_hops_matches_graph_metric(self):
        topology = MeshTopology(4, 4)
        tables = build_routing_tables(topology)
        assert tables.average_minimal_hops() == pytest.approx(
            topology.average_hop_count()
        )

    def test_disconnected_topology_rejected(self):
        from repro.topologies.base import Topology

        disconnected = Topology(2, 2, [(0, 1)], "broken")
        with pytest.raises(ValidationError):
            build_routing_tables(disconnected)


class TestNetworkConstruction:
    def test_two_channels_per_link(self):
        topology = MeshTopology(3, 3)
        network = build_network(topology)
        assert len(network.channels) == 2 * topology.num_links
        assert network.channel(0, 1).destination == 1
        assert network.channel(1, 0).destination == 0

    def test_link_latencies_applied_to_both_directions(self):
        topology = TorusTopology(4, 4)
        latencies = {link: 3 for link in topology.links}
        network = build_network(topology, link_latencies=latencies)
        assert all(channel.latency_cycles == 3 for channel in network.channels)

    def test_default_latency_is_one(self):
        network = build_network(MeshTopology(2, 2))
        assert all(channel.latency_cycles == 1 for channel in network.channels)

    def test_missing_channel_rejected(self):
        network = build_network(MeshTopology(2, 2))
        with pytest.raises(ValidationError):
            network.channel(0, 3)

    def test_network_config_validation(self):
        with pytest.raises(ValidationError):
            NetworkConfig(num_vcs=0)
        with pytest.raises(ValidationError):
            NetworkConfig(buffer_depth_flits=0)
        config = NetworkConfig(num_vcs=4)
        assert config.escape_vc == 0
        assert config.adaptive_vcs == (1, 2, 3)

    def test_single_vc_has_no_adaptive_layer(self):
        assert NetworkConfig(num_vcs=1).adaptive_vcs == ()
