"""Unit tests for the customization strategy (Section V-a)."""

from dataclasses import dataclass

import pytest

from repro.core.customization import (
    CustomizationGoal,
    customize_sparse_hamming,
)
from repro.core.sparse_hamming import SparseHammingGraph
from repro.utils.validation import ValidationError


@dataclass
class FakePrediction:
    area_overhead: float
    noc_power_w: float
    zero_load_latency_cycles: float
    saturation_throughput: float


def link_count_predictor(budget_links: int = 400):
    """A deterministic stand-in for the toolchain.

    Cost (area) grows linearly with the number of links; throughput grows but
    saturates; latency falls with the diameter.  This captures the qualitative
    shape of the real toolchain while keeping tests instantaneous.
    """

    def predict(topology: SparseHammingGraph) -> FakePrediction:
        links = topology.num_links
        area = links / budget_links
        throughput = min(1.0, 0.1 + links / 500.0)
        latency = 5.0 + 2.0 * topology.diameter()
        power = links * 0.05
        return FakePrediction(
            area_overhead=area,
            noc_power_w=power,
            zero_load_latency_cycles=latency,
            saturation_throughput=throughput,
        )

    return predict


class TestCustomizationGoal:
    def test_defaults_match_paper(self):
        goal = CustomizationGoal()
        assert goal.max_area_overhead == pytest.approx(0.40)

    def test_feasibility(self):
        goal = CustomizationGoal(max_area_overhead=0.4)
        assert goal.is_feasible(FakePrediction(0.39, 1, 1, 1))
        assert not goal.is_feasible(FakePrediction(0.41, 1, 1, 1))

    def test_improvement_prefers_throughput(self):
        goal = CustomizationGoal()
        old = FakePrediction(0.1, 1, 20.0, 0.30)
        better_throughput = FakePrediction(0.2, 2, 25.0, 0.40)
        assert goal.is_improvement(old, better_throughput)

    def test_improvement_ties_broken_by_latency(self):
        goal = CustomizationGoal()
        old = FakePrediction(0.1, 1, 20.0, 0.300)
        same_throughput_lower_latency = FakePrediction(0.2, 2, 15.0, 0.301)
        same_throughput_higher_latency = FakePrediction(0.2, 2, 25.0, 0.301)
        assert goal.is_improvement(old, same_throughput_lower_latency)
        assert not goal.is_improvement(old, same_throughput_higher_latency)

    def test_rejects_invalid_budget(self):
        with pytest.raises(ValidationError):
            CustomizationGoal(max_area_overhead=1.5)


class TestCustomizeSparseHamming:
    def test_starts_from_mesh(self):
        result = customize_sparse_hamming(6, 6, link_count_predictor(), max_iterations=1)
        assert result.steps[0].action == "start (mesh)"
        assert result.steps[0].s_r == frozenset()
        assert result.steps[0].s_c == frozenset()

    def test_never_exceeds_area_budget(self):
        goal = CustomizationGoal(max_area_overhead=0.40)
        result = customize_sparse_hamming(
            8, 8, link_count_predictor(budget_links=500), goal=goal, max_iterations=20
        )
        assert result.prediction.area_overhead <= 0.40
        for step in result.steps:
            assert step.area_overhead <= 0.40

    def test_improves_over_mesh(self):
        result = customize_sparse_hamming(8, 8, link_count_predictor(), max_iterations=10)
        start = result.steps[0]
        final = result.steps[-1]
        assert final.saturation_throughput >= start.saturation_throughput
        assert final.zero_load_latency_cycles <= start.zero_load_latency_cycles

    def test_stops_when_no_improvement_possible(self):
        # With a tiny budget no link can ever be added.
        goal = CustomizationGoal(max_area_overhead=0.05)
        result = customize_sparse_hamming(
            8, 8, link_count_predictor(budget_links=500), goal=goal, max_iterations=10
        )
        # Mesh has 112 links -> area 0.224 > 0.05: even the mesh is infeasible,
        # so the search reports the mesh itself.
        assert result.topology.is_mesh()
        assert len(result.steps) == 1

    def test_respects_max_iterations(self):
        result = customize_sparse_hamming(8, 8, link_count_predictor(2000), max_iterations=3)
        # One start step plus at most three accepted changes.
        assert len(result.steps) <= 4

    def test_rejects_bad_max_iterations(self):
        with pytest.raises(ValidationError):
            customize_sparse_hamming(4, 4, link_count_predictor(), max_iterations=0)

    def test_evaluation_count_reported(self):
        result = customize_sparse_hamming(6, 6, link_count_predictor(), max_iterations=2)
        assert result.evaluations >= len(result.steps)

    def test_endpoints_per_tile_propagated(self):
        result = customize_sparse_hamming(
            4, 4, link_count_predictor(), endpoints_per_tile=2, max_iterations=1
        )
        assert result.topology.endpoints_per_tile == 2

    def test_step_describe_is_readable(self):
        result = customize_sparse_hamming(6, 6, link_count_predictor(), max_iterations=2)
        text = result.steps[-1].describe()
        assert "S_R=" in text and "area=" in text and "thr=" in text

    def test_result_exposes_final_parameters(self):
        result = customize_sparse_hamming(6, 6, link_count_predictor(), max_iterations=5)
        assert result.s_r == result.topology.s_r
        assert result.s_c == result.topology.s_c
