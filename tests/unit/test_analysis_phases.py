"""Unit tests of the per-phase analysis helpers (repro.analysis.phases)."""

from __future__ import annotations

import pytest

from repro.analysis.phases import (
    PhasePoint,
    bottleneck_phase,
    phase_pareto_front,
    phase_pareto_fronts,
    phase_points,
    phase_records,
    phase_speedups,
    saturated_phases,
)
from repro.simulator.statistics import PhaseStats, SimulationStats
from repro.utils.validation import ValidationError


def make_phase(name, latency, throughput, offered=None, created=10, delivered=10,
               start=0, end=100):
    return PhaseStats(
        name=name,
        start_cycle=start,
        end_cycle=end,
        packets_created=created,
        packets_delivered=delivered,
        flits_delivered=delivered * 4,
        offered_load=throughput if offered is None else offered,
        throughput=throughput,
        average_packet_latency=latency,
        p99_packet_latency=latency * 2,
        average_hops=2.0,
    )


def make_stats(phases):
    return SimulationStats(
        offered_load=0.1,
        accepted_load=0.1,
        average_packet_latency=10.0,
        average_network_latency=9.0,
        p99_packet_latency=20.0,
        average_hops=2.0,
        packets_measured=10,
        packets_delivered=10,
        packets_created=10,
        flits_delivered_measurement=40,
        measurement_cycles=100,
        num_tiles=16,
        escape_fraction=0.0,
        drained=True,
        phases={phase.name: phase for phase in phases},
    )


def test_phase_records_rows():
    stats = make_stats([make_phase("a", 10.0, 0.2), make_phase("b", 20.0, 0.1)])
    rows = phase_records(stats)
    assert [row["phase"] for row in rows] == ["a", "b"]
    assert rows[0]["average_packet_latency"] == 10.0
    assert rows[1]["saturated"] is False


def test_bottleneck_phase_picks_highest_latency():
    stats = make_stats([make_phase("a", 10.0, 0.2), make_phase("b", 30.0, 0.1)])
    worst = bottleneck_phase(stats)
    assert worst is not None and worst.name == "b"
    assert bottleneck_phase(make_stats([])) is None


def test_phase_saturation_flags():
    # Saturation is exactly "packets never delivered": phase throughput
    # attributes drain arrivals back to the creation phase, so a completed
    # phase always delivers its full offer.
    undelivered = make_phase("undrained", 50.0, 0.2, created=10, delivered=7)
    clean = make_phase("clean", 10.0, 0.2)
    assert undelivered.saturated and not clean.saturated
    stats = make_stats([undelivered, clean])
    assert saturated_phases(stats) == ["undrained"]


def test_phase_speedups():
    baseline = make_stats([make_phase("a", 20.0, 0.1), make_phase("b", 30.0, 0.1)])
    candidate = make_stats([make_phase("a", 10.0, 0.1), make_phase("b", 30.0, 0.1)])
    speedups = phase_speedups(baseline, candidate)
    assert speedups == {"a": 2.0, "b": 1.0}
    with pytest.raises(ValidationError, match="phase sets differ"):
        phase_speedups(baseline, make_stats([make_phase("a", 10.0, 0.1)]))


def test_phase_pareto_front_dominance():
    fast_fat = PhasePoint("mesh", "a", 10.0, 0.3)
    slow_thin = PhasePoint("ring", "a", 20.0, 0.1)
    slow_fat = PhasePoint("torus", "a", 20.0, 0.3)
    front = phase_pareto_front([fast_fat, slow_thin, slow_fat])
    assert front == [fast_fat]
    # Incomparable points both survive.
    cheap = PhasePoint("x", "a", 5.0, 0.1)
    strong = PhasePoint("y", "a", 15.0, 0.4)
    assert phase_pareto_front([cheap, strong]) == [cheap, strong]


def test_phase_pareto_fronts_across_replays():
    mesh = make_stats([make_phase("a", 10.0, 0.2), make_phase("b", 40.0, 0.1)])
    shg = make_stats([make_phase("a", 12.0, 0.2), make_phase("b", 20.0, 0.1)])
    fronts = phase_pareto_fronts({"mesh": mesh, "shg": shg})
    assert [point.label for point in fronts["a"]] == ["mesh"]
    assert [point.label for point in fronts["b"]] == ["shg"]


def test_phase_points_builder():
    stats = make_stats([make_phase("a", 10.0, 0.2)])
    points = phase_points("mesh", stats)
    assert points == [PhasePoint("mesh", "a", 10.0, 0.2)]
