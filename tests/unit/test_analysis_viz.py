"""Unit tests for the analysis helpers (Table I, Pareto, design space) and viz."""

import pytest

from repro.analysis.compliance import compliance_table, format_compliance_table
from repro.analysis.design_space import sweep_sparse_hamming_configurations, trade_off_curve
from repro.analysis.pareto import ParetoPoint, best_within_area_budget, latency_rank, pareto_front
from repro.core.sparse_hamming import SparseHammingGraph
from repro.physical.model import NoCPhysicalModel
from repro.toolchain.results import PredictionResult
from repro.topologies.mesh import MeshTopology
from repro.topologies.torus import TorusTopology
from repro.utils.validation import ValidationError
from repro.viz.ascii_art import render_sparse_hamming_construction, render_topology
from repro.viz.floorplan_viz import render_channel_loads, render_floorplan


def _make_prediction(name, area, power, latency, throughput) -> PredictionResult:
    return PredictionResult(
        topology_name=name,
        area_overhead=area,
        total_area_mm2=100.0,
        noc_power_w=power,
        zero_load_latency_cycles=latency,
        saturation_throughput=throughput,
        performance_mode="analytical",
    )


class TestComplianceTable:
    def test_scenario_a_grid_excludes_slimnoc(self):
        table = compliance_table(8, 8)
        names = [row.topology_name for row in table]
        assert "SlimNoC" not in names
        assert "Sparse Hamming Graph" in names
        assert "2D Mesh" in names

    def test_scenario_c_grid_includes_slimnoc(self):
        table = compliance_table(8, 16, topology_names=("slimnoc", "mesh"))
        assert [row.topology_name for row in table] == ["SlimNoC", "2D Mesh"]

    def test_configuration_counts_match_table1(self):
        table = compliance_table(8, 8)
        by_name = {row.topology_name: row for row in table}
        assert by_name["2D Mesh"].configurations == 1
        assert by_name["Sparse Hamming Graph"].configurations == 2 ** (8 + 8 - 4)

    def test_formatting_contains_all_rows(self):
        table = compliance_table(4, 4)
        text = format_compliance_table(table)
        for row in table:
            assert row.topology_name in text

    def test_empty_table_formatting(self):
        assert "no applicable" in format_compliance_table([])


class TestPareto:
    def test_dominates(self):
        good = ParetoPoint("good", 0.1, 1.0, 10.0, 0.8)
        bad = ParetoPoint("bad", 0.2, 2.0, 20.0, 0.5)
        assert good.dominates(bad)
        assert not bad.dominates(good)

    def test_incomparable_points_both_on_front(self):
        cheap = ParetoPoint("cheap", 0.05, 1.0, 30.0, 0.2)
        fast = ParetoPoint("fast", 0.5, 10.0, 10.0, 0.9)
        front = pareto_front([cheap, fast])
        assert {p.name for p in front} == {"cheap", "fast"}

    def test_dominated_point_removed(self):
        a = ParetoPoint("a", 0.1, 1.0, 10.0, 0.8)
        b = ParetoPoint("b", 0.2, 2.0, 20.0, 0.5)
        c = ParetoPoint("c", 0.05, 0.5, 40.0, 0.1)
        front = pareto_front([a, b, c])
        assert {p.name for p in front} == {"a", "c"}

    def test_from_prediction(self):
        prediction = _make_prediction("x", 0.3, 5.0, 12.0, 0.6)
        point = ParetoPoint.from_prediction(prediction)
        assert point.name == "x"
        assert point.saturation_throughput == 0.6

    def test_best_within_budget_prefers_throughput_then_latency(self):
        predictions = [
            _make_prediction("cheap-slow", 0.10, 1.0, 30.0, 0.3),
            _make_prediction("good", 0.35, 5.0, 15.0, 0.7),
            _make_prediction("good-lower-latency", 0.39, 6.0, 12.0, 0.7),
            _make_prediction("too-expensive", 0.55, 9.0, 8.0, 0.9),
        ]
        best = best_within_area_budget(predictions, max_area_overhead=0.40)
        assert best is not None
        assert best.topology_name == "good-lower-latency"

    def test_best_within_budget_none_if_all_exceed(self):
        predictions = [_make_prediction("huge", 0.9, 1.0, 1.0, 1.0)]
        assert best_within_area_budget(predictions) is None

    def test_latency_rank(self):
        predictions = [
            _make_prediction("a", 0.1, 1, 30.0, 0.3),
            _make_prediction("b", 0.1, 1, 10.0, 0.3),
            _make_prediction("c", 0.1, 1, 20.0, 0.3),
        ]
        assert latency_rank(predictions, "b") == 1
        assert latency_rank(predictions, "c") == 2
        assert latency_rank(predictions, "a") == 3
        with pytest.raises(ValueError):
            latency_rank(predictions, "missing")


class TestDesignSpaceSweep:
    def _fake_predictor(self, topology: SparseHammingGraph) -> PredictionResult:
        links = topology.num_links
        return _make_prediction(
            topology.describe_configuration(),
            area=links / 400.0,
            power=links * 0.01,
            latency=30.0 - topology.num_links * 0.02,
            throughput=min(1.0, links / 300.0),
        )

    def test_exhaustive_sweep_small_grid(self):
        samples = sweep_sparse_hamming_configurations(3, 4, self._fake_predictor)
        assert len(samples) == 2 ** (3 + 4 - 4)
        configurations = {(s.s_r, s.s_c) for s in samples}
        assert (frozenset(), frozenset()) in configurations

    def test_sampled_sweep_includes_endpoints(self):
        samples = sweep_sparse_hamming_configurations(
            8, 8, self._fake_predictor, max_configurations=10, seed=3
        )
        assert len(samples) == 10
        configurations = {(s.s_r, s.s_c) for s in samples}
        assert (frozenset(), frozenset()) in configurations
        assert (frozenset(range(2, 8)), frozenset(range(2, 8))) in configurations

    def test_sweep_rejects_too_small_budget(self):
        with pytest.raises(ValidationError):
            sweep_sparse_hamming_configurations(
                8, 8, self._fake_predictor, max_configurations=1
            )

    def test_trade_off_curve_is_monotone(self):
        samples = sweep_sparse_hamming_configurations(3, 4, self._fake_predictor)
        frontier = trade_off_curve(samples)
        assert frontier
        areas = [s.area_overhead for s in frontier]
        throughputs = [s.saturation_throughput for s in frontier]
        assert areas == sorted(areas)
        assert throughputs == sorted(throughputs)


class TestViz:
    def test_render_topology_contains_grid_cells(self):
        text = render_topology(MeshTopology(3, 3))
        assert "[0,0]" in text and "[2,2]" in text
        assert "2D Mesh" in text

    def test_render_topology_lists_long_links(self):
        text = render_topology(TorusTopology(4, 4))
        assert "long links" in text

    def test_render_construction_steps(self):
        text = render_sparse_hamming_construction(4, 5, {3}, {2})
        assert "step 1" in text
        assert "row links of length 3" in text
        assert "column links of length 2" in text

    def test_render_floorplan_and_channel_loads(self, small_params):
        result = NoCPhysicalModel(small_params).evaluate(TorusTopology(4, 4))
        floorplan_text = render_floorplan(result)
        assert "area overhead" in floorplan_text
        assert "chip:" in floorplan_text
        channel_text = render_channel_loads(result.global_routing)
        assert "H 0" in channel_text and "V 0" in channel_text
