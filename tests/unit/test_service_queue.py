"""Unit tests of the lease-based durable work queue."""

from __future__ import annotations

import pytest

from repro.experiments import Campaign, ExperimentSpec
from repro.experiments.serialization import prediction_to_dict
from repro.service.queue import WorkQueue, campaign_id_for
from repro.service.store import ResultStore
from repro.utils.validation import ValidationError


class FakeClock:
    """Deterministic, manually advanced lease clock."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def spec_for(topology: str = "mesh", **overrides) -> ExperimentSpec:
    kwargs = dict(topology=topology, rows=4, cols=4, traffic="uniform",
                  performance_mode="analytical")
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store.sqlite")


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def queue(store, clock) -> WorkQueue:
    return WorkQueue(store, clock=clock)


def test_enqueue_campaign_and_dedupe(queue):
    campaign = Campaign(specs=[spec_for(), spec_for("torus"), spec_for()], name="c")
    report = queue.enqueue(campaign)
    assert report.campaign_id == campaign_id_for(campaign.specs, "c")
    # Duplicate specs collapse to one job each.
    assert report.total == 2
    assert report.enqueued == 2
    assert report.already_stored == 0 and report.already_queued == 0
    assert queue.counts() == {"pending": 2, "running": 0, "done": 0, "failed": 0}

    # Re-enqueueing while jobs are pending adds nothing.
    again = queue.enqueue(campaign)
    assert again.enqueued == 0
    assert again.already_queued == 2
    assert queue.counts()["pending"] == 2
    assert "2 already queued" in again.summary()


def test_enqueue_skips_stored_results(queue, store):
    spec = spec_for()
    store.put(spec, prediction_to_dict(spec.run()))
    report = queue.enqueue([spec, spec_for("torus")], name="mixed")
    assert report.already_stored == 1
    assert report.enqueued == 1
    assert queue.job_status(spec.spec_id) is None


def test_enqueue_rejects_non_specs(queue):
    with pytest.raises(ValidationError, match="ExperimentSpec"):
        queue.enqueue(["not a spec"])  # type: ignore[list-item]


def test_claim_complete_lifecycle(queue):
    spec = spec_for()
    queue.enqueue(spec)
    job = queue.claim("w1", lease_seconds=60)
    assert job is not None
    assert job.spec_id == spec.spec_id
    assert job.worker_id == "w1"
    assert job.attempts == 1
    assert job.build_spec() == spec
    # Queue drained: nothing else claimable while the lease is live.
    assert queue.claim("w2") is None
    assert queue.counts()["running"] == 1

    assert queue.complete(spec.spec_id, "w1") is True
    status = queue.job_status(spec.spec_id)
    assert status["status"] == "done"
    assert status["completions"] == 1
    # Completing twice, or as a non-owner, is refused.
    assert queue.complete(spec.spec_id, "w1") is False


def test_expired_lease_is_reclaimable(queue, clock):
    queue.enqueue(spec_for())
    job = queue.claim("w1", lease_seconds=30)
    assert queue.claim("w2") is None
    assert queue.claimable() == 0

    clock.advance(31)
    assert queue.claimable() == 1
    stolen = queue.claim("w2", lease_seconds=30)
    assert stolen is not None
    assert stolen.spec_id == job.spec_id
    assert stolen.attempts == 2
    # The dead worker's late completion is rejected; the new owner's lands.
    assert queue.complete(job.spec_id, "w1") is False
    assert queue.complete(job.spec_id, "w2") is True
    assert queue.job_status(job.spec_id)["completions"] == 1


def test_heartbeat_extends_lease(queue, clock):
    queue.enqueue(spec_for())
    job = queue.claim("w1", lease_seconds=30)
    clock.advance(25)
    assert queue.heartbeat(job.spec_id, "w1", lease_seconds=30) is True
    clock.advance(25)
    # 50s elapsed but the renewed lease is still live.
    assert queue.claim("w2") is None
    # A non-owner cannot renew.
    assert queue.heartbeat(job.spec_id, "w2") is False


def test_fail_returns_job_to_pending_then_parks(queue, clock):
    queue = WorkQueue(queue.store, clock=clock, max_attempts=2)
    queue.enqueue(spec_for())
    job = queue.claim("w1")
    assert queue.fail(job.spec_id, "w1", "boom") is True
    assert queue.job_status(job.spec_id)["status"] == "pending"

    job = queue.claim("w1")
    assert job.attempts == 2
    assert queue.fail(job.spec_id, "w1", "boom again") is True
    status = queue.job_status(job.spec_id)
    assert status["status"] == "failed"
    assert status["error"] == "boom again"
    assert queue.claim("w1") is None


def test_over_budget_job_is_parked_at_claim(queue, clock):
    queue = WorkQueue(queue.store, clock=clock, max_attempts=1)
    queue.enqueue([spec_for(), spec_for("torus")], name="pair")
    first = queue.claim("w1", lease_seconds=10)
    # Worker dies; the lease expires with the attempt budget already spent.
    clock.advance(11)
    second = queue.claim("w2", lease_seconds=10)
    # The dead job is parked as failed and the claim falls through to the
    # next runnable one instead of returning None.
    assert second is not None
    assert second.spec_id != first.spec_id
    assert queue.job_status(first.spec_id)["status"] == "failed"


def test_enqueue_revives_failed_jobs(queue, clock):
    queue = WorkQueue(queue.store, clock=clock, max_attempts=1)
    spec = spec_for()
    queue.enqueue(spec)
    job = queue.claim("w1")
    queue.fail(job.spec_id, "w1", "boom")
    assert queue.job_status(spec.spec_id)["status"] == "failed"

    report = queue.enqueue(spec)
    assert report.enqueued == 1
    status = queue.job_status(spec.spec_id)
    assert status["status"] == "pending"
    assert status["attempts"] == 0
    assert status["error"] is None


def test_campaign_status_tracks_progress(queue, store):
    campaign = Campaign(specs=[spec_for(), spec_for("torus")], name="c")
    report = queue.enqueue(campaign)
    status = queue.campaign_status(report.campaign_id)
    assert status["specs"] == 2
    assert status["stored"] == 0
    assert status["pending"] == 2
    assert status["complete"] is False

    job = queue.claim("w1")
    spec = job.build_spec()
    store.put(spec, prediction_to_dict(spec.run()))
    queue.complete(job.spec_id, "w1")
    status = queue.campaign_status(report.campaign_id)
    assert status["stored"] == 1
    assert status["done"] == 1
    assert status["complete"] is False

    with pytest.raises(ValidationError, match="unknown campaign"):
        queue.campaign_status("cmp-nope")


def test_claim_order_is_fifo(queue):
    specs = [spec_for(), spec_for("torus"), spec_for("ring")]
    queue.enqueue(specs, name="ordered")
    claimed = [queue.claim("w1").spec_id for _ in specs]
    assert claimed == [spec.spec_id for spec in specs]


def test_max_attempts_validation(store):
    with pytest.raises(ValidationError, match="max_attempts"):
        WorkQueue(store, max_attempts=0)
