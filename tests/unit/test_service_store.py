"""Unit tests of the content-addressed SQLite result store."""

from __future__ import annotations

import json

import pytest

from repro.experiments import ExperimentSpec
from repro.experiments.cache import DirectoryCache
from repro.experiments.serialization import (
    RESULT_SCHEMA_VERSION,
    prediction_to_dict,
)
from repro.service.store import STORE_SCHEMA_VERSION, ResultStore, StoreCache
from repro.utils.validation import ValidationError


def spec_for(topology: str = "mesh", **overrides) -> ExperimentSpec:
    kwargs = dict(topology=topology, rows=4, cols=4, traffic="uniform",
                  performance_mode="analytical")
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store.sqlite")


def test_put_get_roundtrip(store):
    spec = spec_for()
    payload = prediction_to_dict(spec.run())
    assert store.put(spec, payload) == spec.spec_id

    row = store.get(spec.spec_id)
    assert row is not None
    assert row.spec_id == spec.spec_id
    assert row.topology == "mesh"
    assert row.rows == 4 and row.cols == 4
    assert row.traffic == "uniform"
    assert row.workload is None and row.trace_id is None
    assert row.schema_version == RESULT_SCHEMA_VERSION
    assert row.result == payload
    assert row.build_spec() == spec
    # The decoded prediction reproduces the stored scalars exactly.
    assert prediction_to_dict(row.prediction()) == payload


def test_membership_len_and_delete(store):
    spec = spec_for()
    assert spec.spec_id not in store
    assert len(store) == 0
    store.put(spec, prediction_to_dict(spec.run()))
    assert spec.spec_id in store
    assert len(store) == 1
    assert store.delete(spec.spec_id) is True
    assert store.delete(spec.spec_id) is False
    assert len(store) == 0


def test_upsert_is_idempotent_and_preserves_search_id(store):
    spec = spec_for()
    payload = prediction_to_dict(spec.run())
    store.put(spec, payload, search_id="search-1")
    # A later write without a search_id must not erase the recorded one.
    store.put(spec, payload)
    row = store.get(spec.spec_id)
    assert row.search_id == "search-1"
    assert len(store) == 1
    # An explicit new search_id wins.
    store.put(spec, payload, search_id="search-2")
    assert store.get(spec.spec_id).search_id == "search-2"


def test_put_rejects_malformed_payload(store):
    spec = spec_for()
    with pytest.raises(ValidationError):
        store.put(spec, {"not": "a result"})
    assert len(store) == 0


def test_query_filters_and_order(store):
    specs = [spec_for(), spec_for("torus"), spec_for(scenario="a")]
    for spec in specs:
        store.put(spec, prediction_to_dict(spec.run()))

    assert store.spec_ids() == [spec.spec_id for spec in specs]
    assert [r.spec_id for r in store.query()] == store.spec_ids()
    assert [r.topology for r in store.query(topology="torus")] == ["torus"]
    assert [r.scenario for r in store.query(scenario="a")] == ["a"]
    assert len(store.query(topology="mesh")) == 2
    assert len(store.query(topology="mesh", limit=1)) == 1
    assert store.query(topology="ring") == []


def test_result_set_is_fully_cached(store):
    spec = spec_for()
    store.put(spec, prediction_to_dict(spec.run()))
    results = store.result_set(topology="mesh")
    assert len(results) == 1
    assert results.num_cached == 1
    record = results.to_records()[0]
    assert record["topology"] == "mesh"
    assert record["cached"] is True


def test_stats_shape(store):
    spec = spec_for()
    store.put(spec, prediction_to_dict(spec.run()), search_id="s-1")
    stats = store.stats()
    assert stats["results"] == 1
    assert stats["store_schema_version"] == STORE_SCHEMA_VERSION
    assert stats["by_topology"] == {"mesh": 1}
    assert stats["by_workload"] == {"(synthetic)": 1}
    assert stats["searches"] == 1
    assert stats["size_bytes"] > 0


def test_rejects_in_memory_database():
    with pytest.raises(ValidationError, match="in-memory"):
        ResultStore(":memory:")


def test_rejects_newer_schema_version(tmp_path):
    path = tmp_path / "future.sqlite"
    store = ResultStore(path)
    import sqlite3

    with sqlite3.connect(path) as conn:
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'store_schema_version'",
            (str(STORE_SCHEMA_VERSION + 1),),
        )
    with pytest.raises(ValidationError, match="newer"):
        ResultStore(path)
    del store


def test_store_cache_backend_roundtrip(store):
    cache = StoreCache(store, search_id="s-9")
    spec = spec_for()
    assert cache.load(spec) is None
    prediction = spec.run()
    cache.save(spec, prediction)
    loaded = cache.load(spec)
    assert loaded is not None
    assert prediction_to_dict(loaded) == prediction_to_dict(prediction)
    assert store.get(spec.spec_id).search_id == "s-9"


def test_import_cache_dir_validates_entries(store, tmp_path):
    cache_dir = tmp_path / "cache"
    cache = DirectoryCache(cache_dir)
    spec = spec_for()
    cache.save(spec, spec.run())

    # Truncated file, junk JSON, and a renamed (hash-mismatched) entry.
    (cache_dir / "exp-truncated.json").write_text('{"spec": {"topo')
    (cache_dir / "exp-junk.json").write_text('[1, 2, 3]')
    renamed = cache_dir / "exp-0000000000000000.json"
    renamed.write_text(cache.path_for(spec).read_text())

    report = store.import_cache_dir(cache_dir)
    assert report.imported == 1
    assert report.already_present == 0
    assert sorted(name for name, _ in report.invalid) == [
        "exp-0000000000000000.json",
        "exp-junk.json",
        "exp-truncated.json",
    ]
    assert report.total == 4
    assert spec.spec_id in store

    # Importing again refreshes rather than duplicating.
    again = store.import_cache_dir(cache_dir)
    assert again.imported == 0
    assert again.already_present == 1
    assert len(store) == 1


def test_import_cache_dir_missing_directory(store, tmp_path):
    with pytest.raises(ValidationError, match="does not exist"):
        store.import_cache_dir(tmp_path / "nope")
