"""Batched simulation: ``BatchSimulator``/``run_batch`` vs sequential runs.

The vec engine's batch axis fuses many (seed, load-point) runs of one
compiled network into a single kernel.  Batching must be *purely* a
scheduling change: every lane's :class:`SimulationStats` must be identical,
field for field, to the same configuration run alone — through the vec
engine and therefore (by the differential suite) through every engine.
These tests pin that contract, the sweep fast paths that rely on it, and
the batch-construction validation.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.simulator.batch import BatchSimulator
from repro.simulator.network import build_network
from repro.simulator.simulation import SimulationConfig, Simulator
from repro.simulator.sweep import (
    find_saturation_throughput,
    replay_trace,
    run_batch,
    run_load_sweep,
)
from repro.topologies.mesh import MeshTopology
from repro.topologies.torus import TorusTopology
from repro.utils.validation import ValidationError
from repro.workloads import make_workload_trace


def _stats_dict(stats):
    return dataclasses.asdict(stats)


def _config(**overrides):
    base = dict(
        injection_rate=0.08,
        warmup_cycles=40,
        measurement_cycles=120,
        drain_max_cycles=600,
        num_vcs=4,
        buffer_depth_flits=2,
        seed=7,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def test_batched_lanes_match_sequential_runs():
    # Mixed rates x seeds x traffic in one batch: every lane must equal its
    # solo vec run (and, transitively, its solo run under any engine).
    topology = MeshTopology(4, 4)
    configs = [
        _config(injection_rate=rate, seed=seed, traffic=traffic)
        for rate, seed, traffic in [
            (0.02, 1, "uniform"),
            (0.10, 2, "transpose"),
            (0.30, 3, "uniform"),
            (0.10, 2, "tornado"),
        ]
    ]
    batched = BatchSimulator(topology, configs).run()
    assert len(batched) == len(configs)
    for config, stats in zip(configs, batched):
        solo = Simulator(topology, dataclasses.replace(config, engine="vec")).run()
        assert _stats_dict(stats) == _stats_dict(solo), f"lane {config} diverged"


def test_batched_lanes_match_reference_engine():
    topology = TorusTopology(3, 3)
    configs = [_config(injection_rate=r, seed=s) for r, s in [(0.05, 1), (0.2, 9)]]
    batched = run_batch(topology, configs)
    for config, stats in zip(configs, batched):
        solo = Simulator(topology, dataclasses.replace(config, engine="reference")).run()
        assert _stats_dict(stats) == _stats_dict(solo)


def test_batch_mixes_trace_and_synthetic_lanes():
    topology = MeshTopology(4, 4)
    trace = make_workload_trace(
        "stencil2d", 4, 4, seed=5, iterations=2, iteration_window=20
    )
    replay_config = SimulationConfig(
        num_vcs=4, buffer_depth_flits=2, drain_max_cycles=2000, seed=1
    )
    synth_config = _config(injection_rate=0.06, seed=11)
    batched = run_batch(
        topology,
        [replay_config, synth_config],
        traces=[trace, None],
    )
    solo_replay = replay_trace(
        topology, trace, config=dataclasses.replace(replay_config, engine="vec")
    )
    solo_synth = Simulator(
        topology, dataclasses.replace(synth_config, engine="vec")
    ).run()
    assert _stats_dict(batched[0]) == _stats_dict(solo_replay)
    assert _stats_dict(batched[1]) == _stats_dict(solo_synth)
    # The trace lane carries per-phase statistics through the batch too.
    assert batched[0].phases


def test_batch_ignores_lane_engine_field():
    # The fused kernel is the vec engine; lanes asking for other (bit-
    # identical) engines are batched anyway.
    topology = MeshTopology(3, 3)
    configs = [_config(engine="reference"), _config(engine="soa", seed=8)]
    batch = BatchSimulator(topology, configs)
    assert all(sim.config.engine == "vec" for sim in batch.simulators)
    batched = batch.run()
    for config, stats in zip(configs, batched):
        assert _stats_dict(stats) == _stats_dict(Simulator(topology, config).run())


def test_batch_shares_prebuilt_network():
    topology = MeshTopology(3, 3)
    config = _config()
    network = build_network(topology, config=config.network_config())
    batch = BatchSimulator(topology, [config, _config(seed=2)], network=network)
    assert batch.network is network
    assert all(sim.network is network for sim in batch.simulators)


def test_batch_rejects_empty_and_mismatched_inputs():
    topology = MeshTopology(3, 3)
    with pytest.raises(ValidationError):
        BatchSimulator(topology, [])
    with pytest.raises(ValidationError, match="router/network parameters"):
        BatchSimulator(topology, [_config(num_vcs=4), _config(num_vcs=2)])
    with pytest.raises(ValidationError, match="parallel"):
        BatchSimulator(topology, [_config()], traces=[None, None])


def test_run_load_sweep_vec_fast_path_matches_sequential():
    topology = MeshTopology(4, 4)
    rates = [0.02, 0.08, 0.14]
    base = _config()
    sequential = run_load_sweep(
        topology, rates, config=dataclasses.replace(base, engine="reference")
    )
    batched = run_load_sweep(
        topology, rates, config=dataclasses.replace(base, engine="vec")
    )
    assert [rate for rate, _ in batched] == rates
    for (rate_a, stats_a), (rate_b, stats_b) in zip(sequential, batched):
        assert rate_a == rate_b
        assert _stats_dict(stats_a) == _stats_dict(stats_b)


def test_find_saturation_vec_fast_path_matches_sequential():
    # The batched coarse stage trims to the points the sequential loop
    # visited, so the whole LoadSweepResult — saturation estimate, probe
    # latency and the points list — must be identical across engines.
    topology = MeshTopology(4, 4)
    base = _config(measurement_cycles=100, drain_max_cycles=400)
    sequential = find_saturation_throughput(
        topology,
        config=dataclasses.replace(base, engine="reference"),
        coarse_steps=4,
        refine_steps=2,
    )
    batched = find_saturation_throughput(
        topology,
        config=dataclasses.replace(base, engine="vec"),
        coarse_steps=4,
        refine_steps=2,
    )
    assert batched.saturation_throughput == sequential.saturation_throughput
    assert batched.zero_load_latency == sequential.zero_load_latency
    assert [rate for rate, _ in batched.points] == [
        rate for rate, _ in sequential.points
    ]
    for (_, stats_a), (_, stats_b) in zip(sequential.points, batched.points):
        assert _stats_dict(stats_a) == _stats_dict(stats_b)
