"""Edge-case tests for :mod:`repro.simulator.sweep`.

Covers the boundary behaviours the happy-path sweep tests skip: a network
that is already saturated at the probe load, a non-draining run that hits
``drain_max_cycles``, bisection-bracket collapse (zero refinement and the
exact halving of successive midpoints), and the network-sharing fast path
being behaviour-identical to per-run construction.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.simulator.network import build_network
from repro.simulator.routing_tables import build_routing_tables
from repro.simulator.simulation import SimulationConfig, Simulator
from repro.simulator.sweep import (
    find_saturation_throughput,
    measure_zero_load_latency,
    run_load_sweep,
)
from repro.topologies.mesh import MeshTopology
from repro.topologies.ring import RingTopology


class TestSaturatedAtProbeLoad:
    # 40-cycle links push the network latency past the measurement window;
    # with a zero drain budget, measured packets are then always still in
    # flight when the run is cut off, so every sweep point — including the
    # probe load — counts as saturated.
    CONFIG = SimulationConfig(
        warmup_cycles=50,
        measurement_cycles=100,
        drain_max_cycles=0,
        packet_size_flits=2,
        num_vcs=2,
        buffer_depth_flits=2,
        seed=6,
    )

    @staticmethod
    def _slow_links(topology):
        return {link: 40 for link in topology.links}

    def test_saturation_collapses_to_probe_rate(self):
        # The bracket degenerates to the probe load; the sweep must report
        # the probe rate, not crash or report zero.
        topology = MeshTopology(3, 3)
        result = find_saturation_throughput(
            topology,
            self.CONFIG,
            link_latencies=self._slow_links(topology),
            coarse_steps=3,
            refine_steps=2,
        )
        assert result.saturation_throughput == pytest.approx(0.01)
        # The probe point itself is saturated, so the sweep returns the
        # degenerate bracket immediately — no coarse or refine points.
        assert len(result.points) == 1
        assert all(not stats.drained for _, stats in result.points)

    def test_saturated_probe_never_reports_more_than_probe_rate(self):
        # Regression: before the probe-point check, ``lo`` was seeded to the
        # probe rate without ever testing it, so bisection against noisy
        # midpoints could raise the reported saturation throughput above any
        # load the network was shown to sustain.  With a saturated probe the
        # result must be exactly the probe rate, for any refinement depth.
        topology = MeshTopology(3, 3)
        for refine_steps in (0, 1, 5):
            result = find_saturation_throughput(
                topology,
                self.CONFIG,
                link_latencies=self._slow_links(topology),
                coarse_steps=4,
                refine_steps=refine_steps,
            )
            assert result.saturation_throughput == pytest.approx(0.01)
            assert [rate for rate, _ in result.points] == [0.01]
            # Golden value for this fixed-seed scenario (seed 6, 3x3 mesh,
            # 40-cycle links): packets that did arrive before the cutoff.
            assert result.zero_load_latency == 45.0

    def test_zero_load_latency_still_reported(self):
        topology = MeshTopology(3, 3)
        result = find_saturation_throughput(
            topology,
            self.CONFIG,
            link_latencies=self._slow_links(topology),
            coarse_steps=3,
            refine_steps=1,
        )
        assert result.zero_load_latency > 0


class TestNonDrainingRun:
    def test_run_stops_exactly_at_drain_limit(self):
        # A ring at 60% offered load is far beyond saturation: the measured
        # packets never fully drain, so the kernel must stop at the hard
        # cycle limit and flag the run as not drained.
        config = SimulationConfig(
            injection_rate=0.6,
            warmup_cycles=50,
            measurement_cycles=150,
            drain_max_cycles=200,
            packet_size_flits=2,
            num_vcs=2,
            buffer_depth_flits=2,
            seed=2,
        )
        simulator = Simulator(RingTopology(4, 4), config)
        stats = simulator.run()
        assert not stats.drained
        assert simulator.cycles_simulated == (
            config.warmup_cycles + config.measurement_cycles + config.drain_max_cycles
        )

    def test_non_draining_point_counts_as_saturated(self):
        config = SimulationConfig(
            injection_rate=0.6,
            warmup_cycles=50,
            measurement_cycles=150,
            drain_max_cycles=200,
            packet_size_flits=2,
            num_vcs=2,
            buffer_depth_flits=2,
            seed=2,
        )
        stats = Simulator(RingTopology(4, 4), config).run()
        assert stats.saturated


class TestBisectionBracket:
    CONFIG = SimulationConfig(
        warmup_cycles=100,
        measurement_cycles=200,
        drain_max_cycles=800,
        packet_size_flits=2,
        num_vcs=2,
        buffer_depth_flits=2,
        seed=4,
    )

    def _coarse_bracket(self, result):
        """Reconstruct the coarse bracket [last good, first saturated]."""
        rates = [rate for rate, _ in result.points]
        # The refine points are those after the first saturated coarse rate;
        # the bracket endpoints are the two rates around the break.
        return rates

    def test_zero_refine_steps_returns_coarse_bracket_low(self):
        # With the bracket never refined, the estimate collapses to the last
        # coarse rate that did not saturate.
        result = find_saturation_throughput(
            RingTopology(4, 4), self.CONFIG, coarse_steps=4, refine_steps=0
        )
        rates = [rate for rate, _ in result.points]
        assert result.saturation_throughput in rates
        # No refinement points beyond probe + coarse sweep.
        assert len(rates) <= 1 + 4

    def test_successive_bisection_midpoints_halve(self):
        # Each refinement step bisects the current bracket, so the distance
        # between successive midpoints halves exactly, whatever the outcome
        # of each probe.  This pins the bracket-collapse arithmetic.
        refine_steps = 4
        result = find_saturation_throughput(
            RingTopology(4, 4), self.CONFIG, coarse_steps=4, refine_steps=refine_steps
        )
        rates = [rate for rate, _ in result.points]
        mids = rates[-refine_steps:]
        assert len(mids) == refine_steps
        gaps = [abs(b - a) for a, b in zip(mids[:-1], mids[1:])]
        for wider, narrower in zip(gaps[:-1], gaps[1:]):
            assert narrower == pytest.approx(wider / 2.0)

    def test_estimate_stays_within_coarse_bracket(self):
        coarse = find_saturation_throughput(
            RingTopology(4, 4), self.CONFIG, coarse_steps=4, refine_steps=0
        )
        refined = find_saturation_throughput(
            RingTopology(4, 4), self.CONFIG, coarse_steps=4, refine_steps=5
        )
        lo = coarse.saturation_throughput
        saturated_rates = [
            rate
            for rate, stats in coarse.points
            if rate > lo
        ]
        hi = min(saturated_rates) if saturated_rates else 1.0
        assert lo <= refined.saturation_throughput < hi

    def test_rejects_too_few_coarse_steps(self):
        from repro.utils.validation import ValidationError

        with pytest.raises(ValidationError):
            find_saturation_throughput(RingTopology(4, 4), self.CONFIG, coarse_steps=1)


class TestNetworkSharing:
    def test_shared_network_is_behaviour_identical(self):
        # The sweep's network-sharing fast path must not change any result:
        # simulate the same config with a per-run network and with an
        # explicitly shared prebuilt network and compare every stats field.
        topology = MeshTopology(4, 4)
        config = SimulationConfig(
            injection_rate=0.08,
            warmup_cycles=100,
            measurement_cycles=200,
            drain_max_cycles=1000,
            packet_size_flits=2,
            num_vcs=4,
            buffer_depth_flits=2,
            seed=13,
        )
        per_run = Simulator(topology, config).run()
        routing = build_routing_tables(topology)
        shared = build_network(topology, config=config.network_config(), routing=routing)
        first = Simulator(topology, config, network=shared).run()
        second = Simulator(topology, config, network=shared).run()
        assert dataclasses.asdict(per_run) == dataclasses.asdict(first)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_mismatched_network_config_rejected(self):
        from repro.utils.validation import ValidationError

        topology = MeshTopology(3, 3)
        network = build_network(topology)  # default NetworkConfig: 8 VCs
        config = SimulationConfig(num_vcs=2)
        with pytest.raises(ValidationError):
            Simulator(topology, config, network=network)

    def test_sweep_helpers_accept_prebuilt_network(self):
        topology = MeshTopology(3, 3)
        config = SimulationConfig(
            warmup_cycles=50,
            measurement_cycles=100,
            drain_max_cycles=500,
            packet_size_flits=2,
            num_vcs=2,
            buffer_depth_flits=2,
            seed=8,
        )
        routing = build_routing_tables(topology)
        network = build_network(topology, config=config.network_config(), routing=routing)
        stats = measure_zero_load_latency(topology, config, network=network)
        assert stats.average_packet_latency > 0
        points = run_load_sweep(topology, [0.02, 0.05], config=config, network=network)
        assert [rate for rate, _ in points] == [0.02, 0.05]
