"""The sanitizer engine: bit-identical statistics, and real violation power.

The golden tests and the cross-engine differential sweep already run the
sanitizer (they parametrize over ``available_engines()``), proving the
invariants *hold* on healthy runs.  These tests prove the other half: each
invariant check actually **fires** when the corresponding state corruption
is injected mid-run — a sanitizer that never fails is indistinguishable
from one that checks nothing.

Corruption is injected by wrapping the engine's end-of-cycle hook: the
wrapper corrupts the state at a chosen cycle and then runs the normal
audit, exactly the code path a real kernel bug would hit.
"""

from __future__ import annotations

import pytest

from repro.simulator.engine import ENGINE_FACTORIES, make_engine
from repro.simulator.engine.sanitizer import SanitizerEngine, SanitizerError
from repro.simulator.network import build_network
from repro.simulator.router import INJECT_PORT
from repro.simulator.simulation import SimulationConfig, Simulator
from repro.topologies.mesh import MeshTopology
from repro.workloads import make_workload_trace

_SIM = dict(
    injection_rate=0.15,
    warmup_cycles=100,
    measurement_cycles=300,
    drain_max_cycles=1500,
)


def _sanitizer(config=None, trace=None):
    topology = MeshTopology(4, 4)
    config = config or SimulationConfig(engine="sanitizer", **_SIM)
    network = build_network(topology, config=config.network_config())
    return make_engine("sanitizer", topology, config, network, trace=trace)


def _run_with_corruption(engine, cycle, corrupt):
    """Install ``corrupt`` to run just before the audit at ``cycle``."""
    audit = engine._cycle_end_hook

    def hook():
        if engine._cycle == cycle:
            corrupt()
        audit()

    engine._cycle_end_hook = hook
    return engine.run()


def test_registered_and_subclasses_reference():
    assert ENGINE_FACTORIES["sanitizer"] is SanitizerEngine
    assert SanitizerEngine.name == "sanitizer"


def test_bit_identical_to_reference_synthetic():
    topology = MeshTopology(4, 4)
    reference = Simulator(
        topology, SimulationConfig(engine="reference", **_SIM)
    ).run()
    sanitized = Simulator(
        topology, SimulationConfig(engine="sanitizer", **_SIM)
    ).run()
    assert sanitized == reference


def test_audit_interval_sampling_is_bit_identical():
    topology = MeshTopology(4, 4)
    reference = Simulator(
        topology, SimulationConfig(engine="reference", **_SIM)
    ).run()
    sampled = Simulator(
        topology, SimulationConfig(engine="sanitizer", audit_interval=7, **_SIM)
    ).run()
    # The audit only reads state, so any sampling period leaves the
    # statistics bit-identical to every other engine.
    assert sampled == reference


def test_audit_interval_samples_the_audit():
    config = SimulationConfig(engine="sanitizer", audit_interval=10, **_SIM)
    engine = _sanitizer(config=config)
    audits = 0
    real_audit = engine._check_invariants

    def counting_audit():
        nonlocal audits
        audits += 1
        real_audit()

    engine._check_invariants = counting_audit
    engine.run()
    total = engine._cycle
    # One audit per interval (± the partial last window), not one per cycle.
    assert audits <= total // 10 + 1
    assert audits > 0


def test_audit_interval_validated():
    with pytest.raises(Exception, match="audit_interval"):
        SimulationConfig(engine="sanitizer", audit_interval=0)


def test_bit_identical_to_reference_trace_replay():
    topology = MeshTopology(4, 4)
    trace = make_workload_trace("dnn_inference", 4, 4, seed=5)
    reference = Simulator(
        topology, SimulationConfig(engine="reference", **_SIM), trace=trace
    ).run()
    sanitized = Simulator(
        topology, SimulationConfig(engine="sanitizer", **_SIM), trace=trace
    ).run()
    assert sanitized == reference
    assert sanitized.packets_delivered == trace.num_packets


def test_clean_trace_replay_passes_every_cycle():
    trace = make_workload_trace("mpi_collective", 4, 4)
    engine = _sanitizer(trace=trace)
    stats = engine.run()  # no SanitizerError
    assert stats.drained


def test_detects_leaked_credit():
    engine = _sanitizer()

    def corrupt():
        router = engine.routers[0]
        router.credits[router.output_channels[0]][0] += 1

    with pytest.raises(SanitizerError, match=r"cycle 50, channel .*credits"):
        _run_with_corruption(engine, 50, corrupt)


def test_detects_lost_credit():
    engine = _sanitizer()

    def corrupt():
        router = engine.routers[5]
        router.credits[router.output_channels[0]][1] -= 1

    with pytest.raises(SanitizerError, match="credit"):
        _run_with_corruption(engine, 80, corrupt)


def test_detects_buffered_count_drift():
    engine = _sanitizer()

    def corrupt():
        engine.routers[3].buffered_count += 1

    with pytest.raises(SanitizerError, match="buffered_count"):
        _run_with_corruption(engine, 60, corrupt)


def test_detects_occupied_vc_overwrite():
    engine = _sanitizer()

    def corrupt():
        # Claim an output VC for an input VC that does not hold it.
        router = engine.routers[2]
        channel = router.output_channels[0]
        router.out_alloc[channel][1] = (INJECT_PORT, 0)
        state = router.inputs[INJECT_PORT][0]
        if (state.out_channel, state.out_vc) == (channel, 1):
            # The chosen input VC happened to hold exactly this allocation;
            # skew the VC so the audit sees the mismatch either way.
            router.out_alloc[channel][1] = (INJECT_PORT, 1)

    with pytest.raises(SanitizerError, match="allocat"):
        _run_with_corruption(engine, 70, corrupt)


def test_detects_flit_conservation_break():
    engine = _sanitizer()

    def corrupt():
        engine._audit_created_flits += 1  # one flit vanished

    with pytest.raises(SanitizerError, match="flit conservation"):
        _run_with_corruption(engine, 40, corrupt)


def test_detects_buffer_overflow():
    # Force a buffer past its depth by replaying a buffered flit entry;
    # also fix buffered_count so the overflow check (not the count check)
    # is what fires.
    engine = _sanitizer()

    def corrupt():
        for router in engine.routers:
            for key in router.input_keys:
                for state in router.inputs[key]:
                    if state.buffer:
                        for _ in range(engine.config.buffer_depth_flits):
                            state.buffer.append(state.buffer[0])
                            router.buffered_count += 1
                        return

    with pytest.raises(SanitizerError, match="depth"):
        _run_with_corruption(engine, 90, corrupt)


def test_detects_nonmonotone_timestamps():
    engine = _sanitizer()
    original_eject = engine._eject
    state = {"armed": True}

    def poisoned_eject(flit, cycle, in_measurement_window):
        if state["armed"] and flit.is_tail:
            state["armed"] = False
            flit.packet.injection_cycle = cycle + 1  # arrives before injection
        original_eject(flit, cycle, in_measurement_window)

    engine._eject = poisoned_eject
    # Rebind the per-phase ejection callbacks that captured _eject.
    engine._eject_measured = lambda flit, cycle: poisoned_eject(flit, cycle, True)
    engine._eject_unmeasured = lambda flit, cycle: poisoned_eject(flit, cycle, False)
    with pytest.raises(SanitizerError, match="monotone|injection cycle"):
        engine.run()


def test_error_message_carries_context():
    engine = _sanitizer()

    def corrupt():
        router = engine.routers[7]
        router.credits[router.output_channels[0]][0] += 2

    with pytest.raises(SanitizerError) as excinfo:
        _run_with_corruption(engine, 123, corrupt)
    message = str(excinfo.value)
    assert "[sanitizer]" in message
    assert "cycle 123" in message
    assert "VC 0" in message
