"""Unit tests of the traffic-pattern registry."""

from __future__ import annotations

import pytest

from repro.simulator.simulation import SimulationConfig
from repro.simulator.traffic import (
    TRAFFIC_FACTORIES,
    HotspotTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
    available_traffic_patterns,
    make_traffic,
    make_traffic_pattern,
)
from repro.toolchain.analytical import analytical_performance
from repro.topologies.mesh import MeshTopology
from repro.utils.validation import ValidationError


def test_registry_enumerates_all_patterns():
    assert available_traffic_patterns() == sorted(TRAFFIC_FACTORIES)
    assert {"uniform", "transpose", "bit_complement", "tornado", "neighbor", "hotspot"} == set(
        TRAFFIC_FACTORIES
    )


def test_pattern_names_match_registry_keys():
    # Every built-in pattern reports exactly its registry key as its name, so
    # reports and registry lookups never disagree on the pattern identity.
    for key in TRAFFIC_FACTORIES:
        pattern = make_traffic(key, 16, 4, 4)
        assert pattern.name == key, (
            f"pattern registered as {key!r} reports name {pattern.name!r}"
        )


def test_make_traffic_builds_patterns():
    assert isinstance(make_traffic("uniform", 16, 4, 4), UniformRandomTraffic)
    transpose = make_traffic("transpose", 16, 4, 4)
    assert isinstance(transpose, TransposeTraffic)
    assert transpose.rows == 4 and transpose.cols == 4
    hotspot = make_traffic("hotspot", 16, 4, 4, hotspots=(3, 5), hotspot_fraction=0.5)
    assert isinstance(hotspot, HotspotTraffic)
    assert hotspot.hotspots == (3, 5)


def test_make_traffic_unknown_name():
    with pytest.raises(ValidationError, match="unknown traffic pattern 'bogus'"):
        make_traffic("bogus", 16, 4, 4)


def test_make_traffic_pattern_delegates_to_registry():
    pattern = make_traffic_pattern("transpose", MeshTopology(4, 4))
    assert isinstance(pattern, TransposeTraffic)
    with pytest.raises(ValidationError, match="unknown traffic pattern"):
        make_traffic_pattern("nonsense", MeshTopology(4, 4))


def test_simulation_config_validates_traffic_name():
    SimulationConfig(traffic="tornado")  # valid names construct fine
    with pytest.raises(ValidationError, match="unknown traffic pattern"):
        SimulationConfig(traffic="freeway")


def test_analytical_performance_validates_traffic_name():
    with pytest.raises(ValidationError, match="unknown traffic pattern"):
        analytical_performance(MeshTopology(4, 4), traffic="gridlock")
