"""Unit tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)


class TestCheckType:
    def test_accepts_matching_type(self):
        check_type("x", 3, int)
        check_type("x", "hello", str)
        check_type("x", 2.5, (int, float))

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="x must be int"):
            check_type("x", "3", int)

    def test_rejects_bool_where_int_expected(self):
        with pytest.raises(ValidationError, match="bool"):
            check_type("count", True, int)

    def test_rejects_bool_where_number_expected(self):
        with pytest.raises(ValidationError):
            check_type("rate", False, (int, float))

    def test_error_message_contains_value(self):
        with pytest.raises(ValidationError, match="'abc'"):
            check_type("name_of_param", "abc", int)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)


class TestCheckPositive:
    def test_accepts_positive_int_and_float(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive("x", -5)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_positive("x", "1")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)

    def test_accepts_positive(self):
        check_non_negative("x", 17.5)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative("x", -0.001)


class TestCheckInRange:
    def test_accepts_bounds_inclusive(self):
        check_in_range("x", 0.0, 0.0, 1.0)
        check_in_range("x", 1.0, 0.0, 1.0)
        check_in_range("x", 0.5, 0.0, 1.0)

    def test_rejects_outside_range(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 1.01, 0.0, 1.0)
        with pytest.raises(ValidationError):
            check_in_range("x", -0.01, 0.0, 1.0)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_in_range("x", None, 0.0, 1.0)
