"""The static routing verifier: every registered topology proves clean,
and injected routing corruption is detected with a concrete witness.

Two halves:

* **Positive, exhaustive**: every registered topology family at 4x4 and 8x8
  (SlimNoC at its applicable grids, since ``R*C = 2*q^2`` excludes square
  power-of-two grids) passes every check — escape-CDG acyclicity, full
  reachability of both layers, hop-minimality of the minimal layer, and
  config sanity.  This is the repo's Duato deadlock-freedom proof.
* **Negative, mutational**: corrupting a verified network's compiled escape
  table (a two-channel ping-pong cycle, an ejection black hole) must be
  reported with the right rule and a concrete witness — the verifier is only
  trustworthy if it actually fails on broken tables.
"""

from __future__ import annotations

import pytest

from repro.simulator.network import NetworkConfig, build_network
from repro.topologies.registry import (
    available_topologies,
    is_applicable,
    make_topology,
)
from repro.verify import (
    LAYERS,
    channel_dependency_graph,
    find_cycle,
    verify_network,
    verify_topologies,
    verify_topology,
)
from repro.verify.static import _config_violations

#: (family, rows, cols) for every registered family at both target grids;
#: families inapplicable at a grid (slimnoc everywhere square-power-of-two,
#: hypercube nowhere here) are replaced by their nearest applicable grid.
_CASES = []
for _family in available_topologies():
    _grids = [grid for grid in ((4, 4), (8, 8)) if is_applicable(_family, *grid)]
    if not _grids:
        # SlimNoC: R*C = 2*q^2 for a prime power q -> 3x6 (q=3), 5x10 (q=5).
        _grids = [
            grid for grid in ((3, 6), (5, 10)) if is_applicable(_family, *grid)
        ]
    assert _grids, f"no applicable test grid for {_family!r}"
    _CASES.extend((_family, rows, cols) for rows, cols in _grids)


@pytest.mark.parametrize(
    "family,rows,cols",
    _CASES,
    ids=[f"{family}-{rows}x{cols}" for family, rows, cols in _CASES],
)
def test_every_registered_topology_verifies(family, rows, cols):
    report = verify_topology(make_topology(family, rows, cols))
    assert report.ok, report.summary()
    assert report.num_nodes == rows * cols
    # The escape layer is a spanning-tree up*/down* scheme: its CDG must not
    # only be acyclic but non-trivial (there ARE dependencies to check).
    assert report.escape_cdg_edges > 0
    assert report.violations == []


def test_verify_topologies_maps_names_to_reports():
    items = [(name, make_topology(name, 4, 4)) for name in ("mesh", "torus")]
    reports = verify_topologies(items)
    assert set(reports) == {"mesh", "torus"}
    assert all(report.ok for report in reports.values())


def test_ring_minimal_layer_is_cyclic_but_not_a_violation():
    # The wrap-around minimal routes of a ring form dependency cycles —
    # that is exactly why Duato's escape layer exists.  The verifier must
    # record this as a stat, not a violation.
    report = verify_topology(make_topology("ring", 4, 4))
    assert report.ok
    assert report.minimal_cdg_cyclic
    mesh = verify_topology(make_topology("mesh", 4, 4))
    assert report.ok and not mesh.minimal_cdg_cyclic


# --------------------------------------------------------------- CDG unit
def test_find_cycle_on_known_graphs():
    assert find_cycle({0: {1}, 1: {2}, 2: set()}) is None
    graph = {0: {1}, 1: {2}, 2: {0}}
    witness = find_cycle(graph)
    assert witness is not None
    # The witness is a cycle: consecutive entries are edges, and the last
    # node closes back to the first.
    for a, b in zip(witness, witness[1:]):
        assert b in graph[a]
    assert witness[0] in graph[witness[-1]]
    # Self-loops are cycles too.
    assert find_cycle({0: {0}}) == [0]


def test_channel_dependency_graph_covers_all_channels():
    network = build_network(make_topology("mesh", 3, 3))
    for layer in LAYERS:
        graph = channel_dependency_graph(network, layer)
        assert set(graph) == set(range(len(network.channels)))


# --------------------------------------------------------------- mutations
def _corrupt_escape_pingpong(network):
    """Make nodes 0 and 1 bounce escape traffic for the farthest destination.

    Creates the CDG 2-cycle ``(0->1) -> (1->0) -> (0->1)`` and a routing
    loop, so both the acyclicity and the reachability check have something
    to find.
    """
    _, escape = network.compiled_routes()
    dst = network.num_nodes - 1
    escape[0][dst] = network.channel_ids[(0, 1)]
    escape[1][dst] = network.channel_ids[(1, 0)]


def test_injected_escape_cycle_is_reported_with_witness():
    network = build_network(make_topology("mesh", 4, 4))
    assert verify_network(network).ok
    _corrupt_escape_pingpong(network)
    report = verify_network(network)
    assert not report.ok
    cycles = [v for v in report.violations if v.rule == "escape-cdg-cycle"]
    assert cycles, report.summary()
    witness = cycles[0].witness
    # The witness is the closed channel walk; the two corrupted channels
    # must both appear in it.
    channels = set(witness)
    assert (0, 1) in channels and (1, 0) in channels
    assert cycles[0].layer == "escape"
    assert "0" in cycles[0].message and "1" in cycles[0].message


def test_injected_escape_cycle_also_breaks_reachability():
    network = build_network(make_topology("mesh", 4, 4))
    _corrupt_escape_pingpong(network)
    report = verify_network(network)
    unreachable = [v for v in report.violations if v.rule == "unreachable"]
    assert unreachable
    assert all(v.layer == "escape" for v in unreachable)
    # Witnesses name the (source, destination) pair that cannot be routed.
    dst = network.num_nodes - 1
    assert any(v.witness[1] == dst for v in unreachable)


def _walk(table, channels, source, dst, limit):
    """Follow a compiled table from ``source`` to ``dst``; hops or None."""
    node, hops = source, 0
    while node != dst and hops <= limit:
        node = channels[table[node][dst]].destination
        hops += 1
    return hops if node == dst else None


def test_non_minimal_route_is_reported():
    network = build_network(make_topology("mesh", 4, 4))
    minimal, _ = network.compiled_routes()
    # Detour one (node, destination) entry through a different neighbour —
    # picked so the mutated table still converges (just longer), which
    # isolates the minimality check from the reachability check.
    dst = 0
    mutated = None
    for (u, v), cid in sorted(network.channel_ids.items()):
        if u == dst or cid == minimal[u][dst]:
            continue
        original = minimal[u][dst]
        direct = _walk(minimal, network.channels, u, dst, 64)
        minimal[u][dst] = cid
        hops = _walk(minimal, network.channels, u, dst, 64)
        if hops is not None and hops > direct:
            mutated = u
            break
        minimal[u][dst] = original
    assert mutated is not None, "no converging detour exists in a 4x4 mesh"

    report = verify_network(network)
    assert not report.ok
    offenders = [v for v in report.violations if v.rule == "non-minimal"]
    assert offenders
    assert all(v.layer == "minimal" for v in offenders)
    witnesses = {(v.witness[0], v.witness[1]) for v in offenders}
    assert (mutated, dst) in witnesses
    for violation in offenders:
        _, _, taken, shortest = violation.witness
        assert taken > shortest


def test_config_violations_are_reported():
    bad = NetworkConfig(num_vcs=1, buffer_depth_flits=1, router_pipeline_cycles=1)
    assert _config_violations(bad) == []  # minimal but legal

    class _Broken:
        # NetworkConfig validates at construction, so an intentionally
        # inconsistent stand-in exercises the verifier's own checks.
        num_vcs = 2
        escape_vc = 2  # out of range
        buffer_depth_flits = 0
        router_pipeline_cycles = 0

    violations = _config_violations(_Broken())
    rules = [violation.rule for violation in violations]
    assert rules.count("config") == len(rules) and len(rules) == 3


def test_report_json_round_trip():
    report = verify_topology(make_topology("ring", 4, 4))
    payload = report.to_dict()
    assert payload["ok"] is True
    assert payload["topology"] == "Ring"
    assert payload["violations"] == []
    assert payload["num_nodes"] == 16
    assert "OK" in report.summary()
