"""The determinism/consistency lint: the repo is clean, and the rules fire.

Half the value of a lint is that the tree it guards currently passes it —
``lint_tree``/``lint_registries`` over the real ``src/repro`` must return
nothing.  The other half is that each rule actually detects its target
pattern, including through import aliases (``import numpy as np``,
``from numpy.random import default_rng``), which a naive textual grep
would miss.
"""

from __future__ import annotations

import textwrap

from repro.verify.lint import (
    LintViolation,
    lint_file,
    lint_registries,
    lint_tree,
    run_lint,
)


def _lint_source(tmp_path, source, in_simulator=False, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_file(path, tmp_path, in_simulator)


# ------------------------------------------------------------ repo is clean
def test_repo_tree_is_clean():
    assert lint_tree() == []


def test_registries_are_consistent():
    assert lint_registries() == []


def test_run_lint_is_clean():
    assert run_lint() == []


# ------------------------------------------------------------- rules fire
def test_stdlib_global_rng_is_flagged(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        import random

        def roll():
            return random.randint(1, 6)
        """,
    )
    assert [v.rule for v in violations] == ["unseeded-global-rng"]
    assert violations[0].line == 5
    assert "random.randint" in violations[0].message


def test_numpy_global_rng_is_flagged_through_alias(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        import numpy as np

        def noise(n):
            np.random.seed(0)
            return np.random.rand(n)
        """,
    )
    assert [v.rule for v in violations] == [
        "unseeded-global-rng",
        "unseeded-global-rng",
    ]
    assert {v.line for v in violations} == {5, 6}


def test_from_import_alias_is_resolved(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        from numpy import random as npr

        def noise(n):
            return npr.standard_normal(n)
        """,
    )
    assert [v.rule for v in violations] == ["unseeded-global-rng"]


def test_unseeded_default_rng_is_flagged(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        from numpy.random import default_rng

        def fresh():
            return default_rng()
        """,
    )
    assert [v.rule for v in violations] == ["unseeded-default-rng"]


def test_seeded_default_rng_is_allowed(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        import numpy as np

        def rng(seed):
            return np.random.default_rng(seed)
        """,
    )
    assert violations == []


def test_rng_module_allowlist(tmp_path):
    # repro/utils/rng.py is the one sanctioned unseeded-entropy source.
    target = tmp_path / "repro" / "utils"
    target.mkdir(parents=True)
    path = target / "rng.py"
    path.write_text("import numpy as np\nfresh = lambda: np.random.default_rng()\n")
    assert lint_file(path, tmp_path, in_simulator=False) == []


def test_generator_method_calls_are_not_flagged(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        def draw(rng, n):
            return rng.random(n) + rng.integers(0, 2)
        """,
    )
    assert violations == []


def test_wall_clock_flagged_only_inside_simulator(tmp_path):
    source = """
        import time

        def stamp():
            return time.time()
        """
    assert _lint_source(tmp_path, source, in_simulator=False) == []
    violations = _lint_source(tmp_path, source, in_simulator=True)
    assert [v.rule for v in violations] == ["wall-clock-in-simulator"]
    assert "time.time" in violations[0].message


def test_datetime_now_flagged_inside_simulator(tmp_path):
    violations = _lint_source(
        tmp_path,
        """
        import datetime

        def stamp():
            return datetime.datetime.now()
        """,
        in_simulator=True,
    )
    assert [v.rule for v in violations] == ["wall-clock-in-simulator"]


def test_syntax_error_is_reported_not_raised(tmp_path):
    violations = _lint_source(tmp_path, "def broken(:\n")
    assert [v.rule for v in violations] == ["syntax-error"]


def test_violation_str_has_location_and_rule():
    violation = LintViolation("pkg/mod.py", 12, "some-rule", "it is wrong")
    assert str(violation) == "pkg/mod.py:12: [some-rule] it is wrong"
    file_level = LintViolation("pkg/mod.py", 0, "some-rule", "whole file")
    assert str(file_level).startswith("pkg/mod.py: ")
