"""Unit tests for the SlimNoC (MMS graph) topology."""

import pytest

from repro.topologies.slimnoc import SlimNoCTopology, slimnoc_applicable, slimnoc_q
from repro.utils.validation import ValidationError


class TestApplicability:
    def test_q_detection(self):
        assert slimnoc_q(50) == 5      # 2 * 5^2
        assert slimnoc_q(128) == 8     # 2 * 8^2
        assert slimnoc_q(162) == 9     # 2 * 9^2
        assert slimnoc_q(98) == 7      # 2 * 7^2

    def test_non_applicable_counts(self):
        assert slimnoc_q(64) is None
        assert slimnoc_q(100) is None
        assert slimnoc_q(72) is None   # 2*36, 6 not a prime power
        assert slimnoc_q(3) is None

    def test_applicable_grids(self):
        assert slimnoc_applicable(8, 16)    # 128 tiles (scenario c/d)
        assert slimnoc_applicable(5, 10)    # 50 tiles
        assert not slimnoc_applicable(8, 8)  # 64 tiles (scenario a/b)

    def test_construction_rejects_inapplicable(self):
        with pytest.raises(ValidationError):
            SlimNoCTopology(8, 8)


class TestStructure:
    @pytest.fixture(scope="class")
    def slim50(self) -> SlimNoCTopology:
        return SlimNoCTopology(5, 10)

    @pytest.fixture(scope="class")
    def slim128(self) -> SlimNoCTopology:
        return SlimNoCTopology(8, 16)

    def test_connected(self, slim50, slim128):
        assert slim50.is_connected()
        assert slim128.is_connected()

    def test_q_property(self, slim50, slim128):
        assert slim50.q == 5
        assert slim128.q == 8

    def test_low_diameter(self, slim50, slim128):
        # The exact MMS construction has diameter 2; our delta=0 variant may
        # reach 3 (documented in EXPERIMENTS.md), but never more.
        assert slim50.diameter() <= 3
        assert slim128.diameter() <= 3

    def test_delta_plus_one_has_diameter_two(self, slim50):
        # q = 5 is congruent to 1 mod 4: the exact MMS generator sets apply.
        assert slim50.diameter() == 2

    def test_radix_close_to_mms_formula(self, slim50, slim128):
        # Network radix of the MMS family is (3q - delta) / 2.
        for topo in (slim50, slim128):
            expected = topo.expected_radix()
            assert abs(topo.router_radix() - expected) <= topo.q // 2 + 1

    def test_regular_degree_within_parts(self, slim128):
        degrees = {slim128.degree(t) for t in slim128.tiles()}
        # The graph is close to regular: all degrees within a small band.
        assert max(degrees) - min(degrees) <= 2

    def test_inter_part_links_form_q_per_vertex(self, slim50):
        # Every vertex (0, x, y) has exactly q inter-part links (y = m*x + c has
        # exactly one solution c per slope m).
        q = slim50.q
        for x in range(q):
            for y in range(q):
                vertex = 0 * q * q + x * q + y
                inter = [n for n in slim50.neighbors(vertex) if n >= q * q]
                assert len(inter) == q

    def test_has_non_aligned_links(self, slim128):
        # SlimNoC violates the aligned-links criterion (Table I: AL = no).
        assert any(not slim128.link_is_aligned(l) for l in slim128.links)
