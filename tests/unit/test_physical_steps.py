"""Unit tests for the five steps of the physical model (tile, floorplan,
global routing, unit cells, detailed routing)."""

import pytest

from repro.core.sparse_hamming import SparseHammingGraph
from repro.physical.floorplan import PortSide, build_floorplan, preferred_port_side
from repro.physical.global_routing import global_route
from repro.physical.detailed_routing import detailed_route
from repro.physical.tile import estimate_tile_geometry
from repro.physical.unit_cells import discretize_chip
from repro.topologies.base import Link
from repro.topologies.mesh import MeshTopology
from repro.topologies.torus import TorusTopology
from repro.topologies.flattened_butterfly import FlattenedButterflyTopology
from repro.utils.validation import ValidationError


class TestTileGeometry:
    def test_tile_area_is_endpoint_plus_router(self, small_params):
        topo = MeshTopology(4, 4)
        geometry = estimate_tile_geometry(small_params, topo)
        assert geometry.tile_area_ge == pytest.approx(
            geometry.endpoint_area_ge + geometry.router_area_ge
        )
        assert geometry.router_area_fraction < 0.5

    def test_square_tiles_for_unit_aspect_ratio(self, small_params):
        geometry = estimate_tile_geometry(small_params, MeshTopology(4, 4))
        assert geometry.width_mm == pytest.approx(geometry.height_mm)
        assert geometry.width_mm * geometry.height_mm == pytest.approx(geometry.tile_area_mm2)

    def test_aspect_ratio_changes_shape_not_area(self, small_params):
        tall = small_params.scaled(tile_aspect_ratio=2.0)
        geometry = estimate_tile_geometry(tall, MeshTopology(4, 4))
        assert geometry.height_mm == pytest.approx(2 * geometry.width_mm)

    def test_higher_radix_topology_has_bigger_router(self, small_params):
        mesh = estimate_tile_geometry(small_params, MeshTopology(4, 4))
        butterfly = estimate_tile_geometry(small_params, FlattenedButterflyTopology(4, 4))
        assert butterfly.router_area_ge > mesh.router_area_ge
        assert butterfly.router_ports == 7


class TestFloorplan:
    def test_every_link_has_two_ports(self, small_params):
        topo = SparseHammingGraph(4, 4, s_r={2}, s_c={3})
        floorplan = build_floorplan(topo, estimate_tile_geometry(small_params, topo))
        assert len(floorplan.ports) == 2 * topo.num_links
        for link in topo.links:
            assert floorplan.port(link.src, link).side in PortSide
            assert floorplan.port(link.dst, link).side in PortSide

    def test_port_side_follows_link_direction(self):
        topo = MeshTopology(3, 3)
        # Tile 4 is the centre; its east neighbour is 5, west 3, north 1, south 7.
        assert preferred_port_side(topo, 4, Link(4, 5)) is PortSide.EAST
        assert preferred_port_side(topo, 4, Link(3, 4)) is PortSide.WEST
        assert preferred_port_side(topo, 4, Link(1, 4)) is PortSide.NORTH
        assert preferred_port_side(topo, 4, Link(4, 7)) is PortSide.SOUTH

    def test_port_offsets_within_face_are_distinct(self, small_params):
        topo = FlattenedButterflyTopology(4, 4)
        floorplan = build_floorplan(topo, estimate_tile_geometry(small_params, topo))
        for tile in topo.tiles():
            for side in PortSide:
                offsets = [p.offset_fraction for p in floorplan.ports_on_side(tile, side)]
                assert len(offsets) == len(set(offsets))
                assert all(0 < o < 1 for o in offsets)

    def test_unknown_port_rejected(self, small_params):
        topo = MeshTopology(2, 2)
        floorplan = build_floorplan(topo, estimate_tile_geometry(small_params, topo))
        with pytest.raises(ValidationError):
            floorplan.port(0, Link(0, 3))

    def test_mesh_max_one_port_per_side(self, small_params):
        topo = MeshTopology(4, 4)
        floorplan = build_floorplan(topo, estimate_tile_geometry(small_params, topo))
        assert floorplan.max_ports_per_side() == 1


class TestGlobalRouting:
    def test_mesh_links_are_direct_and_channels_empty(self):
        topo = MeshTopology(4, 4)
        result = global_route(topo)
        assert all(route.is_direct for route in result.routes.values())
        assert result.horizontal_loads.max() == 0
        assert result.vertical_loads.max() == 0

    def test_skip_links_occupy_channels(self):
        topo = SparseHammingGraph(4, 4, s_r={3})
        result = global_route(topo)
        # Every row has one skip link of length 3 -> some horizontal channel is used.
        assert result.horizontal_loads.max() >= 1
        assert result.vertical_loads.max() == 0

    def test_torus_wraparound_links_use_channels(self):
        result = global_route(TorusTopology(4, 4))
        assert result.horizontal_loads.max() >= 1
        assert result.vertical_loads.max() >= 1

    def test_congestion_spreads_over_parallel_channels(self):
        topo = FlattenedButterflyTopology(6, 6)
        result = global_route(topo)
        # The greedy router balances: the peak channel load should be well below
        # the total number of long row links in a row (which is 10 per row).
        assert result.horizontal_loads.max() <= 10

    def test_every_link_routed_exactly_once(self):
        topo = SparseHammingGraph(5, 5, s_r={2, 4}, s_c={3})
        result = global_route(topo)
        assert set(result.routes.keys()) == set(topo.links)

    def test_route_lengths_nonnegative(self):
        result = global_route(SparseHammingGraph(4, 6, s_r={2}, s_c={2}))
        assert all(route.grid_length >= 0 for route in result.routes.values())
        assert result.total_channel_length() >= 0


class TestUnitCellsAndDetailedRouting:
    @pytest.fixture
    def model_artifacts(self, small_params):
        topo = SparseHammingGraph(4, 4, s_r={2, 3}, s_c={2})
        geometry = estimate_tile_geometry(small_params, topo)
        floorplan = build_floorplan(topo, geometry)
        routing = global_route(topo, floorplan)
        grid = discretize_chip(small_params, floorplan, routing)
        return topo, floorplan, routing, grid

    def test_cell_dimensions_match_table2_functions(self, small_params, model_artifacts):
        _, _, _, grid = model_artifacts
        wires = small_params.f_bw_to_wires()
        assert grid.cell_height_mm == pytest.approx(small_params.f_h_wires_to_mm(wires))
        assert grid.cell_width_mm == pytest.approx(small_params.f_v_wires_to_mm(wires))

    def test_spacing_proportional_to_channel_load(self, small_params, model_artifacts):
        _, _, routing, grid = model_artifacts
        for channel in range(routing.horizontal_loads.shape[0]):
            load = routing.max_horizontal_load(channel)
            expected = small_params.f_h_wires_to_mm(load * small_params.f_bw_to_wires())
            assert grid.horizontal_spacings_mm[channel] == pytest.approx(expected)

    def test_chip_dimensions_are_tiles_plus_spacings(self, model_artifacts):
        topo, floorplan, _, grid = model_artifacts
        tile = floorplan.tile_geometry
        expected_width = topo.cols * tile.width_mm + grid.vertical_spacings_mm.sum()
        expected_height = topo.rows * tile.height_mm + grid.horizontal_spacings_mm.sum()
        assert grid.chip_width_mm == pytest.approx(expected_width)
        assert grid.chip_height_mm == pytest.approx(expected_height)

    def test_tile_origins_monotonic(self, model_artifacts):
        topo, _, _, grid = model_artifacts
        for row in range(topo.rows):
            xs = [grid.tile_origin(row, col).x for col in range(topo.cols)]
            assert xs == sorted(xs)
        for col in range(topo.cols):
            ys = [grid.tile_origin(row, col).y for row in range(topo.rows)]
            assert ys == sorted(ys)

    def test_port_positions_on_tile_boundary(self, model_artifacts):
        topo, floorplan, _, grid = model_artifacts
        tile = floorplan.tile_geometry
        for link in topo.links:
            for endpoint in (link.src, link.dst):
                port = grid.port_position(endpoint, link)
                origin = grid.tile_origin(*_coord(topo, endpoint))
                assert origin.x - 1e-9 <= port.x <= origin.x + tile.width_mm + 1e-9
                assert origin.y - 1e-9 <= port.y <= origin.y + tile.height_mm + 1e-9

    def test_detailed_routing_covers_all_links_without_collisions(self, model_artifacts):
        _, _, routing, grid = model_artifacts
        detailed = detailed_route(grid, routing)
        assert set(detailed.routes) == set(routing.routes)
        assert detailed.collisions == 0
        assert detailed.total_wire_length_mm() > 0

    def test_detailed_route_lengths_at_least_port_distance(self, model_artifacts):
        topo, _, routing, grid = model_artifacts
        detailed = detailed_route(grid, routing)
        for link, route in detailed.routes.items():
            src = grid.port_position(link.src, link)
            dst = grid.port_position(link.dst, link)
            manhattan = abs(src.x - dst.x) + abs(src.y - dst.y)
            assert route.total_length_mm >= manhattan - 1e-9

    def test_capacity_override_produces_collisions(self, model_artifacts):
        _, _, routing, grid = model_artifacts
        # Cap every channel at a single track: parallel links must now collide.
        caps = {}
        for link, route in routing.routes.items():
            for segment in route.segments:
                caps[(segment.orientation, segment.channel)] = 1
        constrained = detailed_route(grid, routing, capacity_override=caps)
        unconstrained = detailed_route(grid, routing)
        assert constrained.collisions >= unconstrained.collisions


def _coord(topology, tile):
    coord = topology.coord(tile)
    return coord.row, coord.col
