"""Batched claiming and fused workers: gang leases, exactly-once, migration.

The service-side half of the gang scheduler: ``WorkQueue.claim_batch`` must
lease only gang-compatible jobs in one atomic transaction, the batch worker
must keep per-job store-before-complete semantics (so concurrent batch
workers never double-complete a job), and a v1 database must transparently
migrate to the gang-aware v2 schema.
"""

from __future__ import annotations

import json
import sqlite3
import threading

import pytest

from repro.experiments.spec import ExperimentSpec
from repro.experiments.scheduler import gang_key_id
from repro.service.queue import WorkQueue
from repro.service.store import STORE_SCHEMA_VERSION, ResultStore
from repro.service.worker import run_worker
from repro.utils.validation import ValidationError

#: Cycle counts small enough for unit tests; the worker tests below run
#: real simulations, so every lane must stay cheap.
FAST_SIM = {"warmup_cycles": 40, "measurement_cycles": 120, "drain_max_cycles": 400}


def sim_spec(seed: int, topology: str = "mesh", engine: str = "vec") -> ExperimentSpec:
    sim = {"engine": engine, "seed": seed, **FAST_SIM}
    return ExperimentSpec(topology=topology, rows=4, cols=4,
                          performance_mode="simulation", sim=sim, label=f"s{seed}")


def analytical_spec() -> ExperimentSpec:
    return ExperimentSpec(topology="mesh", rows=4, cols=4,
                          performance_mode="analytical")


@pytest.fixture
def queue(tmp_path) -> WorkQueue:
    return WorkQueue(tmp_path / "store.sqlite")


# ----------------------------------------------------------- claim_batch

def test_enqueue_records_gang_key(queue):
    queue.enqueue(sim_spec(1))
    queue.enqueue(analytical_spec())
    sim_job = queue.claim("w")
    other_job = queue.claim("w")
    keys = {job.gang_key for job in (sim_job, other_job)}
    assert gang_key_id(sim_spec(1)) in keys
    assert None in keys


def test_claim_batch_leases_one_gang_atomically(queue):
    mesh = [sim_spec(i) for i in range(1, 7)]
    for spec in mesh + [sim_spec(10, topology="torus"), analytical_spec()]:
        queue.enqueue(spec)

    batch = queue.claim_batch("w1", 8)
    assert len(batch) == 6
    assert {job.gang_key for job in batch} == {gang_key_id(mesh[0])}

    # The torus singleton and the analytical job each claim alone;
    # the analytical job (gang_key NULL) never shares a batch.
    assert len(queue.claim_batch("w2", 8)) == 1
    solo = queue.claim_batch("w3", 8)
    assert len(solo) == 1 and solo[0].gang_key is None
    assert queue.claim_batch("w4", 8) == []


def test_claim_batch_respects_compatible_with(queue):
    for spec in [sim_spec(1), sim_spec(2), sim_spec(9, topology="torus")]:
        queue.enqueue(spec)
    torus_key = gang_key_id(sim_spec(9, topology="torus"))
    batch = queue.claim_batch("w", 8, compatible_with=torus_key)
    # The older mesh jobs are skipped: only the requested gang is leased.
    assert [job.gang_key for job in batch] == [torus_key]


def test_claim_batch_validates_batch_size(queue):
    with pytest.raises(ValidationError):
        queue.claim_batch("w", 0)


def test_claim_delegates_to_batch_of_one(queue):
    queue.enqueue(sim_spec(1))
    job = queue.claim("w")
    assert job is not None and job.gang_key == gang_key_id(sim_spec(1))
    assert queue.claim("w") is None


# ------------------------------------------------------- schema migration

def test_v1_database_migrates_and_backfills_gang_keys(tmp_path):
    db = tmp_path / "store.sqlite"
    queue = WorkQueue(db)
    for spec in [sim_spec(1), sim_spec(2), analytical_spec()]:
        queue.enqueue(spec)

    # Rewind the database to the v1 shape: no gang column, version 1.
    conn = sqlite3.connect(db)
    conn.execute("DROP INDEX IF EXISTS idx_jobs_gang")
    conn.execute("ALTER TABLE jobs DROP COLUMN gang_key")
    conn.execute("UPDATE meta SET value = '1' WHERE key = 'store_schema_version'")
    conn.commit()
    conn.close()

    migrated = WorkQueue(db)  # opening the store runs the migration
    conn = sqlite3.connect(db)
    conn.row_factory = sqlite3.Row
    version = conn.execute(
        "SELECT value FROM meta WHERE key = 'store_schema_version'"
    ).fetchone()["value"]
    assert int(version) == STORE_SCHEMA_VERSION
    keys = {
        row["spec_id"]: row["gang_key"]
        for row in conn.execute("SELECT spec_id, gang_key FROM jobs")
    }
    conn.close()
    assert keys[sim_spec(1).spec_id] == gang_key_id(sim_spec(1))
    assert keys[analytical_spec().spec_id] is None
    # And the backfilled keys drive batched claiming.
    batch = migrated.claim_batch("w", 8)
    assert len(batch) == 2


# ---------------------------------------------------------- batch worker

def test_batch_worker_payloads_match_single_worker(tmp_path):
    specs = [sim_spec(i) for i in (1, 2, 3)] + [analytical_spec()]

    single = WorkQueue(tmp_path / "single.sqlite")
    batched = WorkQueue(tmp_path / "batched.sqlite")
    for spec in specs:
        single.enqueue(spec)
        batched.enqueue(spec)

    assert run_worker(single, worker_id="one-by-one").computed == len(specs)
    stats = run_worker(batched, worker_id="fused", batch_size=8)
    assert stats.computed == len(specs)
    assert stats.failed == 0 and stats.lost_leases == 0

    for spec in specs:
        want = single.store.get(spec.spec_id).result
        got = batched.store.get(spec.spec_id).result
        assert json.dumps(got, sort_keys=True) == json.dumps(want, sort_keys=True)


def test_concurrent_batch_workers_complete_each_job_once(tmp_path):
    queue = WorkQueue(tmp_path / "store.sqlite")
    specs = [sim_spec(i) for i in range(1, 7)]
    for spec in specs:
        queue.enqueue(spec)

    results = {}

    def drain(name: str) -> None:
        results[name] = run_worker(queue, worker_id=name, batch_size=3)

    threads = [threading.Thread(target=drain, args=(f"w{i}",)) for i in (1, 2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert sum(stats.computed for stats in results.values()) == len(specs)
    assert all(stats.failed == 0 for stats in results.values())
    conn = sqlite3.connect(tmp_path / "store.sqlite")
    rows = conn.execute("SELECT spec_id, status, completions FROM jobs").fetchall()
    conn.close()
    assert len(rows) == len(specs)
    assert all(status == "done" and completions == 1 for _, status, completions in rows)


def test_batch_worker_falls_back_per_spec_on_fused_failure(tmp_path, monkeypatch):
    import repro.service.worker as worker_module

    def explode(specs):
        raise RuntimeError("fused kernel blew up")

    monkeypatch.setattr(worker_module, "run_gang", explode)
    queue = WorkQueue(tmp_path / "store.sqlite")
    specs = [sim_spec(i) for i in (1, 2)]
    for spec in specs:
        queue.enqueue(spec)
    stats = run_worker(queue, worker_id="w", batch_size=2)
    # The fused attempt failed, but every job still completed solo.
    assert stats.computed == len(specs) and stats.failed == 0
    for spec in specs:
        assert queue.store.get(spec.spec_id) is not None
