"""Unit tests for the Topology base class and Link."""

import pytest

from repro.topologies.base import Link, TileCoord, Topology, grid_dimensions_for
from repro.utils.validation import ValidationError


class TestLink:
    def test_canonical_orders_endpoints(self):
        assert Link.canonical(5, 2) == Link(2, 5)

    def test_rejects_self_link(self):
        with pytest.raises(ValidationError):
            Link.canonical(3, 3)

    def test_rejects_unordered_construction(self):
        with pytest.raises(ValidationError):
            Link(5, 2)

    def test_other_endpoint(self):
        link = Link(2, 5)
        assert link.other(2) == 5
        assert link.other(5) == 2

    def test_other_rejects_non_endpoint(self):
        with pytest.raises(ValidationError):
            Link(2, 5).other(3)

    def test_links_are_hashable_and_ordered(self):
        links = {Link(0, 1), Link(0, 1), Link(1, 2)}
        assert len(links) == 2
        assert sorted(links) == [Link(0, 1), Link(1, 2)]


class TestTopologyConstruction:
    def test_basic_construction(self):
        topo = Topology(2, 3, [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)], "test")
        assert topo.rows == 2
        assert topo.cols == 3
        assert topo.num_tiles == 6
        assert topo.num_links == 7

    def test_duplicate_links_collapse(self):
        topo = Topology(1, 2, [(0, 1), (1, 0), Link(0, 1)], "dup")
        assert topo.num_links == 1

    def test_rejects_out_of_range_link(self):
        with pytest.raises(ValidationError):
            Topology(2, 2, [(0, 4)], "bad")

    def test_rejects_empty_grid(self):
        with pytest.raises(ValidationError):
            Topology(0, 3, [], "bad")

    def test_rejects_single_tile(self):
        with pytest.raises(ValidationError):
            Topology(1, 1, [], "bad")

    def test_rejects_bad_endpoints_per_tile(self):
        with pytest.raises(ValidationError):
            Topology(2, 2, [(0, 1)], "bad", endpoints_per_tile=0)


class TestTopologyIndexing:
    @pytest.fixture
    def topo(self) -> Topology:
        return Topology(3, 4, [(i, i + 1) for i in range(11)], "line")

    def test_tile_index_row_major(self, topo):
        assert topo.tile_index(0, 0) == 0
        assert topo.tile_index(0, 3) == 3
        assert topo.tile_index(2, 3) == 11

    def test_coord_inverse_of_tile_index(self, topo):
        for tile in topo.tiles():
            coord = topo.coord(tile)
            assert topo.tile_index(coord.row, coord.col) == tile

    def test_coord_returns_tilecoord(self, topo):
        assert topo.coord(5) == TileCoord(1, 1)

    def test_tile_index_out_of_range(self, topo):
        with pytest.raises(ValidationError):
            topo.tile_index(3, 0)
        with pytest.raises(ValidationError):
            topo.coord(12)


class TestTopologyGraph:
    @pytest.fixture
    def square(self) -> Topology:
        # 2x2 grid connected as a cycle 0-1-3-2-0.
        return Topology(2, 2, [(0, 1), (1, 3), (2, 3), (0, 2)], "square")

    def test_neighbors(self, square):
        assert square.neighbors(0) == [1, 2]
        assert square.neighbors(3) == [1, 2]

    def test_degree_and_radix(self, square):
        assert square.degree(0) == 2
        assert square.router_radix(0) == 3
        assert square.router_radix() == 3

    def test_radix_with_more_endpoints(self):
        topo = Topology(2, 2, [(0, 1), (1, 3), (2, 3), (0, 2)], "sq", endpoints_per_tile=2)
        assert topo.router_radix() == 4

    def test_has_link(self, square):
        assert square.has_link(0, 1)
        assert square.has_link(1, 0)
        assert not square.has_link(0, 3)
        assert not square.has_link(2, 2)

    def test_diameter_and_average_hops(self, square):
        assert square.diameter() == 2
        assert square.average_hop_count() == pytest.approx(4 / 3)

    def test_disconnected_topology_detected(self):
        topo = Topology(2, 2, [(0, 1)], "disconnected")
        assert not topo.is_connected()
        with pytest.raises(ValidationError):
            topo.validate_connected()
        with pytest.raises(ValidationError):
            topo.diameter()

    def test_link_alignment_and_length(self, square):
        assert square.link_is_aligned(Link(0, 1))
        assert square.link_grid_length(Link(0, 1)) == 1
        diag = Topology(2, 2, [(0, 3), (0, 1), (1, 3), (2, 3)], "diag")
        assert not diag.link_is_aligned(Link(0, 3))
        assert diag.link_grid_length(Link(0, 3)) == 2

    def test_equality_and_hash(self):
        a = Topology(2, 2, [(0, 1), (1, 3), (2, 3), (0, 2)], "a")
        b = Topology(2, 2, [(0, 2), (2, 3), (1, 3), (0, 1)], "b")
        assert a == b  # names do not participate in equality
        assert hash(a) == hash(b)

    def test_with_endpoints_per_tile(self, square):
        doubled = square.with_endpoints_per_tile(2)
        assert doubled.endpoints_per_tile == 2
        assert doubled.num_links == square.num_links

    def test_repr_mentions_grid(self, square):
        assert "2x2" in repr(square)


class TestGridDimensionsFor:
    def test_perfect_square(self):
        assert grid_dimensions_for(64) == (8, 8)

    def test_rectangular(self):
        assert grid_dimensions_for(128) == (8, 16)

    def test_prime_count_degenerates_to_row(self):
        assert grid_dimensions_for(13) == (1, 13)

    def test_rejects_too_small(self):
        with pytest.raises(ValidationError):
            grid_dimensions_for(1)
