"""Gang scheduler: grouping, fused-kernel bit-identity, runner integration.

The gang scheduler's contract is that fusing a campaign into batched vec
kernels is *invisible* in the results: every per-spec prediction — sweep
points, replay statistics, phase breakdowns, cached payload bytes — matches
the sequential path exactly.  These tests pin that contract from the
scheduler primitives up through ``ExperimentRunner.run``.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.experiments.scheduler import (
    DEFAULT_MAX_WIDTH,
    UNFUSABLE_ENGINES,
    gang_key,
    gang_key_id,
    plan_gangs,
    run_gang,
    run_gang_detailed,
)
from repro.experiments.serialization import prediction_to_dict
from repro.experiments.spec import ExperimentSpec
from repro.utils.validation import ValidationError

#: Cycle counts small enough for unit tests, large enough to exercise the
#: warmup/measurement/drain phase machinery on every lane.
FAST_SIM = {"warmup_cycles": 40, "measurement_cycles": 120, "drain_max_cycles": 400}


def sim_spec(seed: int, engine: str = "vec", topology: str = "mesh",
             workload=None, **extra) -> ExperimentSpec:
    sim = {"engine": engine, "seed": seed, **FAST_SIM, **extra}
    return ExperimentSpec(
        topology=topology, rows=4, cols=4, performance_mode="simulation",
        sim=sim, workload=workload, label=f"s{seed}",
    )


def analytical_spec() -> ExperimentSpec:
    return ExperimentSpec(topology="mesh", rows=4, cols=4,
                          performance_mode="analytical")


def payload(prediction) -> str:
    return json.dumps(prediction_to_dict(prediction), sort_keys=True)


# --------------------------------------------------------------- grouping

def test_gang_key_groups_network_compatible_specs():
    a, b = sim_spec(1), sim_spec(2)
    assert gang_key(a) is not None
    assert gang_key(a) == gang_key(b)
    # A different router configuration compiles a different network.
    assert gang_key(sim_spec(3, num_vcs=2)) != gang_key(a)
    # A different topology never shares a compiled network.
    assert gang_key(sim_spec(4, topology="torus")) != gang_key(a)


def test_gang_key_excludes_unfusable_specs():
    assert gang_key(analytical_spec()) is None
    assert "sanitizer" in UNFUSABLE_ENGINES
    assert gang_key(sim_spec(1, engine="sanitizer")) is None


def test_gang_key_id_is_stable_and_none_for_unfusable():
    a, b = sim_spec(1), sim_spec(2)
    assert gang_key_id(a) == gang_key_id(b)
    assert gang_key_id(a).startswith("gang-")
    assert gang_key_id(analytical_spec()) is None
    assert gang_key_id(sim_spec(3, topology="torus")) != gang_key_id(a)


def test_plan_gangs_filters_engines_and_singletons():
    mesh = [sim_spec(i) for i in range(1, 4)]
    torus = [sim_spec(9, topology="torus")]  # singleton: not worth fusing
    soa = [sim_spec(5, engine="soa"), sim_spec(6, engine="soa")]
    gangs = plan_gangs(mesh + torus + soa + [analytical_spec()])
    assert gangs == [mesh]
    # A wider engine allow-list opts the soa pair in too.
    gangs = plan_gangs(mesh + soa, engines=("vec", "soa"))
    assert gangs == [mesh + soa]


# --------------------------------------------------------- fused execution

def test_run_gang_matches_sequential_bit_for_bit():
    specs = [
        sim_spec(1),
        sim_spec(2),
        sim_spec(3, workload={"name": "onoff", "seed": 5}),
    ]
    fused = run_gang(specs)
    sequential = [spec.run() for spec in specs]
    for spec, got, want in zip(specs, fused, sequential):
        assert payload(got) == payload(want), spec.label
    # The live statistics objects agree too, phase breakdowns included.
    for (_, got_stats), (_, want_stats) in zip(
        fused[0].details["sweep_points"], sequential[0].details["sweep_points"]
    ):
        assert asdict(got_stats) == asdict(want_stats)
    assert asdict(fused[2].details["replay"]) == asdict(
        sequential[2].details["replay"]
    )


def test_run_gang_rejects_incompatible_specs():
    with pytest.raises(ValidationError):
        run_gang([sim_spec(1), sim_spec(2, topology="torus")])
    with pytest.raises(ValidationError):
        run_gang([analytical_spec()])


def test_run_gang_lane_recycling_is_width_invariant():
    """A narrow kernel drains lanes in a different order; results must not move."""
    specs = [sim_spec(seed) for seed in (11, 7, 23)]
    wide, wide_lanes = run_gang_detailed(specs, max_width=DEFAULT_MAX_WIDTH)
    for width in (1, 2, 3):
        narrow, narrow_lanes = run_gang_detailed(specs, max_width=width)
        assert narrow_lanes == wide_lanes
        for spec, got, want in zip(specs, narrow, wide):
            assert payload(got) == payload(want), (width, spec.label)


# ------------------------------------------------------ runner integration

def test_runner_gang_cache_files_are_byte_identical(tmp_path):
    """vec-ganged campaign writes the same cache bytes as vec-sequential."""
    specs = [sim_spec(seed) for seed in (1, 2, 3)]

    seq_dir, gang_dir = tmp_path / "seq", tmp_path / "gang"
    seq_runner = ExperimentRunner(cache_dir=seq_dir)
    for spec in specs:  # one spec per call: no gang forms
        seq_runner.run([spec])
    ExperimentRunner(cache_dir=gang_dir).run(specs)

    seq_files = sorted(p.name for p in seq_dir.glob("exp-*.json"))
    gang_files = sorted(p.name for p in gang_dir.glob("exp-*.json"))
    assert seq_files == gang_files and len(seq_files) == len(specs)
    for name in seq_files:
        assert (seq_dir / name).read_bytes() == (gang_dir / name).read_bytes()


def test_runner_gang_cache_serves_other_engines(tmp_path):
    """Ganged vec results hit the cache for engine-distinct twins of the specs."""
    vec_specs = [sim_spec(seed) for seed in (1, 2, 3)]
    soa_specs = [spec.with_overrides(sim={**spec.sim, "engine": "soa"})
                 for spec in vec_specs]
    runner = ExperimentRunner(cache_dir=tmp_path / "cache")
    batch = runner.run(vec_specs)
    assert batch.num_cached == 0
    again = runner.run(soa_specs)
    assert again.num_cached == len(soa_specs)
    for got, want in zip(again.results, batch.results):
        assert payload(got.prediction) == payload(want.prediction)


def test_runner_parallel_gangs_match_serial(tmp_path):
    specs = [sim_spec(seed) for seed in (1, 2)] + [
        sim_spec(9, topology="torus"),  # singleton: runs solo
        analytical_spec(),
    ]
    serial = ExperimentRunner(cache_dir=tmp_path / "a").run(specs)
    parallel = ExperimentRunner(cache_dir=tmp_path / "b").run(specs, parallel=2)
    for spec, got, want in zip(specs, parallel.results, serial.results):
        assert payload(got.prediction) == payload(want.prediction), spec.label
