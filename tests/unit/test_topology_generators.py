"""Unit tests for the established topology generators (Figure 1 / Table I)."""

import pytest

from repro.topologies import (
    FlattenedButterflyTopology,
    FoldedTorusTopology,
    HypercubeTopology,
    MeshTopology,
    RingTopology,
    RucheTopology,
    TorusTopology,
)
from repro.topologies.folded_torus import folded_cycle_links
from repro.topologies.hypercube import gray_code, hypercube_applicable
from repro.topologies.ring import ring_order
from repro.utils.validation import ValidationError


class TestMesh:
    def test_link_count(self):
        # R*(C-1) + C*(R-1) links.
        topo = MeshTopology(4, 5)
        assert topo.num_links == 4 * 4 + 5 * 3

    def test_diameter_matches_table1(self):
        for rows, cols in [(2, 2), (3, 5), (8, 8)]:
            topo = MeshTopology(rows, cols)
            assert topo.diameter() == topo.expected_diameter() == rows + cols - 2

    def test_radix_is_four_plus_endpoints(self):
        assert MeshTopology(4, 4).router_radix() == 5
        assert MeshTopology(4, 4, endpoints_per_tile=2).router_radix() == 6

    def test_all_links_adjacent(self):
        topo = MeshTopology(5, 5)
        assert all(topo.link_grid_length(link) == 1 for link in topo.links)

    def test_connected(self):
        assert MeshTopology(3, 7).is_connected()


class TestRing:
    def test_is_a_single_cycle(self):
        topo = RingTopology(4, 4)
        assert topo.num_links == topo.num_tiles
        assert all(topo.degree(t) == 2 for t in topo.tiles())
        assert topo.is_connected()

    def test_diameter_matches_table1(self):
        topo = RingTopology(4, 4)
        assert topo.diameter() == topo.expected_diameter() == 8

    def test_ring_order_visits_every_tile_once(self):
        order = ring_order(3, 4)
        assert sorted(order) == list(range(12))

    def test_snake_keeps_most_links_short(self):
        topo = RingTopology(4, 4)
        long_links = [l for l in topo.links if topo.link_grid_length(l) > 1]
        # Only the closing link of the cycle is long.
        assert len(long_links) <= 1

    def test_rejects_two_tiles(self):
        with pytest.raises(ValidationError):
            RingTopology(1, 2)


class TestTorus:
    def test_degree_is_four(self):
        topo = TorusTopology(4, 4)
        assert all(topo.degree(t) == 4 for t in topo.tiles())

    def test_diameter_matches_table1(self):
        for rows, cols in [(4, 4), (8, 8), (4, 8)]:
            topo = TorusTopology(rows, cols)
            assert topo.diameter() == topo.expected_diameter() == rows // 2 + cols // 2

    def test_contains_mesh_links(self):
        torus = TorusTopology(4, 4)
        mesh = MeshTopology(4, 4)
        assert set(mesh.links).issubset(set(torus.links))

    def test_has_wraparound_links(self):
        topo = TorusTopology(4, 4)
        assert topo.has_link(0, 3)  # row wrap
        assert topo.has_link(0, 12)  # column wrap


class TestFoldedTorus:
    def test_folded_cycle_is_single_cycle(self):
        for n in [3, 4, 5, 8]:
            links = folded_cycle_links(n)
            assert len(links) == n
            degree = {i: 0 for i in range(n)}
            for a, b in links:
                degree[a] += 1
                degree[b] += 1
            assert all(d == 2 for d in degree.values())

    def test_no_link_longer_than_two(self):
        topo = FoldedTorusTopology(8, 8)
        assert topo.max_degree() == 4
        assert max(topo.link_grid_length(l) for l in topo.links) == 2

    def test_diameter_matches_torus(self):
        folded = FoldedTorusTopology(8, 8)
        torus = TorusTopology(8, 8)
        assert folded.diameter() == torus.diameter() == folded.expected_diameter()

    def test_small_dimensions(self):
        topo = FoldedTorusTopology(2, 3)
        assert topo.is_connected()


class TestHypercube:
    def test_applicability(self):
        assert hypercube_applicable(4, 4)
        assert hypercube_applicable(8, 16)
        assert not hypercube_applicable(3, 4)
        assert not hypercube_applicable(6, 6)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValidationError):
            HypercubeTopology(3, 4)

    def test_gray_code_neighbours_differ_in_one_bit(self):
        for i in range(15):
            assert bin(gray_code(i) ^ gray_code(i + 1)).count("1") == 1

    def test_degree_is_log2_n(self):
        topo = HypercubeTopology(4, 4)
        assert all(topo.degree(t) == 4 for t in topo.tiles())

    def test_diameter_is_log2_n(self):
        for rows, cols in [(2, 4), (4, 4), (4, 8), (8, 8)]:
            topo = HypercubeTopology(rows, cols)
            assert topo.diameter() == topo.expected_diameter()

    def test_contains_mesh_links_via_gray_code(self):
        cube = HypercubeTopology(4, 4)
        mesh = MeshTopology(4, 4)
        assert set(mesh.links).issubset(set(cube.links))

    def test_all_links_aligned(self):
        topo = HypercubeTopology(4, 8)
        assert all(topo.link_is_aligned(l) for l in topo.links)


class TestFlattenedButterfly:
    def test_link_count(self):
        rows, cols = 4, 4
        topo = FlattenedButterflyTopology(rows, cols)
        expected = rows * cols * (cols - 1) // 2 + cols * rows * (rows - 1) // 2
        assert topo.num_links == expected

    def test_diameter_is_two(self):
        topo = FlattenedButterflyTopology(4, 6)
        assert topo.diameter() == topo.expected_diameter() == 2

    def test_radix_matches_table1(self):
        topo = FlattenedButterflyTopology(8, 8)
        assert topo.router_radix() == topo.expected_radix() == 8 + 8 - 2 + 1

    def test_rows_and_columns_fully_connected(self):
        topo = FlattenedButterflyTopology(3, 4)
        assert topo.has_link(0, 3)       # same row, far apart
        assert topo.has_link(1, 9)       # same column, two rows apart
        assert not topo.has_link(0, 5)   # different row and column

    def test_single_row_degenerates_to_clique(self):
        topo = FlattenedButterflyTopology(1, 5)
        assert topo.diameter() == 1


class TestRuche:
    def test_is_mesh_plus_skip_links(self):
        ruche = RucheTopology(4, 8, row_skip=3, col_skip=0)
        mesh = MeshTopology(4, 8)
        extra = set(ruche.links) - set(mesh.links)
        assert all(ruche.link_grid_length(l) == 3 for l in extra)
        assert len(extra) == 4 * (8 - 3)

    def test_skip_zero_disables_direction(self):
        ruche = RucheTopology(4, 4, row_skip=0, col_skip=2)
        mesh = MeshTopology(4, 4)
        extra = set(ruche.links) - set(mesh.links)
        assert all(not ruche.link_is_aligned(l) or ruche.coord(l.src).col == ruche.coord(l.dst).col for l in extra)

    def test_rejects_skip_of_one(self):
        with pytest.raises(ValidationError):
            RucheTopology(4, 4, row_skip=1, col_skip=2)

    def test_rejects_skip_wider_than_grid(self):
        with pytest.raises(ValidationError):
            RucheTopology(4, 4, row_skip=4, col_skip=2)

    def test_is_subset_of_sparse_hamming(self):
        from repro.core.sparse_hamming import SparseHammingGraph

        ruche = RucheTopology(5, 6, row_skip=3, col_skip=2)
        shg = SparseHammingGraph(5, 6, s_r={3}, s_c={2})
        assert set(ruche.links) == set(shg.links)
