"""Unit tests for design-principle scoring and the configuration space."""

import pytest

from repro.core.config_space import (
    candidate_col_skips,
    candidate_row_skips,
    configuration_count,
    enumerate_configurations,
    random_configuration,
)
from repro.core.design_principles import Compliance, score_design_principles
from repro.core.sparse_hamming import SparseHammingGraph
from repro.topologies import (
    FlattenedButterflyTopology,
    FoldedTorusTopology,
    MeshTopology,
    RingTopology,
    TorusTopology,
)
from repro.utils.validation import ValidationError


class TestCompliance:
    def test_symbols(self):
        assert Compliance.YES.symbol == "✔"
        assert Compliance.PARTIAL.symbol == "∼"
        assert Compliance.NO.symbol == "✘"


class TestScoreDesignPrinciples:
    def test_mesh_satisfies_cost_principles(self):
        scores = score_design_principles(MeshTopology(8, 8))
        assert scores.low_radix is Compliance.YES
        assert scores.short_links is Compliance.YES
        assert scores.aligned_links is Compliance.YES
        assert scores.uniform_link_density is Compliance.YES
        assert scores.optimized_port_placement is Compliance.YES
        # ... but not the performance principle of a low diameter.
        assert scores.low_diameter is Compliance.NO
        assert scores.minimal_paths_present is Compliance.YES
        assert scores.minimal_paths_used is Compliance.YES

    def test_torus_short_links_violated(self):
        scores = score_design_principles(TorusTopology(8, 8))
        assert scores.short_links is Compliance.NO
        assert scores.minimal_paths_present is Compliance.YES
        assert scores.minimal_paths_used is Compliance.NO

    def test_folded_torus_short_links_partial(self):
        scores = score_design_principles(FoldedTorusTopology(8, 8))
        assert scores.short_links is Compliance.PARTIAL
        assert scores.minimal_paths_present is Compliance.NO

    def test_flattened_butterfly_low_diameter_high_radix(self):
        scores = score_design_principles(FlattenedButterflyTopology(8, 8))
        assert scores.low_diameter is Compliance.YES
        assert scores.low_radix is not Compliance.YES
        assert scores.aligned_links is Compliance.YES

    def test_ring_low_radix_but_high_diameter(self):
        scores = score_design_principles(RingTopology(8, 8))
        assert scores.low_radix is Compliance.YES
        assert scores.low_diameter is Compliance.NO

    def test_as_row_contains_all_table1_columns(self):
        row = score_design_principles(MeshTopology(4, 4)).as_row()
        for column in ("Topology", "Router Radix", "SL", "AL", "ULD", "OPP",
                       "Network Diameter", "Minimal Paths Present", "Minimal Paths Used"):
            assert column in row

    def test_sparse_hamming_spans_compliance_range(self):
        sparse = score_design_principles(SparseHammingGraph(8, 8, s_r={2}, s_c={2}))
        dense = score_design_principles(
            SparseHammingGraph(8, 8, s_r=range(2, 8), s_c=range(2, 8))
        )
        assert sparse.low_radix in (Compliance.YES, Compliance.PARTIAL)
        assert dense.low_radix is not Compliance.YES
        assert dense.low_diameter is Compliance.YES


class TestConfigurationSpace:
    def test_count_matches_table1_formula(self):
        assert configuration_count(8, 8) == 2 ** (8 + 8 - 4)
        assert configuration_count(8, 16) == 2 ** (8 + 16 - 4)
        assert configuration_count(4, 4) == 2**4

    def test_degenerate_grids(self):
        assert configuration_count(1, 8) == 2**6
        assert configuration_count(2, 2) == 1

    def test_rejects_invalid_grid(self):
        with pytest.raises(ValidationError):
            configuration_count(0, 4)

    def test_candidate_skips(self):
        assert candidate_row_skips(8) == [2, 3, 4, 5, 6, 7]
        assert candidate_col_skips(4) == [2, 3]
        assert candidate_row_skips(2) == []

    def test_enumeration_is_exhaustive_and_unique(self):
        configs = list(enumerate_configurations(4, 4))
        assert len(configs) == configuration_count(4, 4)
        assert len(set(configs)) == len(configs)
        assert (frozenset(), frozenset()) in configs
        assert (frozenset({2, 3}), frozenset({2, 3})) in configs

    def test_every_enumerated_configuration_is_constructible(self):
        for s_r, s_c in enumerate_configurations(3, 4):
            shg = SparseHammingGraph(3, 4, s_r=s_r, s_c=s_c)
            assert shg.is_connected()

    def test_random_configuration_reproducible(self):
        a = random_configuration(8, 8, seed=5)
        b = random_configuration(8, 8, seed=5)
        assert a == b

    def test_random_configuration_density_extremes(self):
        empty = random_configuration(8, 8, seed=1, density=0.0)
        full = random_configuration(8, 8, seed=1, density=1.0)
        assert empty == (frozenset(), frozenset())
        assert full == (frozenset(range(2, 8)), frozenset(range(2, 8)))

    def test_random_configuration_rejects_bad_density(self):
        with pytest.raises(ValidationError):
            random_configuration(8, 8, density=1.5)
