"""Unit tests for repro.utils.primes."""

import pytest

from repro.utils.primes import is_prime, is_prime_power, next_prime_power, prime_power_root
from repro.utils.validation import ValidationError


class TestIsPrime:
    def test_small_primes(self):
        assert all(is_prime(p) for p in [2, 3, 5, 7, 11, 13, 17, 19, 23, 29])

    def test_small_composites(self):
        assert not any(is_prime(n) for n in [1, 4, 6, 8, 9, 10, 12, 15, 21, 25, 49])

    def test_zero_and_negative(self):
        assert not is_prime(0)
        assert not is_prime(-7)

    def test_larger_prime(self):
        assert is_prime(7919)

    def test_larger_composite(self):
        assert not is_prime(7917)

    def test_rejects_non_int(self):
        with pytest.raises(ValidationError):
            is_prime(7.0)


class TestPrimePowerRoot:
    def test_prime_itself(self):
        assert prime_power_root(7) == (7, 1)

    def test_square_of_prime(self):
        assert prime_power_root(9) == (3, 2)

    def test_power_of_two(self):
        assert prime_power_root(8) == (2, 3)
        assert prime_power_root(16) == (2, 4)

    def test_not_a_prime_power(self):
        assert prime_power_root(12) is None
        assert prime_power_root(6) is None
        assert prime_power_root(1) is None

    def test_large_prime_power(self):
        assert prime_power_root(343) == (7, 3)


class TestIsPrimePower:
    def test_prime_powers(self):
        assert all(is_prime_power(n) for n in [2, 3, 4, 5, 7, 8, 9, 11, 16, 25, 27, 32, 49])

    def test_non_prime_powers(self):
        assert not any(is_prime_power(n) for n in [0, 1, 6, 10, 12, 15, 18, 20, 100])


class TestNextPrimePower:
    def test_already_prime_power(self):
        assert next_prime_power(8) == 8

    def test_rounds_up(self):
        assert next_prime_power(6) == 7
        assert next_prime_power(10) == 11
        assert next_prime_power(12) == 13

    def test_small_values(self):
        assert next_prime_power(0) == 2
        assert next_prime_power(1) == 2
        assert next_prime_power(2) == 2
