"""Unit tests for the KNC scenarios and the MemPool validation experiment."""

import pytest

from repro.arch.knc import (
    KNC_SCENARIOS,
    paper_sparse_hamming_parameters,
    scenario,
    scenario_parameters,
)
from repro.arch.mempool import (
    MEMPOOL_REFERENCE,
    PAPER_PREDICTION,
    mempool_parameters,
    mempool_simulation_config,
    mempool_topology,
    validate_toolchain_against_mempool,
)
from repro.core.sparse_hamming import SparseHammingGraph
from repro.utils.validation import ValidationError


class TestKNCScenarios:
    def test_four_scenarios_defined(self):
        assert sorted(KNC_SCENARIOS) == ["a", "b", "c", "d"]

    def test_scenario_a_matches_paper(self):
        s = scenario("a")
        assert s.num_tiles == 64
        assert s.rows * s.cols == 64
        assert s.endpoint_area_ge == pytest.approx(35e6)
        assert s.cores_per_tile == 1
        assert s.paper_s_r == frozenset({4})
        assert s.paper_s_c == frozenset({2, 5})

    def test_scaling_scenarios(self):
        assert scenario("b").endpoint_area_ge == pytest.approx(2 * scenario("a").endpoint_area_ge)
        assert scenario("c").num_tiles == 2 * scenario("a").num_tiles
        assert scenario("d").num_tiles == 128
        assert scenario("d").endpoint_area_ge == pytest.approx(70e6)

    def test_parameters_match_section_vb(self):
        params = scenario_parameters("a")
        assert params.frequency_hz == pytest.approx(1.2e9)
        assert params.link_bandwidth_bits == pytest.approx(512)
        assert params.protocol.name == "AXI4"
        assert params.technology.name == "22nm-hp"

    def test_paper_configuration_constructible(self):
        for key in KNC_SCENARIOS:
            s = scenario(key)
            s_r, s_c = paper_sparse_hamming_parameters(key)
            shg = SparseHammingGraph(s.rows, s.cols, s_r=s_r, s_c=s_c,
                                     endpoints_per_tile=s.cores_per_tile)
            assert shg.is_connected()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValidationError):
            scenario("z")


class TestMemPool:
    def test_reference_values_from_table3(self):
        assert MEMPOOL_REFERENCE.area_mm2 == pytest.approx(21.16)
        assert MEMPOOL_REFERENCE.power_w == pytest.approx(1.55)
        assert MEMPOOL_REFERENCE.latency_cycles == pytest.approx(5.0)
        assert MEMPOOL_REFERENCE.throughput_fraction == pytest.approx(0.38)
        assert PAPER_PREDICTION.area_mm2 == pytest.approx(24.26)

    def test_model_parameters(self):
        params = mempool_parameters()
        assert params.num_tiles == 16
        assert params.frequency_hz == pytest.approx(500e6)
        assert params.technology.name == "gf22fdx"
        topology = mempool_topology()
        assert topology.num_tiles == 16
        assert topology.endpoints_per_tile == 80

    def test_simulation_config_uses_short_packets(self):
        config = mempool_simulation_config()
        assert config.packet_size_flits <= 2

    def test_validation_reproduces_table3_trends(self):
        validation = validate_toolchain_against_mempool()
        # Area and power predictions are accurate "for a fast high-level model".
        assert validation.area_error < 0.25
        assert validation.power_error < 0.25
        # Latency is over-estimated (the paper reports a 2x over-estimate).
        assert validation.prediction.zero_load_latency_cycles > MEMPOOL_REFERENCE.latency_cycles
        # Throughput prediction lands in the right regime (tens of percent).
        assert 0.1 < validation.prediction.saturation_throughput < 0.7

    def test_validation_table_has_four_rows(self):
        rows = validate_toolchain_against_mempool().as_table()
        assert [row["Metric"] for row in rows] == [
            "Area [mm2]",
            "Power [W]",
            "Latency [cycles]",
            "Throughput [%]",
        ]
        for row in rows:
            assert row["Prediction Error [%]"] >= 0
