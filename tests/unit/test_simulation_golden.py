"""Golden-value regression tests for the simulation kernel.

The PR that introduced the active-set scheduler and the slotted event wheel
(see ``docs/PERFORMANCE.md``) is required to be a pure performance refactor:
for a fixed :class:`~repro.simulator.simulation.SimulationConfig` and seed the
optimized kernel must produce **bit-identical** :class:`SimulationStats` to
the pre-refactor dense-scan kernel.  The expected values below were captured
by running the pre-refactor kernel at the seed commit; every field is compared
with exact equality (no tolerance), so any behavioural drift in the router,
the event plumbing, the injection process, or the statistics accumulation
fails these tests.

Every scenario runs under **every registered engine** (``reference`` and
``soa``) against the same constants — the pre-refactor goldens are the single
source of truth all kernel implementations must reproduce exactly.  The
randomized cross-engine sweep lives in ``test_engine_equivalence.py``.

If a future PR *intentionally* changes simulation behaviour, these constants
must be regenerated (run the simulator at the configs below and paste the new
``dataclasses.asdict`` output) and the change must be called out in the PR.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.sparse_hamming import SparseHammingGraph
from repro.simulator.engine import available_engines
from repro.simulator.simulation import SimulationConfig, Simulator
from repro.topologies.mesh import MeshTopology
from repro.topologies.ring import RingTopology
from repro.topologies.torus import TorusTopology

ENGINES = available_engines()

# --------------------------------------------------------------------------
# Scenario definitions: (topology factory, link-latency factory, config).
# The scenarios cover the kernel's distinct regimes: a lightly loaded mesh,
# a wrap-around torus at default configuration, a saturated non-draining
# ring, multi-cycle links (the event wheel's raison d'être), and a 1-VC
# network where every packet rides the escape layer.
# --------------------------------------------------------------------------

SCENARIOS = {
    "mesh_4x4_low_load": dict(
        topology=lambda: MeshTopology(4, 4),
        link_latencies=None,
        config=SimulationConfig(
            injection_rate=0.05,
            warmup_cycles=100,
            measurement_cycles=300,
            drain_max_cycles=1500,
            packet_size_flits=2,
            num_vcs=4,
            buffer_depth_flits=2,
            seed=11,
        ),
    ),
    "torus_5x5_default": dict(
        topology=lambda: TorusTopology(5, 5),
        link_latencies=None,
        config=SimulationConfig(
            injection_rate=0.10,
            warmup_cycles=200,
            measurement_cycles=400,
            drain_max_cycles=2000,
            seed=3,
        ),
    ),
    "ring_4x4_saturated": dict(
        topology=lambda: RingTopology(4, 4),
        link_latencies=None,
        config=SimulationConfig(
            injection_rate=0.60,
            warmup_cycles=100,
            measurement_cycles=300,
            drain_max_cycles=600,
            packet_size_flits=2,
            num_vcs=4,
            buffer_depth_flits=2,
            seed=2,
        ),
    ),
    "shg_4x6_multicycle_links": dict(
        topology=lambda: SparseHammingGraph(4, 6, s_r={3}, s_c={2}),
        link_latencies=3,
        config=SimulationConfig(
            injection_rate=0.08,
            warmup_cycles=150,
            measurement_cycles=350,
            drain_max_cycles=1500,
            seed=9,
        ),
    ),
    "torus_4x4_single_vc_escape": dict(
        topology=lambda: TorusTopology(4, 4),
        link_latencies=None,
        config=SimulationConfig(
            injection_rate=0.03,
            num_vcs=1,
            buffer_depth_flits=4,
            packet_size_flits=2,
            warmup_cycles=100,
            measurement_cycles=200,
            drain_max_cycles=2000,
            seed=5,
        ),
    ),
}

# Captured from the pre-refactor (dense per-cycle scan) kernel.
GOLDEN = {
    "mesh_4x4_low_load": {
        "offered_load": 0.05,
        "accepted_load": 0.05229166666666667,
        "average_packet_latency": 11.459016393442623,
        "average_network_latency": 11.401639344262295,
        "p99_packet_latency": 21.0,
        "average_hops": 2.6721311475409837,
        "packets_measured": 122,
        "packets_delivered": 170,
        "packets_created": 171,
        "flits_delivered_measurement": 251,
        "measurement_cycles": 300,
        "num_tiles": 16,
        "escape_fraction": 0.0,
        "drained": True,
    },
    "torus_5x5_default": {
        "offered_load": 0.1,
        "accepted_load": 0.1005,
        "average_packet_latency": 13.30952380952381,
        "average_network_latency": 13.154761904761905,
        "p99_packet_latency": 21.49000000000001,
        "average_hops": 2.4761904761904763,
        "packets_measured": 252,
        "packets_delivered": 382,
        "packets_created": 390,
        "flits_delivered_measurement": 1005,
        "measurement_cycles": 400,
        "num_tiles": 25,
        "escape_fraction": 0.0,
        "drained": True,
    },
    "ring_4x4_saturated": {
        "offered_load": 0.6,
        "accepted_load": 0.24,
        "average_packet_latency": 315.89156626506025,
        "average_network_latency": 71.9855421686747,
        "p99_packet_latency": 681.6799999999998,
        "average_hops": 4.3831325301204815,
        "packets_measured": 1436,
        "packets_delivered": 1959,
        "packets_created": 4788,
        "flits_delivered_measurement": 1152,
        "measurement_cycles": 300,
        "num_tiles": 16,
        "escape_fraction": 0.2955823293172691,
        "drained": False,
    },
    "shg_4x6_multicycle_links": {
        "offered_load": 0.08,
        "accepted_load": 0.08369047619047619,
        "average_packet_latency": 17.067039106145252,
        "average_network_latency": 16.949720670391063,
        "p99_packet_latency": 28.22,
        "average_hops": 2.2402234636871508,
        "packets_measured": 179,
        "packets_delivered": 243,
        "packets_created": 250,
        "flits_delivered_measurement": 703,
        "measurement_cycles": 350,
        "num_tiles": 24,
        "escape_fraction": 0.0,
        "drained": True,
    },
    "torus_4x4_single_vc_escape": {
        "offered_load": 0.03,
        "accepted_load": 0.02625,
        "average_packet_latency": 13.695652173913043,
        "average_network_latency": 13.608695652173912,
        "p99_packet_latency": 24.0,
        "average_hops": 3.4782608695652173,
        "packets_measured": 46,
        "packets_delivered": 61,
        "packets_created": 66,
        "flits_delivered_measurement": 84,
        "measurement_cycles": 200,
        "num_tiles": 16,
        "escape_fraction": 1.0,
        "drained": True,
    },
}


def _run_scenario(name: str, engine: str = "reference"):
    scenario = SCENARIOS[name]
    topology = scenario["topology"]()
    latency = scenario["link_latencies"]
    link_latencies = {link: latency for link in topology.links} if latency else None
    config = dataclasses.replace(scenario["config"], engine=engine)
    simulator = Simulator(topology, config, link_latencies=link_latencies)
    return simulator.run()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_kernel_matches_pre_refactor_golden_stats(name, engine):
    stats = dataclasses.asdict(_run_scenario(name, engine))
    # The phase-aware statistics field postdates the golden capture; synthetic
    # Bernoulli runs must always report no phases.
    assert stats.pop("phases") == {}
    assert stats == GOLDEN[name], (
        f"{engine} engine drifted from the pre-refactor golden stats for {name}"
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_back_to_back_runs_are_identical(engine):
    # The kernel must be a pure function of (topology, config): no state may
    # leak between Simulator instances (e.g. via caches on shared objects).
    first = dataclasses.asdict(_run_scenario("torus_5x5_default", engine))
    second = dataclasses.asdict(_run_scenario("torus_5x5_default", engine))
    assert first == second


# --------------------------------------------------------------------------
# Trace-replay goldens: the same fixed-seed trace must produce bit-identical
# SimulationStats on every replay, for each of the four generator families.
# --------------------------------------------------------------------------

TRACE_SCENARIOS = {
    "dnn_inference": dict(layers=4, layer_window=48, fan_out=2, seed=21),
    "mpi_collective": dict(collective="allreduce_tree", step_cycles=6, seed=21),
    "stencil2d": dict(iterations=3, iteration_window=24, seed=21),
    "onoff": dict(duration=160, burst_rate=0.3, seed=21),
}


def _replay_scenario(workload: str, engine: str = "reference"):
    from repro.simulator.sweep import replay_trace
    from repro.workloads import make_workload_trace

    params = dict(TRACE_SCENARIOS[workload])
    seed = params.pop("seed")
    trace = make_workload_trace(workload, 4, 4, seed=seed, **params)
    config = SimulationConfig(drain_max_cycles=5000, seed=1, engine=engine)
    return trace, replay_trace(MeshTopology(4, 4), trace, config=config)


@pytest.mark.parametrize("workload", sorted(TRACE_SCENARIOS))
def test_trace_replay_is_bit_identical_across_runs(workload):
    trace_a, first = _replay_scenario(workload)
    trace_b, second = _replay_scenario(workload)
    # Generation is deterministic (same bytes), and replaying the identical
    # trace twice yields identical statistics, per-phase values included.
    assert trace_a.to_jsonl_bytes() == trace_b.to_jsonl_bytes()
    assert dataclasses.asdict(first) == dataclasses.asdict(second)


@pytest.mark.parametrize("workload", sorted(TRACE_SCENARIOS))
def test_trace_replay_is_bit_identical_across_engines(workload):
    # Per-phase statistics included: a replay is the one mode where the
    # engines' delivery ordering feeds phase-resolved latency lists.
    per_engine = [
        dataclasses.asdict(_replay_scenario(workload, engine)[1])
        for engine in ENGINES
    ]
    for stats in per_engine[1:]:
        assert stats == per_engine[0]


@pytest.mark.parametrize("workload", sorted(TRACE_SCENARIOS))
def test_trace_replay_delivers_every_recorded_packet(workload):
    trace, stats = _replay_scenario(workload)
    assert stats.drained
    assert stats.packets_created == trace.num_packets
    assert stats.packets_delivered == trace.num_packets
    assert stats.packets_measured == trace.num_packets
    assert set(stats.phases) == set(trace.phase_names)
    assert sum(phase.packets_created for phase in stats.phases.values()) == (
        trace.num_packets
    )
