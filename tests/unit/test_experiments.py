"""Unit tests of the declarative experiment API (specs, campaigns, CLI)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.experiments import Campaign, ExperimentSpec, figure6_campaign
from repro.experiments.cli import main as cli_main
from repro.toolchain.predict import PredictionToolchain
from repro.topologies.mesh import MeshTopology
from repro.utils.validation import ValidationError

SRC_DIR = Path(repro.__file__).resolve().parents[1]


def small_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        topology="sparse_hamming",
        rows=4,
        cols=4,
        topology_kwargs={"s_r": {2}, "s_c": (2,)},
        arch={"endpoint_area_ge": 5e6},
        traffic="uniform",
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestExperimentSpec:
    def test_json_round_trip_equality(self):
        spec = small_spec()
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert clone.spec_id == spec.spec_id

    def test_kwargs_normalised_to_canonical_form(self):
        # Sets and tuples are accepted and canonicalised to sorted lists, so
        # differently-spelled but identical specs share one identity.
        a = small_spec(topology_kwargs={"s_r": {2}, "s_c": (2,)})
        b = small_spec(topology_kwargs={"s_r": [2], "s_c": [2]})
        assert a == b
        assert a.spec_id == b.spec_id

    def test_label_is_not_part_of_identity(self):
        assert small_spec(label="x").spec_id == small_spec(label="y").spec_id

    def test_spec_id_stable_across_processes(self):
        spec = small_spec()
        program = (
            "import json, sys\n"
            "from repro.experiments import ExperimentSpec\n"
            "spec = ExperimentSpec.from_json(sys.stdin.read())\n"
            "print(spec.spec_id)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c", program],
            input=spec.to_json(),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert completed.stdout.strip() == spec.spec_id

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValidationError, match="unknown topology"):
            ExperimentSpec(topology="moebius", rows=4, cols=4)

    def test_unknown_traffic_rejected(self):
        with pytest.raises(ValidationError, match="unknown traffic"):
            small_spec(traffic="avalanche")

    def test_unknown_arch_override_rejected(self):
        with pytest.raises(ValidationError, match="unknown arch override"):
            small_spec(arch={"warp_factor": 9})

    def test_unknown_sim_override_rejected(self):
        with pytest.raises(ValidationError, match="unknown simulation override"):
            small_spec(sim={"cycles": 10})

    def test_traffic_sim_override_rejected(self):
        # Traffic has exactly one spelling (the spec-level field); a sim
        # override would create contradictory specs with distinct spec_ids.
        with pytest.raises(ValidationError, match="spec-level 'traffic' field"):
            small_spec(sim={"traffic": "tornado"})

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValidationError, match="unknown scenario"):
            small_spec(scenario="z")

    def test_non_serializable_kwargs_rejected(self):
        with pytest.raises(ValidationError, match="not JSON-serializable"):
            small_spec(topology_kwargs={"s_r": object()})

    def test_from_dict_rejects_unknown_fields(self):
        data = small_spec().to_dict()
        data["surprise"] = 1
        with pytest.raises(ValidationError, match="unknown spec fields"):
            ExperimentSpec.from_dict(data)

    def test_run_matches_direct_toolchain(self):
        spec = small_spec()
        direct = spec.build_toolchain().predict(spec.build_topology())
        via_spec = spec.run()
        assert via_spec.zero_load_latency_cycles == direct.zero_load_latency_cycles
        assert via_spec.saturation_throughput == direct.saturation_throughput
        assert via_spec.area_overhead == direct.area_overhead

    def test_scenario_supplies_architecture_and_paper_config(self):
        spec = ExperimentSpec(topology="sparse_hamming", rows=8, cols=8, scenario="a")
        params = spec.build_parameters()
        assert params.num_tiles == 64
        assert params.endpoint_area_ge == 35e6
        topology = spec.build_topology()
        assert topology.s_r == frozenset({4})
        assert topology.s_c == frozenset({2, 5})


class TestCampaign:
    def test_grid_skips_inapplicable_topologies(self):
        # 4x4: hypercube applies (16 = 2^4) but SlimNoC does not; 3x3 flips
        # both off; 8x16 (128 tiles = 2*8^2) re-admits SlimNoC.
        names = {spec.topology for spec in Campaign.grid(sizes=[(4, 4)])}
        assert "hypercube" in names and "slimnoc" not in names
        names = {spec.topology for spec in Campaign.grid(sizes=[(3, 3)])}
        assert "hypercube" not in names and "slimnoc" not in names
        names = {spec.topology for spec in Campaign.grid(sizes=[(8, 16)])}
        assert "slimnoc" in names

    def test_grid_raises_when_skipping_disabled(self):
        with pytest.raises(ValidationError, match="not applicable"):
            Campaign.grid(topologies=["slimnoc"], sizes=[(4, 4)], skip_inapplicable=False)

    def test_grid_cartesian_expansion(self):
        campaign = Campaign.grid(
            topologies=["mesh", "torus"],
            sizes=[(4, 4), (4, 8)],
            traffics=["uniform", "tornado"],
            performance_modes=["analytical"],
        )
        assert len(campaign) == 2 * 2 * 2
        assert len({spec.spec_id for spec in campaign}) == len(campaign)

    def test_campaign_json_round_trip(self, tmp_path):
        campaign = Campaign.grid(sizes=[(4, 4)], name="round-trip")
        path = campaign.save(tmp_path / "campaign.json")
        loaded = Campaign.load(path)
        assert loaded.name == "round-trip"
        assert [s.spec_id for s in loaded] == [s.spec_id for s in campaign]

    def test_declarative_grid_json(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            json.dumps(
                {"name": "g", "grid": {"sizes": [[4, 4]], "topologies": ["mesh", "ring"]}}
            )
        )
        campaign = Campaign.load(path)
        assert campaign.name == "g"
        assert [spec.topology for spec in campaign] == ["mesh", "ring"]

    def test_figure6_campaign_matches_paper_setup(self):
        campaign = figure6_campaign("c")
        topologies = [spec.topology for spec in campaign]
        assert "slimnoc" in topologies
        shg = next(s for s in campaign if s.topology == "sparse_hamming")
        assert shg.topology_kwargs["s_r"] == [3]
        assert shg.topology_kwargs["s_c"] == [2, 5]

    def test_deduplicated(self):
        spec = small_spec()
        campaign = Campaign(specs=[spec, small_spec(label="other")])
        assert len(campaign.deduplicated()) == 1


class TestRoutingTableCache:
    def test_routing_built_once_per_topology_object(self, small_params, monkeypatch):
        import importlib

        # repro.toolchain re-exports the predict *function* under the module's
        # name, so resolve the module through importlib.
        predict_module = importlib.import_module("repro.toolchain.predict")

        calls = []
        real = predict_module.build_routing_tables

        def counting(topology):
            calls.append(topology)
            return real(topology)

        monkeypatch.setattr(predict_module, "build_routing_tables", counting)
        toolchain = PredictionToolchain(small_params)
        topology = MeshTopology(4, 4)
        toolchain.predict(topology)
        toolchain.predict(topology, traffic="tornado")
        toolchain.predict(topology)
        assert len(calls) == 1
        # A different object (even of the same shape) is keyed separately.
        toolchain.predict(MeshTopology(4, 4))
        assert len(calls) == 2


class TestCli:
    def test_list_topologies(self, capsys):
        assert cli_main(["list-topologies", "--rows", "4", "--cols", "4"]) == 0
        out = capsys.readouterr().out
        assert "sparse_hamming" in out and "slimnoc" in out

    def test_list_traffic(self, capsys):
        assert cli_main(["list-traffic"]) == 0
        out = capsys.readouterr().out
        assert "uniform" in out and "tornado" in out

    def test_predict_json(self, capsys):
        code = cli_main(
            [
                "predict",
                "--topology",
                "mesh",
                "--rows",
                "4",
                "--cols",
                "4",
                "--arch",
                '{"endpoint_area_ge": 5e6}',
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec_id"].startswith("exp-")
        assert payload["result"]["topology_name"] == "2D Mesh"

    def test_campaign_command(self, tmp_path, capsys):
        campaign = Campaign.grid(
            topologies=["mesh"], sizes=[(4, 4)], arch={"endpoint_area_ge": 5e6}
        )
        path = campaign.save(tmp_path / "campaign.json")
        csv_path = tmp_path / "out.csv"
        code = cli_main(
            ["campaign", "--spec", str(path), "--csv", str(csv_path)]
        )
        assert code == 0
        assert csv_path.exists()
        assert "mesh" in capsys.readouterr().out

    def test_validation_error_is_reported_not_raised(self, capsys):
        code = cli_main(
            ["predict", "--topology", "mesh", "--rows", "4", "--cols", "4",
             "--traffic", "bogus"]
        )
        assert code == 2
        assert "unknown traffic" in capsys.readouterr().err


WORKLOAD = {"name": "stencil2d", "seed": 3, "params": {"iterations": 2, "iteration_window": 16}}


class TestWorkloadSpecs:
    def test_workload_spec_round_trips_and_hashes(self):
        spec = small_spec(
            topology="mesh", performance_mode="simulation", workload=WORKLOAD
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.spec_id == spec.spec_id
        other = small_spec(
            topology="mesh",
            performance_mode="simulation",
            workload={**WORKLOAD, "seed": 4},
        )
        assert other.spec_id != spec.spec_id

    def test_workloadless_identity_matches_pre_workload_format(self):
        # Old serialized specs carry no 'workload' key; they must load and
        # share their identity with freshly built workload-less specs, so
        # existing on-disk memoization caches stay valid.
        spec = small_spec()
        legacy = spec.to_dict()
        legacy.pop("workload")
        assert ExperimentSpec.from_dict(legacy).spec_id == spec.spec_id
        assert "workload" not in spec._identity_dict()

    def test_workload_validation(self):
        with pytest.raises(ValidationError, match="unknown workload"):
            small_spec(performance_mode="simulation", workload={"name": "bogus"})
        with pytest.raises(ValidationError, match="require performance_mode='simulation'"):
            small_spec(workload=WORKLOAD)
        with pytest.raises(ValidationError, match="unknown workload keys"):
            small_spec(
                performance_mode="simulation",
                workload={"name": "stencil2d", "sizes": 4},
            )
        with pytest.raises(ValidationError, match="needs a 'name'"):
            small_spec(performance_mode="simulation", workload={"seed": 1})
        with pytest.raises(ValidationError, match="'params' must be a mapping"):
            small_spec(
                performance_mode="simulation",
                workload={"name": "stencil2d", "params": 3},
            )
        with pytest.raises(ValidationError, match="unknown parameters"):
            small_spec(
                performance_mode="simulation",
                workload={"name": "stencil2d", "params": {"bogus": 1}},
            )

    def test_seed_normalised_away_for_seed_independent_workloads(self):
        a = small_spec(
            performance_mode="simulation",
            workload={"name": "mpi_collective", "seed": 1},
        )
        b = small_spec(
            performance_mode="simulation",
            workload={"name": "mpi_collective", "seed": 2},
        )
        assert a.spec_id == b.spec_id
        assert "seed" not in a.workload

    def test_traffic_not_part_of_workload_spec_identity(self):
        # The synthetic traffic pattern is ignored (and documented so) when a
        # workload is set; it must not split spec_ids or cache entries.
        a = small_spec(performance_mode="simulation", workload=WORKLOAD)
        b = small_spec(
            performance_mode="simulation", workload=WORKLOAD, traffic="tornado"
        )
        assert a == b
        assert a.spec_id == b.spec_id

    def test_cached_workload_results_keep_phase_stats(self, tmp_path):
        from repro.experiments import ExperimentRunner

        spec = small_spec(
            topology="mesh",
            topology_kwargs={},
            performance_mode="simulation",
            workload=WORKLOAD,
            sim={"drain_max_cycles": 4000},
        )
        runner = ExperimentRunner(cache_dir=tmp_path)
        fresh = runner.run(spec)[0]
        assert not fresh.cached
        assert set(fresh.prediction.details["replay"].phases) == {"iter0", "iter1"}
        cached = runner.run(spec)[0]
        assert cached.cached
        phases = cached.prediction.details["phases"]
        assert set(phases) == {"iter0", "iter1"}
        assert phases["iter0"].packets_delivered == (
            fresh.prediction.details["replay"].phases["iter0"].packets_delivered
        )

    def test_cached_workload_results_keep_overall_replay_counts(self, tmp_path):
        # The overall packet counters are the only delivery evidence for
        # unphased traces (and feed the optimizer's undelivered penalty), so
        # they must survive the cache round-trip alongside the phase stats.
        from repro.experiments import ExperimentRunner

        spec = small_spec(
            topology="mesh",
            topology_kwargs={},
            performance_mode="simulation",
            workload=WORKLOAD,
            sim={"drain_max_cycles": 4000},
        )
        runner = ExperimentRunner(cache_dir=tmp_path)
        fresh = runner.run(spec)[0]
        replay = fresh.prediction.details["replay"]
        cached = runner.run(spec)[0]
        assert cached.cached
        assert cached.prediction.details["replay_counts"] == {
            "packets_created": replay.packets_created,
            "packets_delivered": replay.packets_delivered,
        }

    def test_build_workload_trace_is_deterministic(self):
        spec = small_spec(
            topology="mesh", performance_mode="simulation", workload=WORKLOAD
        )
        first, second = spec.build_workload_trace(), spec.build_workload_trace()
        assert first is not None
        assert first.to_jsonl_bytes() == second.to_jsonl_bytes()
        assert small_spec().build_workload_trace() is None

    def test_workload_spec_runs_end_to_end(self):
        spec = small_spec(
            topology="mesh",
            topology_kwargs={},
            performance_mode="simulation",
            workload=WORKLOAD,
            sim={"drain_max_cycles": 4000},
        )
        result = spec.run()
        assert result.performance_mode == "simulation"
        replay = result.details["replay"]
        assert replay.drained
        assert set(replay.phases) == {"iter0", "iter1"}
        assert result.zero_load_latency_cycles == replay.average_packet_latency
        assert result.saturation_throughput == replay.accepted_load

    def test_grid_workload_axis(self):
        campaign = Campaign.grid(
            topologies=("mesh", "torus"),
            sizes=((4, 4),),
            traffics=("uniform", "tornado"),
            workloads=(None, "stencil2d", {"name": "onoff", "seed": 2}),
        )
        workload_specs = [spec for spec in campaign if spec.workload is not None]
        synthetic_specs = [spec for spec in campaign if spec.workload is None]
        # Synthetic entries expand over the traffic axis; workload entries
        # do not (the trace carries its own traffic) and force simulation.
        assert len(synthetic_specs) == 2 * 2
        assert len(workload_specs) == 2 * 2
        assert all(spec.performance_mode == "simulation" for spec in workload_specs)
        names = {spec.workload["name"] for spec in workload_specs}
        assert names == {"stencil2d", "onoff"}
        with pytest.raises(ValidationError, match="workloads entries"):
            Campaign.grid(topologies=("mesh",), sizes=((4, 4),), workloads=(7,))

    def test_grid_workload_round_trips_through_json(self, tmp_path):
        campaign = Campaign.grid(
            topologies=("mesh",), sizes=((4, 4),), workloads=("stencil2d",)
        )
        path = campaign.save(tmp_path / "campaign.json")
        assert [spec.spec_id for spec in Campaign.load(path)] == [
            spec.spec_id for spec in campaign
        ]


class TestWorkloadCli:
    def test_list_workloads(self, capsys):
        assert cli_main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "dnn_inference" in out and "onoff" in out

    def test_gen_trace_and_replay(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        code = cli_main(
            ["gen-trace", "--workload", "dnn_inference", "--rows", "4", "--cols", "4",
             "--seed", "7", "--output", str(trace_path)]
        )
        assert code == 0
        assert trace_path.exists()
        assert "trace id: trace-" in capsys.readouterr().out
        code = cli_main(
            ["replay", "--trace", str(trace_path), "--topology", "mesh",
             "--rows", "4", "--cols", "4", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["drained"] is True
        assert [row["phase"] for row in payload["phases"]] == [
            "layer0", "layer1", "layer2", "layer3",
        ]

    def test_replay_generates_inline_workload(self, capsys):
        code = cli_main(
            ["replay", "--workload", "mpi_collective", "--params",
             '{"collective": "allreduce_tree"}', "--topology", "torus",
             "--rows", "4", "--cols", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reduce" in out and "broadcast" in out

    def test_replay_requires_a_trace_source(self, capsys):
        code = cli_main(["replay", "--topology", "mesh", "--rows", "4", "--cols", "4"])
        assert code == 2
        assert "provide --trace FILE or --workload NAME" in capsys.readouterr().err

    def test_replay_rejects_mismatched_tile_count_with_exit_2(self, tmp_path, capsys):
        # A trace generated for one grid replayed on another must exit with a
        # clean one-line error, not a traceback.
        trace_path = tmp_path / "t44.jsonl"
        assert cli_main(
            ["gen-trace", "--workload", "stencil2d", "--rows", "4", "--cols", "4",
             "--output", str(trace_path)]
        ) == 0
        capsys.readouterr()
        code = cli_main(
            ["replay", "--trace", str(trace_path), "--topology", "mesh",
             "--rows", "8", "--cols", "8"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "16 tiles" in err and "64" in err
        assert len(err.strip().splitlines()) == 1

    def test_replay_rejects_trace_and_workload_together(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        assert cli_main(
            ["gen-trace", "--workload", "stencil2d", "--rows", "4", "--cols", "4",
             "--output", str(trace_path)]
        ) == 0
        capsys.readouterr()
        code = cli_main(
            ["replay", "--trace", str(trace_path), "--workload", "onoff",
             "--topology", "mesh", "--rows", "4", "--cols", "4"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_replay_rejects_bad_overrides_with_exit_2(self, capsys):
        code = cli_main(
            ["replay", "--workload", "stencil2d", "--topology", "mesh",
             "--rows", "4", "--cols", "4", "--sim", '{"bogus": 1}']
        )
        assert code == 2
        assert "unknown simulation override" in capsys.readouterr().err
        code = cli_main(
            ["replay", "--workload", "stencil2d", "--topology", "mesh",
             "--rows", "4", "--cols", "4", "--topology-kwargs", '{"bogus": 1}']
        )
        assert code == 2
        assert "invalid topology kwargs" in capsys.readouterr().err
        code = cli_main(
            ["gen-trace", "--workload", "stencil2d", "--rows", "4", "--cols", "4",
             "--params", '{"bogus": 1}', "--output", "/tmp/never.jsonl"]
        )
        assert code == 2
        assert "unknown parameters" in capsys.readouterr().err
        code = cli_main(
            ["replay", "--workload", "stencil2d", "--topology", "mesh",
             "--rows", "4", "--cols", "4", "--params", "[1]"]
        )
        assert code == 2
        assert "--params must be a JSON object" in capsys.readouterr().err

    def test_replay_reports_malformed_trace_files_with_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"format":"repro-trace","version":1,"num_tiles":4,"phases":[],"meta":{}}\n'
            "[0,1,2]\n"
        )
        code = cli_main(
            ["replay", "--trace", str(bad), "--topology", "mesh",
             "--rows", "2", "--cols", "2"]
        )
        assert code == 2
        assert "malformed trace record" in capsys.readouterr().err

    def test_predict_with_workload_flag(self, capsys):
        code = cli_main(
            ["predict", "--topology", "mesh", "--rows", "4", "--cols", "4",
             "--arch", '{"endpoint_area_ge": 5e6}', "--workload", "stencil2d",
             "--sim", '{"drain_max_cycles": 4000}', "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["workload"]["name"] == "stencil2d"
        assert payload["spec"]["performance_mode"] == "simulation"

    OPTIMIZE_ARGS = [
        "optimize", "--rows", "4", "--cols", "4",
        "--space", '{"mesh": {}, "torus": {}, "sparse_hamming": {"max_configurations": 8}}',
        "--workload", '{"name": "mpi_collective", "params": {"collective": "alltoall"}}',
        "--survivors", "2", "--sim", '{"drain_max_cycles": 2000}',
    ]

    def test_optimize_reports_winner_and_baseline(self, capsys):
        assert cli_main(self.OPTIMIZE_ARGS) == 0
        out = capsys.readouterr().out
        assert "screened 10 candidates" in out
        assert "winner:" in out
        assert "speedup over baseline" in out

    def test_optimize_json_payload_is_complete(self, capsys):
        assert cli_main(self.OPTIMIZE_ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["screened"] == 10
        assert payload["counts"]["simulated_candidates"] == 2
        assert payload["baseline"]["topology"] == "mesh"
        assert payload["spec"]["objective"]["metric"] == "workload_latency"
        assert len(payload["rungs"]) == 1
        # The spec in the payload round-trips back into an equal SearchSpec.
        from repro.optimize import SearchSpec

        assert SearchSpec.from_dict(payload["spec"]).search_id == payload["search_id"]

    def test_optimize_trajectory_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "trajectory.csv"
        assert cli_main(self.OPTIMIZE_ARGS + ["--csv", str(csv_path)]) == 0
        capsys.readouterr()
        lines = csv_path.read_text().strip().splitlines()
        # Header + 10 screening rows + 2 rung rows.
        assert len(lines) == 1 + 10 + 2
        assert lines[0].startswith("stage,")

    def test_optimize_spec_file_round_trip(self, tmp_path, capsys):
        from repro.optimize import SearchSpec

        spec = SearchSpec(
            rows=4, cols=4,
            space={"mesh": {}, "torus": {}},
            objective={"metric": "workload_latency",
                       "workload": {"name": "stencil2d", "params": {"iterations": 2}}},
            survivors=2,
            sim={"drain_max_cycles": 1500},
        )
        path = tmp_path / "search.json"
        path.write_text(spec.to_json())
        assert cli_main(["optimize", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert spec.search_id in out

    def test_optimize_rejects_search_flags_alongside_spec_file(self, tmp_path, capsys):
        path = tmp_path / "search.json"
        path.write_text(
            '{"rows": 4, "cols": 4, "space": {"mesh": {}}, '
            '"objective": {"metric": "zero_load_latency"}}'
        )
        code = cli_main(["optimize", "--spec", str(path), "--rows", "8", "--cols", "8"])
        assert code == 2
        assert "drop --cols, --rows" in capsys.readouterr().err
        # Every search-defining flag is rejected, not just the grid — a
        # silently ignored --survivors or budget would mislead the user.
        code = cli_main(["optimize", "--spec", str(path), "--survivors", "2"])
        assert code == 2
        assert "drop --survivors" in capsys.readouterr().err
        code = cli_main(["optimize", "--spec", str(path), "--max-area-overhead", "0.2"])
        assert code == 2
        assert "drop --max-area-overhead" in capsys.readouterr().err

    def test_optimize_requires_grid_without_spec(self, capsys):
        assert cli_main(["optimize"]) == 2
        assert "--rows and --cols" in capsys.readouterr().err

    def test_optimize_workload_objective_needs_workload(self, capsys):
        code = cli_main(
            ["optimize", "--rows", "4", "--cols", "4",
             "--objective", "workload_latency"]
        )
        assert code == 2
        assert "needs a workload" in capsys.readouterr().err


class TestEngineThreading:
    """The simulation engine threads through specs, runner, and CLI."""

    FAST_SIM = {"warmup_cycles": 10, "measurement_cycles": 30, "drain_max_cycles": 150}

    def test_engine_excluded_from_spec_id(self):
        base = small_spec(performance_mode="simulation", sim=self.FAST_SIM)
        soa = base.with_overrides(sim={**self.FAST_SIM, "engine": "soa"})
        # Engines are bit-identical, so the engine must not split the
        # identity (or the memoization cache key space).
        assert base.spec_id == soa.spec_id
        assert base == soa
        # ... but the choice must reach the simulation configuration.
        assert base.build_simulation_config().engine == "reference"
        assert soa.build_simulation_config().engine == "soa"

    def test_audit_interval_excluded_from_spec_id(self):
        base = small_spec(performance_mode="simulation", sim=self.FAST_SIM)
        sampled = base.with_overrides(
            sim={**self.FAST_SIM, "engine": "sanitizer", "audit_interval": 25}
        )
        # The sanitizer's audit sampling period never changes statistics, so
        # (like the engine) it must not split the identity.
        assert base.spec_id == sampled.spec_id
        assert base == sampled
        assert sampled.build_simulation_config().audit_interval == 25
        assert base.build_simulation_config().audit_interval == 1

    def test_engine_survives_json_round_trip(self):
        spec = small_spec(
            performance_mode="simulation", sim={**self.FAST_SIM, "engine": "soa"}
        )
        rebuilt = ExperimentSpec.from_json(spec.to_json())
        assert rebuilt.sim["engine"] == "soa"

    def test_unknown_engine_rejected(self):
        from repro.simulator.simulation import SimulationConfig

        with pytest.raises(ValidationError, match="unknown simulation engine"):
            SimulationConfig(engine="numpy")
        with pytest.raises(ValidationError):
            small_spec(
                performance_mode="simulation", sim={"engine": "numpy"}
            ).build_simulation_config()

    def test_runner_cache_is_shared_across_engines(self, tmp_path):
        from repro.experiments import ExperimentRunner

        reference = ExperimentSpec(
            topology="mesh", rows=3, cols=3,
            performance_mode="simulation", sim=self.FAST_SIM,
        )
        soa = reference.with_overrides(sim={**self.FAST_SIM, "engine": "soa"})
        runner = ExperimentRunner(cache_dir=tmp_path)
        first = runner.run(reference)
        assert first.num_cached == 0
        # The engine-distinct spec hits the same cache entry.
        second = runner.run(soa)
        assert second.num_cached == 1
        assert (
            second[0].prediction.zero_load_latency_cycles
            == first[0].prediction.zero_load_latency_cycles
        )

    def test_progress_reporting_writes_stderr_lines(self, capsys):
        from repro.experiments import ExperimentRunner

        specs = [
            small_spec(label="a"),
            small_spec(label="b", traffic="tornado"),
        ]
        ExperimentRunner().run(specs, progress=True)
        err = capsys.readouterr().err
        assert "[repro] 1/2" in err
        assert "[repro] 2/2" in err
        assert "elapsed" in err

    def test_progress_reports_cache_hits_once(self, tmp_path, capsys):
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.run([small_spec(), small_spec(traffic="tornado")])
        capsys.readouterr()
        runner.run(
            [small_spec(), small_spec(traffic="tornado"), small_spec(traffic="neighbor")],
            progress=True,
        )
        err = capsys.readouterr().err
        assert "2 result(s) served from cache" in err
        assert "[repro] 1/1" in err

    def test_progress_off_is_silent(self, capsys):
        from repro.experiments import ExperimentRunner

        ExperimentRunner().run(small_spec())
        assert capsys.readouterr().err == ""


class TestEngineCli:
    """CLI surface of the engine layer plus ``repro --version``."""

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out

    def test_version_is_single_sourced_by_setup(self):
        # setup.py must carry no version literal of its own: it parses the
        # __version__ assignment out of src/repro/__init__.py (checked by
        # reproducing the parse here — importing setup.py would run setup()).
        import re

        setup_text = (SRC_DIR.parent / "setup.py").read_text()
        assert 'version=read_version()' in setup_text
        assert not re.search(r'version="\d', setup_text)
        source = (SRC_DIR / "repro" / "__init__.py").read_text()
        match = re.search(r'^__version__ = "([^"]+)"', source, re.MULTILINE)
        assert match is not None
        assert match.group(1) == repro.__version__

    def test_list_engines(self, capsys):
        assert cli_main(["list-engines"]) == 0
        out = capsys.readouterr().out
        assert "reference" in out and "soa" in out and "sanitizer" in out
        assert "vec" in out
        assert cli_main(["list-engines", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == [
            "reference",
            "sanitizer",
            "soa",
            "vec",
        ]

    def test_predict_engine_flag_is_bit_identical(self, capsys):
        argv = [
            "predict", "--topology", "mesh", "--rows", "3", "--cols", "3",
            "--mode", "simulation",
            "--sim", '{"warmup_cycles": 10, "measurement_cycles": 30, "drain_max_cycles": 150}',
            "--json",
        ]
        assert cli_main(argv) == 0
        reference = json.loads(capsys.readouterr().out)
        assert cli_main(argv + ["--engine", "soa"]) == 0
        soa = json.loads(capsys.readouterr().out)
        assert soa["spec_id"] == reference["spec_id"]
        assert (
            soa["result"]["zero_load_latency_cycles"]
            == reference["result"]["zero_load_latency_cycles"]
        )
        assert (
            soa["result"]["saturation_throughput"]
            == reference["result"]["saturation_throughput"]
        )

    def test_replay_engine_flag(self, capsys):
        base = [
            "replay", "--workload", "mpi_collective",
            "--params", '{"collective": "alltoall"}',
            "--topology", "mesh", "--rows", "3", "--cols", "3", "--json",
        ]
        assert cli_main(base) == 0
        reference = json.loads(capsys.readouterr().out)
        assert cli_main(base + ["--engine", "soa"]) == 0
        soa = json.loads(capsys.readouterr().out)
        assert soa == reference

    def test_replay_rejects_unknown_engine(self, capsys):
        code = cli_main(
            ["replay", "--workload", "onoff", "--topology", "mesh",
             "--rows", "3", "--cols", "3", "--sim", '{"engine": "numpy"}']
        )
        assert code == 2
        assert "unknown simulation engine" in capsys.readouterr().err

    def test_optimize_rejects_engine_flag_alongside_spec_file(self, tmp_path, capsys):
        path = tmp_path / "search.json"
        path.write_text(
            '{"rows": 4, "cols": 4, "space": {"mesh": {}}, '
            '"objective": {"metric": "zero_load_latency"}}'
        )
        code = cli_main(["optimize", "--spec", str(path), "--engine", "soa"])
        assert code == 2
        assert "drop --engine" in capsys.readouterr().err


class TestVerifyLintCli:
    """``repro verify`` and ``repro lint``."""

    def test_verify_single_topology(self, capsys):
        assert cli_main(["verify", "--topology", "mesh", "--rows", "4", "--cols", "4"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "escape CDG acyclic" in out

    def test_verify_all_topologies(self, capsys):
        assert cli_main(["verify", "--all-topologies"]) == 0
        out = capsys.readouterr().out
        # Every registered family verifies, including SlimNoC on its
        # fallback grid (4x4 is not 2*q^2).
        assert "slimnoc (3x6)" in out
        assert "all 9 topologies OK" in out

    def test_verify_json_output(self, capsys):
        assert cli_main(["verify", "--topology", "torus", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        report = payload[0]
        assert report["ok"] is True
        assert report["key"] == "torus"
        assert report["violations"] == []
        assert report["minimal_cdg_cyclic"] in (True, False)

    def test_verify_requires_a_target(self, capsys):
        assert cli_main(["verify"]) == 2
        assert "--topology" in capsys.readouterr().err

    def test_verify_rejects_conflicting_flags(self, capsys):
        code = cli_main(["verify", "--topology", "mesh", "--all-topologies"])
        assert code == 2
        assert "exclusive" in capsys.readouterr().err

    def test_verify_unknown_topology_exits_2(self, capsys):
        assert cli_main(["verify", "--topology", "nope"]) == 2
        assert "unknown topology" in capsys.readouterr().err

    def test_lint_clean_tree(self, capsys):
        assert cli_main(["lint"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_lint_json_output(self, capsys):
        assert cli_main(["lint", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_lint_reports_violations_with_exit_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nvalue = random.random()\n")
        assert cli_main(["lint", "--root", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "unseeded-global-rng" in captured.out
        assert "1 violation(s)" in captured.err
