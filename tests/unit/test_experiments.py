"""Unit tests of the declarative experiment API (specs, campaigns, CLI)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.experiments import Campaign, ExperimentSpec, figure6_campaign
from repro.experiments.cli import main as cli_main
from repro.toolchain.predict import PredictionToolchain
from repro.topologies.mesh import MeshTopology
from repro.utils.validation import ValidationError

SRC_DIR = Path(repro.__file__).resolve().parents[1]


def small_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        topology="sparse_hamming",
        rows=4,
        cols=4,
        topology_kwargs={"s_r": {2}, "s_c": (2,)},
        arch={"endpoint_area_ge": 5e6},
        traffic="uniform",
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestExperimentSpec:
    def test_json_round_trip_equality(self):
        spec = small_spec()
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert clone.spec_id == spec.spec_id

    def test_kwargs_normalised_to_canonical_form(self):
        # Sets and tuples are accepted and canonicalised to sorted lists, so
        # differently-spelled but identical specs share one identity.
        a = small_spec(topology_kwargs={"s_r": {2}, "s_c": (2,)})
        b = small_spec(topology_kwargs={"s_r": [2], "s_c": [2]})
        assert a == b
        assert a.spec_id == b.spec_id

    def test_label_is_not_part_of_identity(self):
        assert small_spec(label="x").spec_id == small_spec(label="y").spec_id

    def test_spec_id_stable_across_processes(self):
        spec = small_spec()
        program = (
            "import json, sys\n"
            "from repro.experiments import ExperimentSpec\n"
            "spec = ExperimentSpec.from_json(sys.stdin.read())\n"
            "print(spec.spec_id)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c", program],
            input=spec.to_json(),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert completed.stdout.strip() == spec.spec_id

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValidationError, match="unknown topology"):
            ExperimentSpec(topology="moebius", rows=4, cols=4)

    def test_unknown_traffic_rejected(self):
        with pytest.raises(ValidationError, match="unknown traffic"):
            small_spec(traffic="avalanche")

    def test_unknown_arch_override_rejected(self):
        with pytest.raises(ValidationError, match="unknown arch override"):
            small_spec(arch={"warp_factor": 9})

    def test_unknown_sim_override_rejected(self):
        with pytest.raises(ValidationError, match="unknown simulation override"):
            small_spec(sim={"cycles": 10})

    def test_traffic_sim_override_rejected(self):
        # Traffic has exactly one spelling (the spec-level field); a sim
        # override would create contradictory specs with distinct spec_ids.
        with pytest.raises(ValidationError, match="spec-level 'traffic' field"):
            small_spec(sim={"traffic": "tornado"})

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValidationError, match="unknown scenario"):
            small_spec(scenario="z")

    def test_non_serializable_kwargs_rejected(self):
        with pytest.raises(ValidationError, match="not JSON-serializable"):
            small_spec(topology_kwargs={"s_r": object()})

    def test_from_dict_rejects_unknown_fields(self):
        data = small_spec().to_dict()
        data["surprise"] = 1
        with pytest.raises(ValidationError, match="unknown spec fields"):
            ExperimentSpec.from_dict(data)

    def test_run_matches_direct_toolchain(self):
        spec = small_spec()
        direct = spec.build_toolchain().predict(spec.build_topology())
        via_spec = spec.run()
        assert via_spec.zero_load_latency_cycles == direct.zero_load_latency_cycles
        assert via_spec.saturation_throughput == direct.saturation_throughput
        assert via_spec.area_overhead == direct.area_overhead

    def test_scenario_supplies_architecture_and_paper_config(self):
        spec = ExperimentSpec(topology="sparse_hamming", rows=8, cols=8, scenario="a")
        params = spec.build_parameters()
        assert params.num_tiles == 64
        assert params.endpoint_area_ge == 35e6
        topology = spec.build_topology()
        assert topology.s_r == frozenset({4})
        assert topology.s_c == frozenset({2, 5})


class TestCampaign:
    def test_grid_skips_inapplicable_topologies(self):
        # 4x4: hypercube applies (16 = 2^4) but SlimNoC does not; 3x3 flips
        # both off; 8x16 (128 tiles = 2*8^2) re-admits SlimNoC.
        names = {spec.topology for spec in Campaign.grid(sizes=[(4, 4)])}
        assert "hypercube" in names and "slimnoc" not in names
        names = {spec.topology for spec in Campaign.grid(sizes=[(3, 3)])}
        assert "hypercube" not in names and "slimnoc" not in names
        names = {spec.topology for spec in Campaign.grid(sizes=[(8, 16)])}
        assert "slimnoc" in names

    def test_grid_raises_when_skipping_disabled(self):
        with pytest.raises(ValidationError, match="not applicable"):
            Campaign.grid(topologies=["slimnoc"], sizes=[(4, 4)], skip_inapplicable=False)

    def test_grid_cartesian_expansion(self):
        campaign = Campaign.grid(
            topologies=["mesh", "torus"],
            sizes=[(4, 4), (4, 8)],
            traffics=["uniform", "tornado"],
            performance_modes=["analytical"],
        )
        assert len(campaign) == 2 * 2 * 2
        assert len({spec.spec_id for spec in campaign}) == len(campaign)

    def test_campaign_json_round_trip(self, tmp_path):
        campaign = Campaign.grid(sizes=[(4, 4)], name="round-trip")
        path = campaign.save(tmp_path / "campaign.json")
        loaded = Campaign.load(path)
        assert loaded.name == "round-trip"
        assert [s.spec_id for s in loaded] == [s.spec_id for s in campaign]

    def test_declarative_grid_json(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            json.dumps(
                {"name": "g", "grid": {"sizes": [[4, 4]], "topologies": ["mesh", "ring"]}}
            )
        )
        campaign = Campaign.load(path)
        assert campaign.name == "g"
        assert [spec.topology for spec in campaign] == ["mesh", "ring"]

    def test_figure6_campaign_matches_paper_setup(self):
        campaign = figure6_campaign("c")
        topologies = [spec.topology for spec in campaign]
        assert "slimnoc" in topologies
        shg = next(s for s in campaign if s.topology == "sparse_hamming")
        assert shg.topology_kwargs["s_r"] == [3]
        assert shg.topology_kwargs["s_c"] == [2, 5]

    def test_deduplicated(self):
        spec = small_spec()
        campaign = Campaign(specs=[spec, small_spec(label="other")])
        assert len(campaign.deduplicated()) == 1


class TestRoutingTableCache:
    def test_routing_built_once_per_topology_object(self, small_params, monkeypatch):
        import importlib

        # repro.toolchain re-exports the predict *function* under the module's
        # name, so resolve the module through importlib.
        predict_module = importlib.import_module("repro.toolchain.predict")

        calls = []
        real = predict_module.build_routing_tables

        def counting(topology):
            calls.append(topology)
            return real(topology)

        monkeypatch.setattr(predict_module, "build_routing_tables", counting)
        toolchain = PredictionToolchain(small_params)
        topology = MeshTopology(4, 4)
        toolchain.predict(topology)
        toolchain.predict(topology, traffic="tornado")
        toolchain.predict(topology)
        assert len(calls) == 1
        # A different object (even of the same shape) is keyed separately.
        toolchain.predict(MeshTopology(4, 4))
        assert len(calls) == 2


class TestCli:
    def test_list_topologies(self, capsys):
        assert cli_main(["list-topologies", "--rows", "4", "--cols", "4"]) == 0
        out = capsys.readouterr().out
        assert "sparse_hamming" in out and "slimnoc" in out

    def test_list_traffic(self, capsys):
        assert cli_main(["list-traffic"]) == 0
        out = capsys.readouterr().out
        assert "uniform" in out and "tornado" in out

    def test_predict_json(self, capsys):
        code = cli_main(
            [
                "predict",
                "--topology",
                "mesh",
                "--rows",
                "4",
                "--cols",
                "4",
                "--arch",
                '{"endpoint_area_ge": 5e6}',
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec_id"].startswith("exp-")
        assert payload["result"]["topology_name"] == "2D Mesh"

    def test_campaign_command(self, tmp_path, capsys):
        campaign = Campaign.grid(
            topologies=["mesh"], sizes=[(4, 4)], arch={"endpoint_area_ge": 5e6}
        )
        path = campaign.save(tmp_path / "campaign.json")
        csv_path = tmp_path / "out.csv"
        code = cli_main(
            ["campaign", "--spec", str(path), "--csv", str(csv_path)]
        )
        assert code == 0
        assert csv_path.exists()
        assert "mesh" in capsys.readouterr().out

    def test_validation_error_is_reported_not_raised(self, capsys):
        code = cli_main(
            ["predict", "--topology", "mesh", "--rows", "4", "--cols", "4",
             "--traffic", "bogus"]
        )
        assert code == 2
        assert "unknown traffic" in capsys.readouterr().err
