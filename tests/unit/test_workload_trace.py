"""Unit tests of the workload-trace format (repro.workloads.trace)."""

from __future__ import annotations

import pytest

from repro.utils.validation import ValidationError
from repro.workloads.trace import (
    TRACE_FORMAT_VERSION,
    TracePhase,
    WorkloadTrace,
    merge_traces,
)


def tiny_trace(**overrides) -> WorkloadTrace:
    fields = dict(
        num_tiles=4,
        cycles=[0, 0, 3, 7],
        sources=[0, 1, 2, 3],
        destinations=[1, 2, 3, 0],
        sizes=[4, 2, 4, 1],
        phases=[TracePhase("warm", 0, 4), TracePhase("hot", 4, 8)],
        name="tiny",
        meta={"generator": "test"},
    )
    fields.update(overrides)
    return WorkloadTrace(**fields)


class TestTracePhase:
    def test_validates_window(self):
        with pytest.raises(ValidationError, match="start < end"):
            TracePhase("bad", 5, 5)
        with pytest.raises(ValidationError, match="start < end"):
            TracePhase("bad", -1, 3)
        with pytest.raises(ValidationError, match="non-empty"):
            TracePhase("", 0, 4)

    def test_duration(self):
        assert TracePhase("p", 2, 10).duration == 8


class TestWorkloadTraceValidation:
    def test_basic_properties(self):
        trace = tiny_trace()
        assert trace.num_packets == 4
        assert trace.total_flits == 11
        assert trace.duration == 8
        assert trace.phase_names == ("warm", "hot")

    def test_duration_covers_trailing_phase(self):
        trace = tiny_trace(phases=[TracePhase("long", 0, 50)])
        assert trace.duration == 50

    def test_rejects_empty_and_misshaped_records(self):
        with pytest.raises(ValidationError, match="at least one packet"):
            tiny_trace(cycles=[], sources=[], destinations=[], sizes=[])
        with pytest.raises(ValidationError, match="equally long"):
            tiny_trace(sizes=[1, 1])

    def test_rejects_unsorted_or_negative_cycles(self):
        with pytest.raises(ValidationError, match="non-decreasing"):
            tiny_trace(cycles=[3, 0, 1, 2])
        with pytest.raises(ValidationError, match="non-decreasing"):
            tiny_trace(cycles=[-1, 0, 3, 7])

    def test_rejects_bad_tiles_and_sizes(self):
        with pytest.raises(ValidationError, match="out of range"):
            tiny_trace(destinations=[1, 2, 3, 4])
        with pytest.raises(ValidationError, match="distinct source and destination"):
            tiny_trace(destinations=[0, 2, 3, 0])
        with pytest.raises(ValidationError, match=">= 1 flit"):
            tiny_trace(sizes=[4, 0, 4, 1])

    def test_rejects_bad_phases(self):
        with pytest.raises(ValidationError, match="duplicate phase name"):
            tiny_trace(phases=[TracePhase("p", 0, 2), TracePhase("p", 2, 4)])
        with pytest.raises(ValidationError, match="overlaps"):
            tiny_trace(phases=[TracePhase("a", 0, 4), TracePhase("b", 2, 6)])

    def test_phase_tables(self):
        trace = tiny_trace()
        table = trace.phase_of_cycle_table()
        assert len(table) == trace.duration
        assert table[0] == 0 and table[3] == 0
        assert table[4] == 1 and table[7] == 1
        counts = trace.phase_record_counts()
        assert counts == [(3, 10), (1, 1)]


class TestSerialization:
    def test_jsonl_round_trip_and_byte_stability(self):
        trace = tiny_trace()
        data = trace.to_jsonl_bytes()
        assert data == tiny_trace().to_jsonl_bytes()  # byte-stable
        rebuilt = WorkloadTrace.from_jsonl_bytes(data)
        assert rebuilt == trace
        assert rebuilt.trace_id == trace.trace_id

    def test_jsonl_file_round_trip(self, tmp_path):
        trace = tiny_trace()
        path = trace.save(tmp_path / "t.jsonl")
        assert WorkloadTrace.load(path) == trace

    def test_npz_file_round_trip(self, tmp_path):
        trace = tiny_trace()
        path = trace.save(tmp_path / "t.npz")
        loaded = WorkloadTrace.load(path)
        assert loaded == trace
        assert loaded.trace_id == trace.trace_id  # backend-independent id

    def test_corrupt_npz_raises_validation_error(self, tmp_path):
        path = tmp_path / "broken.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(ValidationError, match="malformed npz trace"):
            WorkloadTrace.from_npz(path)

    def test_binary_jsonl_raises_validation_error(self, tmp_path):
        # e.g. an .npz renamed to .jsonl: not UTF-8, must not traceback.
        path = tmp_path / "binary.jsonl"
        tiny_trace().to_npz(tmp_path / "t.npz")
        path.write_bytes((tmp_path / "t.npz").read_bytes())
        with pytest.raises(ValidationError, match="malformed trace"):
            WorkloadTrace.from_jsonl(path)

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="unknown trace suffix"):
            tiny_trace().save(tmp_path / "t.csv")
        with pytest.raises(ValidationError, match="unknown trace suffix"):
            WorkloadTrace.load(tmp_path / "t.csv")

    def test_version_and_format_tag_enforced(self, tmp_path):
        trace = tiny_trace()
        data = trace.to_jsonl_bytes().decode()
        header, rest = data.split("\n", 1)
        bad_version = header.replace(
            f'"version":{TRACE_FORMAT_VERSION}', f'"version":{TRACE_FORMAT_VERSION + 1}'
        )
        with pytest.raises(ValidationError, match="unsupported trace format version"):
            WorkloadTrace.from_jsonl_bytes((bad_version + "\n" + rest).encode())
        bad_tag = header.replace('"repro-trace"', '"other"')
        with pytest.raises(ValidationError, match="not a workload trace"):
            WorkloadTrace.from_jsonl_bytes((bad_tag + "\n" + rest).encode())

    def test_malformed_files_raise_validation_errors(self):
        good = tiny_trace().to_jsonl_bytes().decode()
        header, rest = good.split("\n", 1)
        # A record line that is valid JSON but not a 4-integer array.
        with pytest.raises(ValidationError, match="malformed trace record on line 2"):
            WorkloadTrace.from_jsonl_bytes((header + "\n[0,1,2]\n").encode())
        with pytest.raises(ValidationError, match="malformed trace record"):
            WorkloadTrace.from_jsonl_bytes((header + '\n{"cycle":0}\n').encode())
        # Floats must be rejected, not silently truncated to int64.
        with pytest.raises(ValidationError, match="malformed trace record"):
            WorkloadTrace.from_jsonl_bytes((header + "\n[0.9,0,1,4]\n").encode())
        with pytest.raises(ValidationError, match="malformed trace record"):
            WorkloadTrace.from_jsonl_bytes((header + '\n[0,"x",2,3]\n').encode())
        # A header missing required keys, and a non-object header.
        broken_header = header.replace('"num_tiles":4,', "")
        with pytest.raises(ValidationError, match="malformed trace header"):
            WorkloadTrace.from_jsonl_bytes((broken_header + "\n" + rest).encode())
        with pytest.raises(ValidationError, match="malformed trace header"):
            WorkloadTrace.from_jsonl_bytes(("[1,2]\n" + rest).encode())

    def test_trace_id_tracks_content(self):
        assert tiny_trace().trace_id != tiny_trace(sizes=[4, 2, 4, 2]).trace_id
        assert tiny_trace().trace_id != tiny_trace(name="other").trace_id


class TestMergeTraces:
    def test_merges_sorted_and_keeps_first_phases(self):
        foreground = tiny_trace()
        background = WorkloadTrace(
            num_tiles=4,
            cycles=[1, 5],
            sources=[3, 0],
            destinations=[2, 3],
            sizes=[1, 1],
            name="bg",
        )
        merged = merge_traces([foreground, background], name="mix")
        assert merged.num_packets == 6
        assert list(merged.cycles) == [0, 0, 1, 3, 5, 7]
        assert merged.phases == foreground.phases
        assert merged.meta["merged_from"] == ["tiny", "bg"]

    def test_rejects_mismatched_tiles(self):
        other = WorkloadTrace(
            num_tiles=6, cycles=[0], sources=[0], destinations=[5], sizes=[1]
        )
        with pytest.raises(ValidationError, match="different tile counts"):
            merge_traces([tiny_trace(), other])
