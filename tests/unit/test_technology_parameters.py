"""Unit tests for technology models and architectural parameters (Table II)."""

import pytest

from repro.physical.parameters import (
    AXI4_PROTOCOL,
    LIGHTWEIGHT_PROTOCOL,
    ArchitecturalParameters,
    TransportProtocolModel,
)
from repro.physical.technology import TECH_22NM, TECH_GF22FDX, TECHNOLOGY_PRESETS, TechnologyModel
from repro.utils.validation import ValidationError


class TestTechnologyModel:
    def test_presets_registered(self):
        assert TECH_22NM.name in TECHNOLOGY_PRESETS
        assert TECH_GF22FDX.name in TECHNOLOGY_PRESETS

    def test_ge_to_mm2_roundtrip(self):
        area = TECH_22NM.ge_to_mm2(1e6)
        assert TECH_22NM.mm2_to_ge(area) == pytest.approx(1e6)

    def test_ge_to_mm2_scale(self):
        # 1 MGE at 0.20 um^2/GE = 0.2 mm^2.
        assert TECH_22NM.ge_to_mm2(1e6) == pytest.approx(0.20, rel=1e-6)

    def test_wire_functions_follow_paper_formula(self):
        # The paper's recipe: x wires need x / sum(1/pitch) nanometres.
        tech = TechnologyModel(
            name="paper-example",
            ge_area_um2=0.2,
            horizontal_wire_pitches_nm=(40.0, 50.0, 60.0),
            vertical_wire_pitches_nm=(45.0, 55.0),
            logic_power_density_w_per_mm2=0.4,
            wire_power_density_w_per_mm2=0.2,
            wire_delay_s_per_mm=165e-12,
        )
        x = 1000
        expected_h = x * 1e-6 / (1 / 40 + 1 / 50 + 1 / 60)
        expected_v = x * 1e-6 / (1 / 45 + 1 / 55)
        assert tech.h_wires_to_mm(x) == pytest.approx(expected_h)
        assert tech.v_wires_to_mm(x) == pytest.approx(expected_v)

    def test_wire_functions_are_linear(self):
        assert TECH_22NM.h_wires_to_mm(200) == pytest.approx(2 * TECH_22NM.h_wires_to_mm(100))

    def test_power_functions(self):
        assert TECH_22NM.logic_power_w(2.0) == pytest.approx(2.0 * TECH_22NM.logic_power_density_w_per_mm2)
        assert TECH_22NM.wire_power_w(2.0) == pytest.approx(2.0 * TECH_22NM.wire_power_density_w_per_mm2)

    def test_wire_delay(self):
        assert TECH_22NM.wire_delay_s(10.0) == pytest.approx(10.0 * TECH_22NM.wire_delay_s_per_mm)

    def test_rejects_missing_pitches(self):
        with pytest.raises(ValidationError):
            TechnologyModel(
                name="bad",
                ge_area_um2=0.2,
                horizontal_wire_pitches_nm=(),
                vertical_wire_pitches_nm=(45.0,),
                logic_power_density_w_per_mm2=0.4,
                wire_power_density_w_per_mm2=0.2,
                wire_delay_s_per_mm=165e-12,
            )

    def test_rejects_negative_values(self):
        with pytest.raises(ValidationError):
            TECH_22NM.ge_to_mm2(-1)
        with pytest.raises(ValidationError):
            TECH_22NM.h_wires_to_mm(-1)


class TestTransportProtocolModel:
    def test_bw_to_wires_rounds_up(self):
        assert AXI4_PROTOCOL.bw_to_wires(512) == int(512 * AXI4_PROTOCOL.wires_per_payload_bit)
        assert LIGHTWEIGHT_PROTOCOL.bw_to_wires(10) >= 10

    def test_router_area_grows_quadratically_with_radix(self):
        # Design principle 1: router area scales ~quadratically with the radix.
        small = AXI4_PROTOCOL.router_area_ge(5, 5, 512)
        large = AXI4_PROTOCOL.router_area_ge(15, 15, 512)
        assert large > 3 * small

    def test_router_area_grows_with_bandwidth(self):
        narrow = AXI4_PROTOCOL.router_area_ge(5, 5, 128)
        wide = AXI4_PROTOCOL.router_area_ge(5, 5, 512)
        assert wide > 2 * narrow

    def test_router_area_rejects_zero_ports(self):
        with pytest.raises(ValidationError):
            AXI4_PROTOCOL.router_area_ge(0, 5, 512)

    def test_custom_protocol_validation(self):
        with pytest.raises(ValidationError):
            TransportProtocolModel(
                name="bad",
                wires_per_payload_bit=1.0,
                crossbar_ge_per_bit=1.0,
                buffer_ge_per_bit=1.0,
                buffer_flits_per_port=0,
                num_virtual_channels=1,
                control_ge_per_port_vc=1.0,
            )


class TestArchitecturalParameters:
    def test_table2_functions_are_exposed(self, small_params):
        assert small_params.f_ge_to_mm2(1e6) > 0
        assert small_params.f_h_wires_to_mm(100) > 0
        assert small_params.f_v_wires_to_mm(100) > 0
        assert small_params.f_l_mm2_to_w(1.0) > 0
        assert small_params.f_w_mm2_to_w(1.0) > 0
        assert small_params.f_mm_to_s(1.0) > 0
        assert small_params.f_bw_to_wires() > 0
        assert small_params.f_ar(5, 5) > 0

    def test_clock_period(self, small_params):
        assert small_params.clock_period_s == pytest.approx(1e-9)

    def test_chip_logic_area(self, small_params):
        expected = small_params.f_ge_to_mm2(16 * 5e6)
        assert small_params.chip_logic_area_mm2() == pytest.approx(expected)

    def test_scaled_copy(self, small_params):
        doubled = small_params.scaled(endpoint_area_ge=10e6)
        assert doubled.endpoint_area_ge == 10e6
        assert doubled.num_tiles == small_params.num_tiles

    def test_rejects_invalid_values(self):
        with pytest.raises(ValidationError):
            ArchitecturalParameters(num_tiles=1, endpoint_area_ge=1e6)
        with pytest.raises(ValidationError):
            ArchitecturalParameters(num_tiles=16, endpoint_area_ge=-1)
        with pytest.raises(ValidationError):
            ArchitecturalParameters(num_tiles=16, endpoint_area_ge=1e6, endpoints_per_tile=0)
