"""Unit tests for topology property analysis and the topology registry."""

import pytest

from repro.topologies import analyze_topology, make_topology
from repro.topologies.properties import bisection_link_count
from repro.topologies.registry import (
    DISPLAY_NAMES,
    PAPER_COMPARISON_ORDER,
    applicable_topologies,
    available_topologies,
    is_applicable,
)
from repro.topologies.mesh import MeshTopology
from repro.topologies.torus import TorusTopology
from repro.topologies.folded_torus import FoldedTorusTopology
from repro.topologies.flattened_butterfly import FlattenedButterflyTopology
from repro.utils.validation import ValidationError


class TestAnalyzeTopology:
    def test_mesh_properties(self):
        props = analyze_topology(MeshTopology(4, 4))
        assert props.router_radix == 5
        assert props.diameter == 6
        assert props.fraction_aligned_links == 1.0
        assert props.fraction_short_links == 1.0
        assert props.max_link_length == 1
        assert props.minimal_paths_present
        assert props.minimal_paths_used

    def test_torus_minimal_paths_present_but_not_used(self):
        # Table I: torus has minimal paths present but hop-minimal routing does
        # not use them (wrap-around links shorten hop counts, not wire length).
        props = analyze_topology(TorusTopology(6, 6))
        assert props.minimal_paths_present
        assert not props.minimal_paths_used

    def test_folded_torus_minimal_paths_absent(self):
        props = analyze_topology(FoldedTorusTopology(6, 6))
        assert not props.minimal_paths_present
        assert not props.minimal_paths_used

    def test_flattened_butterfly_properties(self):
        props = analyze_topology(FlattenedButterflyTopology(4, 4))
        assert props.diameter == 2
        assert props.router_radix == 7
        assert props.minimal_paths_present
        assert props.minimal_paths_used

    def test_average_link_length_mesh_is_one(self):
        props = analyze_topology(MeshTopology(3, 3))
        assert props.average_link_length == 1.0

    def test_bisection_counts_vertical_cut(self):
        assert bisection_link_count(MeshTopology(4, 4)) == 4
        assert bisection_link_count(TorusTopology(4, 4)) == 8

    def test_bisection_single_column_uses_horizontal_cut(self):
        topo = MeshTopology(4, 1)
        assert bisection_link_count(topo) == 1


class TestRegistry:
    def test_available_topologies_contains_all_paper_topologies(self):
        names = available_topologies()
        for key in PAPER_COMPARISON_ORDER:
            assert key in names

    def test_display_names_cover_all_factories(self):
        assert set(DISPLAY_NAMES) == set(available_topologies())

    def test_applicability_rules(self):
        assert is_applicable("mesh", 8, 8)
        assert is_applicable("hypercube", 8, 8)
        assert not is_applicable("hypercube", 6, 6)
        assert is_applicable("slimnoc", 8, 16)
        assert not is_applicable("slimnoc", 8, 8)
        assert not is_applicable("ring", 1, 2)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValidationError):
            is_applicable("banana", 4, 4)
        with pytest.raises(ValidationError):
            make_topology("banana", 4, 4)

    def test_applicable_topologies_scenario_a_excludes_slimnoc(self):
        names = applicable_topologies(8, 8)
        assert "slimnoc" not in names
        assert "flattened_butterfly" in names

    def test_applicable_topologies_scenario_c_includes_slimnoc(self):
        names = applicable_topologies(8, 16)
        assert "slimnoc" in names

    def test_make_topology_forwards_kwargs(self):
        shg = make_topology("sparse_hamming", 4, 6, s_r={3}, s_c={2})
        assert shg.name == "Sparse Hamming Graph"
        assert shg.num_tiles == 24

    def test_make_topology_rejects_inapplicable(self):
        with pytest.raises(ValidationError):
            make_topology("slimnoc", 8, 8)

    def test_make_topology_endpoints_per_tile(self):
        topo = make_topology("mesh", 4, 4, endpoints_per_tile=2)
        assert topo.router_radix() == 6
