"""Unit tests of the ``repro serve`` HTTP API (in-process server, port 0)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.experiments import ExperimentSpec
from repro.experiments.serialization import prediction_to_dict
from repro.service.api import make_server
from repro.service.store import ResultStore


def spec_for(topology: str = "mesh", **overrides) -> ExperimentSpec:
    kwargs = dict(topology=topology, rows=4, cols=4, traffic="uniform",
                  performance_mode="analytical")
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


@pytest.fixture
def served_store(tmp_path):
    """A store with one result, served on an OS-chosen port."""
    store = ResultStore(tmp_path / "store.sqlite")
    spec = spec_for()
    store.put(spec, prediction_to_dict(spec.run()))
    server = make_server(store, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield store, spec, f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post(url: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_healthz(served_store):
    _, _, base = served_store
    assert get(f"{base}/healthz") == (200, {"ok": True})


def test_predict_hit_returns_stored_result(served_store):
    store, spec, base = served_store
    code, body = get(f"{base}/predict?spec_id={spec.spec_id}")
    assert code == 200
    assert body["source"] == "store"
    assert body["spec_id"] == spec.spec_id
    assert body["result"] == store.get(spec.spec_id).result
    assert ExperimentSpec.from_dict(body["spec"]) == spec


def test_predict_unknown_spec_is_404(served_store):
    _, _, base = served_store
    code, body = get(f"{base}/predict?spec_id=exp-0000000000000000")
    assert code == 404
    assert "POST" in body["error"]


def test_predict_requires_spec_id(served_store):
    _, _, base = served_store
    code, body = get(f"{base}/predict")
    assert code == 400
    assert "spec_id" in body["error"]


def test_post_predict_hit_does_not_enqueue(served_store):
    store, spec, base = served_store
    code, body = get(f"{base}/stats")
    assert code == 200
    code, body = post(f"{base}/predict", spec.to_dict())
    assert code == 200
    assert body["source"] == "store"
    # Nothing was queued for a stored spec.
    code, body = get(f"{base}/stats")
    assert body["queue"] == {"pending": 0, "running": 0, "done": 0, "failed": 0}


def test_post_predict_miss_enqueues(served_store):
    _, _, base = served_store
    miss = spec_for("torus")
    code, body = post(f"{base}/predict", miss.to_dict())
    assert code == 202
    assert body["spec_id"] == miss.spec_id
    assert body["status"] == "pending"
    assert body["enqueued"] is True

    # The spec is now visible as a queued job...
    code, body = get(f"{base}/status?spec_id={miss.spec_id}")
    assert code == 200
    assert body["stored"] is False
    assert body["job"]["status"] == "pending"

    # ...and a GET while it waits reports 202, not 404.
    code, body = get(f"{base}/predict?spec_id={miss.spec_id}")
    assert code == 202
    assert body["source"] == "queue"

    # POSTing again does not create a second job.
    code, body = post(f"{base}/predict", miss.to_dict())
    assert code == 202
    assert body["enqueued"] is False


def test_post_predict_envelope_and_bad_json(served_store):
    store, spec, base = served_store
    code, body = post(f"{base}/predict", {"spec": spec.to_dict()})
    assert code == 200

    request = urllib.request.Request(
        f"{base}/predict", data=b"{not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 400

    code, body = post(f"{base}/predict", {"topology": "no-such-topology",
                                          "rows": 4, "cols": 4})
    assert code == 400


def test_status_never_seen_is_404(served_store):
    _, _, base = served_store
    code, body = get(f"{base}/status?spec_id=exp-0000000000000000")
    assert code == 404


def test_query_endpoint(served_store):
    store, spec, base = served_store
    code, body = get(f"{base}/query?topology=mesh")
    assert code == 200
    assert body["count"] == 1
    assert body["results"][0]["spec_id"] == spec.spec_id
    assert body["results"][0]["result"] == store.get(spec.spec_id).result

    code, body = get(f"{base}/query?topology=ring")
    assert (code, body["count"]) == (200, 0)

    code, body = get(f"{base}/query?bogus=1")
    assert code == 400
    code, body = get(f"{base}/query?limit=xyz")
    assert code == 400


def test_stats_endpoint(served_store):
    _, _, base = served_store
    code, body = get(f"{base}/stats")
    assert code == 200
    assert body["store"]["results"] == 1
    assert "queue" in body


def test_unknown_route_is_404(served_store):
    _, _, base = served_store
    assert get(f"{base}/nope")[0] == 404


def test_background_worker_drains_posted_miss(tmp_path):
    store = ResultStore(tmp_path / "store.sqlite")
    server = make_server(store, port=0, workers=1)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        miss = spec_for()
        code, body = post(f"{base}/predict", miss.to_dict())
        assert code == 202

        import time

        deadline = time.time() + 30.0
        while time.time() < deadline:
            code, body = get(f"{base}/status?spec_id={miss.spec_id}")
            if code == 200 and body.get("stored"):
                break
            time.sleep(0.1)
        assert body["stored"] is True
        assert body["job"]["status"] == "done"
        assert body["job"]["completions"] == 1

        code, body = get(f"{base}/predict?spec_id={miss.spec_id}")
        assert code == 200
        assert body["result"] == prediction_to_dict(miss.run())
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
