"""Unit tests of trace replay: TraceInjector, Simulator trace mode, replay_trace."""

from __future__ import annotations

import dataclasses

import pytest

from repro.simulator.simulation import SimulationConfig, Simulator
from repro.simulator.sweep import replay_trace
from repro.simulator.traffic import TraceInjector
from repro.topologies.mesh import MeshTopology
from repro.utils.validation import ValidationError
from repro.workloads import make_workload_trace
from repro.workloads.trace import TracePhase, WorkloadTrace


def small_trace() -> WorkloadTrace:
    return WorkloadTrace(
        num_tiles=16,
        cycles=[0, 0, 2, 5, 5, 9],
        sources=[0, 3, 7, 1, 12, 15],
        destinations=[5, 9, 2, 14, 4, 0],
        sizes=[2, 4, 1, 3, 2, 2],
        phases=[TracePhase("first", 0, 4), TracePhase("second", 4, 10)],
        name="small",
    )


class TestTraceInjector:
    def test_walks_cycles_in_order(self):
        trace = small_trace()
        injector = TraceInjector(
            trace.cycles, trace.sources, trace.destinations, trace.sizes
        )
        assert injector.num_packets == 6
        assert injector.total_flits == 14
        assert injector.last_cycle == 9
        assert injector.packets_for_cycle(0) == [(0, 5, 2), (3, 9, 4)]
        assert injector.packets_for_cycle(1) == []
        assert injector.packets_for_cycle(2) == [(7, 2, 1)]
        # Skipped cycles release their records at the next query.
        assert injector.packets_for_cycle(7) == [(1, 14, 3), (12, 4, 2)]
        assert not injector.exhausted
        assert injector.packets_for_cycle(9) == [(15, 0, 2)]
        assert injector.exhausted

    def test_rejects_ragged_columns(self):
        with pytest.raises(ValidationError, match="equally long"):
            TraceInjector([0, 1], [0], [1], [1])


class TestSimulatorTraceMode:
    def test_replays_all_packets_with_phases(self):
        trace = small_trace()
        stats = replay_trace(MeshTopology(4, 4), trace)
        assert stats.drained
        assert stats.packets_created == trace.num_packets
        assert stats.packets_delivered == trace.num_packets
        assert stats.packets_measured == trace.num_packets
        assert stats.measurement_cycles == trace.duration
        assert stats.offered_load == trace.total_flits / (trace.duration * 16)
        assert list(stats.phases) == ["first", "second"]
        first, second = stats.phases["first"], stats.phases["second"]
        assert first.packets_created == 3 and first.packets_delivered == 3
        assert second.packets_created == 3 and second.packets_delivered == 3
        assert first.flits_delivered == 7 and second.flits_delivered == 7
        assert first.average_packet_latency > 0
        assert not first.saturated and not second.saturated

    def test_replay_is_deterministic(self):
        trace = make_workload_trace("stencil2d", 4, 4, seed=11, iterations=2)
        first = replay_trace(MeshTopology(4, 4), trace)
        second = replay_trace(MeshTopology(4, 4), trace)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_trace_must_match_tile_count(self):
        trace = small_trace()
        with pytest.raises(ValidationError, match="addresses 16 tiles"):
            Simulator(MeshTopology(3, 3), trace=trace)

    def test_drained_replay_accepts_exactly_the_offer(self):
        # Flits arriving during the drain still count: a fully drained,
        # uncongested replay accepts exactly what the trace offered and must
        # not be flagged as saturated.
        trace = make_workload_trace(
            "mpi_collective", 4, 4, collective="allreduce_tree", step_cycles=6
        )
        stats = replay_trace(MeshTopology(4, 4), trace)
        assert stats.drained
        assert stats.accepted_load == pytest.approx(stats.offered_load)
        assert not stats.saturated

    def test_variable_packet_sizes_are_respected(self):
        trace = small_trace()
        stats = replay_trace(MeshTopology(4, 4), trace)
        # All flits of all packets are eventually delivered; phase flit
        # counters see the recorded (variable) sizes, not a fixed config.
        assert sum(p.flits_delivered for p in stats.phases.values()) == trace.total_flits

    def test_drain_limit_flags_undelivered(self):
        # A drain limit of zero cuts the run at the end of the trace window;
        # the tail packet cannot arrive, so the replay must not report drained.
        trace = small_trace()
        config = SimulationConfig(drain_max_cycles=0)
        stats = replay_trace(MeshTopology(4, 4), trace, config=config)
        assert not stats.drained
        assert stats.packets_delivered < trace.num_packets
        assert stats.phases["second"].saturated  # undelivered packets flag it

    def test_unphased_trace_reports_no_phases(self):
        trace = WorkloadTrace(
            num_tiles=16, cycles=[0, 1], sources=[0, 5], destinations=[3, 2], sizes=[2, 2]
        )
        stats = replay_trace(MeshTopology(4, 4), trace)
        assert stats.phases == {}
        assert stats.packets_delivered == 2

    def test_synthetic_runs_unaffected_by_trace_machinery(self):
        # A Bernoulli run through the same kernel reports no phases and
        # still uses the configured injection process.
        stats = Simulator(MeshTopology(4, 4), SimulationConfig(
            injection_rate=0.05, warmup_cycles=50, measurement_cycles=100,
            drain_max_cycles=500, seed=4,
        )).run()
        assert stats.phases == {}
        assert stats.offered_load == 0.05

    def test_mismatched_tile_count_raises_validation_error(self):
        # Validated up front in replay_trace — a mismatched replay must not
        # reach the simulator (or pay the routing-table BFS) first.
        from repro.utils.validation import ValidationError

        trace = small_trace()  # 16 tiles
        with pytest.raises(ValidationError, match="16 tiles.*has 9"):
            replay_trace(MeshTopology(3, 3), trace)

    def test_shared_network_replay(self):
        # replay_trace with a prebuilt network matches the self-built path.
        from repro.simulator.network import build_network
        from repro.simulator.routing_tables import build_routing_tables

        trace = small_trace()
        topology = MeshTopology(4, 4)
        config = SimulationConfig()
        routing = build_routing_tables(topology)
        network = build_network(topology, config=config.network_config(), routing=routing)
        direct = replay_trace(topology, trace, config=config)
        shared = replay_trace(topology, trace, config=config, network=network)
        assert dataclasses.asdict(direct) == dataclasses.asdict(shared)
