"""Unit tests for the cycle-accurate simulation kernel and load sweeps."""

import pytest

from repro.core.sparse_hamming import SparseHammingGraph
from repro.simulator.simulation import SimulationConfig, Simulator
from repro.simulator.sweep import (
    find_saturation_throughput,
    measure_zero_load_latency,
    run_load_sweep,
)
from repro.topologies.mesh import MeshTopology
from repro.topologies.ring import RingTopology
from repro.topologies.torus import TorusTopology
from repro.utils.validation import ValidationError


class TestSimulationConfig:
    def test_defaults_match_paper_setup(self):
        config = SimulationConfig()
        assert config.num_vcs == 8
        assert config.num_vcs * config.buffer_depth_flits == 32  # 32-flit buffers
        assert config.traffic == "uniform"

    def test_validation(self):
        with pytest.raises(ValidationError):
            SimulationConfig(injection_rate=1.5)
        with pytest.raises(ValidationError):
            SimulationConfig(measurement_cycles=0)

    def test_network_config_derivation(self):
        config = SimulationConfig(num_vcs=4, buffer_depth_flits=8, packet_size_flits=2)
        network_config = config.network_config()
        assert network_config.num_vcs == 4
        assert network_config.buffer_depth_flits == 8
        assert network_config.packet_size_flits == 2


class TestBasicSimulation:
    def test_all_measured_packets_delivered_at_low_load(self, fast_sim_config):
        simulator = Simulator(MeshTopology(4, 4), fast_sim_config)
        stats = simulator.run()
        assert stats.drained
        assert stats.packets_measured > 0
        assert stats.packets_delivered <= stats.packets_created
        assert stats.average_packet_latency > 0

    def test_latency_at_least_analytical_minimum(self, fast_sim_config):
        # Every packet needs at least (hops * pipeline + hops * link + serialization).
        stats = Simulator(MeshTopology(4, 4), fast_sim_config).run()
        minimum = fast_sim_config.packet_size_flits - 1 + fast_sim_config.router_pipeline_cycles
        assert stats.average_packet_latency >= minimum

    def test_accepted_load_tracks_offered_at_low_load(self, fast_sim_config):
        stats = Simulator(MeshTopology(4, 4), fast_sim_config).run()
        assert stats.accepted_load == pytest.approx(stats.offered_load, rel=0.35)

    def test_hops_consistent_with_topology(self, fast_sim_config):
        topology = MeshTopology(4, 4)
        stats = Simulator(topology, fast_sim_config).run()
        assert 1.0 <= stats.average_hops <= topology.diameter()

    def test_deterministic_given_seed(self, fast_sim_config):
        a = Simulator(MeshTopology(3, 3), fast_sim_config).run()
        b = Simulator(MeshTopology(3, 3), fast_sim_config).run()
        assert a.average_packet_latency == b.average_packet_latency
        assert a.packets_created == b.packets_created

    def test_zero_injection_rate(self):
        config = SimulationConfig(
            injection_rate=0.0, warmup_cycles=10, measurement_cycles=50, drain_max_cycles=50
        )
        stats = Simulator(MeshTopology(3, 3), config).run()
        assert stats.packets_created == 0
        assert stats.average_packet_latency == 0.0

    def test_multi_cycle_links_increase_latency(self, fast_sim_config):
        topology = MeshTopology(4, 4)
        slow_links = {link: 4 for link in topology.links}
        fast = Simulator(topology, fast_sim_config).run()
        slow = Simulator(topology, fast_sim_config, link_latencies=slow_links).run()
        assert slow.average_packet_latency > fast.average_packet_latency + 2

    def test_torus_wraparound_reduces_latency_vs_mesh(self, fast_sim_config):
        mesh = Simulator(MeshTopology(5, 5), fast_sim_config).run()
        torus = Simulator(TorusTopology(5, 5), fast_sim_config).run()
        assert torus.average_packet_latency < mesh.average_packet_latency

    def test_single_vc_network_works_via_escape_layer(self):
        config = SimulationConfig(
            injection_rate=0.03,
            num_vcs=1,
            buffer_depth_flits=4,
            packet_size_flits=2,
            warmup_cycles=100,
            measurement_cycles=200,
            drain_max_cycles=2000,
            seed=5,
        )
        stats = Simulator(TorusTopology(4, 4), config).run()
        assert stats.drained
        assert stats.escape_fraction == 1.0  # every packet uses the escape layer

    def test_escape_layer_rarely_used_at_low_load(self, fast_sim_config):
        stats = Simulator(MeshTopology(4, 4), fast_sim_config).run()
        assert stats.escape_fraction <= 0.2

    def test_different_traffic_patterns_run(self):
        for traffic in ("transpose", "tornado", "neighbor", "bit_complement"):
            config = SimulationConfig(
                injection_rate=0.05,
                traffic=traffic,
                warmup_cycles=50,
                measurement_cycles=150,
                drain_max_cycles=1000,
                packet_size_flits=2,
                num_vcs=4,
                buffer_depth_flits=2,
                seed=3,
            )
            stats = Simulator(MeshTopology(4, 4), config).run()
            assert stats.drained
            assert stats.packets_measured > 0


class TestSaturationBehaviour:
    def test_high_load_saturates_ring(self):
        config = SimulationConfig(
            injection_rate=0.6,
            warmup_cycles=100,
            measurement_cycles=300,
            drain_max_cycles=600,
            packet_size_flits=2,
            num_vcs=4,
            buffer_depth_flits=2,
            seed=2,
        )
        stats = Simulator(RingTopology(4, 4), config).run()
        assert stats.saturated
        assert stats.accepted_load < 0.6

    def test_flit_conservation(self, fast_sim_config):
        stats = Simulator(MeshTopology(4, 4), fast_sim_config).run()
        # Every delivered packet contributed all of its flits; no flit is lost.
        assert stats.packets_delivered * fast_sim_config.packet_size_flits >= (
            stats.flits_delivered_measurement
        ) - fast_sim_config.packet_size_flits * stats.num_tiles


class TestSweeps:
    def test_zero_load_latency_probe(self, fast_sim_config):
        stats = measure_zero_load_latency(MeshTopology(4, 4), fast_sim_config)
        assert stats.offered_load == pytest.approx(0.01)
        assert stats.average_packet_latency > 0

    def test_run_load_sweep_returns_point_per_rate(self, fast_sim_config):
        rates = [0.02, 0.05, 0.1]
        points = run_load_sweep(MeshTopology(3, 3), rates, config=fast_sim_config)
        assert [rate for rate, _ in points] == rates

    def test_find_saturation_orders_topologies_correctly(self):
        config = SimulationConfig(
            warmup_cycles=150,
            measurement_cycles=250,
            drain_max_cycles=1200,
            packet_size_flits=2,
            num_vcs=4,
            buffer_depth_flits=2,
            seed=4,
        )
        ring = find_saturation_throughput(RingTopology(4, 4), config, coarse_steps=4, refine_steps=1)
        shg = find_saturation_throughput(
            SparseHammingGraph(4, 4, s_r={2, 3}, s_c={2, 3}), config, coarse_steps=4, refine_steps=1
        )
        assert shg.saturation_throughput > ring.saturation_throughput
        assert shg.zero_load_latency < ring.zero_load_latency

    def test_sweep_points_recorded(self, fast_sim_config):
        result = find_saturation_throughput(
            MeshTopology(3, 3), fast_sim_config, coarse_steps=3, refine_steps=1
        )
        assert len(result.points) >= 3
        assert 0 < result.saturation_throughput <= 1.0
