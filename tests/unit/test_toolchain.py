"""Unit tests for the prediction toolchain (analytical model + predict API)."""

import pytest

from repro.core.sparse_hamming import SparseHammingGraph
from repro.simulator.simulation import SimulationConfig
from repro.toolchain.analytical import analytical_performance
from repro.toolchain.predict import PredictionToolchain, predict
from repro.toolchain.results import PredictionResult
from repro.topologies.flattened_butterfly import FlattenedButterflyTopology
from repro.topologies.mesh import MeshTopology
from repro.topologies.ring import RingTopology
from repro.topologies.torus import TorusTopology
from repro.utils.validation import ValidationError


class TestAnalyticalPerformance:
    def test_zero_load_latency_components(self):
        topo = MeshTopology(4, 4)
        perf = analytical_performance(
            topo, packet_size_flits=1, router_pipeline_cycles=1, injection_ejection_cycles=0
        )
        # With unit links, single-flit packets and 1-cycle routers the latency
        # equals twice the average hop count (one router + one link per hop).
        assert perf.zero_load_latency_cycles == pytest.approx(2 * topo.average_hop_count())

    def test_latency_grows_with_packet_size_and_pipeline(self):
        topo = MeshTopology(4, 4)
        small = analytical_performance(topo, packet_size_flits=1, router_pipeline_cycles=1)
        large = analytical_performance(topo, packet_size_flits=8, router_pipeline_cycles=3)
        assert large.zero_load_latency_cycles > small.zero_load_latency_cycles

    def test_link_latencies_increase_latency(self):
        topo = MeshTopology(4, 4)
        slow = analytical_performance(topo, link_latencies={l: 5 for l in topo.links})
        fast = analytical_performance(topo)
        assert slow.zero_load_latency_cycles > fast.zero_load_latency_cycles

    def test_saturation_ordering_ring_mesh_butterfly(self):
        ring = analytical_performance(RingTopology(4, 4))
        mesh = analytical_performance(MeshTopology(4, 4))
        butterfly = analytical_performance(FlattenedButterflyTopology(4, 4))
        assert ring.saturation_throughput < mesh.saturation_throughput
        assert mesh.saturation_throughput < butterfly.saturation_throughput

    def test_saturation_bounded_by_capacity(self):
        perf = analytical_performance(FlattenedButterflyTopology(4, 4))
        assert 0 < perf.saturation_throughput <= 1.0

    def test_average_hops_matches_graph(self):
        topo = TorusTopology(4, 4)
        perf = analytical_performance(topo)
        assert perf.average_hops == pytest.approx(topo.average_hop_count())

    def test_non_uniform_traffic_supported(self):
        perf = analytical_performance(MeshTopology(4, 4), traffic="tornado")
        assert perf.saturation_throughput > 0

    def test_efficiency_factor_bounds_validated(self):
        with pytest.raises(ValidationError):
            analytical_performance(MeshTopology(4, 4), flow_control_efficiency=0.0)


class TestPredictionToolchain:
    def test_prediction_result_fields(self, small_toolchain):
        result = small_toolchain.predict(MeshTopology(4, 4))
        assert isinstance(result, PredictionResult)
        assert result.topology_name == "2D Mesh"
        assert 0 <= result.area_overhead < 1
        assert result.noc_power_w >= 0
        assert result.zero_load_latency_cycles > 0
        assert 0 < result.saturation_throughput <= 1
        assert result.performance_mode == "analytical"
        assert result.physical is not None

    def test_percent_helpers_and_row(self, small_toolchain):
        result = small_toolchain.predict(MeshTopology(4, 4))
        assert result.area_overhead_percent == pytest.approx(100 * result.area_overhead)
        row = result.as_row()
        assert row["Topology"] == "2D Mesh"
        assert "Saturation Throughput [%]" in row

    def test_toolchain_is_callable(self, small_toolchain):
        result = small_toolchain(TorusTopology(4, 4))
        assert result.topology_name == "2D Torus"

    def test_rejects_unknown_mode(self, small_params):
        with pytest.raises(ValidationError):
            PredictionToolchain(small_params, performance_mode="magic")

    def test_predict_convenience_function(self, small_params):
        result = predict(MeshTopology(4, 4), small_params)
        assert result.performance_mode == "analytical"

    def test_simulation_mode_on_small_network(self, small_params, fast_sim_config):
        toolchain = PredictionToolchain(
            small_params, performance_mode="simulation", simulation_config=fast_sim_config
        )
        result = toolchain.predict(MeshTopology(4, 4))
        assert result.performance_mode == "simulation"
        assert result.zero_load_latency_cycles > 0
        assert 0 < result.saturation_throughput <= 1
        assert "sweep_points" in result.details

    def test_shg_better_performance_than_mesh_at_higher_cost(self, small_toolchain):
        mesh = small_toolchain.predict(MeshTopology(4, 4))
        shg = small_toolchain.predict(SparseHammingGraph(4, 4, s_r={2, 3}, s_c={2, 3}))
        assert shg.saturation_throughput >= mesh.saturation_throughput
        assert shg.zero_load_latency_cycles <= mesh.zero_load_latency_cycles
        assert shg.area_overhead >= mesh.area_overhead
