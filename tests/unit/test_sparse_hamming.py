"""Unit tests for the sparse Hamming graph (the paper's primary contribution)."""

import pytest

from repro.core.sparse_hamming import SparseHammingGraph, sparse_hamming_links, validate_skip_sets
from repro.topologies.flattened_butterfly import FlattenedButterflyTopology
from repro.topologies.mesh import MeshTopology
from repro.utils.validation import ValidationError


class TestParameterValidation:
    def test_valid_sets_normalised(self):
        s_r, s_c = validate_skip_sets(8, 8, [2, 4, 4], (5,))
        assert s_r == frozenset({2, 4})
        assert s_c == frozenset({5})

    def test_rejects_skip_of_one(self):
        with pytest.raises(ValidationError):
            validate_skip_sets(8, 8, [1], [])

    def test_rejects_skip_equal_to_dimension(self):
        with pytest.raises(ValidationError):
            validate_skip_sets(8, 8, [8], [])
        with pytest.raises(ValidationError):
            validate_skip_sets(8, 8, [], [8])

    def test_s_r_bounded_by_columns_s_c_by_rows(self):
        # On a 4x8 grid, S_R may contain up to 7, S_C only up to 3.
        validate_skip_sets(4, 8, [7], [3])
        with pytest.raises(ValidationError):
            validate_skip_sets(4, 8, [], [4])

    def test_rejects_non_integer_elements(self):
        with pytest.raises(ValidationError):
            validate_skip_sets(8, 8, [2.5], [])


class TestConstruction:
    def test_empty_sets_give_mesh(self):
        shg = SparseHammingGraph(5, 6)
        mesh = MeshTopology(5, 6)
        assert set(shg.links) == set(mesh.links)
        assert shg.is_mesh()

    def test_full_sets_give_flattened_butterfly(self):
        rows, cols = 4, 5
        shg = SparseHammingGraph(rows, cols, s_r=range(2, cols), s_c=range(2, rows))
        butterfly = FlattenedButterflyTopology(rows, cols)
        assert set(shg.links) == set(butterfly.links)
        assert shg.is_flattened_butterfly()

    def test_link_count_formula(self):
        # Adding skip x to S_R adds R * (C - x) links; analogous for columns.
        rows, cols = 6, 8
        mesh_links = rows * (cols - 1) + cols * (rows - 1)
        shg = SparseHammingGraph(rows, cols, s_r={3}, s_c={2, 4})
        expected = mesh_links + rows * (cols - 3) + cols * (rows - 2) + cols * (rows - 4)
        assert shg.num_links == expected

    def test_all_links_aligned(self):
        shg = SparseHammingGraph(6, 6, s_r={2, 5}, s_c={3})
        assert all(shg.link_is_aligned(link) for link in shg.links)

    def test_construction_matches_paper_description(self):
        # For each row r, each x in S_R and each i <= C - x there is a link
        # T(r, i) <-> T(r, i + x)  (1-based in the paper, 0-based here).
        rows, cols, x = 3, 7, 4
        shg = SparseHammingGraph(rows, cols, s_r={x})
        for r in range(rows):
            for i in range(cols - x):
                assert shg.has_link(r * cols + i, r * cols + i + x)

    def test_figure6a_configuration(self):
        shg = SparseHammingGraph(8, 8, s_r={4}, s_c={2, 5})
        assert shg.s_r == frozenset({4})
        assert shg.s_c == frozenset({2, 5})
        assert shg.is_connected()
        assert "S_R={4}" in shg.describe_configuration()

    def test_subgraph_of_hamming_graph(self):
        # Every link stays within one row or one column (definition of the 2D
        # Hamming graph, the graph product of two cliques).
        shg = SparseHammingGraph(5, 7, s_r={2, 3, 6}, s_c={2, 4})
        for link in shg.links:
            a, b = shg.coord(link.src), shg.coord(link.dst)
            assert a.row == b.row or a.col == b.col


class TestDerivedConfigurations:
    def test_add_and_remove_row_skip(self):
        shg = SparseHammingGraph(6, 6)
        grown = shg.add_row_skip(3)
        assert grown.s_r == frozenset({3})
        assert grown.num_links > shg.num_links
        back = grown.remove_row_skip(3)
        assert back.is_mesh()

    def test_add_and_remove_col_skip(self):
        shg = SparseHammingGraph(6, 6, s_c={2})
        assert shg.remove_col_skip(2).is_mesh()
        assert shg.add_col_skip(4).s_c == frozenset({2, 4})

    def test_with_parameters_preserves_grid_and_endpoints(self):
        shg = SparseHammingGraph(4, 6, endpoints_per_tile=2)
        other = shg.with_parameters({3}, {2})
        assert other.rows == 4 and other.cols == 6
        assert other.endpoints_per_tile == 2


class TestExpectedProperties:
    @pytest.mark.parametrize(
        "rows,cols,s_r,s_c",
        [
            (4, 4, (), ()),
            (8, 8, (4,), (2, 5)),
            (8, 8, (2, 4), (2, 4)),
            (5, 9, (3, 7), (2,)),
            (8, 16, (3,), (2, 5)),
        ],
    )
    def test_expected_diameter_matches_bfs(self, rows, cols, s_r, s_c):
        shg = SparseHammingGraph(rows, cols, s_r=s_r, s_c=s_c)
        assert shg.expected_diameter() == shg.diameter()

    @pytest.mark.parametrize(
        "rows,cols,s_r,s_c",
        [
            (4, 4, (), ()),
            (8, 8, (4,), (2, 5)),
            (6, 6, (2, 3, 4, 5), (2, 3, 4, 5)),
            (5, 9, (3, 7), (2,)),
        ],
    )
    def test_expected_radix_matches_graph(self, rows, cols, s_r, s_c):
        shg = SparseHammingGraph(rows, cols, s_r=s_r, s_c=s_c)
        assert shg.expected_radix() == shg.router_radix()

    def test_radix_range_of_table1(self):
        # Table I: radix in [4, R+C-2] (plus endpoint port).
        mesh_like = SparseHammingGraph(8, 8)
        dense = SparseHammingGraph(8, 8, s_r=range(2, 8), s_c=range(2, 8))
        assert mesh_like.router_radix() == 4 + 1
        assert dense.router_radix() == 8 + 8 - 2 + 1

    def test_diameter_range_of_table1(self):
        mesh_like = SparseHammingGraph(8, 8)
        dense = SparseHammingGraph(8, 8, s_r=range(2, 8), s_c=range(2, 8))
        assert mesh_like.diameter() == 8 + 8 - 2
        assert dense.diameter() == 2

    def test_adding_links_never_hurts_diameter(self):
        base = SparseHammingGraph(8, 8, s_r={4})
        denser = base.add_row_skip(2)
        assert denser.diameter() <= base.diameter()
