"""Unit tests for area/power/latency estimates and the end-to-end physical model."""

import pytest

from repro.core.sparse_hamming import SparseHammingGraph
from repro.physical.model import NoCPhysicalModel
from repro.topologies.flattened_butterfly import FlattenedButterflyTopology
from repro.topologies.mesh import MeshTopology
from repro.topologies.ring import RingTopology
from repro.topologies.torus import TorusTopology
from repro.utils.validation import ValidationError


class TestAreaEstimate:
    def test_total_area_at_least_logic_area(self, small_params):
        result = NoCPhysicalModel(small_params).evaluate(MeshTopology(4, 4))
        assert result.area.total_area_mm2 >= result.area.logic_only_area_mm2
        assert 0.0 <= result.area.area_overhead < 1.0

    def test_overhead_definition(self, small_params):
        result = NoCPhysicalModel(small_params).evaluate(TorusTopology(4, 4))
        area = result.area
        assert area.area_overhead == pytest.approx(
            (area.total_area_mm2 - area.logic_only_area_mm2) / area.total_area_mm2
        )
        assert area.noc_area_mm2 == pytest.approx(
            area.total_area_mm2 - area.logic_only_area_mm2
        )

    def test_denser_topology_has_larger_overhead(self, small_params):
        model = NoCPhysicalModel(small_params)
        mesh = model.evaluate(MeshTopology(4, 4))
        butterfly = model.evaluate(FlattenedButterflyTopology(4, 4))
        assert butterfly.area_overhead > mesh.area_overhead

    def test_total_cells_positive(self, small_params):
        result = NoCPhysicalModel(small_params).evaluate(MeshTopology(4, 4))
        assert result.area.total_cells > 0
        assert result.unit_cells.logic_cells > 0


class TestPowerEstimate:
    def test_noc_power_is_total_minus_logic(self, small_params):
        result = NoCPhysicalModel(small_params).evaluate(TorusTopology(4, 4))
        power = result.power
        assert power.noc_power_w == pytest.approx(
            power.total_power_w - power.logic_only_power_w
        )
        assert power.noc_power_w >= 0

    def test_power_grows_with_link_count(self, small_params):
        model = NoCPhysicalModel(small_params)
        mesh = model.evaluate(MeshTopology(4, 4))
        butterfly = model.evaluate(FlattenedButterflyTopology(4, 4))
        assert butterfly.noc_power_w > mesh.noc_power_w

    def test_wire_cells_counted(self, small_params):
        result = NoCPhysicalModel(small_params).evaluate(
            SparseHammingGraph(4, 4, s_r={2}, s_c={2})
        )
        assert result.power.horizontal_cells > 0
        assert result.power.vertical_cells > 0


class TestLinkLatency:
    def test_every_link_has_latency_of_at_least_one_cycle(self, small_params):
        result = NoCPhysicalModel(small_params).evaluate(TorusTopology(4, 4))
        assert set(result.link_latencies) == set(result.topology.links)
        assert all(latency >= 1 for latency in result.link_latencies.values())

    def test_adjacent_links_are_single_cycle(self, small_params):
        result = NoCPhysicalModel(small_params).evaluate(MeshTopology(4, 4))
        assert all(latency == 1 for latency in result.link_latencies.values())

    def test_long_links_take_more_cycles_at_high_frequency(self, small_params):
        fast = small_params.scaled(frequency_hz=3.0e9, num_tiles=64, name="fast-8x8")
        result = NoCPhysicalModel(fast).evaluate(TorusTopology(8, 8))
        assert result.max_link_latency() > 1

    def test_average_and_max_latency_consistent(self, small_params):
        result = NoCPhysicalModel(small_params).evaluate(TorusTopology(4, 4))
        assert 1 <= result.average_link_latency() <= result.max_link_latency()


class TestNoCPhysicalModel:
    def test_rejects_mismatched_tile_count(self, small_params):
        with pytest.raises(ValidationError):
            NoCPhysicalModel(small_params).evaluate(MeshTopology(8, 8))

    def test_model_is_callable(self, small_params):
        model = NoCPhysicalModel(small_params)
        result = model(MeshTopology(4, 4))
        assert result.topology.name == "2D Mesh"

    def test_result_exposes_intermediate_artifacts(self, small_params):
        result = NoCPhysicalModel(small_params).evaluate(RingTopology(4, 4))
        assert result.tile_geometry.router_ports >= 3
        assert result.floorplan.topology is result.topology
        assert result.global_routing.rows == 4
        assert result.unit_cells.chip_width_mm > 0
        assert result.detailed_routing.collisions == 0

    def test_deterministic(self, small_params):
        model = NoCPhysicalModel(small_params)
        a = model.evaluate(SparseHammingGraph(4, 4, s_r={2}, s_c={3}))
        b = model.evaluate(SparseHammingGraph(4, 4, s_r={2}, s_c={3}))
        assert a.area.total_area_mm2 == b.area.total_area_mm2
        assert a.noc_power_w == b.noc_power_w
        assert a.link_latencies == b.link_latencies

    def test_cost_ordering_matches_paper(self, small_params):
        # Figure 6 cost ordering: ring/mesh cheapest, flattened butterfly most
        # expensive, sparse Hamming graph tunable in between.
        model = NoCPhysicalModel(small_params)
        ring = model.evaluate(RingTopology(4, 4))
        mesh = model.evaluate(MeshTopology(4, 4))
        shg = model.evaluate(SparseHammingGraph(4, 4, s_r={2}, s_c={2}))
        butterfly = model.evaluate(FlattenedButterflyTopology(4, 4))
        assert mesh.area_overhead <= shg.area_overhead <= butterfly.area_overhead
        assert ring.area_overhead <= butterfly.area_overhead
