"""Unit tests for repro.utils.geometry and repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.geometry import Point, Rect, manhattan_distance
from repro.utils.rng import make_rng
from repro.utils.validation import ValidationError


class TestPoint:
    def test_translated(self):
        p = Point(1.0, 2.0).translated(0.5, -1.0)
        assert p == Point(1.5, 1.0)

    def test_is_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 5  # type: ignore[misc]


class TestRect:
    def test_basic_properties(self):
        r = Rect(1.0, 2.0, 3.0, 4.0)
        assert r.x2 == 4.0
        assert r.y2 == 6.0
        assert r.area == 12.0
        assert r.center == Point(2.5, 4.0)

    def test_contains_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(Point(0, 0))
        assert r.contains(Point(2, 2))
        assert not r.contains(Point(2.01, 1))

    def test_intersects(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 2, 2)
        c = Rect(2, 0, 2, 2)  # shares only an edge
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_rejects_negative_size(self):
        with pytest.raises(ValidationError):
            Rect(0, 0, -1, 1)


class TestManhattanDistance:
    def test_axis_aligned(self):
        assert manhattan_distance(Point(0, 0), Point(3, 0)) == 3

    def test_diagonal(self):
        assert manhattan_distance(Point(1, 1), Point(4, 5)) == 7

    def test_symmetry(self):
        a, b = Point(2, -1), Point(-3, 4)
        assert manhattan_distance(a, b) == manhattan_distance(b, a)


class TestMakeRng:
    def test_reproducible_with_seed(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.allclose(a, b)

    def test_different_streams_differ(self):
        a = make_rng(42, stream="traffic").random(5)
        b = make_rng(42, stream="arbiter").random(5)
        assert not np.allclose(a, b)

    def test_none_seed_returns_generator(self):
        rng = make_rng(None)
        assert isinstance(rng, np.random.Generator)

    def test_rejects_non_int_seed(self):
        with pytest.raises(ValidationError):
            make_rng("abc")  # type: ignore[arg-type]
