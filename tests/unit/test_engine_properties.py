"""Property-based invariant tests over randomized simulations.

Where the differential suite (``test_engine_equivalence.py``) checks that
every engine produces the *same* statistics, these tests check that the
statistics are *physically possible* — on randomized cases none of which has
a pinned golden:

* **flit conservation** — nothing is delivered that was not created, and the
  per-cycle conservation ledger holds (every case runs under the
  ``sanitizer`` engine, which audits flit and credit conservation, buffer
  bounds and allocation consistency on every cycle and raises on the first
  violation);
* **credit/capacity conservation** — accepted load can never exceed the
  injection capacity of one flit per tile per cycle;
* **latency lower bounds** — per measured packet, packet latency ≥ network
  latency ≥ ``router_pipeline_cycles`` x hops, and hops ≥ the BFS hop
  distance of the packet's source/destination pair (checked in aggregate
  through deterministic traffic patterns, whose destination map is known);
* **drained ⇒ zero in-flight** — a run reporting ``drained`` must have
  delivered every measured packet.

The cases are drawn by a pure-pytest generator (no hypothesis dependency)
from a fixed seed, and are ordered by *increasing* size: case ``NN`` has a
grid and phase windows no smaller than case ``NN-1``'s.  That makes failures
shrink-friendly by construction — if ``case12`` fails, rerun the lower
indices first; the smallest failing index is the minimal repro the generator
can express.  Every assertion message carries the case's full parameters,
so a failure is reconstructible without rerunning the generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Mapping

import numpy as np
import pytest

from repro.simulator.routing_tables import build_routing_tables
from repro.simulator.simulation import SimulationConfig, Simulator
from repro.simulator.traffic import make_traffic_pattern
from repro.topologies.mesh import MeshTopology
from repro.topologies.ring import RingTopology
from repro.topologies.torus import TorusTopology

#: Generator seed for the whole case sweep; change it and every case changes.
GENERATOR_SEED = 20240808

#: Number of randomized cases (indices 0..N-1, ordered by increasing size).
NUM_CASES = 18

_TOPOLOGIES = {
    "mesh": MeshTopology,
    "torus": TorusTopology,
    "ring": RingTopology,
}

#: Deterministic patterns: ``destination(source)`` is a pure function, so
#: the BFS lower bound on hop counts can be computed exactly.
_DETERMINISTIC_TRAFFIC = ("transpose", "tornado", "neighbor", "bit_complement")


@dataclass(frozen=True)
class PropertyCase:
    """One randomized simulation case, identified by ``(seed, index)``."""

    index: int
    topology: str
    rows: int
    cols: int
    traffic: str
    config: Mapping[str, Any]

    @property
    def label(self) -> str:
        return f"case{self.index:02d}-{self.topology}-{self.traffic}"

    def describe(self) -> str:
        """Everything needed to rebuild this case by hand."""
        return (
            f"{self.label}: generator seed {GENERATOR_SEED}, "
            f"{self.topology} {self.rows}x{self.cols}, traffic {self.traffic}, "
            f"SimulationConfig(traffic={self.traffic!r}, "
            + ", ".join(f"{k}={v!r}" for k, v in self.config.items())
            + ") — lower case indices are smaller instances (shrink order)"
        )


def _draw_cases(count: int, seed: int) -> list[PropertyCase]:
    """Draw ``count`` cases with sizes that grow monotonically in the index.

    The randomized knobs (traffic, load, router parameters, simulation seed)
    come from one seeded RNG; the *size* knobs (grid, measurement window)
    are monotone functions of the index so that earlier cases are strictly
    easier to debug — the pure-pytest stand-in for hypothesis shrinking.
    """
    rng = np.random.default_rng(seed)
    topo_keys = sorted(_TOPOLOGIES)
    cases = []
    for index in range(count):
        # Size ramp: 3x3 grids and 60-cycle windows first, 5x5/160 last.
        side = 3 + index * 3 // count
        rows = side
        cols = side
        measurement = 60 + (index * 100) // max(count - 1, 1)
        topo_key = topo_keys[int(rng.integers(len(topo_keys)))]
        traffic_pool = ("uniform",) + _DETERMINISTIC_TRAFFIC
        traffic = traffic_pool[int(rng.integers(len(traffic_pool)))]
        if traffic == "transpose" and rows != cols:
            traffic = "uniform"
        config = dict(
            injection_rate=float(rng.choice([0.03, 0.10, 0.25, 0.50])),
            packet_size_flits=int(rng.choice([1, 2, 4])),
            num_vcs=int(rng.choice([1, 2, 4])),
            buffer_depth_flits=int(rng.choice([1, 2, 4])),
            router_pipeline_cycles=int(rng.choice([1, 2, 3])),
            warmup_cycles=int(rng.choice([0, 40])),
            measurement_cycles=measurement,
            drain_max_cycles=600,
            seed=int(rng.integers(0, 10_000)),
        )
        cases.append(
            PropertyCase(
                index=index,
                topology=topo_key,
                rows=rows,
                cols=cols,
                traffic=traffic,
                config=config,
            )
        )
    return cases


_CASES = _draw_cases(NUM_CASES, GENERATOR_SEED)

_PARAMS = [pytest.param(case, id=case.label) for case in _CASES]


@lru_cache(maxsize=None)
def _run(index: int):
    """Run case ``index`` once under the sanitizer engine; share the result.

    Running under ``sanitizer`` means every cycle of every case is audited
    for flit/credit conservation, buffer bounds and allocation consistency —
    a violation raises ``SanitizerError`` and fails whichever property test
    touched the case first.
    """
    case = _CASES[index]
    topology = _TOPOLOGIES[case.topology](case.rows, case.cols)
    config = SimulationConfig(traffic=case.traffic, engine="sanitizer", **case.config)
    simulator = Simulator(topology, config)
    stats = simulator.run()
    return topology, simulator, stats


@pytest.mark.parametrize("case", _PARAMS)
def test_flit_conservation(case):
    _, simulator, stats = _run(case.index)
    acc = simulator.engine._accumulator
    assert stats.packets_delivered <= stats.packets_created, case.describe()
    assert acc.measured_delivered <= stats.packets_measured, case.describe()
    # Every flit delivered inside the measurement window (measured or not —
    # warmup packets landing in the window count toward accepted load) came
    # from a created packet: window flits can never exceed created flits.
    assert (
        acc.flits_delivered_measurement
        <= stats.packets_created * case.config["packet_size_flits"]
    ), case.describe()


@pytest.mark.parametrize("case", _PARAMS)
def test_accepted_load_respects_capacity(case):
    _, _, stats = _run(case.index)
    # One flit per tile per cycle is the hard injection/ejection capacity;
    # accepted load is normalised to it and can never exceed 1.
    assert 0.0 <= stats.accepted_load <= 1.0 + 1e-12, case.describe()
    assert (
        stats.flits_delivered_measurement
        <= stats.measurement_cycles * stats.num_tiles
    ), case.describe()


@pytest.mark.parametrize("case", _PARAMS)
def test_per_packet_latency_lower_bounds(case):
    _, simulator, stats = _run(case.index)
    acc = simulator.engine._accumulator
    if not acc.measured_latencies:
        pytest.skip("case measured no packets")
    latencies = np.asarray(acc.measured_latencies)
    network = np.asarray(acc.measured_network_latencies)
    hops = np.asarray(acc.measured_hops)
    pipeline = case.config["router_pipeline_cycles"]
    # Queueing at the source only adds delay.
    assert (latencies >= network).all(), case.describe()
    # Every hop traverses a full router pipeline (and links only add).
    assert (network >= pipeline * hops).all(), case.describe()
    assert (network >= hops).all(), case.describe()
    assert (hops >= 0).all(), case.describe()


@pytest.mark.parametrize("case", _PARAMS)
def test_hops_respect_bfs_lower_bound(case):
    if case.traffic not in _DETERMINISTIC_TRAFFIC:
        pytest.skip("bound is only exact for deterministic destination maps")
    topology, simulator, stats = _run(case.index)
    acc = simulator.engine._accumulator
    if not acc.measured_hops:
        pytest.skip("case measured no packets")
    routing = build_routing_tables(topology)
    pattern = make_traffic_pattern(case.traffic, topology)
    rng = np.random.default_rng(0)  # unused by deterministic patterns
    bfs = [
        routing.hop_distance[source][pattern.destination(source, rng)]
        for source in range(topology.num_tiles)
    ]
    # Every packet's hop count is bounded below by the BFS distance of its
    # (source, destination) pair; without per-packet pairs the sharpest
    # aggregate form is the minimum over the (deterministic) pair set.
    assert min(np.asarray(acc.measured_hops)) >= min(bfs), case.describe()
    assert stats.average_hops >= min(bfs), case.describe()


@pytest.mark.parametrize("case", _PARAMS)
def test_drained_implies_zero_in_flight(case):
    _, simulator, stats = _run(case.index)
    acc = simulator.engine._accumulator
    if stats.drained:
        assert simulator.engine._measured_in_flight == 0, case.describe()
        assert acc.measured_delivered == stats.packets_measured, case.describe()
    else:
        # An undrained run must actually have something left in flight.
        assert simulator.engine._measured_in_flight > 0, case.describe()


def test_case_sizes_are_monotone():
    # The shrink order is a contract: lower index ⇒ no-larger instance.
    for previous, current in zip(_CASES, _CASES[1:]):
        assert current.rows >= previous.rows
        assert current.cols >= previous.cols
        assert (
            current.config["measurement_cycles"]
            >= previous.config["measurement_cycles"]
        )


def test_cases_are_reproducible():
    assert _draw_cases(NUM_CASES, GENERATOR_SEED) == _CASES
