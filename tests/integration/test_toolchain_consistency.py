"""Cross-validation of the two performance paths of the toolchain.

The analytical model is the fast path used for large sweeps; the cycle-accurate
simulator is the faithful path mirroring the paper's BookSim2 usage.  On small
networks the two must agree on orderings and be within a reasonable band of
each other — this is the calibration evidence referenced in the analytical
model's docstring.
"""

import pytest

from repro.core.sparse_hamming import SparseHammingGraph
from repro.simulator.routing_tables import build_routing_tables
from repro.simulator.simulation import SimulationConfig
from repro.simulator.sweep import find_saturation_throughput, measure_zero_load_latency
from repro.toolchain.analytical import analytical_performance
from repro.topologies.mesh import MeshTopology
from repro.topologies.ring import RingTopology
from repro.topologies.torus import TorusTopology


SIM_CONFIG = SimulationConfig(
    warmup_cycles=200,
    measurement_cycles=400,
    drain_max_cycles=2500,
    packet_size_flits=4,
    num_vcs=8,
    buffer_depth_flits=4,
    router_pipeline_cycles=2,
    seed=13,
)

TOPOLOGIES = {
    "ring": RingTopology(4, 4),
    "mesh": MeshTopology(4, 4),
    "torus": TorusTopology(4, 4),
    "shg": SparseHammingGraph(4, 4, s_r={2, 3}, s_c={2, 3}),
}


@pytest.fixture(scope="module")
def measurements():
    results = {}
    for name, topology in TOPOLOGIES.items():
        routing = build_routing_tables(topology)
        analytical = analytical_performance(
            topology,
            routing=routing,
            packet_size_flits=SIM_CONFIG.packet_size_flits,
            router_pipeline_cycles=SIM_CONFIG.router_pipeline_cycles,
        )
        zero_load = measure_zero_load_latency(topology, SIM_CONFIG, routing=routing)
        sweep = find_saturation_throughput(
            topology, SIM_CONFIG, routing=routing, coarse_steps=4, refine_steps=1
        )
        results[name] = (analytical, zero_load, sweep)
    return results


class TestZeroLoadLatencyConsistency:
    def test_within_forty_percent(self, measurements):
        for name, (analytical, zero_load, _) in measurements.items():
            simulated = zero_load.average_packet_latency
            predicted = analytical.zero_load_latency_cycles
            assert abs(simulated - predicted) / simulated < 0.4, name

    def test_ordering_preserved(self, measurements):
        analytical_order = sorted(
            measurements, key=lambda n: measurements[n][0].zero_load_latency_cycles
        )
        simulated_order = sorted(
            measurements, key=lambda n: measurements[n][1].average_packet_latency
        )
        # The fastest and slowest topologies must agree between the two models.
        assert analytical_order[0] == simulated_order[0]
        assert analytical_order[-1] == simulated_order[-1]


class TestSaturationConsistency:
    def test_within_factor_of_two(self, measurements):
        for name, (analytical, _, sweep) in measurements.items():
            ratio = analytical.saturation_throughput / max(sweep.saturation_throughput, 1e-6)
            assert 0.5 < ratio < 2.0, (name, ratio)

    def test_ring_saturates_first_in_both_models(self, measurements):
        analytical_worst = min(
            measurements, key=lambda n: measurements[n][0].saturation_throughput
        )
        simulated_worst = min(
            measurements, key=lambda n: measurements[n][2].saturation_throughput
        )
        assert analytical_worst == simulated_worst == "ring"

    def test_sparse_hamming_near_the_top_in_both_models(self, measurements):
        analytical_best = max(
            measurements, key=lambda n: measurements[n][0].saturation_throughput
        )
        assert analytical_best == "shg"
        # The load sweep has a finite bracket resolution, so in simulation we
        # only require the dense sparse Hamming graph to be within 15% of the
        # best simulated saturation throughput.
        best_simulated = max(m[2].saturation_throughput for m in measurements.values())
        shg_simulated = measurements["shg"][2].saturation_throughput
        assert shg_simulated >= 0.85 * best_simulated
