"""Integration tests for the two-stage topology search (:mod:`repro.optimize`).

Covers the acceptance properties of the optimizer: determinism (same seed and
search space produce the identical winner and trajectory), full memoization
(re-running a search against the same cache directory is served entirely from
cache), constraint filtering, screening/simulation bookkeeping, and the
analysis helpers built on the result.
"""

from __future__ import annotations

import pytest

from repro.analysis.search import (
    best_screened_per_family,
    compare_with_baseline,
    trajectory_records,
)
from repro.experiments import ExperimentRunner
from repro.optimize import SearchSpec, run_search
from repro.utils.validation import ValidationError

#: A small, fast search: 4x4 grid, stencil workload (replays in ~50 ms),
#: 18-candidate space, 4 survivors.
WORKLOAD_SPEC = SearchSpec(
    rows=4,
    cols=4,
    space={
        "mesh": {},
        "torus": {},
        "sparse_hamming": {"max_configurations": 16},
    },
    objective={
        "metric": "workload_latency",
        "workload": {"name": "mpi_collective", "params": {"collective": "alltoall"}},
    },
    constraints={"max_area_overhead": 0.60},
    sim={"drain_max_cycles": 2000},
    survivors=4,
    seed=0,
)


def _trajectory_signature(result):
    """Comparable, prediction-free digest of a search trajectory."""
    return (
        [(r.candidate.sort_key, r.feasible, r.reasons, r.score) for r in result.screening],
        [
            (rung.rung, dict(rung.sim_overrides), [(e.candidate.sort_key, e.spec_id, e.score) for e in rung.entries])
            for rung in result.rungs
        ],
        result.winner.sort_key,
        result.winner_score,
    )


class TestDeterminism:
    def test_same_spec_yields_identical_winner_and_trajectory(self):
        first = run_search(WORKLOAD_SPEC)
        second = run_search(WORKLOAD_SPEC)
        assert _trajectory_signature(first) == _trajectory_signature(second)
        assert first.winner == second.winner
        assert first.winner_score == second.winner_score
        assert first.baseline_score == second.baseline_score

    def test_different_seed_can_change_the_sampled_space(self):
        # The sampled sparse-Hamming configurations depend on the seed (the
        # mesh/butterfly endpoints are always included, the rest is drawn).
        # A cap of 6 < 16 total configurations forces actual sampling.
        sampled = WORKLOAD_SPEC.with_overrides(
            space={"mesh": {}, "torus": {}, "sparse_hamming": {"max_configurations": 6}}
        )
        reseeded = sampled.with_overrides(seed=5)
        first = run_search(sampled)
        second = run_search(reseeded)
        first_space = {r.candidate.sort_key for r in first.screening}
        second_space = {r.candidate.sort_key for r in second.screening}
        assert first_space != second_space


class TestMemoization:
    def test_rerun_is_served_entirely_from_cache(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path / "cache")
        first = run_search(WORKLOAD_SPEC, runner=runner)
        assert first.num_cached == 0
        second = run_search(WORKLOAD_SPEC, runner=runner)
        # Every cycle-accurate evaluation — all rungs plus the baseline —
        # must hit the cache on the second run.
        assert second.num_cached == second.simulations + 1
        assert all(
            entry.cached for rung in second.rungs for entry in rung.entries
        )
        assert _trajectory_signature(first) == _trajectory_signature(second)

    def test_cached_predictions_rank_like_live_ones(self, tmp_path):
        # Workload scores read per-phase stats, which survive serialization;
        # the cached re-run must therefore reproduce the exact scores.
        runner = ExperimentRunner(cache_dir=tmp_path / "cache")
        live = run_search(WORKLOAD_SPEC, runner=runner)
        cached = run_search(WORKLOAD_SPEC, runner=runner)
        assert [e.score for r in live.rungs for e in r.entries] == [
            e.score for r in cached.rungs for e in r.entries
        ]


class TestSearchStructure:
    def test_bookkeeping_counts_are_consistent(self):
        result = run_search(WORKLOAD_SPEC)
        assert result.candidates_screened == 18
        assert result.candidates_simulated == 4
        # 4 -> 2 -> 1: two rungs, 6 evaluations.
        assert len(result.rungs) == 2
        assert result.simulations == 6
        assert result.screening_ratio == pytest.approx(18 / 4)
        # The final rung runs at the spec's full budget.
        assert result.rungs[-1].sim_overrides == {}
        # Earlier rungs scale the drain budget down, never up.
        for rung in result.rungs[:-1]:
            assert rung.sim_overrides["drain_max_cycles"] <= 2000

    def test_winner_comes_from_final_rung(self):
        result = run_search(WORKLOAD_SPEC)
        final = result.rungs[-1]
        assert result.winner == final.entries[0].candidate
        assert result.winner_score == final.entries[0].score
        assert result.winner_prediction is final.entries[0].prediction

    def test_alltoall_favours_richer_connectivity_than_mesh(self):
        # Alltoall exercises every pair; a 4x4 mesh cannot beat the denser
        # sparse-Hamming configurations under a loose area budget.
        result = run_search(WORKLOAD_SPEC)
        assert result.winner.topology != "mesh"
        assert result.speedup_over_baseline > 1.0

    def test_link_length_budget_filters_candidates(self):
        spec = WORKLOAD_SPEC.with_overrides(constraints={"max_link_length": 1})
        result = run_search(spec)
        # Only the mesh (and the mesh-configuration sparse Hamming graph)
        # have unit-length links on a 4x4 grid.
        for record in result.screening:
            if record.feasible:
                assert record.candidate.topology in ("mesh", "sparse_hamming")
        assert result.winner_prediction.area_overhead < 0.05

    def test_infeasible_everything_raises(self):
        spec = WORKLOAD_SPEC.with_overrides(constraints={"max_area_overhead": 0.001})
        with pytest.raises(ValidationError, match="no candidate satisfies"):
            run_search(spec)

    def test_baseline_none_skips_comparison(self):
        spec = WORKLOAD_SPEC.with_overrides(baseline=None)
        result = run_search(spec)
        assert result.baseline_prediction is None
        assert result.speedup_over_baseline is None

    def test_result_serializes_to_json_form(self):
        import json

        result = run_search(WORKLOAD_SPEC)
        payload = result.to_dict()
        text = json.dumps(payload)  # must not raise
        assert payload["counts"]["screened"] == 18
        assert payload["winner"]["topology"] == result.winner.topology
        assert json.loads(text)["baseline"]["topology"] == "mesh"


class TestAnalysisHelpers:
    def test_trajectory_records_cover_both_stages(self):
        result = run_search(WORKLOAD_SPEC)
        rows = trajectory_records(result)
        stages = {row["stage"] for row in rows}
        assert "screen" in stages and "rung0" in stages and "rung1" in stages
        screen_rows = [row for row in rows if row["stage"] == "screen"]
        assert len(screen_rows) == result.candidates_screened

    def test_best_screened_per_family_is_feasible_minimum(self):
        result = run_search(WORKLOAD_SPEC)
        best = best_screened_per_family(result)
        assert set(best) <= {"mesh", "torus", "sparse_hamming"}
        for family, record in best.items():
            family_scores = [
                r.score
                for r in result.screening
                if r.feasible and r.candidate.topology == family
            ]
            assert record.score == min(family_scores)

    def test_compare_with_baseline_reports_phase_speedups(self):
        result = run_search(WORKLOAD_SPEC)
        comparison = compare_with_baseline(result)
        assert comparison["baseline"] == "2D Mesh"
        assert comparison["objective_speedup"] == result.speedup_over_baseline
        assert set(comparison["phase_speedups"]) == {"alltoall"}

    def test_compare_without_baseline_raises(self):
        result = run_search(WORKLOAD_SPEC.with_overrides(baseline=None))
        with pytest.raises(ValidationError, match="without a baseline"):
            compare_with_baseline(result)
