"""Store-migration round trip: legacy cache dir -> SQLite store -> 100% hits.

The migration acceptance criterion: importing an existing memoization
directory preserves every payload spec-for-spec, and a subsequent run of the
same campaign against the store computes nothing.
"""

from __future__ import annotations

import json

from repro.experiments import Campaign, ExperimentRunner
from repro.service.queue import WorkQueue
from repro.service.store import ResultStore


def small_campaign() -> Campaign:
    return Campaign.grid(
        topologies=("mesh", "torus", "sparse_hamming"),
        sizes=((4, 4),),
        traffics=("uniform", "tornado"),
        topology_kwargs={"sparse_hamming": {"s_r": [2], "s_c": [2]}},
        name="migration",
    )


def test_migration_round_trip_and_store_hits(tmp_path):
    campaign = small_campaign()
    cache_dir = tmp_path / "legacy-cache"
    store_path = tmp_path / "store.sqlite"

    # 1. A legacy campaign run populating the directory cache.
    legacy = ExperimentRunner(cache_dir=cache_dir).run(campaign)
    assert legacy.num_cached == 0
    entries = sorted(cache_dir.glob("*.json"))
    assert len(entries) == len(campaign.specs)

    # 2. One-shot migration imports every entry.
    store = ResultStore(store_path)
    report = store.import_cache_dir(cache_dir)
    assert report.imported == len(campaign.specs)
    assert report.already_present == 0
    assert report.invalid == []
    assert len(store) == len(campaign.specs)

    # 3. Spec-for-spec payload equality with the files on disk.
    for path in entries:
        payload = json.loads(path.read_text())
        row = store.get(path.stem)
        assert row is not None
        assert row.spec == payload["spec"]
        assert row.result == payload["result"]

    # 4. Re-running the campaign against the store is a 100% hit...
    replay = ExperimentRunner(store=store).run(campaign)
    assert replay.num_cached == len(campaign.specs)
    for before, after in zip(legacy, replay):
        assert before.spec == after.spec
        assert before.prediction.zero_load_latency_cycles == (
            after.prediction.zero_load_latency_cycles
        )
        assert before.prediction.noc_power_w == after.prediction.noc_power_w

    # ...and enqueueing it creates zero jobs.
    report = WorkQueue(store).enqueue(campaign)
    assert report.enqueued == 0
    assert report.already_stored == len(campaign.specs)

    # 5. The store-backed ResultSet matches the legacy run's records.
    from_store = store.result_set()
    legacy_records = {
        record["spec_id"]: record for record in legacy.to_records()
    }
    assert len(from_store) == len(legacy)
    for record in from_store.to_records():
        reference = legacy_records[record["spec_id"]]
        for key, value in reference.items():
            if key == "cached":
                continue
            assert record[key] == value, key
