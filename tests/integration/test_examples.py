"""Smoke tests: every example script runs to completion.

The slower examples are exercised through their ``main`` functions with
reduced scope where they accept arguments; all output goes to stdout and is
captured by pytest.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _run_example(name: str, argv: list[str] | None = None) -> None:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"example {name} missing"
    old_argv = sys.argv
    sys.argv = [str(script)] + (argv or [])
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs():
    _run_example("quickstart.py")


def test_design_principles_table_runs():
    _run_example("design_principles_table.py", ["4", "4"])


def test_floorplan_walkthrough_runs():
    _run_example("floorplan_walkthrough.py")


def test_mempool_validation_runs():
    _run_example("mempool_validation.py")


def test_visualize_topologies_runs():
    _run_example("visualize_topologies.py", ["4", "4"])


def test_campaign_grid_runs():
    _run_example("campaign_grid.py", ["4", "4"])


@pytest.mark.slow
def test_customize_noc_runs():
    _run_example("customize_noc.py", ["a"])


@pytest.mark.slow
def test_topology_comparison_runs():
    _run_example("topology_comparison.py", ["a"])


@pytest.mark.slow
def test_simulate_traffic_runs():
    _run_example("simulate_traffic.py")


def test_workload_replay_runs():
    _run_example("workload_replay.py")


def test_optimize_for_workload_runs():
    # Reduced scope: 16 sampled sparse-Hamming configurations, 4 survivors.
    _run_example("optimize_for_workload.py", ["16", "4"])
