"""Integration tests: full toolchain runs, customization, and paper claims
on reduced-size problem instances."""

import pytest

from repro.analysis.pareto import best_within_area_budget, latency_rank
from repro.arch.knc import scenario
from repro.core.customization import CustomizationGoal, customize_sparse_hamming
from repro.core.sparse_hamming import SparseHammingGraph
from repro.physical.parameters import ArchitecturalParameters
from repro.toolchain.predict import PredictionToolchain
from repro.topologies.registry import applicable_topologies, make_topology


@pytest.fixture(scope="module")
def scenario_a_toolchain() -> PredictionToolchain:
    return PredictionToolchain(scenario("a").parameters())


@pytest.fixture(scope="module")
def scenario_a_predictions(scenario_a_toolchain):
    target = scenario("a")
    predictions = {}
    for name in applicable_topologies(target.rows, target.cols):
        kwargs = {"s_r": target.paper_s_r, "s_c": target.paper_s_c} if name == "sparse_hamming" else {}
        topology = make_topology(
            name, target.rows, target.cols, endpoints_per_tile=target.cores_per_tile, **kwargs
        )
        predictions[name] = scenario_a_toolchain.predict(topology)
    return predictions


class TestScenarioAFigure6Claims:
    """Qualitative checks of Figure 6a with the paper's own SHG configuration."""

    def test_all_paper_topologies_evaluated(self, scenario_a_predictions):
        assert set(scenario_a_predictions) == {
            "ring",
            "mesh",
            "torus",
            "folded_torus",
            "hypercube",
            "flattened_butterfly",
            "sparse_hamming",
        }

    def test_cost_ordering(self, scenario_a_predictions):
        p = scenario_a_predictions
        assert p["mesh"].area_overhead <= p["torus"].area_overhead
        assert p["torus"].area_overhead <= p["flattened_butterfly"].area_overhead
        assert p["sparse_hamming"].area_overhead <= p["flattened_butterfly"].area_overhead

    def test_flattened_butterfly_exceeds_area_budget(self, scenario_a_predictions):
        assert scenario_a_predictions["flattened_butterfly"].area_overhead > 0.40

    def test_sparse_hamming_within_budget(self, scenario_a_predictions):
        assert scenario_a_predictions["sparse_hamming"].area_overhead <= 0.40

    def test_sparse_hamming_best_within_budget(self, scenario_a_predictions):
        best = best_within_area_budget(list(scenario_a_predictions.values()), 0.40)
        assert best is not None
        assert best.topology_name == "Sparse Hamming Graph"

    def test_sparse_hamming_latency_rank_at_most_two(self, scenario_a_predictions):
        rank = latency_rank(list(scenario_a_predictions.values()), "Sparse Hamming Graph")
        assert rank <= 2

    def test_performance_ordering(self, scenario_a_predictions):
        p = scenario_a_predictions
        assert p["ring"].zero_load_latency_cycles > p["mesh"].zero_load_latency_cycles
        assert p["mesh"].zero_load_latency_cycles > p["flattened_butterfly"].zero_load_latency_cycles
        assert p["ring"].saturation_throughput < p["sparse_hamming"].saturation_throughput


class TestCustomizationEndToEnd:
    def test_customization_on_small_architecture(self):
        params = ArchitecturalParameters(
            num_tiles=36, endpoint_area_ge=20e6, link_bandwidth_bits=512, name="custom-6x6"
        )
        toolchain = PredictionToolchain(params)
        result = customize_sparse_hamming(
            6, 6, toolchain, goal=CustomizationGoal(max_area_overhead=0.40), max_iterations=8
        )
        mesh_step = result.steps[0]
        assert result.prediction.area_overhead <= 0.40
        assert result.prediction.saturation_throughput >= mesh_step.saturation_throughput
        assert not result.topology.is_mesh()

    def test_customized_beats_mesh_and_stays_cheaper_than_butterfly(self):
        params = ArchitecturalParameters(
            num_tiles=36, endpoint_area_ge=20e6, link_bandwidth_bits=512, name="custom-6x6"
        )
        toolchain = PredictionToolchain(params)
        result = customize_sparse_hamming(6, 6, toolchain, max_iterations=8)
        butterfly = toolchain.predict(make_topology("flattened_butterfly", 6, 6))
        mesh = toolchain.predict(make_topology("mesh", 6, 6))
        assert result.prediction.saturation_throughput > mesh.saturation_throughput
        assert result.prediction.area_overhead < butterfly.area_overhead


class TestSparseHammingSpansDesignSpace:
    def test_mesh_and_butterfly_are_configurations(self, scenario_a_toolchain):
        mesh_config = SparseHammingGraph(8, 8)
        butterfly_config = SparseHammingGraph(8, 8, s_r=range(2, 8), s_c=range(2, 8))
        mesh = scenario_a_toolchain.predict(make_topology("mesh", 8, 8))
        butterfly = scenario_a_toolchain.predict(make_topology("flattened_butterfly", 8, 8))
        as_mesh = scenario_a_toolchain.predict(mesh_config)
        as_butterfly = scenario_a_toolchain.predict(butterfly_config)
        assert as_mesh.area_overhead == pytest.approx(mesh.area_overhead, rel=1e-6)
        assert as_butterfly.area_overhead == pytest.approx(butterfly.area_overhead, rel=1e-6)
        assert as_mesh.saturation_throughput == pytest.approx(mesh.saturation_throughput, rel=1e-6)
        assert as_butterfly.zero_load_latency_cycles == pytest.approx(
            butterfly.zero_load_latency_cycles, rel=1e-6
        )

    def test_intermediate_configuration_lies_between_endpoints(self, scenario_a_toolchain):
        mesh = scenario_a_toolchain.predict(SparseHammingGraph(8, 8))
        mid = scenario_a_toolchain.predict(SparseHammingGraph(8, 8, s_r={4}, s_c={4}))
        butterfly = scenario_a_toolchain.predict(
            SparseHammingGraph(8, 8, s_r=range(2, 8), s_c=range(2, 8))
        )
        assert mesh.area_overhead <= mid.area_overhead <= butterfly.area_overhead
        assert (
            butterfly.zero_load_latency_cycles
            <= mid.zero_load_latency_cycles
            <= mesh.zero_load_latency_cycles
        )
