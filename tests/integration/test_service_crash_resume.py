"""Crash/resume integration tests of the campaign service.

The durability acceptance criterion of the service layer: a campaign
interrupted by a SIGKILLed worker resumes on restart, every spec is computed
*exactly once* (``completions == 1`` on every job), and the resumed result
set is identical to a serial uncached run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import Campaign, ExperimentRunner
from repro.experiments.serialization import prediction_to_dict
from repro.service.queue import WorkQueue
from repro.service.store import ResultStore
from repro.service.worker import run_worker

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Subprocess body: claim one job under a long lease, signal readiness, then
#: hang without heartbeating — a stand-in for a worker that dies mid-job.
_VICTIM = """
import sys, time
from repro.service.queue import WorkQueue

queue = WorkQueue(sys.argv[1])
job = queue.claim("victim", lease_seconds=3600)
assert job is not None, "victim found nothing to claim"
print(job.spec_id, flush=True)
time.sleep(600)
"""


def small_campaign() -> Campaign:
    return Campaign.grid(
        topologies=("mesh", "torus", "hypercube"),
        sizes=((4, 4),),
        traffics=("uniform",),
        name="crash-resume",
    )


def test_sigkilled_worker_resumes_without_duplicate_work(tmp_path):
    campaign = small_campaign()
    store = ResultStore(tmp_path / "store.sqlite")
    WorkQueue(store).enqueue(campaign)

    # A worker claims the first job under a generous lease and is SIGKILLed
    # mid-execution — no cleanup, no goodbye, exactly like an OOM kill.
    victim = subprocess.Popen(
        [sys.executable, "-c", _VICTIM, str(store.path)],
        env={**os.environ, "PYTHONPATH": SRC},
        stdout=subprocess.PIPE,
        text=True,
    )
    claimed_spec_id = victim.stdout.readline().strip()
    assert claimed_spec_id
    victim.kill()
    victim.wait(timeout=30)
    assert victim.returncode == -signal.SIGKILL

    # The dead worker's job is invisible until its lease expires: a restarted
    # worker drains everything else first.
    queue = WorkQueue(store)
    stats = run_worker(queue, worker_id="restart-1", lease_seconds=60)
    assert stats.computed == len(campaign.specs) - 1
    assert queue.job_status(claimed_spec_id)["status"] == "running"

    # Once the lease lapses (injected clock — no sleeping), the orphaned job
    # is reclaimed and completed exactly once.
    late = WorkQueue(store, clock=lambda: time.time() + 7200)
    stats = run_worker(late, worker_id="restart-2", lease_seconds=60)
    assert stats.computed == 1

    for spec in campaign.specs:
        status = queue.job_status(spec.spec_id)
        assert status["status"] == "done"
        assert status["completions"] == 1
    assert queue.counts() == {
        "pending": 0, "running": 0, "done": len(campaign.specs), "failed": 0,
    }

    # The resumed, piecewise-computed campaign equals a serial uncached run.
    reference = ExperimentRunner().run(campaign)
    for result in reference:
        row = store.get(result.spec.spec_id)
        assert row is not None
        assert row.result == prediction_to_dict(result.prediction)

    # Re-enqueueing the finished campaign creates zero work.
    report = WorkQueue(store).enqueue(campaign)
    assert report.enqueued == 0
    assert report.already_stored == len(campaign.specs)


def test_expired_lease_resume_is_exactly_once(tmp_path):
    """Pure lease-expiry variant: no processes, fully deterministic clock."""
    campaign = small_campaign()
    store = ResultStore(tmp_path / "store.sqlite")

    clock = {"now": 1000.0}
    queue = WorkQueue(store, clock=lambda: clock["now"])
    queue.enqueue(campaign)

    # Worker 1 claims a job and "dies" (never completes, never heartbeats).
    dead = queue.claim("w-dead", lease_seconds=30)
    assert dead is not None

    # Worker 2 drains the rest; the dead job's lease is still live.
    stats = run_worker(queue, worker_id="w-live", lease_seconds=30)
    assert stats.computed == len(campaign.specs) - 1

    clock["now"] += 31
    stats = run_worker(queue, worker_id="w-live", lease_seconds=30)
    assert stats.computed == 1

    for spec in campaign.specs:
        assert queue.job_status(spec.spec_id)["completions"] == 1
        assert spec.spec_id in store

    # Second claim of the dead job recorded a second attempt, not a second
    # completion — that distinction is the whole point of the counter.
    assert queue.job_status(dead.spec_id)["attempts"] == 2


def test_two_workers_share_one_queue_without_overlap(tmp_path):
    """Two live workers drain one campaign; no spec runs twice."""
    campaign = small_campaign()
    store = ResultStore(tmp_path / "store.sqlite")
    queue = WorkQueue(store)
    queue.enqueue(campaign)

    import threading

    stats: list = [None, None]

    def drain(index: int) -> None:
        stats[index] = run_worker(queue, worker_id=f"w{index}", lease_seconds=60)

    threads = [threading.Thread(target=drain, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)

    assert stats[0].computed + stats[1].computed == len(campaign.specs)
    assert stats[0].failed == stats[1].failed == 0
    for spec in campaign.specs:
        assert queue.job_status(spec.spec_id)["completions"] == 1
