"""Integration tests of campaign execution and on-disk memoization.

The acceptance criteria of the experiment API: a campaign reproduces the
same prediction values as direct ``PredictionToolchain.predict`` calls, and a
second run of the same campaign is served entirely from the on-disk cache.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    Campaign,
    ExperimentRunner,
    ExperimentSpec,
    figure6_campaign,
)
from repro.physical.parameters import ArchitecturalParameters
from repro.toolchain.predict import PredictionToolchain
from repro.topologies.registry import make_topology

METRICS = (
    "area_overhead",
    "total_area_mm2",
    "noc_power_w",
    "zero_load_latency_cycles",
    "saturation_throughput",
)


def small_campaign() -> Campaign:
    return Campaign.grid(
        topologies=("mesh", "torus", "hypercube", "sparse_hamming"),
        sizes=((4, 4),),
        traffics=("uniform", "tornado"),
        topology_kwargs={"sparse_hamming": {"s_r": [2], "s_c": [2]}},
        arch={"endpoint_area_ge": 5e6},
        name="small",
    )


def test_campaign_matches_direct_toolchain_calls():
    campaign = small_campaign()
    results = ExperimentRunner().run(campaign)
    assert len(results) == len(campaign)

    params = ArchitecturalParameters(num_tiles=16, endpoint_area_ge=5e6, name="experiment")
    for result in results:
        spec = result.spec
        kwargs = {}
        if spec.topology == "sparse_hamming":
            kwargs = {"s_r": {2}, "s_c": {2}}
        topology = make_topology(spec.topology, spec.rows, spec.cols, **kwargs)
        direct = PredictionToolchain(params, traffic=spec.traffic).predict(topology)
        for metric in METRICS:
            assert getattr(result.prediction, metric) == pytest.approx(
                getattr(direct, metric)
            ), (spec.describe(), metric)


def test_second_run_hits_on_disk_cache(tmp_path):
    campaign = small_campaign()
    runner = ExperimentRunner(cache_dir=tmp_path / "cache")

    first = runner.run(campaign)
    assert first.num_cached == 0
    cache_files = sorted((tmp_path / "cache").glob("exp-*.json"))
    assert len(cache_files) == len(campaign)

    second = runner.run(campaign)
    assert second.num_cached == len(campaign)
    for a, b in zip(first, second):
        assert a.spec.spec_id == b.spec.spec_id
        for metric in METRICS:
            assert getattr(a.prediction, metric) == pytest.approx(
                getattr(b.prediction, metric)
            )


def test_cache_is_shared_between_runner_instances(tmp_path):
    spec = ExperimentSpec(
        topology="mesh", rows=4, cols=4, arch={"endpoint_area_ge": 5e6}
    )
    first = ExperimentRunner(cache_dir=tmp_path).run(spec)
    assert not first[0].cached
    second = ExperimentRunner(cache_dir=tmp_path).run(spec)
    assert second[0].cached


def test_corrupt_cache_entry_is_recomputed(tmp_path):
    spec = ExperimentSpec(
        topology="mesh", rows=4, cols=4, arch={"endpoint_area_ge": 5e6}
    )
    runner = ExperimentRunner(cache_dir=tmp_path)
    runner.run(spec)
    path = runner.cache_path(spec)
    path.write_text("{not json")
    result = runner.run(spec)[0]
    assert not result.cached
    # The recomputation repairs the cache entry.
    assert json.loads(path.read_text())["spec"]["topology"] == "mesh"


def test_parallel_run_matches_serial(tmp_path):
    campaign = Campaign.grid(
        topologies=("mesh", "torus", "sparse_hamming"),
        sizes=((4, 4),),
        topology_kwargs={"sparse_hamming": {"s_r": [2], "s_c": [2]}},
        arch={"endpoint_area_ge": 5e6},
    )
    serial = ExperimentRunner().run(campaign)
    parallel = ExperimentRunner(cache_dir=tmp_path).run(campaign, parallel=2)
    for a, b in zip(serial, parallel):
        assert a.spec == b.spec
        for metric in METRICS:
            assert getattr(a.prediction, metric) == pytest.approx(
                getattr(b.prediction, metric)
            )


def test_duplicate_specs_run_once(tmp_path):
    spec = ExperimentSpec(topology="mesh", rows=4, cols=4, arch={"endpoint_area_ge": 5e6})
    results = ExperimentRunner(cache_dir=tmp_path).run([spec, spec.with_overrides(label="twin")])
    assert len(results) == 2
    assert results[0].prediction.area_overhead == results[1].prediction.area_overhead
    assert len(list(tmp_path.glob("exp-*.json"))) == 1


def test_figure6_campaign_reproduces_benchmark_claims(tmp_path):
    # The Figure 6a panel through the declarative path: the paper's headline
    # claim (best topology within the 40% budget is the SHG) must hold.
    results = ExperimentRunner(cache_dir=tmp_path).run(figure6_campaign("a"))
    best = results.best_within_area_budget(0.40)
    assert best is not None
    assert best.topology_name == "Sparse Hamming Graph"
    rerun = ExperimentRunner(cache_dir=tmp_path).run(figure6_campaign("a"))
    assert rerun.num_cached == len(rerun)
