"""Property-based tests on routing tables, the physical model and the analytical model."""

from hypothesis import given, settings, strategies as st

from repro.core.sparse_hamming import SparseHammingGraph
from repro.physical.model import NoCPhysicalModel
from repro.physical.parameters import ArchitecturalParameters
from repro.simulator.routing_tables import build_routing_tables
from repro.toolchain.analytical import analytical_performance
from repro.topologies.mesh import MeshTopology
from repro.topologies.registry import applicable_topologies, make_topology


@st.composite
def small_sparse_hamming(draw):
    rows = draw(st.integers(3, 6))
    cols = draw(st.integers(3, 6))
    s_r = {x for x in draw(st.sets(st.integers(2, cols - 1), max_size=3))}
    s_c = {x for x in draw(st.sets(st.integers(2, rows - 1), max_size=3))}
    return SparseHammingGraph(rows, cols, s_r=s_r, s_c=s_c)


class TestRoutingTableInvariants:
    @given(topology=small_sparse_hamming())
    @settings(max_examples=25, deadline=None)
    def test_minimal_routes_terminate_and_are_minimal(self, topology):
        import networkx as nx

        tables = build_routing_tables(topology)
        shortest = dict(nx.all_pairs_shortest_path_length(topology.graph))
        nodes = list(topology.tiles())
        for source in nodes[:: max(1, len(nodes) // 6)]:
            for destination in nodes[:: max(1, len(nodes) // 6)]:
                if source == destination:
                    continue
                path = tables.path(source, destination)
                assert path[0] == source and path[-1] == destination
                assert len(path) - 1 == shortest[source][destination]

    @given(topology=small_sparse_hamming())
    @settings(max_examples=25, deadline=None)
    def test_escape_routes_follow_tree_without_cycles(self, topology):
        tables = build_routing_tables(topology)
        parent = tables.tree_parent
        nodes = list(topology.tiles())
        for source in nodes[:: max(1, len(nodes) // 5)]:
            for destination in nodes[:: max(1, len(nodes) // 5)]:
                if source == destination:
                    continue
                path = tables.path(source, destination, escape=True)
                assert len(path) == len(set(path))  # no node repeated
                gone_down = False
                for a, b in zip(path[:-1], path[1:]):
                    if parent[a] == b:
                        assert not gone_down
                    else:
                        gone_down = True


class TestPhysicalModelInvariants:
    @given(
        topology=small_sparse_hamming(),
        endpoint_mge=st.floats(1.0, 40.0),
        bandwidth=st.sampled_from([64.0, 128.0, 256.0, 512.0]),
    )
    @settings(max_examples=20, deadline=None)
    def test_estimates_are_finite_and_consistent(self, topology, endpoint_mge, bandwidth):
        params = ArchitecturalParameters(
            num_tiles=topology.num_tiles,
            endpoint_area_ge=endpoint_mge * 1e6,
            link_bandwidth_bits=bandwidth,
            name="prop-test",
        )
        result = NoCPhysicalModel(params).evaluate(topology)
        assert 0.0 <= result.area_overhead < 1.0
        assert result.area.total_area_mm2 >= result.area.logic_only_area_mm2 > 0
        assert result.noc_power_w >= 0.0
        assert result.power.total_power_w >= result.power.logic_only_power_w
        assert set(result.link_latencies) == set(topology.links)
        assert all(latency >= 1 for latency in result.link_latencies.values())
        assert result.detailed_routing.collisions == 0

    @given(topology=small_sparse_hamming())
    @settings(max_examples=15, deadline=None)
    def test_adding_links_never_reduces_cost(self, topology):
        params = ArchitecturalParameters(
            num_tiles=topology.num_tiles,
            endpoint_area_ge=10e6,
            link_bandwidth_bits=256.0,
            name="prop-test",
        )
        model = NoCPhysicalModel(params)
        mesh = model.evaluate(SparseHammingGraph(topology.rows, topology.cols))
        current = model.evaluate(topology)
        assert current.area.total_area_mm2 >= mesh.area.total_area_mm2 - 1e-9


class TestAnalyticalModelInvariants:
    @given(topology=small_sparse_hamming())
    @settings(max_examples=25, deadline=None)
    def test_performance_estimates_bounded(self, topology):
        perf = analytical_performance(topology)
        assert perf.zero_load_latency_cycles > 0
        assert 0 < perf.saturation_throughput <= 1.0
        assert 1.0 <= perf.average_hops <= topology.diameter()

    @given(dims=st.tuples(st.integers(2, 5), st.integers(2, 5)))
    @settings(max_examples=15, deadline=None)
    def test_every_applicable_topology_analysable(self, dims):
        rows, cols = dims
        for name in applicable_topologies(rows, cols):
            kwargs = {"s_r": set(), "s_c": set()} if name == "sparse_hamming" else {}
            topology = make_topology(name, rows, cols, **kwargs)
            perf = analytical_performance(topology)
            assert perf.saturation_throughput > 0

    @given(
        packet_size=st.integers(1, 8),
        pipeline=st.integers(1, 4),
    )
    @settings(max_examples=20, deadline=None)
    def test_latency_monotone_in_packet_size_and_pipeline(self, packet_size, pipeline):
        topology = MeshTopology(4, 4)
        base = analytical_performance(topology, packet_size_flits=1, router_pipeline_cycles=1)
        larger = analytical_performance(
            topology, packet_size_flits=packet_size, router_pipeline_cycles=pipeline
        )
        assert larger.zero_load_latency_cycles >= base.zero_load_latency_cycles
