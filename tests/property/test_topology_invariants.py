"""Property-based tests (hypothesis) on topology generators and their invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.config_space import configuration_count
from repro.core.sparse_hamming import SparseHammingGraph
from repro.topologies.flattened_butterfly import FlattenedButterflyTopology
from repro.topologies.folded_torus import FoldedTorusTopology
from repro.topologies.mesh import MeshTopology
from repro.topologies.ring import RingTopology
from repro.topologies.torus import TorusTopology

# Grid dimensions large enough to be interesting, small enough to stay fast.
grid_dims = st.tuples(st.integers(2, 7), st.integers(2, 7))


@st.composite
def sparse_hamming_configs(draw):
    """Random (rows, cols, S_R, S_C) tuples with valid skip sets."""
    rows = draw(st.integers(2, 7))
    cols = draw(st.integers(2, 7))
    s_r = draw(st.sets(st.integers(2, max(2, cols - 1)) if cols > 2 else st.nothing()))
    s_c = draw(st.sets(st.integers(2, max(2, rows - 1)) if rows > 2 else st.nothing()))
    s_r = {x for x in s_r if 2 <= x < cols}
    s_c = {x for x in s_c if 2 <= x < rows}
    return rows, cols, frozenset(s_r), frozenset(s_c)


class TestSparseHammingInvariants:
    @given(config=sparse_hamming_configs())
    @settings(max_examples=60, deadline=None)
    def test_always_connected(self, config):
        rows, cols, s_r, s_c = config
        assert SparseHammingGraph(rows, cols, s_r=s_r, s_c=s_c).is_connected()

    @given(config=sparse_hamming_configs())
    @settings(max_examples=60, deadline=None)
    def test_contains_mesh_and_subset_of_butterfly(self, config):
        rows, cols, s_r, s_c = config
        shg = SparseHammingGraph(rows, cols, s_r=s_r, s_c=s_c)
        mesh = MeshTopology(rows, cols)
        butterfly = FlattenedButterflyTopology(rows, cols)
        assert set(mesh.links).issubset(set(shg.links))
        assert set(shg.links).issubset(set(butterfly.links))

    @given(config=sparse_hamming_configs())
    @settings(max_examples=60, deadline=None)
    def test_all_links_aligned(self, config):
        rows, cols, s_r, s_c = config
        shg = SparseHammingGraph(rows, cols, s_r=s_r, s_c=s_c)
        assert all(shg.link_is_aligned(link) for link in shg.links)

    @given(config=sparse_hamming_configs())
    @settings(max_examples=40, deadline=None)
    def test_expected_diameter_and_radix_match_graph(self, config):
        rows, cols, s_r, s_c = config
        shg = SparseHammingGraph(rows, cols, s_r=s_r, s_c=s_c)
        assert shg.expected_diameter() == shg.diameter()
        assert shg.expected_radix() == shg.router_radix()

    @given(config=sparse_hamming_configs())
    @settings(max_examples=40, deadline=None)
    def test_diameter_bounded_by_mesh_and_butterfly(self, config):
        rows, cols, s_r, s_c = config
        shg = SparseHammingGraph(rows, cols, s_r=s_r, s_c=s_c)
        mesh_diameter = rows + cols - 2
        butterfly_diameter = 2 if (rows > 1 and cols > 1) else 1
        assert butterfly_diameter <= shg.diameter() <= mesh_diameter

    @given(config=sparse_hamming_configs())
    @settings(max_examples=40, deadline=None)
    def test_link_count_formula(self, config):
        rows, cols, s_r, s_c = config
        shg = SparseHammingGraph(rows, cols, s_r=s_r, s_c=s_c)
        expected = rows * (cols - 1) + cols * (rows - 1)
        expected += sum(rows * (cols - x) for x in s_r)
        expected += sum(cols * (rows - x) for x in s_c)
        assert shg.num_links == expected

    @given(dims=grid_dims)
    @settings(max_examples=30, deadline=None)
    def test_configuration_count_formula(self, dims):
        rows, cols = dims
        assert configuration_count(rows, cols) == 2 ** (max(cols - 2, 0) + max(rows - 2, 0))


class TestEstablishedTopologyInvariants:
    @given(dims=grid_dims)
    @settings(max_examples=30, deadline=None)
    def test_mesh_diameter_formula(self, dims):
        rows, cols = dims
        assert MeshTopology(rows, cols).diameter() == rows + cols - 2

    @given(dims=grid_dims)
    @settings(max_examples=30, deadline=None)
    def test_torus_diameter_formula(self, dims):
        rows, cols = dims
        assert TorusTopology(rows, cols).diameter() == rows // 2 + cols // 2

    @given(dims=grid_dims)
    @settings(max_examples=30, deadline=None)
    def test_folded_torus_isomorphic_diameter(self, dims):
        rows, cols = dims
        assert FoldedTorusTopology(rows, cols).diameter() == TorusTopology(rows, cols).diameter()

    @given(dims=grid_dims)
    @settings(max_examples=30, deadline=None)
    def test_ring_is_two_regular_cycle(self, dims):
        rows, cols = dims
        if rows * cols < 3:
            return
        ring = RingTopology(rows, cols)
        assert ring.num_links == ring.num_tiles
        assert all(ring.degree(t) == 2 for t in ring.tiles())
        assert ring.is_connected()

    @given(dims=grid_dims)
    @settings(max_examples=30, deadline=None)
    def test_flattened_butterfly_radix_formula(self, dims):
        rows, cols = dims
        topo = FlattenedButterflyTopology(rows, cols)
        assert topo.router_radix() == rows + cols - 2 + 1
