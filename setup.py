"""Packaging for the sparse-Hamming-graph NoC reproduction.

Metadata lives here (rather than in a pyproject.toml) so that
``pip install -e . --no-build-isolation`` works on machines without network
access to fetch build backends.  The ``repro`` console script is the
command-line front end of :mod:`repro.experiments`.

The version is single-sourced from ``repro.__version__`` — parsed textually
(not imported) so that building a wheel does not require the runtime
dependencies to be installed.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def read_version() -> str:
    """Parse ``__version__`` out of ``src/repro/__init__.py``."""
    text = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if match is None:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-sparse-hamming-noc",
    version=read_version(),
    description=(
        "Reproduction of 'Sparse Hamming Graph: A Customizable Network-on-Chip "
        "Topology' with a declarative experiment API"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
    entry_points={
        "console_scripts": [
            "repro=repro.experiments.cli:main",
        ]
    },
)
