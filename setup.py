"""Packaging for the sparse-Hamming-graph NoC reproduction.

Metadata lives here (rather than in a pyproject.toml) so that
``pip install -e . --no-build-isolation`` works on machines without network
access to fetch build backends.  The ``repro`` console script is the
command-line front end of :mod:`repro.experiments`.
"""

from setuptools import find_packages, setup

setup(
    name="repro-sparse-hamming-noc",
    version="1.1.0",
    description=(
        "Reproduction of 'Sparse Hamming Graph: A Customizable Network-on-Chip "
        "Topology' with a declarative experiment API"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
    entry_points={
        "console_scripts": [
            "repro=repro.experiments.cli:main",
        ]
    },
)
