"""Setup shim for environments without PEP 517 build isolation (offline installs).

The project is fully described by ``pyproject.toml``; this file only exists so
that ``pip install -e . --no-build-isolation --no-use-pep517`` works on
machines without network access to fetch build backends.
"""

from setuptools import setup

setup()
