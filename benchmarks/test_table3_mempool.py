"""Benchmark: regenerate Table III (toolchain validation against MemPool).

The toolchain predicts the area, power, latency and throughput of the MemPool
architecture; the predictions are compared against the published
implementation results.  The paper reports prediction errors of 15% (area),
7% (power), 100% (latency, over-estimate) and 34% (throughput); this benchmark
asserts that our reproduction shows the same error structure: accurate area
and power, a large latency over-estimate, and a throughput prediction in the
right regime.
"""

from repro.arch.mempool import MEMPOOL_REFERENCE, validate_toolchain_against_mempool

from conftest import performance_mode


def test_table3_mempool_validation(benchmark, record_rows):
    validation = benchmark.pedantic(
        validate_toolchain_against_mempool,
        kwargs={"performance_mode": performance_mode()},
        rounds=1,
        iterations=1,
    )
    record_rows("Table III — MemPool toolchain validation", validation.as_table())

    # Area and power predictions are accurate for a fast high-level model
    # (paper: 15% and 7% error).
    assert validation.area_error < 0.25
    assert validation.power_error < 0.25
    # Latency is over-estimated because MemPool's interconnect is heavily
    # latency-optimised (paper: 100% over-estimate before correction).
    assert validation.prediction.zero_load_latency_cycles > MEMPOOL_REFERENCE.latency_cycles
    assert validation.latency_error < 2.5
    # Throughput prediction lands in the right regime (tens of percent of
    # capacity; paper predicts 25% against a measured 38%).
    assert 0.10 < validation.prediction.saturation_throughput < 0.70
