"""Benchmark: regenerate Figure 6c (128 tiles, 35 MGE, 1 core per tile).

Sparse Hamming graph configuration from the paper: ``S_R = {3}``,
``S_C = {2, 5}``.  With 128 = 2 * 8^2 tiles SlimNoC becomes applicable.
"""

from figure6_common import run_figure6_benchmark


def test_figure6c(benchmark, record_rows):
    predictions = run_figure6_benchmark(benchmark, record_rows, "c").as_mapping()
    # SlimNoC is applicable for 128 tiles and, like the flattened butterfly,
    # exceeds the area budget by a wide margin (its long non-aligned links are
    # expensive to route).
    assert "slimnoc" in predictions
    assert predictions["slimnoc"].area_overhead > 0.40
    assert predictions["slimnoc"].noc_power_w > predictions["sparse_hamming"].noc_power_w
