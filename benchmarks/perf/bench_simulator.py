#!/usr/bin/env python
"""Simulator throughput benchmark: simulated cycles per wall-clock second.

Measures every registered simulation engine (``reference``, ``soa``,
``sanitizer``, ``vec``) on four canonical workloads (small, medium, large,
trace_replay) plus two batching cases: ``batched_sweep`` — a 24-lane
(8 rates x 3 seeds) load sweep of a 16x16 mesh run sequentially under
``reference``/``soa`` and as one fused batch under ``vec`` — and
``batched_campaign`` — 24 whole same-network ExperimentSpecs run
one-at-a-time under ``soa`` and as one gang-fused vec kernel (the gang
scheduler's cross-spec batching).  Results go to ``BENCH_simulator.json``
so the performance trajectory of the simulation kernel is tracked PR over
PR: one record per (workload, engine) pair, so the cross-engine gaps on
identical work are part of the record.

Because the engines are required to be bit-identical, the benchmark doubles
as a smoke-level equivalence check: for each workload it asserts that every
engine delivered the same packets with the same mean latency and drained
state — and for the batched sweep, that every fused ``vec`` lane's full
statistics equal its sequential ``soa`` run — failing loudly otherwise
(CI runs it on every push).

The *simulated-cycles/second* metric divides the number of kernel cycles the
run advanced through (warmup + measurement + drain, as reported by the
simulator) by the wall-clock time of ``Simulator.run()``.  Network and
routing-table construction are excluded — they are one-time costs that load
sweeps amortize across many runs.

Run it from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_simulator.py
    PYTHONPATH=src python benchmarks/perf/bench_simulator.py --size small
    PYTHONPATH=src python benchmarks/perf/bench_simulator.py --engine soa
    PYTHONPATH=src python benchmarks/perf/bench_simulator.py --output BENCH_simulator.json

See ``docs/PERFORMANCE.md`` for the recorded baseline-vs-optimized numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.simulator.engine import available_engines
from repro.simulator.network import build_network
from repro.simulator.routing_tables import build_routing_tables
from repro.simulator.simulation import SimulationConfig, Simulator
from repro.topologies.mesh import MeshTopology
from repro.topologies.torus import TorusTopology
from repro.core.sparse_hamming import SparseHammingGraph
from repro.workloads import make_workload_trace

#: The benchmark matrix.  Each workload pins a topology, an injection rate and
#: the phase lengths (or, for the trace-replay case, a fixed-seed workload
#: trace); everything is fully seeded so repeated runs measure the exact same
#: simulation — and so every engine simulates the exact same work.
WORKLOADS = {
    "small": {
        "description": "4x4 mesh, moderate load",
        "topology": lambda: MeshTopology(4, 4),
        "config": SimulationConfig(
            injection_rate=0.10,
            warmup_cycles=500,
            measurement_cycles=2000,
            drain_max_cycles=3000,
            seed=7,
        ),
    },
    "medium": {
        "description": "8x8 torus, moderate load",
        "topology": lambda: TorusTopology(8, 8),
        "config": SimulationConfig(
            injection_rate=0.10,
            warmup_cycles=500,
            measurement_cycles=2000,
            drain_max_cycles=3000,
            seed=7,
        ),
    },
    "large": {
        "description": "16x16 sparse Hamming graph, light load",
        "topology": lambda: SparseHammingGraph(16, 16, s_r={4}, s_c={4}),
        "config": SimulationConfig(
            injection_rate=0.05,
            warmup_cycles=300,
            measurement_cycles=1000,
            drain_max_cycles=2000,
            seed=7,
        ),
    },
    "trace_replay": {
        "description": "8x8 mesh, DNN-inference trace replay",
        "topology": lambda: MeshTopology(8, 8),
        "config": SimulationConfig(drain_max_cycles=3000, seed=7),
        "trace": lambda: make_workload_trace(
            "dnn_inference",
            8,
            8,
            seed=7,
            layers=8,
            layer_window=256,
            activations_per_tile=4,
            fan_out=4,
        ),
    },
}

#: The batched-sweep case: one compiled network, many (rate, seed) lanes.
#: Sequential engines simulate the lanes one by one; the ``vec`` engine
#: fuses all of them into a single kernel invocation (``sweep.run_batch``).
BATCHED_SWEEP = {
    "description": "16x16 mesh, 8 rates x 3 seeds fused into one vec batch",
    "topology": lambda: MeshTopology(16, 16),
    "rates": [0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16],
    "seeds": [1, 2, 3],
    "config": SimulationConfig(
        warmup_cycles=300,
        measurement_cycles=1000,
        drain_max_cycles=2000,
    ),
}

#: The batched-campaign case: 24 whole ExperimentSpecs (one compiled
#: network, seeds 1-24) executed one-at-a-time under ``soa`` — the
#: pre-gang-scheduler campaign path — and as one gang-fused vec kernel via
#: :func:`repro.experiments.scheduler.run_gang_detailed`.  Where
#: ``batched_sweep`` batches the load points *inside* one spec, this case
#: batches *across* specs, which is what ``run_campaign``/``run_search``/
#: ``repro work --batch`` do in production.
BATCHED_CAMPAIGN = {
    "description": "24-spec trace-replay campaign (16x16 mesh) fused by the gang scheduler",
    "rows": 16,
    "cols": 16,
    "seeds": list(range(1, 25)),
    "workload": {
        "name": "dnn_inference",
        "params": {
            "layers": 8,
            "layer_window": 256,
            "activations_per_tile": 8,
            "fan_out": 8,
        },
    },
    "sim": {"drain_max_cycles": 4000},
}

#: Statistics fields every engine must agree on, workload for workload.
_EQUALITY_FIELDS = (
    "cycles_simulated",
    "packets_delivered",
    "average_packet_latency",
    "drained",
)


def run_workload(name: str, engines: list[str], repeats: int = 3) -> list[dict]:
    """Benchmark one workload on each engine; best-of-``repeats`` records."""
    workload = WORKLOADS[name]
    topology = workload["topology"]()
    base_config = workload["config"]
    trace = workload["trace"]() if "trace" in workload else None
    routing = build_routing_tables(topology)
    network = build_network(
        topology, config=base_config.network_config(), routing=routing
    )

    records = []
    for engine in engines:
        config = replace(base_config, engine=engine)
        best: dict | None = None
        for _ in range(repeats):
            simulator = Simulator(
                topology, config, routing=routing, network=network, trace=trace
            )
            start = time.perf_counter()
            stats = simulator.run()
            elapsed = time.perf_counter() - start
            cycles = simulator.cycles_simulated
            record = {
                "workload": name,
                "engine": engine,
                "description": workload["description"],
                "topology": topology.name,
                "num_tiles": topology.num_tiles,
                "injection_rate": None if trace is not None else config.injection_rate,
                "trace_packets": trace.num_packets if trace is not None else None,
                "cycles_simulated": cycles,
                "wall_seconds": round(elapsed, 4),
                "cycles_per_second": round(cycles / elapsed, 1),
                "packets_delivered": stats.packets_delivered,
                "average_packet_latency": round(stats.average_packet_latency, 4),
                "drained": stats.drained,
            }
            if best is None or record["cycles_per_second"] > best["cycles_per_second"]:
                best = record
        assert best is not None
        records.append(best)

    check_engine_equivalence(name, records)
    return records


def run_batched_sweep(engines: list[str], repeats: int = 1) -> list[dict]:
    """Benchmark the multi-point sweep: sequential engines vs one vec batch.

    The sequential baselines (``reference`` — the default engine a sweep
    would otherwise use — and ``soa``, the fastest single-point kernel) run
    the 24 lanes one after another on the shared compiled network; ``vec``
    runs them as a single fused batch.  Every fused lane's statistics must
    equal its sequential ``soa`` run exactly, so this case extends the
    equivalence check to the batched path.
    """
    import dataclasses

    from repro.simulator.batch import BatchSimulator

    topology = BATCHED_SWEEP["topology"]()
    base = BATCHED_SWEEP["config"]
    rates = BATCHED_SWEEP["rates"]
    seeds = BATCHED_SWEEP["seeds"]
    routing = build_routing_tables(topology)
    network = build_network(topology, config=base.network_config(), routing=routing)
    lane_configs = [
        replace(base, injection_rate=rate, seed=seed)
        for seed in seeds
        for rate in rates
    ]

    def record_for(engine: str, mode: str, elapsed: float, cycles: int) -> dict:
        return {
            "workload": "batched_sweep",
            "engine": engine,
            "mode": mode,
            "description": BATCHED_SWEEP["description"],
            "topology": topology.name,
            "num_tiles": topology.num_tiles,
            "lanes": len(lane_configs),
            "cycles_simulated": cycles,
            "wall_seconds": round(elapsed, 4),
            "cycles_per_second": round(cycles / elapsed, 1),
        }

    records = []
    per_engine_stats: dict[str, list] = {}
    for engine in ("reference", "soa"):
        if engine not in engines:
            continue
        best = None
        for _ in range(repeats):
            simulators = [
                Simulator(
                    topology,
                    replace(config, engine=engine),
                    routing=routing,
                    network=network,
                )
                for config in lane_configs
            ]
            start = time.perf_counter()
            stats_list = [simulator.run() for simulator in simulators]
            elapsed = time.perf_counter() - start
            cycles = sum(simulator.cycles_simulated for simulator in simulators)
            record = record_for(engine, "sequential", elapsed, cycles)
            if best is None or record["wall_seconds"] < best["wall_seconds"]:
                best = record
                per_engine_stats[engine] = stats_list
        records.append(best)

    if "vec" in engines:
        best = None
        for _ in range(repeats):
            batch = BatchSimulator(topology, lane_configs, network=network)
            start = time.perf_counter()
            stats_list = batch.run()
            elapsed = time.perf_counter() - start
            record = record_for("vec", "batched", elapsed, batch.cycles_simulated)
            if best is None or record["wall_seconds"] < best["wall_seconds"]:
                best = record
                per_engine_stats["vec"] = stats_list
        for engine, sequential in per_engine_stats.items():
            if engine == "vec":
                continue
            for lane, (stats_a, stats_b) in enumerate(
                zip(sequential, per_engine_stats["vec"])
            ):
                if dataclasses.asdict(stats_a) != dataclasses.asdict(stats_b):
                    raise SystemExit(
                        f"batched_sweep: vec batch lane {lane} diverged from its "
                        f"sequential {engine} run — the batched path is required "
                        "to be bit-identical"
                    )
            best[f"speedup_vs_{engine}_sequential"] = round(
                next(
                    r["wall_seconds"] for r in records if r["engine"] == engine
                )
                / best["wall_seconds"],
                2,
            )
        records.append(best)
    return records


def run_batched_campaign(engines: list[str]) -> list[dict]:
    """Benchmark a whole campaign: sequential specs vs one gang-fused kernel.

    The ``soa`` baseline runs each spec exactly as ``run_campaign`` did
    before the gang scheduler existed — one ``spec.run()`` after another,
    each building its own network and trace.  The ``vec`` run hands all 24
    specs to :func:`~repro.experiments.scheduler.run_gang_detailed`, which
    compiles the shared network once and recycles the batch lanes across
    specs.  Every spec's replay :class:`SimulationStats` must equal its
    sequential run field for field — the gang scheduler's bit-identity
    contract, asserted here on every benchmark run.
    """
    import dataclasses

    from repro.experiments.scheduler import run_gang_detailed
    from repro.experiments.spec import ExperimentSpec

    def make_specs(engine: str) -> list[ExperimentSpec]:
        return [
            ExperimentSpec(
                topology="mesh",
                rows=BATCHED_CAMPAIGN["rows"],
                cols=BATCHED_CAMPAIGN["cols"],
                performance_mode="simulation",
                sim={"engine": engine, **BATCHED_CAMPAIGN["sim"]},
                workload={**BATCHED_CAMPAIGN["workload"], "seed": seed},
                label=f"campaign-{seed}",
            )
            for seed in BATCHED_CAMPAIGN["seeds"]
        ]

    def record_for(engine: str, mode: str, elapsed: float, replays: list) -> dict:
        # Replay statistics carry the measurement window (the whole trace),
        # not the drain tail — a consistent cycle proxy for both modes.
        cycles = sum(stats.measurement_cycles for stats in replays)
        return {
            "workload": "batched_campaign",
            "engine": engine,
            "mode": mode,
            "description": BATCHED_CAMPAIGN["description"],
            "topology": "mesh",
            "num_tiles": BATCHED_CAMPAIGN["rows"] * BATCHED_CAMPAIGN["cols"],
            "specs": len(replays),
            "cycles_simulated": cycles,
            "wall_seconds": round(elapsed, 4),
            "cycles_per_second": round(cycles / elapsed, 1),
        }

    records = []
    soa_replays: list | None = None
    if "soa" in engines:
        specs = make_specs("soa")
        start = time.perf_counter()
        predictions = [spec.run() for spec in specs]
        elapsed = time.perf_counter() - start
        soa_replays = [prediction.details["replay"] for prediction in predictions]
        records.append(record_for("soa", "sequential", elapsed, soa_replays))

    if "vec" in engines:
        specs = make_specs("vec")
        start = time.perf_counter()
        predictions, lanes = run_gang_detailed(specs)
        elapsed = time.perf_counter() - start
        vec_replays = [prediction.details["replay"] for prediction in predictions]
        record = record_for("vec", "batched", elapsed, vec_replays)
        record["lanes"] = lanes
        if soa_replays is not None:
            for index, (sequential, fused) in enumerate(
                zip(soa_replays, vec_replays)
            ):
                if dataclasses.asdict(sequential) != dataclasses.asdict(fused):
                    raise SystemExit(
                        f"batched_campaign: gang-fused spec {index} diverged "
                        "from its sequential soa run — the gang scheduler is "
                        "required to be bit-identical"
                    )
            record["speedup_vs_soa_sequential"] = round(
                records[-1]["wall_seconds"] / record["wall_seconds"], 2
            )
        records.append(record)
    return records


def check_engine_equivalence(name: str, records: list[dict]) -> None:
    """Fail loudly if any engine produced different statistics on ``name``."""
    if len(records) < 2:
        return
    baseline = records[0]
    for record in records[1:]:
        for field in _EQUALITY_FIELDS:
            if record[field] != baseline[field]:
                raise SystemExit(
                    f"engine mismatch on workload {name!r}: "
                    f"{record['engine']} reports {field}={record[field]} but "
                    f"{baseline['engine']} reports {baseline[field]} — the "
                    "engines are required to be bit-identical"
                )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--size",
        choices=sorted(WORKLOADS) + ["batched_sweep", "batched_campaign", "all"],
        default="all",
        help="workload to run (default: all)",
    )
    parser.add_argument(
        "--engine",
        choices=available_engines() + ["all"],
        default="all",
        help="engine to run (default: all registered engines)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repetitions per workload (best wins)"
    )
    parser.add_argument(
        "--output",
        default="BENCH_simulator.json",
        help="JSON output path (default: BENCH_simulator.json)",
    )
    args = parser.parse_args(argv)

    names = (
        sorted(WORKLOADS) + ["batched_sweep", "batched_campaign"]
        if args.size == "all"
        else [args.size]
    )
    engines = available_engines() if args.engine == "all" else [args.engine]
    records = []
    for name in names:
        if name == "batched_sweep":
            workload_records = run_batched_sweep(engines)
        elif name == "batched_campaign":
            workload_records = run_batched_campaign(engines)
        else:
            workload_records = run_workload(name, engines, repeats=args.repeats)
        records.extend(workload_records)
        by_engine = {record["engine"]: record for record in workload_records}
        for record in workload_records:
            mode = f" ({record['mode']})" if "mode" in record else ""
            print(
                f"{name:13s} {record['engine'] + mode:17s} {record['topology']:28s} "
                f"{record['cycles_simulated']:8d} cycles in {record['wall_seconds']:8.3f}s "
                f"-> {record['cycles_per_second']:>10.1f} cycles/s"
            )
        for fast in ("soa", "vec"):
            if "reference" in by_engine and fast in by_engine:
                if name == "batched_sweep":
                    speedup = (
                        by_engine["reference"]["wall_seconds"]
                        / by_engine[fast]["wall_seconds"]
                    )
                else:
                    speedup = (
                        by_engine[fast]["cycles_per_second"]
                        / by_engine["reference"]["cycles_per_second"]
                    )
                print(f"{name:13s} {fast}/reference speedup: {speedup:.2f}x")

    payload = {
        "benchmark": "simulator-cycles-per-second",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": records,
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
