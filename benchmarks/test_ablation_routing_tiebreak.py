"""Ablation benchmark: physical-length-aware routing tie-break (principle ❹).

The minimal-routing tables break ties between hop-minimal next hops towards
the physically shortest continuation.  This ablation compares the resulting
zero-load latency against a variant that ignores physical length (plain
lowest-index tie-break), quantifying how much of the latency benefit of
"minimal paths used" comes from the co-design of topology and routing that the
paper's design principle ❹ calls for.
"""

from collections import deque

from repro.core.sparse_hamming import SparseHammingGraph
from repro.physical.model import NoCPhysicalModel
from repro.arch.knc import scenario
from repro.simulator.routing_tables import RoutingTables, build_routing_tables
from repro.toolchain.analytical import analytical_performance


def _index_tiebreak_tables(topology) -> RoutingTables:
    """Minimal tables with the physical-length tie-break disabled."""
    tables = build_routing_tables(topology)
    num = topology.num_tiles
    neighbors = [topology.neighbors(node) for node in range(num)]
    minimal = [dict() for _ in range(num)]
    for destination in range(num):
        dist = {destination: 0}
        queue = deque([destination])
        while queue:
            node = queue.popleft()
            for neighbor in neighbors[node]:
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
        for node in range(num):
            if node == destination:
                continue
            minimal[node][destination] = min(
                n for n in neighbors[node] if dist[n] == dist[node] - 1
            )
    return RoutingTables(
        minimal=minimal,
        escape=tables.escape,
        hop_distance=tables.hop_distance,
        tree_parent=tables.tree_parent,
    )


def _compare_tiebreaks():
    target = scenario("a")
    topology = SparseHammingGraph(
        target.rows, target.cols, s_r=target.paper_s_r, s_c=target.paper_s_c,
        endpoints_per_tile=target.cores_per_tile,
    )
    physical = NoCPhysicalModel(target.parameters()).evaluate(topology)
    physical_aware = analytical_performance(
        topology, link_latencies=physical.link_latencies,
        routing=build_routing_tables(topology),
    )
    index_based = analytical_performance(
        topology, link_latencies=physical.link_latencies,
        routing=_index_tiebreak_tables(topology),
    )
    return physical_aware, index_based


def test_ablation_routing_tiebreak(benchmark, record_rows):
    physical_aware, index_based = benchmark.pedantic(_compare_tiebreaks, rounds=1, iterations=1)
    record_rows(
        "Ablation — routing tie-break (design principle 4)",
        [
            {
                "tie-break": "physical length (ours)",
                "zero-load latency [cycles]": round(physical_aware.zero_load_latency_cycles, 2),
                "saturation throughput [%]": round(100 * physical_aware.saturation_throughput, 2),
            },
            {
                "tie-break": "lowest neighbour index",
                "zero-load latency [cycles]": round(index_based.zero_load_latency_cycles, 2),
                "saturation throughput [%]": round(100 * index_based.saturation_throughput, 2),
            },
        ],
    )
    # Both variants are hop-minimal, so the hop count is identical; the
    # physically-aware tie-break must never be slower and usually is faster.
    assert physical_aware.average_hops == index_based.average_hops
    assert (
        physical_aware.zero_load_latency_cycles <= index_based.zero_load_latency_cycles + 1e-9
    )
