"""Benchmark: the customization strategy of Section V-a.

Runs the automated five-step customization loop (greedy search over ``S_R`` /
``S_C`` under the 40% area budget) for scenario (a) and checks that it does
what the paper describes: it starts from the mesh, monotonically trades area
for performance, never exceeds the budget, and ends with a configuration that
clearly outperforms the mesh while remaining far cheaper than the flattened
butterfly.
"""

from repro.core.customization import CustomizationGoal, customize_sparse_hamming
from repro.arch.knc import scenario
from repro.topologies.registry import make_topology

from conftest import scenario_toolchain


def _run_customization():
    target = scenario("a")
    toolchain = scenario_toolchain(target)
    result = customize_sparse_hamming(
        rows=target.rows,
        cols=target.cols,
        predictor=toolchain,
        goal=CustomizationGoal(max_area_overhead=0.40),
        endpoints_per_tile=target.cores_per_tile,
        max_iterations=12,
    )
    butterfly = toolchain.predict(
        make_topology("flattened_butterfly", target.rows, target.cols,
                      endpoints_per_tile=target.cores_per_tile)
    )
    return result, butterfly


def test_customization_scenario_a(benchmark, record_rows):
    result, butterfly = benchmark.pedantic(_run_customization, rounds=1, iterations=1)
    record_rows(
        "Customization strategy — scenario a (Section V-a)",
        [
            {
                "iteration": step.iteration,
                "action": step.action,
                "S_R": str(sorted(step.s_r)),
                "S_C": str(sorted(step.s_c)),
                "area overhead [%]": round(100 * step.area_overhead, 2),
                "power [W]": round(step.noc_power_w, 2),
                "latency [cycles]": round(step.zero_load_latency_cycles, 2),
                "throughput [%]": round(100 * step.saturation_throughput, 2),
            }
            for step in result.steps
        ],
    )

    start = result.steps[0]
    final = result.steps[-1]
    # Step 1 of the strategy: start with the mesh.
    assert start.s_r == frozenset() and start.s_c == frozenset()
    # The budget is respected at every accepted step.
    assert all(step.area_overhead <= 0.40 for step in result.steps)
    # The search improves throughput (priority 1) and latency (priority 2).
    assert final.saturation_throughput > start.saturation_throughput
    assert final.zero_load_latency_cycles < start.zero_load_latency_cycles
    # The customized topology is much cheaper than the flattened butterfly.
    assert final.area_overhead < butterfly.area_overhead
    # The customized configuration reaches at least the throughput the paper's
    # hand-picked configuration achieves (it explores the same space).
    toolchain = scenario_toolchain(scenario("a"))
    paper_config = toolchain.predict(
        make_topology("sparse_hamming", 8, 8, s_r={4}, s_c={2, 5})
    )
    assert final.saturation_throughput >= paper_config.saturation_throughput - 0.01
