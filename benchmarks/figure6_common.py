"""Shared logic of the four Figure 6 benchmarks (scenarios a-d).

Each benchmark evaluates every applicable topology of its scenario with the
prediction toolchain, records the four comparison metrics (area overhead,
power, zero-load latency, saturation throughput), and checks the qualitative
claims of Section V-c:

* the flattened butterfly (and, where applicable, SlimNoC) exceeds the 40%
  area budget — the dense end of the design space is unaffordable;
* the paper's customized sparse Hamming graph configuration stays within the
  budget;
* within the budget, the sparse Hamming graph delivers more throughput than
  the low-cost topologies (ring, mesh, torus, folded torus) and is among the
  lowest-latency feasible topologies;
* the cost ordering mesh <= sparse Hamming graph <= flattened butterfly holds
  for both area and power.

Absolute values differ from the paper (different technology calibration and a
different simulator); EXPERIMENTS.md records both sides.
"""

from __future__ import annotations

from repro.arch.knc import scenario
from repro.experiments.runner import ResultSet

from conftest import evaluate_scenario, figure6_rows

AREA_BUDGET = 0.40

#: Topologies the paper groups as "low cost, low performance".
LOW_COST_TOPOLOGIES = ("ring", "mesh", "torus", "folded_torus")


def run_figure6_benchmark(benchmark, record_rows, key: str) -> ResultSet:
    """Evaluate scenario ``key`` and assert the Figure 6 claims."""
    target = scenario(key)
    results = benchmark.pedantic(
        evaluate_scenario, args=(target,), rounds=1, iterations=1
    )
    record_rows(
        f"Figure 6{key} — {target.description} "
        f"(SHG: S_R={sorted(target.paper_s_r)}, S_C={sorted(target.paper_s_c)})",
        figure6_rows(results),
    )

    predictions = results.as_mapping()
    shg = predictions["sparse_hamming"]
    butterfly = predictions["flattened_butterfly"]
    mesh = predictions["mesh"]

    # The dense end of the design space exceeds the paper's 40% area budget.
    assert butterfly.area_overhead > AREA_BUDGET
    if "slimnoc" in predictions:
        assert predictions["slimnoc"].area_overhead > AREA_BUDGET

    # The paper's customized sparse Hamming graph stays within the budget.
    assert shg.area_overhead <= AREA_BUDGET

    # Cost ordering: mesh <= sparse Hamming graph <= flattened butterfly.
    assert mesh.area_overhead <= shg.area_overhead <= butterfly.area_overhead
    assert mesh.noc_power_w <= shg.noc_power_w <= butterfly.noc_power_w

    # Performance: the sparse Hamming graph beats every low-cost topology in
    # saturation throughput and zero-load latency.
    for name in LOW_COST_TOPOLOGIES:
        if name not in predictions:
            continue
        assert shg.saturation_throughput >= predictions[name].saturation_throughput
        assert shg.zero_load_latency_cycles <= predictions[name].zero_load_latency_cycles

    # Within the 40% budget the sparse Hamming graph is at (or very near) the
    # top in throughput and among the lowest-latency feasible topologies.
    feasible = results.filter(lambda r: r.prediction.area_overhead <= AREA_BUDGET)
    best = results.best_within_area_budget(AREA_BUDGET)
    assert best is not None
    assert shg.saturation_throughput >= 0.90 * best.saturation_throughput
    assert feasible.latency_rank(shg.topology_name) <= 3

    return results
