"""Benchmark: regenerate Table I (design-principle compliance of all topologies).

The paper's Table I lists, for every topology, the router radix, the four
routability criteria, the network diameter, the minimal-path columns and the
number of configurations.  This benchmark recomputes the table for the 8x8
grid of the primary evaluation scenario (and the 8x16 grid where SlimNoC is
applicable) and checks the claims the paper derives from it.
"""

from repro.analysis.compliance import compliance_table
from repro.core.design_principles import Compliance


def _rows(rows: int, cols: int):
    return compliance_table(rows, cols)


def test_table1_8x8(benchmark, record_rows):
    table = benchmark.pedantic(_rows, args=(8, 8), rounds=1, iterations=1)
    record_rows("Table I — 8x8 grid", [row.as_dict() for row in table])

    by_name = {row.topology_name: row for row in table}
    # Radix and diameter columns of Table I.
    assert by_name["2D Mesh"].scores.properties.router_radix == 5
    assert by_name["2D Mesh"].scores.properties.diameter == 14
    assert by_name["2D Torus"].scores.properties.diameter == 8
    assert by_name["Flattened Butterfly"].scores.properties.diameter == 2
    assert by_name["Flattened Butterfly"].scores.properties.router_radix == 15
    assert by_name["Ring"].scores.properties.diameter == 32
    # Configuration count column: the sparse Hamming graph offers 2^(R+C-4).
    assert by_name["Sparse Hamming Graph"].configurations == 2**12
    assert all(row.configurations == 1 for row in table if row.topology_key != "sparse_hamming")
    # Routability claims: mesh fulfils everything, torus violates short links,
    # the flattened butterfly violates low radix.
    assert by_name["2D Mesh"].scores.short_links is Compliance.YES
    assert by_name["2D Torus"].scores.short_links is Compliance.NO
    assert by_name["Flattened Butterfly"].scores.low_radix is not Compliance.YES
    # Minimal paths: present+used for mesh, present-but-unused for torus.
    assert by_name["2D Mesh"].scores.minimal_paths_used is Compliance.YES
    assert by_name["2D Torus"].scores.minimal_paths_present is Compliance.YES
    assert by_name["2D Torus"].scores.minimal_paths_used is Compliance.NO


def test_table1_8x16_includes_slimnoc(benchmark, record_rows):
    table = benchmark.pedantic(_rows, args=(8, 16), rounds=1, iterations=1)
    record_rows("Table I — 8x16 grid (SlimNoC applicable)", [row.as_dict() for row in table])

    by_name = {row.topology_name: row for row in table}
    assert "SlimNoC" in by_name
    slimnoc = by_name["SlimNoC"].scores
    # SlimNoC: diameter ~2, radix ~sqrt(N), non-aligned links, non-uniform density.
    assert by_name["SlimNoC"].scores.properties.diameter <= 3
    assert slimnoc.aligned_links is Compliance.NO
    assert slimnoc.low_radix is not Compliance.YES
    # Sparse Hamming graph configuration count scales to 2^(R+C-4) = 2^20.
    assert by_name["Sparse Hamming Graph"].configurations == 2**20
