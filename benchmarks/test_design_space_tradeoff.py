"""Benchmark: the sparse-Hamming-graph design space spans mesh -> flattened butterfly.

Section III of the paper argues that the sparse Hamming graph spans the design
space between the 2D mesh (low cost) and the flattened butterfly (high
performance), with `2^(R+C-4)` configurations in between.  This benchmark
samples the configuration space of scenario (a), computes the cost/performance
trade-off frontier, and checks that (i) the mesh and the flattened butterfly
are its end points and (ii) the frontier is monotone: spending more area never
reduces the achievable saturation throughput.
"""

from repro.analysis.design_space import sweep_sparse_hamming_configurations, trade_off_curve
from repro.arch.knc import scenario

from conftest import scenario_toolchain


def _sweep():
    target = scenario("a")
    toolchain = scenario_toolchain(target)
    samples = sweep_sparse_hamming_configurations(
        target.rows,
        target.cols,
        toolchain,
        endpoints_per_tile=target.cores_per_tile,
        max_configurations=24,
        seed=7,
    )
    return samples, trade_off_curve(samples)


def test_design_space_tradeoff(benchmark, record_rows):
    samples, frontier = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record_rows(
        "Design-space sweep — scenario a (24 sampled configurations, frontier only)",
        [
            {
                "S_R": str(sorted(sample.s_r)),
                "S_C": str(sorted(sample.s_c)),
                "links": sample.num_links,
                "area overhead [%]": round(100 * sample.area_overhead, 2),
                "latency [cycles]": round(sample.prediction.zero_load_latency_cycles, 2),
                "throughput [%]": round(100 * sample.saturation_throughput, 2),
            }
            for sample in frontier
        ],
    )

    # The sampled sweep always contains the two end points of the design space.
    configurations = {(s.s_r, s.s_c) for s in samples}
    mesh = (frozenset(), frozenset())
    butterfly = (frozenset(range(2, 8)), frozenset(range(2, 8)))
    assert mesh in configurations and butterfly in configurations

    # The frontier is monotone: more area never buys less throughput.
    areas = [s.area_overhead for s in frontier]
    throughputs = [s.saturation_throughput for s in frontier]
    assert areas == sorted(areas)
    assert throughputs == sorted(throughputs)

    # The cheapest frontier point is the mesh; the densest configurations reach
    # the flattened butterfly's throughput level.
    assert frontier[0].s_r == frozenset() and frontier[0].s_c == frozenset()
    assert frontier[-1].saturation_throughput >= 0.7
