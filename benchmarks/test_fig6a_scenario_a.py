"""Benchmark: regenerate Figure 6a (64 tiles, 35 MGE, 1 core per tile).

Sparse Hamming graph configuration from the paper: ``S_R = {4}``,
``S_C = {2, 5}``.
"""

from figure6_common import run_figure6_benchmark


def test_figure6a(benchmark, record_rows):
    predictions = run_figure6_benchmark(benchmark, record_rows, "a").as_mapping()
    # Scenario a/b have 64 tiles, so SlimNoC is not applicable (Table I ‡).
    assert "slimnoc" not in predictions
