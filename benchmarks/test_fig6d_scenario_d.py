"""Benchmark: regenerate Figure 6d (128 tiles, 70 MGE, 2 cores per tile).

Sparse Hamming graph configuration from the paper: ``S_R = {2, 4}``,
``S_C = {2, 4}``.
"""

from figure6_common import run_figure6_benchmark


def test_figure6d(benchmark, record_rows):
    predictions = run_figure6_benchmark(benchmark, record_rows, "d").as_mapping()
    assert "slimnoc" in predictions
    # Scaling both the tile count and the tile size keeps the qualitative
    # picture of scenario b: the sparse Hamming graph offers the best
    # throughput/latency combination within the 40% area budget.
    assert predictions["sparse_hamming"].area_overhead <= 0.40
