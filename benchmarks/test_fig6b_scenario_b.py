"""Benchmark: regenerate Figure 6b (64 tiles, 70 MGE, 2 cores per tile).

Sparse Hamming graph configuration from the paper: ``S_R = {2, 4}``,
``S_C = {2, 4}``.
"""

from figure6_common import run_figure6_benchmark


def test_figure6b(benchmark, record_rows):
    predictions = run_figure6_benchmark(benchmark, record_rows, "b").as_mapping()
    assert "slimnoc" not in predictions
    # Doubling the endpoint area makes the same NoC relatively cheaper: the
    # sparse Hamming graph of scenario b is denser than scenario a's, yet its
    # area overhead stays within the budget (checked inside the common runner).
    assert predictions["sparse_hamming"].area_overhead <= 0.40
