"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
prediction toolchain (or analysis code), records the reproduced rows in the
pytest-benchmark ``extra_info`` (so they end up in the benchmark JSON), prints
them to stdout (visible with ``pytest benchmarks/ --benchmark-only -s``), and
asserts the qualitative claims the paper draws from that table/figure.

The performance numbers are produced with the analytical performance model so
that the whole harness completes in minutes; set the environment variable
``REPRO_BENCH_SIMULATE=1`` to use the cycle-accurate simulator instead
(slower by orders of magnitude on the full-size scenarios).
"""

from __future__ import annotations

import os

import pytest

from repro.arch.knc import KNCScenario
from repro.experiments.campaign import figure6_campaign
from repro.experiments.runner import ExperimentRunner, ResultSet
from repro.simulator.simulation import SimulationConfig
from repro.toolchain.predict import PredictionToolchain


def performance_mode() -> str:
    """Select the toolchain performance mode for the benchmark harness."""
    return "simulation" if os.environ.get("REPRO_BENCH_SIMULATE") == "1" else "analytical"


#: Shortened simulation phases shared by all benchmarks (both toolchain modes
#: read the packet size and pipeline depth from this configuration).
BENCH_SIM_OVERRIDES = {"warmup_cycles": 300, "measurement_cycles": 500}


def scenario_toolchain(scenario: KNCScenario) -> PredictionToolchain:
    """Toolchain for one KNC scenario, honouring ``REPRO_BENCH_SIMULATE``."""
    return PredictionToolchain(
        scenario.parameters(),
        performance_mode=performance_mode(),
        simulation_config=SimulationConfig(**BENCH_SIM_OVERRIDES),
    )


def evaluate_scenario(scenario: KNCScenario) -> ResultSet:
    """Evaluate one Figure 6 panel through the declarative experiment API."""
    campaign = figure6_campaign(
        scenario.key, performance_mode=performance_mode(), sim=BENCH_SIM_OVERRIDES
    )
    return ExperimentRunner().run(campaign)


def figure6_rows(results: ResultSet) -> list[dict[str, float | str]]:
    """Figure-6-style rows (one per topology) for reporting."""
    return [prediction.as_row() for prediction in results.predictions]


def print_rows(title: str, rows: list[dict[str, float | str]]) -> None:
    """Print reproduced rows in a readable aligned layout."""
    print(f"\n=== {title}")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in columns}
    print(" | ".join(c.ljust(widths[c]) for c in columns))
    for row in rows:
        print(" | ".join(str(row[c]).ljust(widths[c]) for c in columns))


@pytest.fixture
def record_rows(benchmark):
    """Attach reproduced rows to the benchmark record and print them."""

    def _record(title: str, rows: list[dict[str, float | str]]) -> None:
        benchmark.extra_info["title"] = title
        benchmark.extra_info["rows"] = rows
        print_rows(title, rows)

    return _record
