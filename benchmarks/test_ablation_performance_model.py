"""Ablation benchmark: analytical performance model vs cycle-accurate simulation.

The Figure 6 benchmarks use the fast analytical performance model; the paper
uses cycle-accurate simulation (BookSim2).  This ablation runs both paths of
our toolchain on a mid-size network and records their zero-load latency and
saturation throughput side by side, demonstrating that the analytical model
preserves the orderings the evaluation relies on (the calibration evidence for
using it in the full-size benchmarks).
"""

from repro.core.sparse_hamming import SparseHammingGraph
from repro.simulator.routing_tables import build_routing_tables
from repro.simulator.simulation import SimulationConfig
from repro.simulator.sweep import find_saturation_throughput
from repro.toolchain.analytical import analytical_performance
from repro.topologies.mesh import MeshTopology
from repro.topologies.ring import RingTopology

SIM_CONFIG = SimulationConfig(
    warmup_cycles=200,
    measurement_cycles=400,
    drain_max_cycles=2000,
    packet_size_flits=4,
    num_vcs=8,
    buffer_depth_flits=4,
    seed=23,
)

TOPOLOGIES = {
    "ring 6x6": RingTopology(6, 6),
    "mesh 6x6": MeshTopology(6, 6),
    "sparse hamming 6x6 (S_R={3}, S_C={3})": SparseHammingGraph(6, 6, s_r={3}, s_c={3}),
}


def _compare_models():
    rows = []
    for label, topology in TOPOLOGIES.items():
        routing = build_routing_tables(topology)
        analytical = analytical_performance(
            topology,
            routing=routing,
            packet_size_flits=SIM_CONFIG.packet_size_flits,
            router_pipeline_cycles=SIM_CONFIG.router_pipeline_cycles,
        )
        simulated = find_saturation_throughput(
            topology, SIM_CONFIG, routing=routing, coarse_steps=4, refine_steps=1
        )
        rows.append(
            {
                "topology": label,
                "analytical latency [cycles]": round(analytical.zero_load_latency_cycles, 1),
                "simulated latency [cycles]": round(simulated.zero_load_latency, 1),
                "analytical saturation [%]": round(100 * analytical.saturation_throughput, 1),
                "simulated saturation [%]": round(100 * simulated.saturation_throughput, 1),
            }
        )
    return rows


def test_ablation_analytical_vs_simulation(benchmark, record_rows):
    rows = benchmark.pedantic(_compare_models, rounds=1, iterations=1)
    record_rows("Ablation — analytical model vs cycle-accurate simulation", rows)

    by_name = {row["topology"]: row for row in rows}
    ring = by_name["ring 6x6"]
    mesh = by_name["mesh 6x6"]
    shg = by_name["sparse hamming 6x6 (S_R={3}, S_C={3})"]

    # Orderings agree between the two performance paths.
    assert ring["analytical latency [cycles]"] > mesh["analytical latency [cycles]"]
    assert ring["simulated latency [cycles]"] > mesh["simulated latency [cycles]"]
    assert shg["analytical saturation [%]"] > ring["analytical saturation [%]"]
    assert shg["simulated saturation [%]"] > ring["simulated saturation [%]"]
    # Zero-load latencies agree within 40% for every topology.
    for row in rows:
        a, s = row["analytical latency [cycles]"], row["simulated latency [cycles]"]
        assert abs(a - s) / s < 0.4
