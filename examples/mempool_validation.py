#!/usr/bin/env python3
"""Validate the prediction toolchain against MemPool (Table III).

The paper assesses its toolchain by predicting the cost and performance of the
open-source MemPool architecture and comparing against the published
implementation results.  This example reproduces that experiment: it runs the
toolchain on the MemPool group-level model and prints the Table III rows
(correct value, our prediction, prediction error).

Run with:  python examples/mempool_validation.py [--simulate]
"""

import sys

from repro.arch import validate_toolchain_against_mempool
from repro.arch.mempool import PAPER_PREDICTION


def main() -> None:
    mode = "simulation" if "--simulate" in sys.argv else "analytical"
    validation = validate_toolchain_against_mempool(performance_mode=mode)

    print(f"Table III reproduction (performance mode: {mode})")
    print(f"{'Metric':<18s} {'Correct':>10s} {'Ours':>10s} {'Err [%]':>9s} {'Paper pred.':>12s}")
    paper = {
        "Area [mm2]": PAPER_PREDICTION.area_mm2,
        "Power [W]": PAPER_PREDICTION.power_w,
        "Latency [cycles]": PAPER_PREDICTION.latency_cycles,
        "Throughput [%]": 100 * PAPER_PREDICTION.throughput_fraction,
    }
    for row in validation.as_table():
        metric = str(row["Metric"])
        print(
            f"{metric:<18s} {row['Correct Value']:>10} {row['Prediction']:>10} "
            f"{row['Prediction Error [%]']:>9} {paper[metric]:>12}"
        )
    print()
    print(
        "Like the paper's toolchain, the model over-estimates MemPool's latency "
        "(the real interconnect is heavily latency-optimised and breaks the "
        "one-cycle-per-router assumption) while area and power land close to "
        "the implementation values."
    )


if __name__ == "__main__":
    main()
