#!/usr/bin/env python3
"""Run the cycle-accurate simulator directly: latency-throughput curves.

This example exercises the BookSim2-substitute simulator on a small network:
it sweeps the injection rate for a 2D mesh and a sparse Hamming graph under
uniform random traffic and prints the latency/throughput curve of each,
showing the characteristic latency blow-up at saturation and the higher
saturation point of the sparse Hamming graph.

Run with:  python examples/simulate_traffic.py
"""

from repro import SparseHammingGraph
from repro.simulator import SimulationConfig, run_load_sweep
from repro.topologies import MeshTopology


def main() -> None:
    rows = cols = 6
    config = SimulationConfig(
        warmup_cycles=300,
        measurement_cycles=500,
        drain_max_cycles=3000,
        packet_size_flits=4,
        num_vcs=8,
        buffer_depth_flits=4,
        seed=7,
    )
    rates = [0.02, 0.10, 0.20, 0.30, 0.40, 0.50]

    for topology in (MeshTopology(rows, cols), SparseHammingGraph(rows, cols, s_r={3}, s_c={3})):
        print(f"{topology.name}  ({rows}x{cols}, {topology.num_links} links)")
        print(f"  {'offered':>8s} {'accepted':>9s} {'avg lat':>8s} {'p99 lat':>8s} {'hops':>6s}")
        for rate, stats in run_load_sweep(topology, rates, config=config):
            print(
                f"  {rate:8.2f} {stats.accepted_load:9.3f} "
                f"{stats.average_packet_latency:8.1f} {stats.p99_packet_latency:8.1f} "
                f"{stats.average_hops:6.2f}"
            )
        print()


if __name__ == "__main__":
    main()
