#!/usr/bin/env python
"""Replay one DNN-inference trace on a mesh and a customized sparse Hamming graph.

Synthetic Bernoulli traffic cannot express what a real application does:
bursty, phase-structured, spatially skewed exchanges.  This walkthrough
generates a **layer-wise DNN-inference trace** once, replays the *identical*
trace on an 8x8 mesh and on the paper's customized sparse Hamming graph
(the Figure 6a configuration), and compares them phase by phase — which
topology wins which layer, where the bottleneck sits, and whether any phase
saturates.

Run it from the repository root::

    PYTHONPATH=src python examples/workload_replay.py
"""

from __future__ import annotations

from repro.analysis.phases import (
    bottleneck_phase,
    phase_pareto_fronts,
    phase_records,
    phase_speedups,
)
from repro.core.sparse_hamming import SparseHammingGraph
from repro.simulator.simulation import SimulationConfig
from repro.simulator.sweep import replay_trace
from repro.topologies.mesh import MeshTopology
from repro.workloads import make_workload_trace


def main() -> None:
    rows = cols = 8

    # One trace, generated once from a fixed seed: both topologies see the
    # exact same packets at the exact same cycles.
    trace = make_workload_trace(
        "dnn_inference",
        rows,
        cols,
        seed=7,
        layers=8,
        layer_window=128,
        activations_per_tile=3,
        fan_out=4,
    )
    print(f"workload: {trace.name} ({trace.trace_id})")
    print(
        f"  {trace.num_packets} packets / {trace.total_flits} flits over "
        f"{trace.duration} cycles, phases: {', '.join(trace.phase_names)}"
    )

    config = SimulationConfig(drain_max_cycles=5000)
    topologies = {
        "mesh": MeshTopology(rows, cols),
        # The paper's customized configuration for the 8x8 KNC scenario (a).
        "sparse_hamming": SparseHammingGraph(rows, cols, s_r={4}, s_c={2, 5}),
    }

    replays = {}
    for label, topology in topologies.items():
        stats = replay_trace(topology, trace, config=config)
        replays[label] = stats
        print(f"\n{label} ({topology.name}):")
        print(
            f"  latency {stats.average_packet_latency:7.2f} cyc "
            f"(p99 {stats.p99_packet_latency:7.2f}), "
            f"accepted {stats.accepted_load:.4f} flits/tile/cyc, "
            f"drained {'yes' if stats.drained else 'NO'}"
        )
        for row in phase_records(stats):
            print(
                f"    {row['phase']:>7s}  latency {row['average_packet_latency']:7.2f} "
                f"p99 {row['p99_packet_latency']:7.2f}  "
                f"thr {row['throughput']:.4f}  "
                f"{'SATURATED' if row['saturated'] else 'ok'}"
            )
        worst = bottleneck_phase(stats)
        assert worst is not None
        print(f"  bottleneck phase: {worst.name} ({worst.average_packet_latency:.2f} cyc)")

    print("\nper-phase latency speedup of sparse_hamming over mesh:")
    speedups = phase_speedups(replays["mesh"], replays["sparse_hamming"])
    for phase, speedup in speedups.items():
        print(f"  {phase:>7s}: {speedup:5.2f}x")

    print("\nper-phase Pareto winners (latency down, throughput up):")
    for phase, front in phase_pareto_fronts(replays).items():
        winners = ", ".join(point.label for point in front)
        print(f"  {phase:>7s}: {winners}")

    mean = sum(speedups.values()) / len(speedups)
    print(
        f"\nThe customized sparse Hamming graph's richer row/column express "
        f"links shorten the activation scatter of every layer "
        f"(mean phase speedup {mean:.2f}x over the mesh) under identical, "
        f"replayed traffic — the trace makes the comparison apples-to-apples."
    )


if __name__ == "__main__":
    main()
