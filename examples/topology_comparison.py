#!/usr/bin/env python3
"""Compare all established topologies against the sparse Hamming graph (Figure 6).

For one evaluation scenario this example predicts the four Figure 6 metrics
(area overhead, power, zero-load latency, saturation throughput) for every
applicable topology, prints the comparison table, and reports which topology
wins under the paper's design goal (max throughput within 40% area overhead).

Run with:  python examples/topology_comparison.py [scenario]      (default: a)
Pass ``--simulate`` to use the cycle-accurate simulator for the performance
metrics instead of the fast analytical model (much slower).
"""

import sys

from repro import PredictionToolchain
from repro.analysis import best_within_area_budget, latency_rank, pareto_front, ParetoPoint
from repro.arch import scenario
from repro.simulator import SimulationConfig
from repro.topologies import applicable_topologies, make_topology


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    key = args[0] if args else "a"
    use_simulation = "--simulate" in sys.argv

    target = scenario(key)
    print(f"scenario {target.key}: {target.description}")
    toolchain = PredictionToolchain(
        target.parameters(),
        performance_mode="simulation" if use_simulation else "analytical",
        simulation_config=SimulationConfig(warmup_cycles=300, measurement_cycles=500),
    )

    predictions = []
    for name in applicable_topologies(target.rows, target.cols):
        kwargs = {}
        if name == "sparse_hamming":
            kwargs = {"s_r": target.paper_s_r, "s_c": target.paper_s_c}
        topology = make_topology(
            name, target.rows, target.cols, endpoints_per_tile=target.cores_per_tile, **kwargs
        )
        predictions.append(toolchain.predict(topology))

    header = f"{'topology':<24s} {'area ovh':>9s} {'power':>9s} {'latency':>9s} {'sat.thr':>9s}"
    print(header)
    print("-" * len(header))
    for result in predictions:
        print(
            f"{result.topology_name:<24s} "
            f"{result.area_overhead_percent:8.2f}% "
            f"{result.noc_power_w:8.2f}W "
            f"{result.zero_load_latency_cycles:8.1f}c "
            f"{result.saturation_throughput_percent:8.2f}%"
        )

    print()
    best = best_within_area_budget(predictions, max_area_overhead=0.40)
    if best is not None:
        rank = latency_rank(predictions, best.topology_name)
        print(f"best within the 40% area budget: {best.topology_name}")
        print(f"  (latency rank {rank} of {len(predictions)} topologies)")
    front = pareto_front(ParetoPoint.from_prediction(p) for p in predictions)
    print("Pareto-optimal topologies: " + ", ".join(point.name for point in front))


if __name__ == "__main__":
    main()
