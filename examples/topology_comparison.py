#!/usr/bin/env python3
"""Compare all established topologies against the sparse Hamming graph (Figure 6).

For one evaluation scenario this example expands the Figure 6 campaign (every
applicable topology with the paper's sparse-Hamming-graph configuration),
executes it with the experiment runner, prints the comparison table, and
reports which topology wins under the paper's design goal (max throughput
within 40% area overhead).

Run with:  python examples/topology_comparison.py [scenario]      (default: a)
Pass ``--simulate`` to use the cycle-accurate simulator for the performance
metrics instead of the fast analytical model (much slower).
"""

import sys

from repro import ExperimentRunner, figure6_campaign


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    key = args[0] if args else "a"
    use_simulation = "--simulate" in sys.argv

    campaign = figure6_campaign(
        key,
        performance_mode="simulation" if use_simulation else "analytical",
        sim={"warmup_cycles": 300, "measurement_cycles": 500},
    )
    print(f"campaign {campaign.name!r}: {len(campaign)} experiments")
    results = ExperimentRunner().run(campaign)

    header = f"{'topology':<24s} {'area ovh':>9s} {'power':>9s} {'latency':>9s} {'sat.thr':>9s}"
    print(header)
    print("-" * len(header))
    for result in results.predictions:
        print(
            f"{result.topology_name:<24s} "
            f"{result.area_overhead_percent:8.2f}% "
            f"{result.noc_power_w:8.2f}W "
            f"{result.zero_load_latency_cycles:8.1f}c "
            f"{result.saturation_throughput_percent:8.2f}%"
        )

    print()
    best = results.best_within_area_budget(max_area_overhead=0.40)
    if best is not None:
        rank = results.latency_rank(best.topology_name)
        print(f"best within the 40% area budget: {best.topology_name}")
        print(f"  (latency rank {rank} of {len(results)} topologies)")
    front = results.pareto_front()
    print("Pareto-optimal topologies: " + ", ".join(point.name for point in front))


if __name__ == "__main__":
    main()
