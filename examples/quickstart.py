#!/usr/bin/env python3
"""Quickstart: build a sparse Hamming graph and predict its cost and performance.

This example walks through the paper's core workflow in a few lines:

1. construct a sparse Hamming graph for an 8x8 tile grid (Figure 2),
2. describe the target architecture with its Table II parameters,
3. run the prediction toolchain (Figure 3) to obtain area overhead, power,
   zero-load latency and saturation throughput,
4. compare the chosen configuration against the mesh and flattened butterfly
   endpoints of the design space.

Run with:  python examples/quickstart.py
"""

from repro import ArchitecturalParameters, PredictionToolchain, SparseHammingGraph
from repro.topologies import FlattenedButterflyTopology, MeshTopology
from repro.viz import render_sparse_hamming_construction


def main() -> None:
    rows, cols = 8, 8

    # Step 1: the sparse Hamming graph of Figure 6a (S_R = {4}, S_C = {2, 5}).
    shg = SparseHammingGraph(rows, cols, s_r={4}, s_c={2, 5})
    print(render_sparse_hamming_construction(rows, cols, shg.s_r, shg.s_c))
    print()
    print(f"configuration: {shg.describe_configuration()}")
    print(f"router radix:  {shg.router_radix()}")
    print(f"diameter:      {shg.diameter()} (expected {shg.expected_diameter()})")
    print()

    # Step 2: a KNC-like architecture (64 tiles of 35 MGE, 512 b/cycle, 1.2 GHz).
    params = ArchitecturalParameters(
        num_tiles=rows * cols,
        endpoint_area_ge=35e6,
        frequency_hz=1.2e9,
        link_bandwidth_bits=512,
        name="quickstart",
    )

    # Step 3: predict cost and performance (analytical performance mode).
    toolchain = PredictionToolchain(params)
    print(f"{'topology':<24s} {'area ovh':>9s} {'power':>9s} {'latency':>9s} {'sat.thr':>9s}")
    for topology in (
        MeshTopology(rows, cols),
        shg,
        FlattenedButterflyTopology(rows, cols),
    ):
        result = toolchain.predict(topology)
        print(
            f"{topology.name:<24s} "
            f"{result.area_overhead_percent:8.2f}% "
            f"{result.noc_power_w:8.2f}W "
            f"{result.zero_load_latency_cycles:8.1f}c "
            f"{result.saturation_throughput_percent:8.2f}%"
        )
    print()
    print(
        "The sparse Hamming graph sits between the mesh (cheap, slow) and the "
        "flattened butterfly (fast, expensive) — and its position is tunable "
        "through S_R and S_C."
    )


if __name__ == "__main__":
    main()
