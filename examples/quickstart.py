#!/usr/bin/env python3
"""Quickstart: build a sparse Hamming graph and predict its cost and performance.

This example walks through the paper's core workflow in a few lines, using the
declarative experiment API:

1. construct a sparse Hamming graph for an 8x8 tile grid (Figure 2),
2. describe each run as a serializable :class:`repro.ExperimentSpec`
   (topology + Table II architecture + traffic + performance mode),
3. execute the specs with an :class:`repro.ExperimentRunner` to obtain area
   overhead, power, zero-load latency and saturation throughput,
4. compare the chosen configuration against the mesh and flattened butterfly
   endpoints of the design space.

The same specs, dumped with ``spec.to_json()``, can be re-run from the command
line with ``repro campaign --spec <file>``.

Run with:  python examples/quickstart.py
"""

from repro import ExperimentRunner, ExperimentSpec, SparseHammingGraph
from repro.viz import render_sparse_hamming_construction


def main() -> None:
    rows, cols = 8, 8

    # Step 1: the sparse Hamming graph of Figure 6a (S_R = {4}, S_C = {2, 5}).
    shg = SparseHammingGraph(rows, cols, s_r={4}, s_c={2, 5})
    print(render_sparse_hamming_construction(rows, cols, shg.s_r, shg.s_c))
    print()
    print(f"configuration: {shg.describe_configuration()}")
    print(f"router radix:  {shg.router_radix()}")
    print(f"diameter:      {shg.diameter()} (expected {shg.expected_diameter()})")
    print()

    # Step 2: one spec per topology on a KNC-like architecture (64 tiles of
    # 35 MGE, 512 b/cycle, 1.2 GHz — the spec defaults).  Each spec is pure
    # data: JSON-round-trippable with a stable content-hash identity.
    arch = {"frequency_hz": 1.2e9, "link_bandwidth_bits": 512.0, "name": "quickstart"}
    specs = [
        ExperimentSpec(topology="mesh", rows=rows, cols=cols, arch=arch),
        ExperimentSpec(
            topology="sparse_hamming",
            rows=rows,
            cols=cols,
            topology_kwargs={"s_r": [4], "s_c": [2, 5]},
            arch=arch,
        ),
        ExperimentSpec(topology="flattened_butterfly", rows=rows, cols=cols, arch=arch),
    ]
    print(f"spec identity of the SHG run: {specs[1].spec_id}")

    # Step 3: run the specs (analytical performance mode is the default).
    results = ExperimentRunner().run(specs)
    print(f"{'topology':<24s} {'area ovh':>9s} {'power':>9s} {'latency':>9s} {'sat.thr':>9s}")
    for result in results.predictions:
        print(
            f"{result.topology_name:<24s} "
            f"{result.area_overhead_percent:8.2f}% "
            f"{result.noc_power_w:8.2f}W "
            f"{result.zero_load_latency_cycles:8.1f}c "
            f"{result.saturation_throughput_percent:8.2f}%"
        )
    print()
    print(
        "The sparse Hamming graph sits between the mesh (cheap, slow) and the "
        "flattened butterfly (fast, expensive) — and its position is tunable "
        "through S_R and S_C."
    )


if __name__ == "__main__":
    main()
