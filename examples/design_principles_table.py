#!/usr/bin/env python3
"""Reproduce Table I: compliance of topologies with the design principles.

The table is recomputed from the actual graph structure of every topology
(router radix, diameter, link alignment, link-density uniformity, port
placement, minimal-path analysis) rather than copied from the paper, so it can
be generated for any grid size.

Run with:  python examples/design_principles_table.py [rows] [cols]   (default 8 8)
"""

import sys

from repro.analysis import compliance_table, format_compliance_table


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    table = compliance_table(rows, cols)
    print(f"Design-principle compliance for an {rows}x{cols} tile grid (Table I)")
    print()
    print(format_compliance_table(table))
    print()
    print(
        "Note: SlimNoC only appears when R*C = 2*q^2 for a prime power q "
        "(e.g. 8x16 = 128 = 2*8^2), and the hypercube only for power-of-two "
        "dimensions — the same applicability rules as in the paper."
    )


if __name__ == "__main__":
    main()
