#!/usr/bin/env python3
"""Customize a sparse Hamming graph for a target architecture (Section V-a).

This example runs the paper's five-step customization strategy for one of the
four KNC-like evaluation scenarios: starting from the mesh, skip links are
added greedily as long as they improve throughput (then latency) and the NoC
area overhead stays below 40%.

Run with:  python examples/customize_noc.py [scenario]      (default: a)
"""

import sys

from repro import (
    CustomizationGoal,
    ExperimentRunner,
    ExperimentSpec,
    PredictionToolchain,
    customize_sparse_hamming,
)
from repro.arch import scenario


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "a"
    target = scenario(key)
    print(f"scenario {target.key}: {target.description}")
    print(f"paper's chosen configuration: S_R={sorted(target.paper_s_r)}, S_C={sorted(target.paper_s_c)}")
    print()

    toolchain = PredictionToolchain(target.parameters())
    goal = CustomizationGoal(max_area_overhead=0.40)
    result = customize_sparse_hamming(
        rows=target.rows,
        cols=target.cols,
        predictor=toolchain,
        goal=goal,
        endpoints_per_tile=target.cores_per_tile,
        max_iterations=16,
    )

    print("customization trace (each line = one accepted change):")
    for step in result.steps:
        print("  " + step.describe())
    print()
    print(f"final configuration: {result.topology.describe_configuration()}")
    print(f"  area overhead:          {result.prediction.area_overhead * 100:.1f}% (budget 40%)")
    print(f"  NoC power:              {result.prediction.noc_power_w:.2f} W")
    print(f"  zero-load latency:      {result.prediction.zero_load_latency_cycles:.1f} cycles")
    print(f"  saturation throughput:  {result.prediction.saturation_throughput * 100:.1f}%")
    print(f"  toolchain evaluations:  {result.evaluations}")

    # Cross-check against the configuration the paper reports, expressed as a
    # declarative experiment spec (scenario specs default to the paper's
    # S_R/S_C, so the spec body stays empty).
    paper_spec = ExperimentSpec(
        topology="sparse_hamming", rows=target.rows, cols=target.cols, scenario=key
    )
    paper = ExperimentRunner().run(paper_spec)[0].prediction
    print()
    print(f"paper's configuration (spec {paper_spec.spec_id}):")
    print(f"  area overhead:          {paper.area_overhead * 100:.1f}%")
    print(f"  saturation throughput:  {paper.saturation_throughput * 100:.1f}%")


if __name__ == "__main__":
    main()
