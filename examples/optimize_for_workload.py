#!/usr/bin/env python
"""Customize an 8x8 topology for a DNN-inference trace with ``repro.optimize``.

The paper's customization story, end to end: given the *application* — here
the layer-wise activation exchange of a pipelined DNN inference pass — search
the topology design space for the configuration that replays the trace with
the lowest average packet latency, under the paper's 40% area budget.  The
search screens the full space (Figure 6 baseline families plus a sampled
sparse-Hamming configuration space) with the trace-weighted analytical model,
then runs successive-halving cycle-accurate replays of the survivors, and
finally reports the winner's speedup over the 8x8 mesh baseline — phase by
phase, under identical replayed traffic.

Run it from the repository root::

    PYTHONPATH=src python examples/optimize_for_workload.py
"""

from __future__ import annotations

import sys

from repro.analysis.search import (
    best_screened_per_family,
    compare_with_baseline,
)
from repro.optimize import SearchSpec, run_search

#: The trace of examples/workload_replay.py: 8 layers, 128-cycle windows.
DNN_WORKLOAD = {
    "name": "dnn_inference",
    "seed": 7,
    "params": {
        "layers": 8,
        "layer_window": 128,
        "activations_per_tile": 3,
        "fan_out": 4,
    },
}


def main(max_configurations: int = 60, survivors: int = 6) -> None:
    spec = SearchSpec(
        rows=8,
        cols=8,
        space={
            "mesh": {},
            "torus": {},
            "folded_torus": {},
            "flattened_butterfly": {},
            "sparse_hamming": {"max_configurations": max_configurations},
        },
        objective={"metric": "workload_latency", "workload": DNN_WORKLOAD},
        constraints={"max_area_overhead": 0.40},
        scenario="a",
        sim={"drain_max_cycles": 5000},
        survivors=survivors,
        seed=0,
        baseline="mesh",
        label="customize 8x8 for DNN inference",
    )
    print(f"search {spec.search_id}: {spec.describe()}")

    result = run_search(spec)
    print(
        f"\nstage 1 screened {result.candidates_screened} candidates "
        f"({result.candidates_feasible} within the 40% area budget) with the "
        f"trace-weighted analytical model;"
    )
    print(
        f"stage 2 replayed {result.candidates_simulated} survivors "
        f"cycle-accurately ({result.simulations} simulations) — a "
        f"{result.screening_ratio:.1f}x screening ratio."
    )

    print("\nbest screened configuration per family:")
    for family, record in sorted(best_screened_per_family(result).items()):
        assert record.estimate is not None
        print(
            f"  {family:>20s}: trace latency "
            f"{record.estimate.trace_latency_cycles:6.2f} cyc  "
            f"area {100 * record.estimate.area_overhead:5.2f}%"
        )

    print("\nsuccessive-halving trajectory:")
    for rung in result.rungs:
        budget = (
            ", ".join(f"{k}={v}" for k, v in sorted(rung.sim_overrides.items()))
            or "full budget"
        )
        for entry in rung.entries:
            print(
                f"  rung {rung.rung} ({budget}): "
                f"{entry.candidate.describe():<60s} score {entry.score:7.2f}"
            )

    winner = result.winner_prediction
    print(f"\nwinner: {result.winner.describe()}")
    print(
        f"  replayed latency {winner.zero_load_latency_cycles:.2f} cyc, "
        f"area overhead {100 * winner.area_overhead:.2f}%, "
        f"power {winner.noc_power_w:.2f} W"
    )

    comparison = compare_with_baseline(result)
    assert result.baseline_prediction is not None
    print(
        f"baseline mesh: replayed latency "
        f"{result.baseline_prediction.zero_load_latency_cycles:.2f} cyc"
    )
    print(f"\nspeedup over the mesh, per DNN layer:")
    for phase, speedup in comparison.get("phase_speedups", {}).items():
        print(f"  {phase:>7s}: {speedup:5.2f}x")
    print(
        f"\nThe customized topology replays the DNN-inference trace "
        f"{comparison['objective_speedup']:.2f}x faster than the mesh — the "
        f"trace-weighted screening pass pointed the cycle-accurate budget at "
        f"the right corner of a {result.candidates_screened}-candidate space."
    )


if __name__ == "__main__":
    if len(sys.argv) > 1:
        main(max_configurations=int(sys.argv[1]), survivors=int(sys.argv[2]))
    else:
        main()
