#!/usr/bin/env python3
"""Walk through the five steps of the physical model (Figure 4/5).

For one topology and one architecture this example runs each model step
separately and prints its intermediate artifacts: tile geometry (step 1),
global-routing channel loads (step 2), channel spacings (step 3), unit-cell
discretization (step 4), and detailed-routing wire lengths / link latencies
(step 5).

Run with:  python examples/floorplan_walkthrough.py
"""

from repro import SparseHammingGraph
from repro.arch import scenario_parameters
from repro.physical import (
    build_floorplan,
    detailed_route,
    discretize_chip,
    estimate_area,
    estimate_link_latencies,
    estimate_power,
    estimate_tile_geometry,
    global_route,
)
from repro.viz import render_channel_loads, render_floorplan
from repro.physical.model import NoCPhysicalModel


def main() -> None:
    params = scenario_parameters("a")
    topology = SparseHammingGraph(8, 8, s_r={4}, s_c={2, 5})
    print(f"architecture: {params.name}, topology: {topology.describe_configuration()}")
    print()

    # Step 1: tile area estimate.
    geometry = estimate_tile_geometry(params, topology)
    print("step 1 — tile area estimate")
    print(f"  endpoint area: {geometry.endpoint_area_ge / 1e6:.1f} MGE")
    print(f"  router area:   {geometry.router_area_ge / 1e6:.2f} MGE ({geometry.router_ports} ports)")
    print(f"  tile:          {geometry.width_mm:.3f} x {geometry.height_mm:.3f} mm")
    print()

    # Step 2: global routing.
    floorplan = build_floorplan(topology, geometry)
    routing = global_route(topology, floorplan)
    print("step 2 — global routing in the grid of tiles")
    print(render_channel_loads(routing))
    print()

    # Steps 3-4: spacing estimation and unit-cell discretization.
    grid = discretize_chip(params, floorplan, routing)
    print("steps 3-4 — spacing estimation and unit-cell discretization")
    print(f"  unit cell: {grid.cell_width_mm * 1000:.1f} x {grid.cell_height_mm * 1000:.1f} um")
    print(f"  chip: {grid.chip_width_mm:.2f} x {grid.chip_height_mm:.2f} mm, {grid.total_cells} cells")
    print()

    # Step 5: detailed routing and the derived estimates.
    detailed = detailed_route(grid, routing)
    area = estimate_area(params, grid)
    power = estimate_power(params, grid, detailed)
    latencies = estimate_link_latencies(params, grid, detailed)
    print("step 5 — detailed routing and model outputs")
    print(f"  total wire length: {detailed.total_wire_length_mm():.1f} mm")
    print(f"  area overhead:     {area.area_overhead * 100:.2f}%")
    print(f"  NoC power:         {power.noc_power_w:.2f} W")
    print(f"  link latency:      min 1, max {max(latencies.values())} cycles")
    print()

    # The same, through the one-call model interface.
    result = NoCPhysicalModel(params).evaluate(topology)
    print("summary (NoCPhysicalModel.evaluate):")
    print(render_floorplan(result))


if __name__ == "__main__":
    main()
