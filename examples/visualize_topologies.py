#!/usr/bin/env python3
"""Render the established NoC topologies as ASCII art (Figure 1 analogue).

Draws every applicable topology on a small grid: grid-adjacent links are shown
inline, longer links (skip, wrap-around, non-aligned) are listed below each
drawing.

Run with:  python examples/visualize_topologies.py [rows] [cols]   (default 4 4)
"""

import sys

from repro.topologies import applicable_topologies, make_topology
from repro.viz import render_topology


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    names = applicable_topologies(rows, cols)
    for name in names:
        kwargs = {"s_r": {2}, "s_c": {2}} if name == "sparse_hamming" else {}
        topology = make_topology(name, rows, cols, **kwargs)
        print(render_topology(topology, max_listed_links=12))
        print()


if __name__ == "__main__":
    main()
