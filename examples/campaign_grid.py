#!/usr/bin/env python3
"""Declarative campaigns: grid expansion, memoization, and CLI parity.

This example shows the batch-first workflow of :mod:`repro.experiments`:

1. expand a cartesian grid (topologies x traffic patterns) into experiment
   specs — inapplicable topology/size combinations are filtered automatically;
2. run the campaign through an :class:`ExperimentRunner` with an on-disk
   cache, then run it again to show that every result is served from the
   cache (the ``spec_id`` content hash is the memoization key);
3. save the campaign as JSON — the exact file ``repro campaign --spec ...``
   consumes — and export the results as CSV records.

Run with:  python examples/campaign_grid.py [rows cols]      (default: 4 4)
"""

import sys
import tempfile
from pathlib import Path

from repro import Campaign, ExperimentRunner


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 2 else 4
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    campaign = Campaign.grid(
        topologies=("mesh", "torus", "hypercube", "slimnoc", "sparse_hamming"),
        sizes=((rows, cols),),
        traffics=("uniform", "tornado"),
        topology_kwargs={"sparse_hamming": {"s_r": [2], "s_c": [2]}},
        arch={"endpoint_area_ge": 5e6},
        name=f"grid-{rows}x{cols}",
    )
    print(f"campaign {campaign.name!r} expands to {len(campaign)} specs")
    print("(inapplicable topologies were skipped automatically)")
    print()

    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "cache"
        runner = ExperimentRunner(cache_dir=cache_dir)

        results = runner.run(campaign)
        print(f"first run:  {len(results)} results, {results.num_cached} from cache")
        rerun = runner.run(campaign)
        print(f"second run: {len(rerun)} results, {rerun.num_cached} from cache")
        print()

        spec_file = Path(tmp) / "campaign.json"
        campaign.save(spec_file)
        print(f"campaign JSON (consumable by `repro campaign --spec ...`):")
        print(f"  {spec_file}  ({spec_file.stat().st_size} bytes)")

        csv_file = Path(tmp) / "results.csv"
        results.to_csv(csv_file)
        print(f"result CSV: {csv_file}  ({len(results.to_records())} rows)")
        print()

    print(f"{'topology':<16s} {'traffic':<10s} {'latency':>9s} {'sat.thr':>9s}")
    for record in results.to_records():
        print(
            f"{record['topology']:<16s} {record['traffic']:<10s} "
            f"{record['zero_load_latency_cycles']:8.1f}c "
            f"{100 * record['saturation_throughput']:8.2f}%"
        )


if __name__ == "__main__":
    main()
