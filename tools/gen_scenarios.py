#!/usr/bin/env python
"""List, export or run the engine-differential test scenarios.

The differential harness (``tests/unit/test_engine_equivalence.py``) sweeps
seeded randomized scenarios drawn by :mod:`repro.devtools.scenarios`; each
scenario is a pure function of ``(generator seed, index)``.  This script is
the standalone face of that generator:

* ``--list`` (default) prints the scenario table for a seed, so you can see
  what the suite actually covers;
* ``--json`` exports the scenarios as JSON (for external tooling or to diff
  the generator's output across revisions);
* ``--run`` executes the full differential sweep outside pytest — every
  scenario under every registered engine, failing on the first divergence
  with the one-line ``repro devtools replay-scenario`` command that
  reproduces it.  CI uses this as a pytest-free equivalence gate.

Run it from the repository root::

    PYTHONPATH=src python tools/gen_scenarios.py
    PYTHONPATH=src python tools/gen_scenarios.py --count 40 --run
    PYTHONPATH=src python tools/gen_scenarios.py --seed 7 --json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.devtools.scenarios import (  # noqa: E402  (path bootstrap above)
    DEFAULT_GENERATOR_SEED,
    diff_stats,
    generate_scenarios,
    run_scenario,
)
from repro.simulator.engine import available_engines  # noqa: E402


def _list(scenarios) -> int:
    print(f"{'id':>3s} {'label':34s} {'grid':5s} {'vcs':>3s} {'rate':>5s} {'link':>4s}")
    for scenario in scenarios:
        print(
            f"{scenario.index:3d} {scenario.label:34s} "
            f"{scenario.rows}x{scenario.cols:<3d} "
            f"{scenario.config['num_vcs']:3d} "
            f"{scenario.config['injection_rate']:5.2f} "
            f"{scenario.link_latency or 1:4d}"
        )
    return 0


def _export(scenarios) -> int:
    payload = [dataclasses.asdict(scenario) for scenario in scenarios]
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _run_sweep(scenarios, engines: list[str]) -> int:
    failures = 0
    for scenario in scenarios:
        baseline_engine = engines[0]
        baseline = run_scenario(scenario, baseline_engine)
        verdicts = []
        for engine in engines[1:]:
            stats = run_scenario(scenario, engine)
            differences = diff_stats(baseline_engine, baseline, engine, stats)
            if differences:
                failures += 1
                verdicts.append(f"{engine}:DIVERGED")
                print(
                    f"{scenario.label}: {engine} diverged from {baseline_engine} "
                    f"— reproduce with: {scenario.repro_command()}"
                )
                for line in differences:
                    print(f"  {line}")
            else:
                verdicts.append(f"{engine}:ok")
        print(f"{scenario.label:34s} {' '.join(verdicts)}")
    if failures:
        print(f"{failures} scenario(s) diverged")
        return 1
    print(f"all {len(scenarios)} scenarios agree across {engines}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_GENERATOR_SEED,
        help=f"scenario-generator seed (default: {DEFAULT_GENERATOR_SEED})",
    )
    parser.add_argument(
        "--count", type=int, default=40, help="number of scenarios (default: 40)"
    )
    parser.add_argument(
        "--engines",
        default=None,
        help="comma-separated engines for --run (default: all registered)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--list", action="store_true", help="print the scenario table")
    mode.add_argument("--json", action="store_true", help="export scenarios as JSON")
    mode.add_argument(
        "--run", action="store_true", help="run the differential sweep, exit 1 on divergence"
    )
    args = parser.parse_args(argv)

    scenarios = generate_scenarios(args.count, seed=args.seed)
    if args.json:
        return _export(scenarios)
    if args.run:
        engines = (
            [name.strip() for name in args.engines.split(",") if name.strip()]
            if args.engines
            else available_engines()
        )
        if len(engines) < 2:
            parser.error("--run needs at least two engines to compare")
        return _run_sweep(scenarios, engines)
    return _list(scenarios)


if __name__ == "__main__":
    sys.exit(main())
