#!/usr/bin/env python
"""Run the repo's determinism/consistency lint (``repro.verify.lint``).

Rules (see ``docs/VERIFICATION.md``): no global-state RNG calls, no
unseeded ``default_rng()`` outside ``repro/utils/rng.py``, no wall-clock
reads inside ``src/repro/simulator/``, and all dynamic registries
name-consistent with what they build.

Usage (from the repository root)::

    python tools/lint_repro.py              # lint src/repro + registries
    python tools/lint_repro.py PATH         # lint a different source root

Exit status 0 when clean, 1 when any rule is violated (each finding is
reported as ``file:line: [rule] message``).
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.verify.lint import run_lint  # noqa: E402


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else None
    violations = run_lint(root)
    for violation in violations:
        print(violation)
    if violations:
        print(f"lint: {len(violations)} violation(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
