#!/usr/bin/env python
"""Fail CI when a Markdown file links to a repo path that does not exist.

Scans ``docs/**/*.md`` plus the top-level ``README.md`` for inline Markdown
links and images (``[text](target)`` / ``![alt](target)``).  External links
(``http://``, ``https://``, ``mailto:``) are skipped; pure in-page anchors
(``#section``) are skipped; for relative links the ``#fragment`` is stripped
and the remaining path is resolved relative to the linking file and must
exist inside the repository.

Usage (from the repository root)::

    python tools/check_docs_links.py            # check docs/ + README.md
    python tools/check_docs_links.py FILE...    # check specific files

Exit status 0 when all intra-repo links resolve, 1 otherwise (each broken
link is reported as ``file:line: broken link -> target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown link/image: [text](target) — target captured up to the
#: first unescaped closing parenthesis; titles ("...") are stripped later.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?[^()]*?)\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _targets(markdown: str):
    """Yield ``(line_number, raw_target)`` for every inline link."""
    for line_number, line in enumerate(markdown.splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1).strip()
            # Drop an optional link title: [t](path "title")
            if '"' in target:
                target = target.split('"', 1)[0].strip()
            yield line_number, target


def _display(path: Path, repo_root: Path) -> str:
    """Repo-relative path when possible, absolute otherwise (explicit FILE mode)."""
    try:
        return str(path.relative_to(repo_root))
    except ValueError:
        return str(path)


def check_file(path: Path, repo_root: Path) -> list[str]:
    """Return human-readable error strings for broken links in ``path``."""
    errors = []
    for line_number, target in _targets(path.read_text(encoding="utf-8")):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        if target.startswith("#"):
            continue  # in-page anchor
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        try:
            resolved.relative_to(repo_root)
        except ValueError:
            errors.append(
                f"{_display(path, repo_root)}:{line_number}: "
                f"link escapes the repository -> {target}"
            )
            continue
        if not resolved.exists():
            errors.append(
                f"{_display(path, repo_root)}:{line_number}: broken link -> {target}"
            )
    return errors


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    repo_root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(arg).resolve() for arg in argv]
    else:
        files = sorted((repo_root / "docs").rglob("*.md"))
        readme = repo_root / "README.md"
        if readme.exists():
            files.append(readme)
    if not files:
        print("no Markdown files to check")
        return 1

    all_errors: list[str] = []
    for path in files:
        all_errors.extend(check_file(path, repo_root))

    for error in all_errors:
        print(error, file=sys.stderr)
    checked = ", ".join(_display(f, repo_root) for f in files)
    if all_errors:
        print(f"{len(all_errors)} broken link(s) in: {checked}", file=sys.stderr)
        return 1
    print(f"all intra-repo links resolve in: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
