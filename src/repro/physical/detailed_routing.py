"""Step 5 of the prediction model: detailed routing in the grid of unit-cells.

After the global router has assigned every link to channels and the chip has
been discretized into unit cells, the detailed router fixes the exact *track*
(unit-cell lane) each link occupies inside its channels and derives the
physical wire length of every link.

The per-channel track assignment uses the classic **left-edge algorithm** from
channel routing: the link intervals occupying a channel are sorted by their
start coordinate and greedily packed into the lowest free track.  For interval
graphs this produces an optimal (minimum-track) assignment, so as long as each
channel is as wide as its peak global-routing load (which step 3 guarantees),
no two links collide in the same unit cell.  If a channel is artificially
capped below its peak load (``capacity_override``), the overflow is reported
as *collisions* — the quantity the paper's heuristic minimises.

The output records, for every link, the horizontal and vertical wire lengths
and the corresponding unit-cell counts ``N^H_cell`` / ``N^V_cell`` that feed
the power and link-latency estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.physical.global_routing import ChannelSegment, GlobalRoutingResult
from repro.physical.unit_cells import UnitCellGrid
from repro.topologies.base import Link
from repro.utils.geometry import Point


@dataclass(frozen=True)
class DetailedRoute:
    """Detailed routing result for one link.

    Attributes
    ----------
    link:
        The routed link.
    horizontal_mm, vertical_mm:
        Total horizontal / vertical wire length of the link.
    horizontal_cells, vertical_cells:
        Corresponding unit-cell counts (``N^H_cell`` and ``N^V_cell`` of the
        paper's link-latency formula).
    tracks:
        The ``(orientation, channel, track)`` assignments of the link's
        channel segments.
    """

    link: Link
    horizontal_mm: float
    vertical_mm: float
    horizontal_cells: int
    vertical_cells: int
    tracks: tuple[tuple[str, int, int], ...]

    @property
    def total_length_mm(self) -> float:
        """Total physical wire length of the link."""
        return self.horizontal_mm + self.vertical_mm


@dataclass
class DetailedRoutingResult:
    """Detailed routing of all links of a topology."""

    routes: dict[Link, DetailedRoute]
    collisions: int
    tracks_per_channel: dict[tuple[str, int], int] = field(default_factory=dict)

    def total_wire_length_mm(self) -> float:
        """Sum of physical wire lengths over all links."""
        return sum(route.total_length_mm for route in self.routes.values())

    def total_horizontal_cells(self) -> int:
        """``N^H_cell`` summed over all links."""
        return sum(route.horizontal_cells for route in self.routes.values())

    def total_vertical_cells(self) -> int:
        """``N^V_cell`` summed over all links."""
        return sum(route.vertical_cells for route in self.routes.values())


@dataclass
class _TrackRequest:
    """One link's occupation of one channel, as an interval along the channel."""

    link: Link
    segment: ChannelSegment
    start_mm: float
    stop_mm: float


def _left_edge_assign(requests: list[_TrackRequest], capacity: int | None) -> tuple[dict[tuple[Link, ChannelSegment], int], int, int]:
    """Assign tracks with the left-edge algorithm.

    Returns the track of every request, the number of tracks used, and the
    number of collisions (requests that had to share an already-full track
    because ``capacity`` capped the channel).
    """
    ordered = sorted(requests, key=lambda r: (r.start_mm, r.stop_mm))
    track_ends: list[float] = []
    assignment: dict[tuple[Link, ChannelSegment], int] = {}
    collisions = 0
    for request in ordered:
        placed = False
        for track, end in enumerate(track_ends):
            if end <= request.start_mm + 1e-12:
                track_ends[track] = request.stop_mm
                assignment[(request.link, request.segment)] = track
                placed = True
                break
        if placed:
            continue
        if capacity is None or len(track_ends) < capacity:
            track_ends.append(request.stop_mm)
            assignment[(request.link, request.segment)] = len(track_ends) - 1
        else:
            # Channel is full: overflow onto the least-loaded track and record
            # the collision (two links sharing unit cells).
            track = min(range(len(track_ends)), key=lambda t: track_ends[t])
            track_ends[track] = max(track_ends[track], request.stop_mm)
            assignment[(request.link, request.segment)] = track
            collisions += 1
    return assignment, len(track_ends), collisions


def detailed_route(
    grid: UnitCellGrid,
    routing: GlobalRoutingResult,
    capacity_override: dict[tuple[str, int], int] | None = None,
) -> DetailedRoutingResult:
    """Perform detailed routing of every link (model step 5).

    Parameters
    ----------
    grid:
        The discretized chip (provides coordinates, ports and track geometry).
    routing:
        Global routing result (channel assignment per link).
    capacity_override:
        Optional map ``(orientation, channel) -> max tracks`` used to study
        constrained channels; by default every channel is as wide as its peak
        global-routing load and no collisions occur.
    """
    topology = grid.floorplan.topology

    # Gather per-channel track requests from the global routes.
    per_channel: dict[tuple[str, int], list[_TrackRequest]] = {}
    for link, groute in routing.routes.items():
        if groute.is_direct:
            continue
        src_port = grid.port_position(link.src, link)
        dst_port = grid.port_position(link.dst, link)
        for segment in groute.segments:
            if segment.orientation == "H":
                start = min(src_port.x, dst_port.x)
                stop = max(src_port.x, dst_port.x)
            else:
                start = min(src_port.y, dst_port.y)
                stop = max(src_port.y, dst_port.y)
            per_channel.setdefault((segment.orientation, segment.channel), []).append(
                _TrackRequest(link=link, segment=segment, start_mm=start, stop_mm=stop)
            )

    # Left-edge track assignment per channel.
    track_of: dict[tuple[Link, ChannelSegment], int] = {}
    tracks_per_channel: dict[tuple[str, int], int] = {}
    total_collisions = 0
    for channel_key, requests in per_channel.items():
        capacity = capacity_override.get(channel_key) if capacity_override else None
        assignment, used, collisions = _left_edge_assign(requests, capacity)
        track_of.update(assignment)
        tracks_per_channel[channel_key] = used
        total_collisions += collisions

    # Derive physical wire lengths per link.
    routes: dict[Link, DetailedRoute] = {}
    for link, groute in routing.routes.items():
        src_port = grid.port_position(link.src, link)
        dst_port = grid.port_position(link.dst, link)
        if groute.is_direct:
            horizontal = abs(dst_port.x - src_port.x)
            vertical = abs(dst_port.y - src_port.y)
            tracks: tuple[tuple[str, int, int], ...] = ()
        else:
            horizontal, vertical, tracks = _measure_channel_path(
                grid, src_port, dst_port, groute.segments, track_of, link
            )
        routes[link] = DetailedRoute(
            link=link,
            horizontal_mm=horizontal,
            vertical_mm=vertical,
            horizontal_cells=_cells(horizontal, grid.cell_width_mm),
            vertical_cells=_cells(vertical, grid.cell_height_mm),
            tracks=tracks,
        )
    del topology
    return DetailedRoutingResult(
        routes=routes,
        collisions=total_collisions,
        tracks_per_channel=tracks_per_channel,
    )


def _cells(length_mm: float, cell_mm: float) -> int:
    if length_mm <= 0:
        return 0
    return max(1, int(round(length_mm / cell_mm)))


def _measure_channel_path(
    grid: UnitCellGrid,
    src_port: Point,
    dst_port: Point,
    segments: tuple[ChannelSegment, ...],
    track_of: dict[tuple[Link, ChannelSegment], int],
    link: Link,
) -> tuple[float, float, tuple[tuple[str, int, int], ...]]:
    """Measure the wire length of a channel-routed link.

    The wire starts at the source port, jogs onto the track of its first
    channel segment, runs along that track, transfers to the next segment's
    track (for L-shaped routes), and finally jogs into the destination port.
    Horizontal running length and vertical jog length are accumulated
    separately because they use different metal layers (and different unit
    cell dimensions).
    """
    horizontal = 0.0
    vertical = 0.0
    tracks: list[tuple[str, int, int]] = []

    current = src_port
    # Position reached after the final segment should be the destination port.
    for index, segment in enumerate(segments):
        track = track_of[(link, segment)]
        tracks.append((segment.orientation, segment.channel, track))
        is_last = index == len(segments) - 1
        if segment.orientation == "H":
            track_y = grid.horizontal_track_y(segment.channel, track)
            # Jog from the current position onto the track.
            vertical += abs(current.y - track_y)
            # Run along the track towards the destination's x position (or the
            # next segment's channel, which is handled by the next iteration's
            # jog because the next segment is vertical).
            target_x = dst_port.x
            horizontal += abs(target_x - current.x)
            current = Point(target_x, track_y)
        else:
            track_x = grid.vertical_track_x(segment.channel, track)
            horizontal += abs(current.x - track_x)
            target_y = dst_port.y
            vertical += abs(target_y - current.y)
            current = Point(track_x, target_y)
        if is_last:
            # Final jog into the destination port.
            horizontal += abs(dst_port.x - current.x)
            vertical += abs(dst_port.y - current.y)
    return horizontal, vertical, tuple(tracks)
