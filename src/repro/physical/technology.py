"""Technology-node models (Table II, "parameters describing the technology node").

A :class:`TechnologyModel` bundles the six technology functions of Table II:

* ``f_GE->mm2``      — area needed to synthesize ``x`` gate equivalents,
* ``f^H_wires->mm``  — space needed for ``x`` parallel horizontal wires,
* ``f^V_wires->mm``  — space needed for ``x`` parallel vertical wires,
* ``f^L_mm2->W``     — power of logic-dominated area,
* ``f^W_mm2->W``     — power of wire-dominated area,
* ``f_mm->s``        — signal propagation delay along a buffered wire.

The wire functions follow the paper's recipe exactly: each metal layer
available for signal routing in a given direction contributes ``1 / pitch``
wires per nanometre; the space needed for ``x`` wires is ``x`` divided by the
summed wire density, converted from nm to mm.

Two presets are provided: :data:`TECH_22NM` models a 22 nm high-performance
process (the node the paper assumes for the KNC-like evaluation scenarios) and
:data:`TECH_GF22FDX` a 22FDX-class low-power process used for the MemPool
validation experiment.  The absolute constants are public ballpark figures;
the reproduction relies on relative scaling, not absolute accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ValidationError, check_non_negative, check_positive


@dataclass(frozen=True)
class TechnologyModel:
    """Parameters and derived functions of one technology node.

    Attributes
    ----------
    name:
        Preset name (e.g. ``"22nm-hp"``).
    ge_area_um2:
        Silicon area of one gate equivalent (a NAND2 drawn gate) in µm²,
        including typical cell-utilisation overhead.
    horizontal_wire_pitches_nm, vertical_wire_pitches_nm:
        Wire pitches of the metal layers available for horizontal and vertical
        signal routing.  Multiple physical layers are represented as one
        abstract layer by summing their wire densities (paper, Section IV-B1).
    logic_power_density_w_per_mm2:
        Approximate power of logic-dominated area (``f^L_mm2->W``).
    wire_power_density_w_per_mm2:
        Approximate power of wire-dominated area (``f^W_mm2->W``).
    wire_delay_s_per_mm:
        Propagation delay of a buffered wire per millimetre (``f_mm->s``).
    """

    name: str
    ge_area_um2: float
    horizontal_wire_pitches_nm: tuple[float, ...]
    vertical_wire_pitches_nm: tuple[float, ...]
    logic_power_density_w_per_mm2: float
    wire_power_density_w_per_mm2: float
    wire_delay_s_per_mm: float

    def __post_init__(self) -> None:
        check_positive("ge_area_um2", self.ge_area_um2)
        check_positive("logic_power_density_w_per_mm2", self.logic_power_density_w_per_mm2)
        check_positive("wire_power_density_w_per_mm2", self.wire_power_density_w_per_mm2)
        check_positive("wire_delay_s_per_mm", self.wire_delay_s_per_mm)
        if not self.horizontal_wire_pitches_nm or not self.vertical_wire_pitches_nm:
            raise ValidationError("at least one wire pitch per direction is required")
        for pitch in self.horizontal_wire_pitches_nm + self.vertical_wire_pitches_nm:
            check_positive("wire pitch", pitch)

    # ------------------------------------------------------------- functions
    def ge_to_mm2(self, gate_equivalents: float) -> float:
        """``f_GE->mm2``: silicon area in mm² for ``gate_equivalents`` GE of logic."""
        check_non_negative("gate_equivalents", gate_equivalents)
        return gate_equivalents * self.ge_area_um2 * 1e-6

    def mm2_to_ge(self, area_mm2: float) -> float:
        """Inverse of :meth:`ge_to_mm2` (used by calibration helpers)."""
        check_non_negative("area_mm2", area_mm2)
        return area_mm2 / (self.ge_area_um2 * 1e-6)

    @property
    def horizontal_wires_per_nm(self) -> float:
        """Combined wire density of all horizontal routing layers (wires per nm)."""
        return sum(1.0 / pitch for pitch in self.horizontal_wire_pitches_nm)

    @property
    def vertical_wires_per_nm(self) -> float:
        """Combined wire density of all vertical routing layers (wires per nm)."""
        return sum(1.0 / pitch for pitch in self.vertical_wire_pitches_nm)

    def h_wires_to_mm(self, num_wires: float) -> float:
        """``f^H_wires->mm``: space (mm) needed for ``num_wires`` parallel horizontal wires."""
        check_non_negative("num_wires", num_wires)
        return num_wires * 1e-6 / self.horizontal_wires_per_nm

    def v_wires_to_mm(self, num_wires: float) -> float:
        """``f^V_wires->mm``: space (mm) needed for ``num_wires`` parallel vertical wires."""
        check_non_negative("num_wires", num_wires)
        return num_wires * 1e-6 / self.vertical_wires_per_nm

    def logic_power_w(self, area_mm2: float) -> float:
        """``f^L_mm2->W``: power of ``area_mm2`` of logic-dominated area."""
        check_non_negative("area_mm2", area_mm2)
        return area_mm2 * self.logic_power_density_w_per_mm2

    def wire_power_w(self, area_mm2: float) -> float:
        """``f^W_mm2->W``: power of ``area_mm2`` of wire-dominated area."""
        check_non_negative("area_mm2", area_mm2)
        return area_mm2 * self.wire_power_density_w_per_mm2

    def wire_delay_s(self, distance_mm: float) -> float:
        """``f_mm->s``: propagation time along ``distance_mm`` of buffered wire."""
        check_non_negative("distance_mm", distance_mm)
        return distance_mm * self.wire_delay_s_per_mm


# 22 nm high-performance process: the node assumed for the KNC-like scenarios.
# The layer structure follows the worked example in Section IV-B1 of the paper
# (three horizontal and two vertical signal-routing layers); the pitches are
# *effective* routing pitches, i.e. the drawn pitch divided by the fraction of
# tracks actually available to NoC links after power grid, clock and local
# signal routing have taken their share.
TECH_22NM = TechnologyModel(
    name="22nm-hp",
    ge_area_um2=0.20,
    horizontal_wire_pitches_nm=(80.0, 100.0, 120.0),
    vertical_wire_pitches_nm=(90.0, 110.0),
    logic_power_density_w_per_mm2=0.40,
    wire_power_density_w_per_mm2=0.22,
    wire_delay_s_per_mm=165e-12,
)

# 22FDX-class low-power process used for the MemPool validation experiment
# (MemPool is implemented in GlobalFoundries 22FDX and runs at a much lower
# clock frequency and power density than KNC).
TECH_GF22FDX = TechnologyModel(
    name="gf22fdx",
    ge_area_um2=0.20,
    horizontal_wire_pitches_nm=(40.0, 50.0, 60.0),
    vertical_wire_pitches_nm=(45.0, 55.0),
    logic_power_density_w_per_mm2=0.065,
    wire_power_density_w_per_mm2=0.035,
    wire_delay_s_per_mm=200e-12,
)

TECHNOLOGY_PRESETS: dict[str, TechnologyModel] = {
    TECH_22NM.name: TECH_22NM,
    TECH_GF22FDX.name: TECH_GF22FDX,
}
