"""Steps 3-4 of the prediction model: spacing estimation and chip discretization.

Step 3 (Figure 5c): if at most ``N_L`` parallel horizontal links run between
two rows of tiles, the spacing between those rows is

    ``S = f^H_wires->mm(N_L * f_bw->wires(B))``

and symmetrically for columns with ``f^V_wires->mm``.

Step 4 (Figure 5d): the chip is discretized into same-sized unit cells whose
height/width is exactly the space needed for one horizontal/vertical link:

    ``H_C = f^H_wires->mm(f_bw->wires(B))``,
    ``W_C = f^V_wires->mm(f_bw->wires(B))``.

Because the wire functions are linear, the spacing of a channel with peak load
``N_L`` is exactly ``N_L`` unit cells thick — each parallel link gets its own
track.  The resulting :class:`UnitCellGrid` records the physical coordinates
of every tile and channel, the port positions in millimetres, and the total
number of unit cells (which determines the chip area in step 5's bookkeeping).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.physical.floorplan import Floorplan, PortSide
from repro.physical.global_routing import GlobalRoutingResult
from repro.physical.parameters import ArchitecturalParameters
from repro.topologies.base import Link
from repro.utils.geometry import Point
from repro.utils.validation import ValidationError


@dataclass
class UnitCellGrid:
    """Physical layout of the chip after spacing estimation and discretization.

    Coordinates are in millimetres; ``x`` grows with the tile column index and
    ``y`` grows with the tile row index (i.e. downwards, as in Figure 2).

    Attributes
    ----------
    cell_width_mm, cell_height_mm:
        Unit cell dimensions ``W_C`` and ``H_C``.
    horizontal_spacings_mm:
        Spacing of the ``R+1`` horizontal channels (above row 0, between rows,
        below the last row).
    vertical_spacings_mm:
        Spacing of the ``C+1`` vertical channels.
    tile_origins:
        ``(R, C, 2)`` array with the top-left corner of every tile.
    chip_width_mm, chip_height_mm:
        Total chip dimensions including all spacings.
    """

    floorplan: Floorplan
    params: ArchitecturalParameters
    cell_width_mm: float
    cell_height_mm: float
    horizontal_spacings_mm: np.ndarray
    vertical_spacings_mm: np.ndarray
    tile_origins: np.ndarray
    chip_width_mm: float
    chip_height_mm: float

    # ------------------------------------------------------------ cell math
    @property
    def cell_area_mm2(self) -> float:
        """Area ``A_C`` of one unit cell."""
        return self.cell_width_mm * self.cell_height_mm

    @property
    def total_cells(self) -> int:
        """``N_cell``: number of unit cells covering the whole chip."""
        return int(
            math.ceil(self.chip_width_mm / self.cell_width_mm)
            * math.ceil(self.chip_height_mm / self.cell_height_mm)
        )

    @property
    def logic_cells(self) -> int:
        """``N^L_cell``: number of unit cells containing tile logic."""
        topology = self.floorplan.topology
        per_tile = math.ceil(
            self.floorplan.tile_geometry.width_mm / self.cell_width_mm
        ) * math.ceil(self.floorplan.tile_geometry.height_mm / self.cell_height_mm)
        return per_tile * topology.num_tiles

    # ----------------------------------------------------------- geometry
    def tile_origin(self, row: int, col: int) -> Point:
        """Top-left corner of the tile at grid position ``(row, col)``."""
        x, y = self.tile_origins[row, col]
        return Point(float(x), float(y))

    def horizontal_channel_y(self, channel: int) -> float:
        """``y`` coordinate of the top edge of horizontal channel ``channel``."""
        topology = self.floorplan.topology
        if not (0 <= channel <= topology.rows):
            raise ValidationError(f"horizontal channel {channel} out of range")
        if channel == 0:
            return 0.0
        origin = self.tile_origin(channel - 1, 0)
        return origin.y + self.floorplan.tile_geometry.height_mm

    def vertical_channel_x(self, channel: int) -> float:
        """``x`` coordinate of the left edge of vertical channel ``channel``."""
        topology = self.floorplan.topology
        if not (0 <= channel <= topology.cols):
            raise ValidationError(f"vertical channel {channel} out of range")
        if channel == 0:
            return 0.0
        origin = self.tile_origin(0, channel - 1)
        return origin.x + self.floorplan.tile_geometry.width_mm

    def horizontal_track_y(self, channel: int, track: int) -> float:
        """Centerline ``y`` of the given track within a horizontal channel."""
        return self.horizontal_channel_y(channel) + (track + 0.5) * self.cell_height_mm

    def vertical_track_x(self, channel: int, track: int) -> float:
        """Centerline ``x`` of the given track within a vertical channel."""
        return self.vertical_channel_x(channel) + (track + 0.5) * self.cell_width_mm

    def port_position(self, tile: int, link: Link) -> Point:
        """Physical position of the port of ``link`` on ``tile``."""
        topology = self.floorplan.topology
        geometry = self.floorplan.tile_geometry
        coord = topology.coord(tile)
        origin = self.tile_origin(coord.row, coord.col)
        assignment = self.floorplan.port(tile, link)
        if assignment.side is PortSide.EAST:
            return Point(origin.x + geometry.width_mm, origin.y + assignment.offset_fraction * geometry.height_mm)
        if assignment.side is PortSide.WEST:
            return Point(origin.x, origin.y + assignment.offset_fraction * geometry.height_mm)
        if assignment.side is PortSide.NORTH:
            return Point(origin.x + assignment.offset_fraction * geometry.width_mm, origin.y)
        return Point(origin.x + assignment.offset_fraction * geometry.width_mm, origin.y + geometry.height_mm)


def discretize_chip(
    params: ArchitecturalParameters,
    floorplan: Floorplan,
    routing: GlobalRoutingResult,
) -> UnitCellGrid:
    """Estimate channel spacings (step 3) and discretize the chip (step 4)."""
    topology = floorplan.topology
    geometry = floorplan.tile_geometry
    link_wires = params.f_bw_to_wires()

    cell_height = params.f_h_wires_to_mm(link_wires)
    cell_width = params.f_v_wires_to_mm(link_wires)

    # Step 3: spacing per channel from the peak number of parallel links.
    horizontal_spacings = np.array(
        [
            params.f_h_wires_to_mm(routing.max_horizontal_load(h) * link_wires)
            for h in range(topology.rows + 1)
        ]
    )
    vertical_spacings = np.array(
        [
            params.f_v_wires_to_mm(routing.max_vertical_load(v) * link_wires)
            for v in range(topology.cols + 1)
        ]
    )

    # Step 4: place tiles; spacings and tile sizes accumulate into coordinates.
    tile_origins = np.zeros((topology.rows, topology.cols, 2))
    y = 0.0
    for row in range(topology.rows):
        y += horizontal_spacings[row]
        x = 0.0
        for col in range(topology.cols):
            x += vertical_spacings[col]
            tile_origins[row, col] = (x, y)
            x += geometry.width_mm
        y += geometry.height_mm
    chip_width = float(vertical_spacings.sum() + topology.cols * geometry.width_mm)
    chip_height = float(horizontal_spacings.sum() + topology.rows * geometry.height_mm)

    return UnitCellGrid(
        floorplan=floorplan,
        params=params,
        cell_width_mm=cell_width,
        cell_height_mm=cell_height,
        horizontal_spacings_mm=horizontal_spacings,
        vertical_spacings_mm=vertical_spacings,
        tile_origins=tile_origins,
        chip_width_mm=chip_width,
        chip_height_mm=chip_height,
    )
