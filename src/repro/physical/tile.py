"""Step 1 of the prediction model: tile area estimation (Section IV-B2a).

The area of a tile is ``A_T = A_E + A_R`` where ``A_E`` is the combined
endpoint area (model input) and ``A_R = f_AR(m, s, B)`` is the area of the
tile's local router, whose port counts depend on the topology.  From the tile
area and the aspect ratio ``R_T`` the tile height and width follow as

    ``H_T = sqrt(R_T * f_GE->mm2(A_T))``
    ``W_T = sqrt(f_GE->mm2(A_T) / R_T)``

All tiles are identical building blocks (Section II-A), so the maximum router
radix over all tiles determines the router that is instantiated in every tile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.physical.parameters import ArchitecturalParameters
from repro.topologies.base import Topology


@dataclass(frozen=True)
class TileGeometry:
    """Geometry and area breakdown of one tile.

    Attributes
    ----------
    endpoint_area_ge:
        ``A_E`` — endpoint logic per tile in gate equivalents.
    router_area_ge:
        ``A_R`` — local router area in gate equivalents.
    tile_area_ge:
        ``A_T = A_E + A_R``.
    tile_area_mm2, width_mm, height_mm:
        Physical tile dimensions derived from ``A_T`` and the aspect ratio.
    router_ports:
        Number of router-to-router plus endpoint ports of the instantiated
        router (the maximum over all tiles).
    """

    endpoint_area_ge: float
    router_area_ge: float
    tile_area_ge: float
    tile_area_mm2: float
    width_mm: float
    height_mm: float
    router_ports: int

    @property
    def router_area_fraction(self) -> float:
        """Fraction of the tile area occupied by the router."""
        return self.router_area_ge / self.tile_area_ge


def estimate_tile_geometry(
    params: ArchitecturalParameters, topology: Topology
) -> TileGeometry:
    """Estimate the tile geometry for ``topology`` under ``params`` (model step 1)."""
    # All tiles are identical, so the worst-case radix determines the router.
    router_to_router_ports = topology.max_degree()
    ports = router_to_router_ports + params.endpoints_per_tile
    router_area_ge = params.f_ar(ports, ports)
    tile_area_ge = params.endpoint_area_ge + router_area_ge
    tile_area_mm2 = params.f_ge_to_mm2(tile_area_ge)
    height_mm = math.sqrt(params.tile_aspect_ratio * tile_area_mm2)
    width_mm = math.sqrt(tile_area_mm2 / params.tile_aspect_ratio)
    return TileGeometry(
        endpoint_area_ge=params.endpoint_area_ge,
        router_area_ge=router_area_ge,
        tile_area_ge=tile_area_ge,
        tile_area_mm2=tile_area_mm2,
        width_mm=width_mm,
        height_mm=height_mm,
        router_ports=ports,
    )
