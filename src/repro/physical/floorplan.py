"""Floorplanning: tile placement and port assignment (model steps 1-2 support).

The floorplan arranges the tiles in the ``R x C`` grid (Figure 5a) and decides
*port placement*: on which face of a tile (north/south/east/west) each link
attaches to the local router.  Optimised port placement is one of the four
*design for routability* criteria (principle ❷): links towards the east attach
to the east face, links within a column to the north/south faces, and so on,
so that links leave the tile in the direction they need to travel.

The floorplan works in abstract grid coordinates; physical (mm) coordinates
are only fixed after the spacing estimation and unit-cell discretization
(steps 3-4, :mod:`repro.physical.unit_cells`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.physical.tile import TileGeometry
from repro.topologies.base import Link, Topology
from repro.utils.validation import ValidationError


class PortSide(Enum):
    """Face of a tile on which a port is placed."""

    NORTH = "N"
    SOUTH = "S"
    EAST = "E"
    WEST = "W"

    @property
    def is_horizontal(self) -> bool:
        """``True`` for east/west faces (ports used by links travelling along a row)."""
        return self in (PortSide.EAST, PortSide.WEST)


@dataclass(frozen=True)
class PortAssignment:
    """Placement of one link's port on one tile."""

    tile: int
    link: Link
    side: PortSide
    #: Position of the port along its face, as a fraction in (0, 1).
    offset_fraction: float


@dataclass
class Floorplan:
    """Tile placement plus port assignment for one topology.

    Attributes
    ----------
    topology:
        The topology being floorplanned.
    tile_geometry:
        Physical tile dimensions (step 1 output).
    ports:
        Mapping ``(tile, link) -> PortAssignment`` for both endpoints of every
        link.
    """

    topology: Topology
    tile_geometry: TileGeometry
    ports: dict[tuple[int, Link], PortAssignment]

    def port(self, tile: int, link: Link) -> PortAssignment:
        """Return the port assignment of ``link`` at ``tile``."""
        key = (tile, link)
        if key not in self.ports:
            raise ValidationError(f"link {link} has no port on tile {tile}")
        return self.ports[key]

    def ports_on_side(self, tile: int, side: PortSide) -> list[PortAssignment]:
        """All ports of ``tile`` on the given face, ordered by offset."""
        found = [
            assignment
            for (t, _), assignment in self.ports.items()
            if t == tile and assignment.side == side
        ]
        return sorted(found, key=lambda a: a.offset_fraction)

    def max_ports_per_side(self) -> int:
        """Maximum number of ports any tile places on a single face."""
        counts: dict[tuple[int, PortSide], int] = {}
        for (tile, _), assignment in self.ports.items():
            key = (tile, assignment.side)
            counts[key] = counts.get(key, 0) + 1
        return max(counts.values()) if counts else 0


def preferred_port_side(topology: Topology, tile: int, link: Link) -> PortSide:
    """Choose the face of ``tile`` on which the port of ``link`` is placed.

    Links towards a higher column leave through the east face, towards a lower
    column through the west face; links within a column use the south/north
    face (rows grow downwards, matching Figure 2 of the paper).  Non-aligned
    links use the face of their dominant direction, so that the first leg of
    their L-shaped route starts in the right channel.
    """
    source = topology.coord(tile)
    target = topology.coord(link.other(tile))
    d_col = target.col - source.col
    d_row = target.row - source.row
    if d_row == 0 or (d_col != 0 and abs(d_col) >= abs(d_row)):
        return PortSide.EAST if d_col > 0 else PortSide.WEST
    return PortSide.SOUTH if d_row > 0 else PortSide.NORTH


def build_floorplan(topology: Topology, tile_geometry: TileGeometry) -> Floorplan:
    """Build the floorplan for ``topology`` (tile placement + port assignment).

    Ports on each face are spread evenly along the face, ordered by the grid
    distance to the link's other endpoint (longer links towards the outer end
    of the face), which keeps short links short after detailed routing.
    """
    # First pass: decide the side of every port.
    side_of: dict[tuple[int, Link], PortSide] = {}
    per_side: dict[tuple[int, PortSide], list[Link]] = {}
    for link in topology.links:
        for tile in (link.src, link.dst):
            side = preferred_port_side(topology, tile, link)
            side_of[(tile, link)] = side
            per_side.setdefault((tile, side), []).append(link)

    # Second pass: spread the ports of each face evenly along the face.
    ports: dict[tuple[int, Link], PortAssignment] = {}
    for (tile, side), links_on_side in per_side.items():
        ordered = sorted(
            links_on_side,
            key=lambda l: (topology.link_grid_length(l), l.src, l.dst),
        )
        count = len(ordered)
        for index, link in enumerate(ordered):
            offset = (index + 1) / (count + 1)
            ports[(tile, link)] = PortAssignment(
                tile=tile, link=link, side=side, offset_fraction=offset
            )
    return Floorplan(topology=topology, tile_geometry=tile_geometry, ports=ports)
