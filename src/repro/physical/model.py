"""The complete NoC physical model (Figure 4 of the paper).

:class:`NoCPhysicalModel` chains the five model steps:

1. tile area estimate and placement (:mod:`repro.physical.tile`,
   :mod:`repro.physical.floorplan`),
2. global routing in the grid of tiles (:mod:`repro.physical.global_routing`),
3. spacing estimation between rows and columns,
4. discretization into unit cells (:mod:`repro.physical.unit_cells`),
5. detailed routing in the unit-cell grid
   (:mod:`repro.physical.detailed_routing`),

and produces the three model outputs: the area estimate, the power estimate,
and the per-link latency estimates that parameterise the cycle-accurate
simulation (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.area import AreaEstimate, estimate_area
from repro.physical.detailed_routing import DetailedRoutingResult, detailed_route
from repro.physical.floorplan import Floorplan, build_floorplan
from repro.physical.global_routing import GlobalRoutingResult, global_route
from repro.physical.link_latency import estimate_link_latencies
from repro.physical.parameters import ArchitecturalParameters
from repro.physical.power import PowerEstimate, estimate_power
from repro.physical.tile import TileGeometry, estimate_tile_geometry
from repro.physical.unit_cells import UnitCellGrid, discretize_chip
from repro.topologies.base import Link, Topology
from repro.utils.validation import ValidationError


@dataclass
class PhysicalModelResult:
    """All outputs and intermediate artifacts of the physical model.

    Attributes
    ----------
    params, topology:
        The model inputs.
    tile_geometry, floorplan, global_routing, unit_cells, detailed_routing:
        Intermediate artifacts of steps 1-5 (useful for visualisation and for
        the ablation benchmarks).
    area, power:
        Cost estimates.
    link_latencies:
        Latency in cycles of every router-to-router link; this is what the
        cycle-accurate simulator consumes.
    """

    params: ArchitecturalParameters
    topology: Topology
    tile_geometry: TileGeometry
    floorplan: Floorplan
    global_routing: GlobalRoutingResult
    unit_cells: UnitCellGrid
    detailed_routing: DetailedRoutingResult
    area: AreaEstimate
    power: PowerEstimate
    link_latencies: dict[Link, int]

    @property
    def area_overhead(self) -> float:
        """NoC area overhead (fraction of the total chip area)."""
        return self.area.area_overhead

    @property
    def noc_power_w(self) -> float:
        """NoC power consumption in watts."""
        return self.power.noc_power_w

    def average_link_latency(self) -> float:
        """Mean link latency in cycles (1 for short links, larger for long ones)."""
        if not self.link_latencies:
            return 0.0
        return sum(self.link_latencies.values()) / len(self.link_latencies)

    def max_link_latency(self) -> int:
        """Largest link latency in cycles."""
        if not self.link_latencies:
            return 0
        return max(self.link_latencies.values())


class NoCPhysicalModel:
    """Callable physical model: topology + architectural parameters -> cost.

    The model validates that the topology's tile count matches the
    architecture, then runs the five steps of Figure 4.
    """

    def __init__(self, params: ArchitecturalParameters) -> None:
        self._params = params

    @property
    def params(self) -> ArchitecturalParameters:
        """The architectural parameters this model instance was built for."""
        return self._params

    def evaluate(self, topology: Topology) -> PhysicalModelResult:
        """Run all five model steps for ``topology`` and return the result."""
        params = self._params
        if topology.num_tiles != params.num_tiles:
            raise ValidationError(
                f"topology has {topology.num_tiles} tiles but the architecture "
                f"defines {params.num_tiles}"
            )
        tile_geometry = estimate_tile_geometry(params, topology)
        floorplan = build_floorplan(topology, tile_geometry)
        routing = global_route(topology, floorplan)
        grid = discretize_chip(params, floorplan, routing)
        detailed = detailed_route(grid, routing)
        area = estimate_area(params, grid)
        power = estimate_power(params, grid, detailed)
        latencies = estimate_link_latencies(params, grid, detailed)
        return PhysicalModelResult(
            params=params,
            topology=topology,
            tile_geometry=tile_geometry,
            floorplan=floorplan,
            global_routing=routing,
            unit_cells=grid,
            detailed_routing=detailed,
            area=area,
            power=power,
            link_latencies=latencies,
        )

    def __call__(self, topology: Topology) -> PhysicalModelResult:
        """Alias for :meth:`evaluate` so the model can be used as a plain callable."""
        return self.evaluate(topology)
