"""Power estimation (Section IV-B2c of the paper).

Let ``N^L_cell``, ``N^H_cell`` and ``N^V_cell`` be the number of unit cells
containing logic, a horizontal link segment and a vertical link segment
respectively.  The chip's total power is estimated as

    ``P_tot = f^L_mm2->W(N^L_cell * A_C) + f^W_mm2->W((N^H_cell + N^V_cell) * A_C / 2)``

The power of the chip without a NoC and of the NoC alone are

    ``P_noNoC = f^L_mm2->W(f_GE->mm2(N_T * A_E))``
    ``P_NoC   = P_tot - P_noNoC``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.detailed_routing import DetailedRoutingResult
from repro.physical.parameters import ArchitecturalParameters
from repro.physical.unit_cells import UnitCellGrid


@dataclass(frozen=True)
class PowerEstimate:
    """Power breakdown of a chip with a given NoC.

    Attributes
    ----------
    total_power_w:
        ``P_tot`` — total chip power (logic + NoC wiring + routers).
    logic_only_power_w:
        ``P_noNoC`` — power of the endpoint logic alone.
    noc_power_w:
        ``P_NoC = P_tot - P_noNoC`` (the paper's cost metric in Figure 6).
    logic_cells, horizontal_cells, vertical_cells:
        The unit-cell counts entering the formula.
    """

    total_power_w: float
    logic_only_power_w: float
    noc_power_w: float
    logic_cells: int
    horizontal_cells: int
    vertical_cells: int


def estimate_power(
    params: ArchitecturalParameters,
    grid: UnitCellGrid,
    detailed: DetailedRoutingResult,
) -> PowerEstimate:
    """Compute the :class:`PowerEstimate` from the detailed-routed chip."""
    cell_area = grid.cell_area_mm2
    logic_cells = grid.logic_cells
    horizontal_cells = detailed.total_horizontal_cells()
    vertical_cells = detailed.total_vertical_cells()

    logic_power = params.f_l_mm2_to_w(logic_cells * cell_area)
    wire_power = params.f_w_mm2_to_w((horizontal_cells + vertical_cells) * cell_area / 2.0)
    total_power = logic_power + wire_power

    logic_only = params.f_l_mm2_to_w(params.chip_logic_area_mm2())
    noc_power = max(total_power - logic_only, 0.0)
    return PowerEstimate(
        total_power_w=total_power,
        logic_only_power_w=logic_only,
        noc_power_w=noc_power,
        logic_cells=logic_cells,
        horizontal_cells=horizontal_cells,
        vertical_cells=vertical_cells,
    )
