"""Link latency estimation (Section IV-B2d of the paper).

A link that crosses ``N^H_cell`` unit cells horizontally and ``N^V_cell``
vertically has a wire length of ``N^H_cell * W_C + N^V_cell * H_C``; the link
latency in clock cycles is that length converted to seconds through the
buffered-wire delay function and multiplied by the clock frequency:

    ``L = f_mm->s(N^H_cell * W_C + N^V_cell * H_C) * F``

Whenever a link is too long to be traversed in one cycle, pipeline registers
are inserted (Section II-A), so the latency is rounded up to an integer number
of cycles with a minimum of one cycle.  The round-up tolerates floating-point
noise: a delay-frequency product that is an integer up to relative error
(e.g. ``3.0000000000004``) counts as that integer, not the next one — a bare
``ceil`` would silently add a cycle to every link sitting exactly on a cycle
boundary.
"""

from __future__ import annotations

import math

from repro.physical.detailed_routing import DetailedRoutingResult
from repro.physical.parameters import ArchitecturalParameters
from repro.physical.unit_cells import UnitCellGrid
from repro.topologies.base import Link

#: Relative tolerance of the cycle-boundary round-up.  Wire delays and clock
#: frequencies carry a handful of multiplications, so accumulated relative
#: error is within a few ULP (~1e-16); 1e-9 is far above that noise floor yet
#: far below any physically meaningful fraction of a clock cycle.
CYCLE_BOUNDARY_REL_TOL = 1e-9


def _ceil_with_tolerance(value: float) -> int:
    """``ceil(value)``, snapping values within relative tolerance of an integer."""
    nearest = round(value)
    if math.isclose(value, nearest, rel_tol=CYCLE_BOUNDARY_REL_TOL, abs_tol=CYCLE_BOUNDARY_REL_TOL):
        return int(nearest)
    return int(math.ceil(value))


def link_latency_cycles(
    params: ArchitecturalParameters,
    grid: UnitCellGrid,
    horizontal_cells: int,
    vertical_cells: int,
) -> int:
    """Latency in cycles of a link crossing the given number of unit cells."""
    length_mm = horizontal_cells * grid.cell_width_mm + vertical_cells * grid.cell_height_mm
    latency_cycles = params.f_mm_to_s(length_mm) * params.frequency_hz
    return max(1, _ceil_with_tolerance(latency_cycles))


def estimate_link_latencies(
    params: ArchitecturalParameters,
    grid: UnitCellGrid,
    detailed: DetailedRoutingResult,
) -> dict[Link, int]:
    """Latency (in clock cycles) of every router-to-router link.

    This is the "topology with link latency estimates" output of Figure 3/4
    that parameterises the cycle-accurate simulation.
    """
    return {
        link: link_latency_cycles(params, grid, route.horizontal_cells, route.vertical_cells)
        for link, route in detailed.routes.items()
    }
