"""Physical cost model: area, power, and link-latency prediction (Section IV-B).

The model follows the five steps of Figure 4/5 of the paper:

1. tile area estimation and placement in an ``R x C`` grid,
2. global routing of links in the grid of tiles (greedy, congestion-aware),
3. estimation of the spacing between rows and columns of tiles,
4. discretization of the chip into same-sized unit-cells,
5. detailed routing in the grid of unit-cells.

From the routed design the model derives the NoC area overhead, the power
consumption, and the latency (in clock cycles) of every router-to-router link.
The link latencies are what make the downstream cycle-accurate simulation
accurate (Section IV-A).
"""

from repro.physical.technology import TechnologyModel, TECH_22NM, TECH_GF22FDX, TECHNOLOGY_PRESETS
from repro.physical.parameters import (
    ArchitecturalParameters,
    TransportProtocolModel,
    AXI4_PROTOCOL,
    LIGHTWEIGHT_PROTOCOL,
)
from repro.physical.tile import TileGeometry, estimate_tile_geometry
from repro.physical.floorplan import Floorplan, PortSide, build_floorplan
from repro.physical.global_routing import GlobalRoute, GlobalRoutingResult, global_route
from repro.physical.unit_cells import UnitCellGrid, discretize_chip
from repro.physical.detailed_routing import DetailedRoute, DetailedRoutingResult, detailed_route
from repro.physical.area import AreaEstimate, estimate_area
from repro.physical.power import PowerEstimate, estimate_power
from repro.physical.link_latency import estimate_link_latencies
from repro.physical.model import NoCPhysicalModel, PhysicalModelResult

__all__ = [
    "TechnologyModel",
    "TECH_22NM",
    "TECH_GF22FDX",
    "TECHNOLOGY_PRESETS",
    "ArchitecturalParameters",
    "TransportProtocolModel",
    "AXI4_PROTOCOL",
    "LIGHTWEIGHT_PROTOCOL",
    "TileGeometry",
    "estimate_tile_geometry",
    "Floorplan",
    "PortSide",
    "build_floorplan",
    "GlobalRoute",
    "GlobalRoutingResult",
    "global_route",
    "UnitCellGrid",
    "discretize_chip",
    "DetailedRoute",
    "DetailedRoutingResult",
    "detailed_route",
    "AreaEstimate",
    "estimate_area",
    "PowerEstimate",
    "estimate_power",
    "estimate_link_latencies",
    "NoCPhysicalModel",
    "PhysicalModelResult",
]
