"""Step 2 of the prediction model: global routing in the grid of tiles.

Since links cannot be routed over tiles (tiles occupy all metal layers,
Section II-A), every link is routed through the *channels* between rows and
columns of tiles.  Horizontal channels run between adjacent rows (and above
the first / below the last row); vertical channels run between adjacent
columns (and left of the first / right of the last column).

Wire routing is NP-complete, so — like real VLSI global routers — we use a
greedy, congestion-aware heuristic (Section IV-B2a, step 2): links are routed
one by one in order of increasing length; each link considers a small set of
candidate channel assignments (above/below the source row, left/right of the
destination column, row-first or column-first L-shapes) and picks the one with
the lowest congestion cost.

The result records, for every channel segment, how many links occupy it.  The
peak occupancy per channel feeds the spacing estimation of step 3; the
per-link channel assignment seeds the detailed routing of step 5.

Channel-load accounting
-----------------------
* Links between grid-adjacent tiles connect facing ports directly and occupy
  no channel capacity ("links between adjacent tiles come with minuscule area
  overheads").
* A row link spanning ``x >= 2`` columns runs in a horizontal channel and
  occupies the channel over all spanned columns (including the end columns,
  which accounts for the entry/exit jogs at the ports).
* Column links are handled symmetrically in vertical channels.
* Non-aligned links are routed as an L: a horizontal leg in a channel adjacent
  to the source row and a vertical leg in a channel adjacent to the target
  column (or the transpose, whichever is cheaper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.physical.floorplan import Floorplan
from repro.topologies.base import Link, Topology


@dataclass(frozen=True)
class ChannelSegment:
    """A contiguous occupied stretch of one channel.

    ``orientation`` is ``"H"`` for a horizontal channel (indexed by the row
    gap 0..R) or ``"V"`` for a vertical channel (indexed by the column gap
    0..C).  ``start``/``stop`` give the half-open range of tile columns (H)
    or tile rows (V) that the segment spans.
    """

    orientation: str
    channel: int
    start: int
    stop: int

    @property
    def length(self) -> int:
        """Number of tile positions spanned by the segment."""
        return self.stop - self.start


@dataclass(frozen=True)
class GlobalRoute:
    """Global routing decision for one link: the channel segments it occupies."""

    link: Link
    segments: tuple[ChannelSegment, ...]
    is_direct: bool

    @property
    def grid_length(self) -> int:
        """Total channel length of the route in tile pitches."""
        return sum(segment.length for segment in self.segments)


@dataclass
class GlobalRoutingResult:
    """Outcome of global routing for a whole topology.

    Attributes
    ----------
    routes:
        One :class:`GlobalRoute` per link.
    horizontal_loads:
        Array of shape ``(R+1, C)``: ``horizontal_loads[h, c]`` is the number
        of links occupying horizontal channel ``h`` above tile column ``c``.
    vertical_loads:
        Array of shape ``(C+1, R)`` defined symmetrically.
    """

    routes: dict[Link, GlobalRoute]
    horizontal_loads: np.ndarray
    vertical_loads: np.ndarray
    rows: int = 0
    cols: int = 0

    def max_horizontal_load(self, channel: int) -> int:
        """Peak number of parallel links in horizontal channel ``channel``."""
        return int(self.horizontal_loads[channel].max(initial=0))

    def max_vertical_load(self, channel: int) -> int:
        """Peak number of parallel links in vertical channel ``channel``."""
        return int(self.vertical_loads[channel].max(initial=0))

    def total_channel_length(self) -> int:
        """Sum of channel segment lengths over all links (in tile pitches)."""
        return sum(route.grid_length for route in self.routes.values())


@dataclass
class _ChannelState:
    """Mutable channel occupancy used during greedy routing."""

    horizontal: np.ndarray
    vertical: np.ndarray
    routes: dict[Link, GlobalRoute] = field(default_factory=dict)

    def cost(self, segments: tuple[ChannelSegment, ...]) -> float:
        total = 0.0
        for segment in segments:
            loads = (
                self.horizontal[segment.channel, segment.start : segment.stop]
                if segment.orientation == "H"
                else self.vertical[segment.channel, segment.start : segment.stop]
            )
            # Length cost plus a congestion cost that grows with the current
            # occupancy, so the router spreads links over parallel channels.
            total += segment.length + float(loads.sum()) * 0.5
        return total

    def commit(self, route: GlobalRoute) -> None:
        for segment in route.segments:
            if segment.orientation == "H":
                self.horizontal[segment.channel, segment.start : segment.stop] += 1
            else:
                self.vertical[segment.channel, segment.start : segment.stop] += 1
        self.routes[route.link] = route


def _row_link_candidates(rows: int, row: int, c_low: int, c_high: int) -> list[tuple[ChannelSegment, ...]]:
    """Candidate channel assignments for an aligned row link spanning >= 2 columns."""
    candidates = []
    for channel in (row, row + 1):
        candidates.append(
            (ChannelSegment("H", channel, c_low, c_high + 1),)
        )
    return candidates


def _col_link_candidates(cols: int, col: int, r_low: int, r_high: int) -> list[tuple[ChannelSegment, ...]]:
    """Candidate channel assignments for an aligned column link spanning >= 2 rows."""
    candidates = []
    for channel in (col, col + 1):
        candidates.append(
            (ChannelSegment("V", channel, r_low, r_high + 1),)
        )
    return candidates


def _l_shape_candidates(
    source_row: int,
    source_col: int,
    target_row: int,
    target_col: int,
) -> list[tuple[ChannelSegment, ...]]:
    """Candidate L-shaped routes for a non-aligned link."""
    c_low, c_high = sorted((source_col, target_col))
    r_low, r_high = sorted((source_row, target_row))
    candidates: list[tuple[ChannelSegment, ...]] = []
    # Row-first: horizontal leg in a channel adjacent to the source row, then a
    # vertical leg in a channel adjacent to the target column.
    for h_channel in (source_row, source_row + 1):
        for v_channel in (target_col, target_col + 1):
            candidates.append(
                (
                    ChannelSegment("H", h_channel, c_low, c_high + 1),
                    ChannelSegment("V", v_channel, r_low, r_high + 1),
                )
            )
    # Column-first: vertical leg near the source column, horizontal leg near
    # the target row.
    for v_channel in (source_col, source_col + 1):
        for h_channel in (target_row, target_row + 1):
            candidates.append(
                (
                    ChannelSegment("V", v_channel, r_low, r_high + 1),
                    ChannelSegment("H", h_channel, c_low, c_high + 1),
                )
            )
    return candidates


def global_route(topology: Topology, floorplan: Floorplan | None = None) -> GlobalRoutingResult:
    """Perform greedy global routing of all links of ``topology`` (model step 2).

    ``floorplan`` is accepted for interface symmetry with the other model
    steps (the port sides it assigns are consistent with the candidate channel
    choices made here) but is not required.
    """
    del floorplan  # Port sides are implied by the candidate generation below.
    rows, cols = topology.rows, topology.cols
    state = _ChannelState(
        horizontal=np.zeros((rows + 1, cols), dtype=np.int64),
        vertical=np.zeros((cols + 1, rows), dtype=np.int64),
    )

    # Route short links first: they have no routing freedom and should not be
    # penalised by congestion created by long links.
    ordered_links = sorted(
        topology.links, key=lambda link: (topology.link_grid_length(link), link.src, link.dst)
    )
    for link in ordered_links:
        a = topology.coord(link.src)
        b = topology.coord(link.dst)
        if topology.link_grid_length(link) == 1:
            # Adjacent tiles: direct port-to-port connection, no channel usage.
            state.routes[link] = GlobalRoute(link=link, segments=(), is_direct=True)
            continue
        if a.row == b.row:
            c_low, c_high = sorted((a.col, b.col))
            candidates = _row_link_candidates(rows, a.row, c_low, c_high)
        elif a.col == b.col:
            r_low, r_high = sorted((a.row, b.row))
            candidates = _col_link_candidates(cols, a.col, r_low, r_high)
        else:
            candidates = _l_shape_candidates(a.row, a.col, b.row, b.col)
        best = min(candidates, key=state.cost)
        state.commit(GlobalRoute(link=link, segments=tuple(best), is_direct=False))

    return GlobalRoutingResult(
        routes=state.routes,
        horizontal_loads=state.horizontal,
        vertical_loads=state.vertical,
        rows=rows,
        cols=cols,
    )
