"""Architectural parameters of the prediction model (Table II of the paper).

:class:`ArchitecturalParameters` bundles everything the model needs:

* chip design parameters — number of tiles ``N_T``, endpoint area ``A_E`` (in
  gate equivalents), tile aspect ratio ``R_T``;
* NoC parameters — clock frequency ``F`` and per-link bandwidth ``B``;
* the technology node (:class:`~repro.physical.technology.TechnologyModel`);
* the on-chip transport protocol (:class:`TransportProtocolModel`), providing
  ``f_bw->wires`` (wires per link) and ``f_AR`` (router area in GE).

The class exposes thin wrappers named after the Table II functions so that the
model code reads like the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.physical.technology import TECH_22NM, TechnologyModel
from repro.utils.validation import ValidationError, check_positive, check_type


@dataclass(frozen=True)
class TransportProtocolModel:
    """On-chip transport protocol model (Table II, last group of parameters).

    Attributes
    ----------
    name:
        Protocol name (e.g. ``"AXI4"``).
    wires_per_payload_bit:
        Physical wires needed per bit/cycle of usable link bandwidth.  AXI
        needs five separate channels (AW, W, B, AR, R) plus handshake signals,
        so a full-duplex 512 bit/cycle link requires roughly 3x512 wires.
    crossbar_ge_per_bit:
        Router crossbar area in GE per (input port x output port x bit) —
        this is the term that makes router area scale quadratically with the
        radix (design principle ❶).
    buffer_ge_per_bit:
        Area of one bit of input-buffer storage in GE.
    buffer_flits_per_port:
        Total input-buffer depth per port in flits (shared by all VCs); the
        paper's evaluation uses 32-flit buffers.
    num_virtual_channels:
        Number of virtual channels per port (8 in the paper's evaluation).
    control_ge_per_port_vc:
        Allocator / control overhead in GE per port per VC.
    """

    name: str
    wires_per_payload_bit: float
    crossbar_ge_per_bit: float
    buffer_ge_per_bit: float
    buffer_flits_per_port: int
    num_virtual_channels: int
    control_ge_per_port_vc: float

    def __post_init__(self) -> None:
        check_positive("wires_per_payload_bit", self.wires_per_payload_bit)
        check_positive("crossbar_ge_per_bit", self.crossbar_ge_per_bit)
        check_positive("buffer_ge_per_bit", self.buffer_ge_per_bit)
        check_type("buffer_flits_per_port", self.buffer_flits_per_port, int)
        check_type("num_virtual_channels", self.num_virtual_channels, int)
        if self.buffer_flits_per_port < 1 or self.num_virtual_channels < 1:
            raise ValidationError("buffer depth and VC count must be >= 1")

    def bw_to_wires(self, bandwidth_bits_per_cycle: float) -> int:
        """``f_bw->wires``: number of wires for a link of the given bandwidth."""
        check_positive("bandwidth_bits_per_cycle", bandwidth_bits_per_cycle)
        return int(math.ceil(bandwidth_bits_per_cycle * self.wires_per_payload_bit))

    def router_area_ge(
        self, manager_ports: int, subordinate_ports: int, bandwidth_bits_per_cycle: float
    ) -> float:
        """``f_AR(m, s, B)``: router area in gate equivalents.

        The model has three components: a crossbar quadratic in the port
        counts, input buffers linear in the number of manager (input) ports,
        and per-port/per-VC control logic (routing, VC and switch allocation).
        """
        check_type("manager_ports", manager_ports, int)
        check_type("subordinate_ports", subordinate_ports, int)
        if manager_ports < 1 or subordinate_ports < 1:
            raise ValidationError("a router needs at least one port per direction")
        check_positive("bandwidth_bits_per_cycle", bandwidth_bits_per_cycle)
        crossbar = (
            self.crossbar_ge_per_bit
            * manager_ports
            * subordinate_ports
            * bandwidth_bits_per_cycle
        )
        buffers = (
            self.buffer_ge_per_bit
            * manager_ports
            * self.buffer_flits_per_port
            * bandwidth_bits_per_cycle
        )
        control = (
            self.control_ge_per_port_vc
            * (manager_ports + subordinate_ports)
            * self.num_virtual_channels
        )
        return crossbar + buffers + control


# AXI-style protocol (Kurth et al. components): five channels plus handshake
# overhead, wide buffers, 8 VCs — matches the paper's evaluation setup.
AXI4_PROTOCOL = TransportProtocolModel(
    name="AXI4",
    wires_per_payload_bit=3.0,
    crossbar_ge_per_bit=3.0,
    buffer_ge_per_bit=1.2,
    buffer_flits_per_port=32,
    num_virtual_channels=8,
    control_ge_per_port_vc=250.0,
)

# A lean request/response protocol with narrow control overhead; used for the
# MemPool validation experiment, whose interconnect is far simpler than AXI.
LIGHTWEIGHT_PROTOCOL = TransportProtocolModel(
    name="lightweight",
    wires_per_payload_bit=1.4,
    crossbar_ge_per_bit=2.0,
    buffer_ge_per_bit=1.0,
    buffer_flits_per_port=4,
    num_virtual_channels=1,
    control_ge_per_port_vc=120.0,
)


@dataclass(frozen=True)
class ArchitecturalParameters:
    """All model inputs of Table II for one target architecture.

    Attributes
    ----------
    num_tiles:
        ``N_T`` — number of tiles on the chip.
    endpoint_area_ge:
        ``A_E`` — combined area of all endpoints in a tile, in gate
        equivalents (e.g. 35 MGE for the KNC-like scenario).
    tile_aspect_ratio:
        ``R_T`` — tile height : width ratio (1.0 = square tiles).
    frequency_hz:
        ``F`` — NoC clock frequency.
    link_bandwidth_bits:
        ``B`` — bandwidth of each router-to-router link in bits/cycle.
    technology:
        Technology node model (``f_GE->mm2``, wire, power, delay functions).
    protocol:
        Transport protocol model (``f_bw->wires`` and ``f_AR``).
    endpoints_per_tile:
        Number of endpoint (local) ports on each tile's router.
    name:
        Label for reports (e.g. ``"scenario-a"``).
    """

    num_tiles: int
    endpoint_area_ge: float
    tile_aspect_ratio: float = 1.0
    frequency_hz: float = 1.2e9
    link_bandwidth_bits: float = 512.0
    technology: TechnologyModel = field(default=TECH_22NM)
    protocol: TransportProtocolModel = field(default=AXI4_PROTOCOL)
    endpoints_per_tile: int = 1
    name: str = "unnamed"

    def __post_init__(self) -> None:
        check_type("num_tiles", self.num_tiles, int)
        if self.num_tiles < 2:
            raise ValidationError("num_tiles must be >= 2")
        check_positive("endpoint_area_ge", self.endpoint_area_ge)
        check_positive("tile_aspect_ratio", self.tile_aspect_ratio)
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("link_bandwidth_bits", self.link_bandwidth_bits)
        check_type("endpoints_per_tile", self.endpoints_per_tile, int)
        if self.endpoints_per_tile < 1:
            raise ValidationError("endpoints_per_tile must be >= 1")

    # --------------------------------------------------- Table II functions
    def f_ge_to_mm2(self, gate_equivalents: float) -> float:
        """``f_GE->mm2(x)``."""
        return self.technology.ge_to_mm2(gate_equivalents)

    def f_h_wires_to_mm(self, num_wires: float) -> float:
        """``f^H_wires->mm(x)``."""
        return self.technology.h_wires_to_mm(num_wires)

    def f_v_wires_to_mm(self, num_wires: float) -> float:
        """``f^V_wires->mm(x)``."""
        return self.technology.v_wires_to_mm(num_wires)

    def f_l_mm2_to_w(self, area_mm2: float) -> float:
        """``f^L_mm2->W(x)``."""
        return self.technology.logic_power_w(area_mm2)

    def f_w_mm2_to_w(self, area_mm2: float) -> float:
        """``f^W_mm2->W(x)``."""
        return self.technology.wire_power_w(area_mm2)

    def f_mm_to_s(self, distance_mm: float) -> float:
        """``f_mm->s(x)``."""
        return self.technology.wire_delay_s(distance_mm)

    def f_bw_to_wires(self, bandwidth_bits_per_cycle: float | None = None) -> int:
        """``f_bw->wires(x)``; defaults to the architecture's link bandwidth ``B``."""
        bandwidth = (
            self.link_bandwidth_bits if bandwidth_bits_per_cycle is None else bandwidth_bits_per_cycle
        )
        return self.protocol.bw_to_wires(bandwidth)

    def f_ar(self, manager_ports: int, subordinate_ports: int) -> float:
        """``f_AR(m, s, B)`` with the architecture's link bandwidth ``B``."""
        return self.protocol.router_area_ge(
            manager_ports, subordinate_ports, self.link_bandwidth_bits
        )

    # ------------------------------------------------------------- derived
    @property
    def clock_period_s(self) -> float:
        """Clock period ``1 / F`` in seconds."""
        return 1.0 / self.frequency_hz

    def link_wires(self) -> int:
        """Number of wires of one router-to-router link."""
        return self.f_bw_to_wires()

    def chip_logic_area_mm2(self) -> float:
        """``A_noNoC``: area of the chip's endpoint logic without any NoC."""
        return self.f_ge_to_mm2(self.num_tiles * self.endpoint_area_ge)

    def scaled(self, **changes) -> "ArchitecturalParameters":
        """Return a copy with some fields replaced (convenience for scenarios)."""
        return replace(self, **changes)
