"""Area estimation (Section IV-B2b of the paper).

The total chip area is the number of unit cells times the cell area,
``A_tot = N_cell * A_C``.  The area the chip would occupy *without* a NoC is
``A_noNoC = f_GE->mm2(N_T * A_E)``.  The NoC area overhead is the fraction of
the total area that would be saved by removing the NoC:

    ``area overhead = (A_tot - A_noNoC) / A_tot``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.parameters import ArchitecturalParameters
from repro.physical.unit_cells import UnitCellGrid


@dataclass(frozen=True)
class AreaEstimate:
    """Area breakdown of a chip with a given NoC.

    Attributes
    ----------
    total_area_mm2:
        ``A_tot`` — total chip area including tiles, routers and link channels.
    logic_only_area_mm2:
        ``A_noNoC`` — area of the endpoint logic alone (no routers, no links).
    noc_area_mm2:
        Absolute NoC area, ``A_tot - A_noNoC``.
    area_overhead:
        Relative NoC area overhead (the paper's headline cost metric).
    total_cells:
        ``N_cell`` — number of unit cells covering the chip.
    chip_width_mm, chip_height_mm:
        Chip bounding-box dimensions.
    """

    total_area_mm2: float
    logic_only_area_mm2: float
    noc_area_mm2: float
    area_overhead: float
    total_cells: int
    chip_width_mm: float
    chip_height_mm: float


def estimate_area(params: ArchitecturalParameters, grid: UnitCellGrid) -> AreaEstimate:
    """Compute the :class:`AreaEstimate` from the discretized chip."""
    total_cells = grid.total_cells
    total_area = total_cells * grid.cell_area_mm2
    logic_only = params.chip_logic_area_mm2()
    noc_area = max(total_area - logic_only, 0.0)
    overhead = noc_area / total_area if total_area > 0 else 0.0
    return AreaEstimate(
        total_area_mm2=total_area,
        logic_only_area_mm2=logic_only,
        noc_area_mm2=noc_area,
        area_overhead=overhead,
        total_cells=total_cells,
        chip_width_mm=grid.chip_width_mm,
        chip_height_mm=grid.chip_height_mm,
    )
