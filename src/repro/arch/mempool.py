"""MemPool toolchain-validation experiment (Table III of the paper).

MemPool [Cavalcante et al., DATE'21] is an open-source cluster of 256 RISC-V
cores sharing 1024 L1 memory banks through a low-latency hierarchical
interconnect, implemented in GlobalFoundries 22FDX.  The paper uses it to
assess the accuracy of the prediction toolchain: the toolchain's area, power,
latency and throughput predictions are compared against the published
implementation results ("Correct Value" column of Table III).

Model of MemPool used by our toolchain
--------------------------------------
MemPool's interconnect is not a tiled NoC, so — exactly like the paper's
toolchain — we approximate it within the tile/router abstraction:

* 16 tiles, one per MemPool *group* of 16 cores and 64 SRAM banks
  (endpoint area ≈ 6 MGE per group), arranged in a 4 x 4 grid;
* one local router per group with 80 endpoint ports (16 cores + 64 banks);
* 64 bit/cycle links at 500 MHz using a lightweight request/response protocol
  (single VC, shallow buffers);
* group-to-group connectivity approximated as a 4 x 4 mesh.

This abstraction intentionally reproduces the *biases* the paper reports for
its own model: the latency is over-estimated (the real MemPool interconnect is
single-cycle within a group and heavily latency-optimised, breaking the
one-cycle-per-router/-link assumption) and the throughput is under-estimated,
while area and power land close to the implementation values.

The reference values below are the published MemPool numbers quoted in
Table III; they are data, not something we compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.parameters import LIGHTWEIGHT_PROTOCOL, ArchitecturalParameters
from repro.physical.technology import TECH_GF22FDX
from repro.simulator.simulation import SimulationConfig
from repro.toolchain.predict import PredictionToolchain
from repro.toolchain.results import PredictionResult
from repro.topologies.base import Topology
from repro.topologies.mesh import MeshTopology


@dataclass(frozen=True)
class MemPoolReference:
    """Published MemPool implementation results (Table III, "Correct Value")."""

    area_mm2: float
    power_w: float
    latency_cycles: float
    throughput_fraction: float


#: The "Correct Value" column of Table III.
MEMPOOL_REFERENCE = MemPoolReference(
    area_mm2=21.16,
    power_w=1.55,
    latency_cycles=5.0,
    throughput_fraction=0.38,
)

#: The paper's own toolchain predictions (the "Prediction" column of Table III),
#: kept for comparison in EXPERIMENTS.md.
PAPER_PREDICTION = MemPoolReference(
    area_mm2=24.26,
    power_w=1.447,
    latency_cycles=10.0,
    throughput_fraction=0.25,
)


def mempool_parameters() -> ArchitecturalParameters:
    """Architectural parameters of the MemPool group-level model."""
    return ArchitecturalParameters(
        num_tiles=16,
        endpoint_area_ge=6.0e6,
        tile_aspect_ratio=1.0,
        frequency_hz=500e6,
        link_bandwidth_bits=64.0,
        technology=TECH_GF22FDX,
        protocol=LIGHTWEIGHT_PROTOCOL,
        endpoints_per_tile=80,
        name="mempool",
    )


def mempool_topology() -> Topology:
    """Group-level topology approximation of MemPool's hierarchical interconnect."""
    return MeshTopology(4, 4, endpoints_per_tile=80)


def mempool_simulation_config() -> SimulationConfig:
    """Simulation configuration for the MemPool validation runs.

    MemPool's interconnect transports single-beat 32/64-bit requests, so the
    packets are short; the interconnect has a single physical channel per
    direction (we model 2 VCs so that the escape layer remains separate).
    """
    return SimulationConfig(
        packet_size_flits=2,
        num_vcs=2,
        buffer_depth_flits=2,
        router_pipeline_cycles=2,
        warmup_cycles=300,
        measurement_cycles=500,
        drain_max_cycles=3000,
    )


@dataclass(frozen=True)
class MemPoolValidation:
    """Comparison of toolchain predictions against the published MemPool values."""

    prediction: PredictionResult
    reference: MemPoolReference

    @property
    def area_error(self) -> float:
        """Relative area prediction error (paper reports 15%)."""
        return abs(self.prediction.total_area_mm2 - self.reference.area_mm2) / self.reference.area_mm2

    @property
    def power_error(self) -> float:
        """Relative power prediction error (paper reports 7%)."""
        predicted_total = (
            self.prediction.physical.power.total_power_w
            if self.prediction.physical is not None
            else self.prediction.noc_power_w
        )
        return abs(predicted_total - self.reference.power_w) / self.reference.power_w

    @property
    def latency_error(self) -> float:
        """Relative zero-load-latency prediction error (paper reports 100%)."""
        return (
            abs(self.prediction.zero_load_latency_cycles - self.reference.latency_cycles)
            / self.reference.latency_cycles
        )

    @property
    def throughput_error(self) -> float:
        """Relative saturation-throughput prediction error (paper reports 34%)."""
        return (
            abs(self.prediction.saturation_throughput - self.reference.throughput_fraction)
            / self.reference.throughput_fraction
        )

    def as_table(self) -> list[dict[str, float | str]]:
        """Rows of the Table III reproduction."""
        predicted_total_power = (
            self.prediction.physical.power.total_power_w
            if self.prediction.physical is not None
            else self.prediction.noc_power_w
        )
        rows = [
            {
                "Metric": "Area [mm2]",
                "Correct Value": self.reference.area_mm2,
                "Prediction": round(self.prediction.total_area_mm2, 2),
                "Prediction Error [%]": round(100 * self.area_error, 1),
            },
            {
                "Metric": "Power [W]",
                "Correct Value": self.reference.power_w,
                "Prediction": round(predicted_total_power, 3),
                "Prediction Error [%]": round(100 * self.power_error, 1),
            },
            {
                "Metric": "Latency [cycles]",
                "Correct Value": self.reference.latency_cycles,
                "Prediction": round(self.prediction.zero_load_latency_cycles, 1),
                "Prediction Error [%]": round(100 * self.latency_error, 1),
            },
            {
                "Metric": "Throughput [%]",
                "Correct Value": 100 * self.reference.throughput_fraction,
                "Prediction": round(self.prediction.saturation_throughput_percent, 1),
                "Prediction Error [%]": round(100 * self.throughput_error, 1),
            },
        ]
        return rows


def validate_toolchain_against_mempool(
    performance_mode: str = "analytical",
) -> MemPoolValidation:
    """Run the Table III validation: predict MemPool's cost and performance.

    ``performance_mode="simulation"`` runs the cycle-accurate simulator on the
    16-node group-level model (fast enough for tests); the default analytical
    mode is used by the benchmark harness.
    """
    toolchain = PredictionToolchain(
        params=mempool_parameters(),
        performance_mode=performance_mode,
        simulation_config=mempool_simulation_config(),
    )
    prediction = toolchain.predict(mempool_topology())
    return MemPoolValidation(prediction=prediction, reference=MEMPOOL_REFERENCE)
