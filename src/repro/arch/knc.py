"""The four Knights-Corner-like evaluation scenarios (Section V-b of the paper).

The paper customizes a NoC for an architecture similar to Intel's Knights
Corner (KNC): 64 tiles of about 35 MGE each (KNC has 62 tiles), connected by a
NoC with 512 bits/cycle per-link bandwidth at 1.2 GHz, using the AXI transport
protocol, input-queued routers with 8 virtual channels and 32-flit buffers, in
a 22 nm technology node.  Three scaled variants are evaluated as well:

========  =====  ==================  ==============  =============
scenario  tiles  endpoint area / GE  cores per tile  grid (R x C)
========  =====  ==================  ==============  =============
a         64     35 M                1               8 x 8
b         64     70 M                2               8 x 8
c         128    35 M                1               8 x 16
d         128    70 M                2               8 x 16
========  =====  ==================  ==============  =============

For each scenario the paper reports the sparse-Hamming-graph parameters its
customization strategy selected (Figure 6 captions); those are recorded here
so the benchmarks can reproduce the exact configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.parameters import AXI4_PROTOCOL, ArchitecturalParameters
from repro.physical.technology import TECH_22NM
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class KNCScenario:
    """One evaluation scenario of Section V-b.

    Attributes
    ----------
    key:
        Scenario identifier: ``"a"``, ``"b"``, ``"c"`` or ``"d"``.
    description:
        Human-readable description as used in the Figure 6 captions.
    num_tiles, rows, cols:
        Tile count and grid dimensions.
    endpoint_area_ge:
        Endpoint area per tile in gate equivalents.
    cores_per_tile:
        Number of compute cores (endpoints) per tile.
    paper_s_r, paper_s_c:
        The sparse-Hamming-graph parameters the paper's customization selected.
    """

    key: str
    description: str
    num_tiles: int
    rows: int
    cols: int
    endpoint_area_ge: float
    cores_per_tile: int
    paper_s_r: frozenset[int]
    paper_s_c: frozenset[int]

    def parameters(self) -> ArchitecturalParameters:
        """Architectural parameters (Table II inputs) for this scenario."""
        return ArchitecturalParameters(
            num_tiles=self.num_tiles,
            endpoint_area_ge=self.endpoint_area_ge,
            tile_aspect_ratio=1.0,
            frequency_hz=1.2e9,
            link_bandwidth_bits=512.0,
            technology=TECH_22NM,
            protocol=AXI4_PROTOCOL,
            endpoints_per_tile=self.cores_per_tile,
            name=f"knc-scenario-{self.key}",
        )


KNC_SCENARIOS: dict[str, KNCScenario] = {
    "a": KNCScenario(
        key="a",
        description="64 tiles with 35 MGE and 1 core each",
        num_tiles=64,
        rows=8,
        cols=8,
        endpoint_area_ge=35e6,
        cores_per_tile=1,
        paper_s_r=frozenset({4}),
        paper_s_c=frozenset({2, 5}),
    ),
    "b": KNCScenario(
        key="b",
        description="64 tiles with 70 MGE and 2 cores each",
        num_tiles=64,
        rows=8,
        cols=8,
        endpoint_area_ge=70e6,
        cores_per_tile=2,
        paper_s_r=frozenset({2, 4}),
        paper_s_c=frozenset({2, 4}),
    ),
    "c": KNCScenario(
        key="c",
        description="128 tiles with 35 MGE and 1 core each",
        num_tiles=128,
        rows=8,
        cols=16,
        endpoint_area_ge=35e6,
        cores_per_tile=1,
        paper_s_r=frozenset({3}),
        paper_s_c=frozenset({2, 5}),
    ),
    "d": KNCScenario(
        key="d",
        description="128 tiles with 70 MGE and 2 cores each",
        num_tiles=128,
        rows=8,
        cols=16,
        endpoint_area_ge=70e6,
        cores_per_tile=2,
        paper_s_r=frozenset({2, 4}),
        paper_s_c=frozenset({2, 4}),
    ),
}


def scenario(key: str) -> KNCScenario:
    """Return the scenario with the given key (``"a"`` .. ``"d"``)."""
    if key not in KNC_SCENARIOS:
        raise ValidationError(f"unknown scenario {key!r}; known: {sorted(KNC_SCENARIOS)}")
    return KNC_SCENARIOS[key]


def scenario_parameters(key: str) -> ArchitecturalParameters:
    """Architectural parameters of scenario ``key``."""
    return scenario(key).parameters()


def paper_sparse_hamming_parameters(key: str) -> tuple[frozenset[int], frozenset[int]]:
    """The ``(S_R, S_C)`` configuration the paper reports for scenario ``key``."""
    s = scenario(key)
    return s.paper_s_r, s.paper_s_c
