"""Target architectures used in the paper's evaluation.

* :mod:`repro.arch.knc` — the four Knights-Corner-like scenarios (a)-(d) of
  Section V-b, including the sparse-Hamming-graph parameters the paper selects
  for each of them.
* :mod:`repro.arch.mempool` — the MemPool architecture used to validate the
  prediction toolchain (Table III).
"""

from repro.arch.knc import (
    KNCScenario,
    KNC_SCENARIOS,
    scenario,
    scenario_parameters,
    paper_sparse_hamming_parameters,
)
from repro.arch.mempool import (
    MEMPOOL_REFERENCE,
    MemPoolReference,
    mempool_parameters,
    mempool_topology,
    validate_toolchain_against_mempool,
)

__all__ = [
    "KNCScenario",
    "KNC_SCENARIOS",
    "scenario",
    "scenario_parameters",
    "paper_sparse_hamming_parameters",
    "MEMPOOL_REFERENCE",
    "MemPoolReference",
    "mempool_parameters",
    "mempool_topology",
    "validate_toolchain_against_mempool",
]
