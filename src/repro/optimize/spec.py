"""Declarative search specifications (`SearchSpec`).

A :class:`SearchSpec` is to the topology search what
:class:`~repro.experiments.spec.ExperimentSpec` is to one toolchain run: a
frozen, JSON-round-trippable description of the whole optimization — the
objective, the constraints, the search space, the shared architecture and
simulation configuration, and the search hyper-parameters (survivor count and
sampling seed).  :attr:`SearchSpec.search_id` is a stable content hash, and
every cycle-accurate evaluation the search performs is derived from the spec
via :meth:`candidate_spec`, so two processes running the same ``SearchSpec``
produce identical experiment specs — and therefore share the runner's
on-disk memoization cache entry for entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from repro.experiments.spec import ExperimentSpec, _normalise
from repro.optimize.objectives import Constraints, Objective
from repro.optimize.space import Candidate, SearchSpace
from repro.topologies.registry import (
    TOPOLOGY_FACTORIES,
    available_topologies,
)
from repro.utils.validation import ValidationError, check_type


@dataclass(frozen=True, eq=False)
class SearchSpec:
    """One declarative topology search.

    Attributes
    ----------
    rows, cols:
        Tile grid every candidate (and the baseline) is built for.
    space:
        Families block of the :class:`~repro.optimize.space.SearchSpace`
        (see its docstring for the three block forms).
    objective:
        Objective mapping (see :class:`~repro.optimize.objectives.Objective`):
        ``{"metric": ..., "workload": ..., "phase": ...}``.
    constraints:
        Constraint mapping (see
        :class:`~repro.optimize.objectives.Constraints`).
    scenario, arch, sim, traffic:
        Shared architecture/simulation configuration, with exactly the
        semantics of the same :class:`ExperimentSpec` fields.  ``traffic``
        drives synthetic-objective simulations and the generic screening
        estimate; workload objectives replay their trace instead.
    survivors:
        How many screening survivors enter the cycle-accurate
        successive-halving stage.
    seed:
        Sampling seed of the search space (sparse-Hamming configuration
        sampling); the search itself contains no other randomness.
    baseline:
        Topology registry name the winner is compared against (``None``
        disables the comparison), with optional ``baseline_kwargs``.
    label:
        Free-form tag for reports (not part of the identity hash).

    Examples
    --------
    >>> spec = SearchSpec(
    ...     rows=4, cols=4,
    ...     space={"mesh": {}, "sparse_hamming": {"max_configurations": 8}},
    ...     objective={"metric": "workload_latency",
    ...                "workload": {"name": "dnn_inference", "seed": 7}},
    ...     constraints={"max_area_overhead": 0.40},
    ...     survivors=4,
    ... )
    >>> spec == SearchSpec.from_json(spec.to_json())
    True
    """

    rows: int
    cols: int
    space: Mapping[str, Any] = field(default_factory=dict)
    objective: Mapping[str, Any] = field(default_factory=lambda: {"metric": "zero_load_latency"})
    constraints: Mapping[str, Any] = field(default_factory=dict)
    scenario: str | None = None
    arch: Mapping[str, Any] = field(default_factory=dict)
    sim: Mapping[str, Any] = field(default_factory=dict)
    traffic: str = "uniform"
    survivors: int = 6
    seed: int = 0
    baseline: str | None = "mesh"
    baseline_kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        check_type("survivors", self.survivors, int)
        if self.survivors < 1:
            raise ValidationError("survivors must be >= 1")
        check_type("seed", self.seed, int)
        # Building the component objects validates their mappings; the space
        # additionally validates rows/cols.
        self.build_space()
        objective = self.build_objective()
        self.build_constraints()
        if self.baseline is not None:
            if self.baseline not in TOPOLOGY_FACTORIES:
                raise ValidationError(
                    f"unknown baseline topology {self.baseline!r}; "
                    f"known: {available_topologies()}"
                )
            # Building the baseline now fails fast on kwargs the generator
            # rejects (or a baseline inapplicable to the grid) — the
            # alternative is a crash after the whole search has run.
            Candidate(
                topology=self.baseline, topology_kwargs=self.baseline_kwargs
            ).build(self.rows, self.cols)
        # A probe ExperimentSpec validates scenario/arch/sim/traffic with
        # exactly the rules every candidate spec will face at run time.
        ExperimentSpec(
            topology="mesh",
            rows=self.rows,
            cols=self.cols,
            scenario=self.scenario,
            arch=self.arch,
            sim=self.sim,
            traffic=self.traffic,
            performance_mode="simulation",
            workload=objective.workload,
        )
        object.__setattr__(self, "space", _normalise(dict(self.space), "space"))
        object.__setattr__(self, "objective", _normalise(dict(self.objective), "objective"))
        object.__setattr__(
            self, "constraints", _normalise(dict(self.constraints), "constraints")
        )
        object.__setattr__(self, "arch", _normalise(dict(self.arch), "arch"))
        object.__setattr__(self, "sim", _normalise(dict(self.sim), "sim"))
        object.__setattr__(
            self, "baseline_kwargs", _normalise(dict(self.baseline_kwargs), "baseline_kwargs")
        )

    # ------------------------------------------------------------ components
    def build_space(self) -> SearchSpace:
        """The :class:`SearchSpace` this spec searches."""
        return SearchSpace(
            rows=self.rows, cols=self.cols, families=self.space, seed=self.seed
        )

    def build_objective(self) -> Objective:
        """The :class:`Objective` this spec optimizes."""
        return Objective.from_dict(self.objective)

    def build_constraints(self) -> Constraints:
        """The :class:`Constraints` this spec enforces."""
        return Constraints.from_dict(self.constraints)

    def build_parameters(self):
        """Resolve the shared :class:`ArchitecturalParameters` of the search.

        Identical for every candidate (the architecture does not depend on
        the topology), so the screening batch resolves it once.
        """
        return self.candidate_spec(Candidate(topology="mesh")).build_parameters()

    def baseline_candidate(self) -> Candidate | None:
        """The baseline as a :class:`Candidate` (``None`` when disabled)."""
        if self.baseline is None:
            return None
        return Candidate(topology=self.baseline, topology_kwargs=self.baseline_kwargs)

    def candidate_spec(
        self,
        candidate: Candidate,
        sim_overrides: Mapping[str, Any] | None = None,
        label: str = "",
    ) -> ExperimentSpec:
        """The cycle-accurate :class:`ExperimentSpec` evaluating ``candidate``.

        ``sim_overrides`` are merged over the spec's shared ``sim`` block —
        the successive-halving stage uses this to scale the simulation budget
        per rung while keeping every other knob identical.
        """
        sim = dict(self.sim)
        if sim_overrides:
            sim.update(sim_overrides)
        objective = self.build_objective()
        return ExperimentSpec(
            topology=candidate.topology,
            rows=self.rows,
            cols=self.cols,
            topology_kwargs=dict(candidate.topology_kwargs),
            scenario=self.scenario,
            arch=self.arch,
            traffic=self.traffic,
            performance_mode="simulation",
            sim=sim,
            workload=objective.workload,
            label=label,
        )

    # -------------------------------------------------------------- identity
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form of the spec (JSON-serializable)."""
        return {
            "rows": self.rows,
            "cols": self.cols,
            "space": dict(self.space),
            "objective": dict(self.objective),
            "constraints": dict(self.constraints),
            "scenario": self.scenario,
            "arch": dict(self.arch),
            "sim": dict(self.sim),
            "traffic": self.traffic,
            "survivors": self.survivors,
            "seed": self.seed,
            "baseline": self.baseline,
            "baseline_kwargs": dict(self.baseline_kwargs),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys rejected)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValidationError(f"unknown search-spec fields: {sorted(unknown)}")
        missing = {"rows", "cols", "space"} - set(data)
        if missing:
            raise ValidationError(
                f"search spec is missing required fields: {sorted(missing)}"
            )
        return cls(**dict(data))

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "SearchSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def _identity_dict(self) -> dict[str, Any]:
        identity = self.to_dict()
        identity.pop("label")  # labels are cosmetic, not part of the identity
        return identity

    @property
    def search_id(self) -> str:
        """Stable content hash of the spec (identical across processes)."""
        canonical = json.dumps(self._identity_dict(), sort_keys=True, separators=(",", ":"))
        return "srch-" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SearchSpec):
            return NotImplemented
        return self._identity_dict() == other._identity_dict()

    def __hash__(self) -> int:
        return hash(self.search_id)

    def with_overrides(self, **changes) -> "SearchSpec":
        """Return a copy with some fields replaced (re-validated)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary."""
        objective = self.build_objective()
        families = ", ".join(sorted(self.space))
        return (
            f"{self.rows}x{self.cols} search over [{families}] — "
            f"{objective.describe()}, {self.survivors} survivors"
        )


__all__ = ["SearchSpec"]
