"""Workload-driven topology search (design-space optimization).

The paper's headline claim is that sparse Hamming graphs are *customizable*:
for a given application one can search the configuration space and
synthesize a topology that beats fixed meshes and tori under area and power
budgets.  This package is that search loop, built on everything underneath:

* :mod:`repro.optimize.objectives` — :class:`Objective` (zero-load latency,
  saturation throughput, or per-phase workload-replay latency) and
  :class:`Constraints` (area, power and link-length budgets);
* :mod:`repro.optimize.space` — :class:`SearchSpace` over topology families
  and their parameters (sparse-Hamming edge sets, Ruche skip choices, ...);
* :mod:`repro.optimize.spec` — :class:`SearchSpec`, the frozen,
  JSON-round-trippable description of one whole search with a stable
  ``search_id`` hash;
* :mod:`repro.optimize.search` — :func:`run_search`, the two-stage engine:
  analytical screening over the full space
  (:mod:`repro.toolchain.screening`), then successive-halving cycle-accurate
  evaluation of the survivors through
  :class:`~repro.experiments.runner.ExperimentRunner` (parallel, memoized by
  ``spec_id``, deterministic given a seed).

The ``repro optimize`` CLI subcommand and
``examples/optimize_for_workload.py`` drive this package end to end;
``docs/OPTIMIZER.md`` documents the method.
"""

from repro.optimize.objectives import (
    OBJECTIVE_METRICS,
    Constraints,
    Objective,
)
from repro.optimize.search import (
    RungEntry,
    RungRecord,
    ScreenRecord,
    SearchResult,
    run_search,
)
from repro.optimize.space import Candidate, SearchSpace
from repro.optimize.spec import SearchSpec

__all__ = [
    "OBJECTIVE_METRICS",
    "Candidate",
    "Constraints",
    "Objective",
    "RungEntry",
    "RungRecord",
    "ScreenRecord",
    "SearchResult",
    "SearchSpace",
    "SearchSpec",
    "run_search",
]
