"""Objectives and constraints of the topology search.

An :class:`Objective` names the metric the search optimizes — zero-load
latency, saturation throughput, or the replayed packet latency of a workload
trace (optionally restricted to one named phase) — and knows how to score
both a cheap :class:`~repro.toolchain.screening.ScreeningEstimate` (stage 1)
and a cycle-accurate :class:`~repro.toolchain.results.PredictionResult`
(stage 2).  Scores are canonicalised so that **lower is always better**
(throughput is negated), which keeps the ranking, halving and tie-breaking
logic metric-agnostic.

:class:`Constraints` captures the design budgets of Section V of the paper:
a maximum NoC area overhead (the paper uses 40%), a maximum NoC power, and a
maximum physical link length in tile pitches (long links cost latency and
routing resources; capping them keeps candidates implementable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.analysis.phases import prediction_phases, prediction_undelivered
from repro.utils.validation import ValidationError, check_type
from repro.workloads.generators import check_workload_name, check_workload_params

if TYPE_CHECKING:  # imported for type hints only; no runtime dependency
    from repro.toolchain.results import PredictionResult
    from repro.toolchain.screening import ScreeningEstimate

#: Metrics an objective can optimize.
OBJECTIVE_METRICS = ("zero_load_latency", "saturation_throughput", "workload_latency")

#: Score penalty per undelivered packet.  Large enough that any topology that
#: drops packets ranks behind every topology that delivers them all, yet
#: finite so that two saturated candidates still order by how badly they drop.
UNDELIVERED_PENALTY = 1.0e6


@dataclass(frozen=True)
class Objective:
    """What the topology search optimizes.

    Attributes
    ----------
    metric:
        ``"zero_load_latency"`` (minimize), ``"saturation_throughput"``
        (maximize), or ``"workload_latency"`` (minimize the average replayed
        packet latency of a trace-driven workload).
    workload:
        Workload mapping ``{"name": ..., "seed": ..., "params": {...}}``;
        required for (and only allowed with) ``"workload_latency"``.
    phase:
        Optional phase name; restricts ``"workload_latency"`` scoring to one
        named trace phase (e.g. the bottleneck DNN layer).
    """

    metric: str = "zero_load_latency"
    workload: Mapping[str, Any] | None = None
    phase: str | None = None

    def __post_init__(self) -> None:
        if self.metric not in OBJECTIVE_METRICS:
            raise ValidationError(
                f"unknown objective metric {self.metric!r}; "
                f"known: {list(OBJECTIVE_METRICS)}"
            )
        if self.metric == "workload_latency":
            if self.workload is None:
                raise ValidationError(
                    "objective 'workload_latency' needs a workload mapping"
                )
            if not isinstance(self.workload, Mapping) or "name" not in self.workload:
                raise ValidationError("workload must be a mapping with a 'name' key")
            check_workload_name(self.workload["name"])
            check_workload_params(
                self.workload["name"], dict(self.workload.get("params", {}))
            )
        else:
            if self.workload is not None:
                raise ValidationError(
                    f"objective {self.metric!r} does not take a workload"
                )
            if self.phase is not None:
                raise ValidationError(
                    f"objective {self.metric!r} does not take a phase"
                )
        if self.phase is not None:
            check_type("phase", self.phase, str)

    @property
    def lower_is_better(self) -> bool:
        """Direction of the raw metric (scores are always lower-is-better)."""
        return self.metric != "saturation_throughput"

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.metric == "workload_latency":
            assert self.workload is not None
            suffix = f", phase {self.phase!r}" if self.phase else ""
            return f"minimize replay latency of {self.workload['name']!r}{suffix}"
        if self.metric == "saturation_throughput":
            return "maximize saturation throughput"
        return "minimize zero-load latency"

    # ----------------------------------------------------------------- scores
    def screening_score(self, estimate: "ScreeningEstimate") -> float:
        """Stage-1 score of a screening estimate (lower is better).

        The workload metric uses the trace-weighted analytical latency —
        averaged over the source/destination pairs the application actually
        exercises — which the screening batch computes when given the trace.
        """
        if self.metric == "saturation_throughput":
            return -estimate.saturation_throughput
        if self.metric == "workload_latency":
            if estimate.trace_latency_cycles is None:
                raise ValidationError(
                    "screening estimates carry no trace-weighted latency; "
                    "screen with the objective's trace"
                )
            return estimate.trace_latency_cycles
        return estimate.zero_load_latency_cycles

    def prediction_score(self, prediction: "PredictionResult") -> float:
        """Stage-2 score of a cycle-accurate prediction (lower is better).

        Workload replays are penalised for undelivered packets
        (:data:`UNDELIVERED_PENALTY` each): a topology that saturates under
        the trace must rank behind any topology that delivers everything,
        even if the latency of the packets it *did* deliver looks low.
        """
        if self.metric == "saturation_throughput":
            return -prediction.saturation_throughput
        if self.metric == "workload_latency":
            if self.phase is not None:
                phases = prediction_phases(prediction)
                if self.phase not in phases:
                    raise ValidationError(
                        f"replay carries no phase {self.phase!r}; "
                        f"known: {sorted(phases)}"
                    )
                stats = phases[self.phase]
                undelivered = stats.packets_created - stats.packets_delivered
                return stats.average_packet_latency + UNDELIVERED_PENALTY * undelivered
            # Overall counters, not a per-phase sum: they also cover replays
            # of unphased traces (e.g. onoff with phases=0).
            undelivered = prediction_undelivered(prediction)
            return (
                prediction.zero_load_latency_cycles
                + UNDELIVERED_PENALTY * undelivered
            )
        return prediction.zero_load_latency_cycles

    # ------------------------------------------------------------- plain data
    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        data: dict[str, Any] = {"metric": self.metric}
        if self.workload is not None:
            data["workload"] = dict(self.workload)
        if self.phase is not None:
            data["phase"] = self.phase
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Objective":
        """Rebuild from :meth:`to_dict` output (extra keys rejected)."""
        unknown = set(data) - {"metric", "workload", "phase"}
        if unknown:
            raise ValidationError(f"unknown objective keys {sorted(unknown)}")
        return cls(
            metric=data.get("metric", "zero_load_latency"),
            workload=data.get("workload"),
            phase=data.get("phase"),
        )


@dataclass(frozen=True)
class Constraints:
    """Design budgets a candidate must respect to survive screening.

    Attributes
    ----------
    max_area_overhead:
        Maximum NoC area overhead as a fraction of total chip area
        (``None`` disables the check; the paper's design goal is 0.40).
    max_power_w:
        Maximum NoC power in watts (``None`` disables).
    max_link_length:
        Maximum physical link length in tile pitches, Manhattan
        (``None`` disables).  Checked on the topology graph alone, so
        violating candidates are rejected before any physical modelling.
    """

    max_area_overhead: float | None = None
    max_power_w: float | None = None
    max_link_length: int | None = None

    def __post_init__(self) -> None:
        if self.max_area_overhead is not None and not 0.0 < self.max_area_overhead <= 1.0:
            raise ValidationError(
                f"max_area_overhead must be in (0, 1], got {self.max_area_overhead}"
            )
        if self.max_power_w is not None and self.max_power_w <= 0:
            raise ValidationError(f"max_power_w must be > 0, got {self.max_power_w}")
        if self.max_link_length is not None:
            check_type("max_link_length", self.max_link_length, int)
            if self.max_link_length < 1:
                raise ValidationError(
                    f"max_link_length must be >= 1, got {self.max_link_length}"
                )

    def link_length_violation(self, max_length: int) -> str | None:
        """Violation message for a candidate's longest link, or ``None``."""
        if self.max_link_length is not None and max_length > self.max_link_length:
            return (
                f"max link length {max_length} > budget {self.max_link_length}"
            )
        return None

    def violations(self, estimate: "ScreeningEstimate") -> list[str]:
        """All budget violations of a screening estimate (empty = feasible)."""
        reasons: list[str] = []
        link = self.link_length_violation(estimate.max_link_length)
        if link is not None:
            reasons.append(link)
        if (
            self.max_area_overhead is not None
            and estimate.area_overhead > self.max_area_overhead
        ):
            reasons.append(
                f"area overhead {estimate.area_overhead:.3f} > "
                f"budget {self.max_area_overhead:.3f}"
            )
        if self.max_power_w is not None and estimate.noc_power_w > self.max_power_w:
            reasons.append(
                f"NoC power {estimate.noc_power_w:.2f} W > "
                f"budget {self.max_power_w:.2f} W"
            )
        return reasons

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (``None`` entries omitted)."""
        data: dict[str, Any] = {}
        if self.max_area_overhead is not None:
            data["max_area_overhead"] = self.max_area_overhead
        if self.max_power_w is not None:
            data["max_power_w"] = self.max_power_w
        if self.max_link_length is not None:
            data["max_link_length"] = self.max_link_length
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Constraints":
        """Rebuild from :meth:`to_dict` output (extra keys rejected)."""
        unknown = set(data) - {"max_area_overhead", "max_power_w", "max_link_length"}
        if unknown:
            raise ValidationError(f"unknown constraint keys {sorted(unknown)}")
        return cls(**dict(data))


__all__ = [
    "OBJECTIVE_METRICS",
    "UNDELIVERED_PENALTY",
    "Constraints",
    "Objective",
]
