"""The two-stage topology search.

:func:`run_search` executes a :class:`~repro.optimize.spec.SearchSpec`:

1. **Analytical screening** — every candidate of the search space is scored
   with the cheap models (:func:`repro.toolchain.screening.screen_topology`:
   physical model + analytical performance, trace-weighted for workload
   objectives).  Candidates that violate the constraints are rejected here;
   candidates whose longest link already busts the link-length budget are
   rejected before any physical modelling.

2. **Successive-halving cycle-accurate evaluation** — the best ``survivors``
   screening candidates are simulated through
   :class:`~repro.experiments.runner.ExperimentRunner` in rungs of rising
   fidelity: each rung evaluates the current set (in parallel when requested,
   memoized on disk by ``spec_id``), ranks it by the objective's
   cycle-accurate score, and keeps the better half.  Early rungs run with a
   scaled-down simulation budget; the final rung runs at the spec's full
   budget, and its best candidate is the winner.

Everything is deterministic given the spec: candidate enumeration is seeded,
simulations are seeded, and all ranking ties break on the candidate's
canonical sort key.  Because every cycle-accurate evaluation is an ordinary
``ExperimentSpec``, re-running the same search against the same cache
directory is served entirely from the memoization cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.experiments.runner import ExperimentRunner, prediction_to_dict
from repro.optimize.objectives import Constraints, Objective
from repro.optimize.space import Candidate
from repro.optimize.spec import SearchSpec
from repro.simulator.simulation import SimulationConfig
from repro.toolchain.results import PredictionResult
from repro.toolchain.screening import (
    ScreeningEstimate,
    max_link_length,
    screen_topology,
)
from repro.utils.validation import ValidationError
from repro.verify.static import verify_topology
from repro.workloads.generators import workload_trace_from_mapping

#: Fidelity floors of the scaled-down early rungs (cycles).  Only applied
#: when a budget is actually scaled down — the final rung always runs the
#: spec's exact configuration.
_MIN_WARMUP_CYCLES = 32
_MIN_MEASUREMENT_CYCLES = 64
_MIN_DRAIN_CYCLES = 256


@dataclass(frozen=True)
class ScreenRecord:
    """Screening outcome of one candidate.

    Attributes
    ----------
    candidate:
        The screened candidate.
    feasible:
        ``True`` when no constraint was violated.
    reasons:
        Human-readable violation messages (empty when feasible).
    score:
        The objective's screening score, lower is better (``None`` when the
        candidate was rejected before the cheap models ran).
    estimate:
        The full :class:`ScreeningEstimate` (``None`` for link-length
        rejections, which skip the physical model).
    verified:
        Routing-verification outcome (:func:`repro.verify.verify_topology`):
        ``True`` when the compiled tables passed, ``False`` when they were
        the rejection reason, ``None`` when the candidate never reached
        verification (it already violated a cheaper constraint).
    """

    candidate: Candidate
    feasible: bool
    reasons: tuple[str, ...] = ()
    score: float | None = None
    estimate: ScreeningEstimate | None = None
    verified: bool | None = None


@dataclass(frozen=True)
class RungEntry:
    """One cycle-accurate evaluation inside a successive-halving rung."""

    candidate: Candidate
    spec_id: str
    score: float
    cached: bool
    prediction: PredictionResult


@dataclass(frozen=True)
class RungRecord:
    """One successive-halving rung: its budget and its ranked evaluations."""

    rung: int
    sim_overrides: Mapping[str, Any]
    entries: tuple[RungEntry, ...]  # ranked, best (lowest score) first


@dataclass
class SearchResult:
    """Outcome of one :func:`run_search` execution.

    Attributes
    ----------
    spec:
        The executed :class:`SearchSpec`.
    winner:
        The best candidate of the final rung.
    winner_prediction:
        Its full-budget cycle-accurate prediction.
    winner_score:
        Its objective score (lower is better).
    baseline_prediction, baseline_score:
        Full-budget prediction and score of the spec's baseline topology
        (``None`` when the baseline is disabled).
    screening:
        One :class:`ScreenRecord` per enumerated candidate, in enumeration
        order.
    rungs:
        The successive-halving trajectory, one :class:`RungRecord` per rung.
    num_cached:
        How many cycle-accurate evaluations (rungs + baseline) were served
        from the runner's on-disk cache.
    """

    spec: SearchSpec
    winner: Candidate
    winner_prediction: PredictionResult
    winner_score: float
    baseline_prediction: PredictionResult | None
    baseline_score: float | None
    screening: list[ScreenRecord] = field(default_factory=list)
    rungs: list[RungRecord] = field(default_factory=list)
    num_cached: int = 0

    @property
    def candidates_screened(self) -> int:
        """How many candidates the analytical screening pass evaluated."""
        return len(self.screening)

    @property
    def candidates_feasible(self) -> int:
        """How many screened candidates satisfied every constraint."""
        return sum(1 for record in self.screening if record.feasible)

    @property
    def candidates_routing_rejected(self) -> int:
        """How many candidates were rejected by routing verification."""
        return sum(1 for record in self.screening if record.verified is False)

    @property
    def candidates_simulated(self) -> int:
        """How many distinct candidates reached the cycle-accurate stage."""
        if not self.rungs:
            return 0
        return len(self.rungs[0].entries)

    @property
    def simulations(self) -> int:
        """Total cycle-accurate evaluations across all rungs (baseline excluded)."""
        return sum(len(record.entries) for record in self.rungs)

    @property
    def screening_ratio(self) -> float:
        """Screened candidates per cycle-accurately simulated candidate."""
        simulated = self.candidates_simulated
        return self.candidates_screened / simulated if simulated else float("inf")

    @property
    def speedup_over_baseline(self) -> float | None:
        """Winner-vs-baseline improvement factor on the objective (>1 = better).

        For latency objectives this is ``baseline latency / winner latency``;
        for the throughput objective it is ``winner / baseline`` throughput.
        ``None`` without a baseline.
        """
        if self.baseline_prediction is None or self.baseline_score is None:
            return None
        objective = self.spec.build_objective()
        if objective.metric == "saturation_throughput":
            base = self.baseline_prediction.saturation_throughput
            win = self.winner_prediction.saturation_throughput
            return win / base if base > 0 else float("inf")
        if self.winner_score <= 0:
            return float("inf")
        return self.baseline_score / self.winner_score

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form of the whole search (trajectory included)."""
        return {
            "search_id": self.spec.search_id,
            "spec": self.spec.to_dict(),
            "winner": {
                "topology": self.winner.topology,
                "topology_kwargs": dict(self.winner.topology_kwargs),
                "score": self.winner_score,
                "prediction": prediction_to_dict(self.winner_prediction),
            },
            "baseline": (
                {
                    "topology": self.spec.baseline,
                    "topology_kwargs": dict(self.spec.baseline_kwargs),
                    "score": self.baseline_score,
                    "prediction": prediction_to_dict(self.baseline_prediction),
                }
                if self.baseline_prediction is not None
                else None
            ),
            "speedup_over_baseline": self.speedup_over_baseline,
            "counts": {
                "screened": self.candidates_screened,
                "feasible": self.candidates_feasible,
                "routing_rejected": self.candidates_routing_rejected,
                "simulated_candidates": self.candidates_simulated,
                "simulations": self.simulations,
                "cached": self.num_cached,
                "screening_ratio": self.screening_ratio,
            },
            "screening": [
                {
                    "topology": record.candidate.topology,
                    "topology_kwargs": dict(record.candidate.topology_kwargs),
                    "feasible": record.feasible,
                    "reasons": list(record.reasons),
                    "score": record.score,
                    "verified": record.verified,
                }
                for record in self.screening
            ],
            "rungs": [
                {
                    "rung": record.rung,
                    "sim_overrides": dict(record.sim_overrides),
                    "entries": [
                        {
                            "topology": entry.candidate.topology,
                            "topology_kwargs": dict(entry.candidate.topology_kwargs),
                            "spec_id": entry.spec_id,
                            "score": entry.score,
                            "cached": entry.cached,
                        }
                        for entry in record.entries
                    ],
                }
                for record in self.rungs
            ],
        }


def _rung_sim_overrides(
    base: SimulationConfig, scale: int, workload_mode: bool
) -> dict[str, Any]:
    """Budget overrides of one rung (empty at full fidelity).

    Trace replays have a fixed measurement window (the trace duration), so
    their only scalable budget is the drain bound; synthetic sweeps scale all
    three phase lengths.  Floors keep even the cheapest rung meaningful.
    """
    if scale <= 1:
        return {}
    if workload_mode:
        return {
            "drain_max_cycles": max(_MIN_DRAIN_CYCLES, base.drain_max_cycles // scale)
        }
    return {
        "warmup_cycles": max(_MIN_WARMUP_CYCLES, base.warmup_cycles // scale),
        "measurement_cycles": max(
            _MIN_MEASUREMENT_CYCLES, base.measurement_cycles // scale
        ),
        "drain_max_cycles": max(_MIN_DRAIN_CYCLES, base.drain_max_cycles // scale),
    }


def _screen(
    spec: SearchSpec,
    candidates: list[Candidate],
    objective: Objective,
    constraints: Constraints,
) -> list[ScreenRecord]:
    """Stage 1: constraint checks + cheap-model scoring of every candidate."""
    params = spec.build_parameters()
    trace = None
    if objective.workload is not None:
        trace = workload_trace_from_mapping(
            dict(objective.workload), spec.rows, spec.cols
        )
    base_sim = SimulationConfig(**{**dict(spec.sim), "traffic": spec.traffic})
    from repro.physical.model import NoCPhysicalModel

    model = NoCPhysicalModel(params)
    records: list[ScreenRecord] = []
    for candidate in candidates:
        # Build through the candidate's ExperimentSpec so screening sees
        # exactly the graph the cycle-accurate stage will simulate.
        try:
            topology = spec.candidate_spec(candidate).build_topology()
        except TypeError as error:
            # A 'grid' block can carry kwargs the generator rejects; fail
            # with a clean message naming the candidate, not a traceback.
            raise ValidationError(
                f"invalid topology kwargs for {candidate.describe()}: {error}"
            ) from error
        link_violation = constraints.link_length_violation(max_link_length(topology))
        if link_violation is not None:
            records.append(
                ScreenRecord(
                    candidate=candidate,
                    feasible=False,
                    reasons=(link_violation,),
                )
            )
            continue
        estimate = screen_topology(
            topology,
            model,
            traffic=spec.traffic,
            trace=trace,
            packet_size_flits=base_sim.packet_size_flits,
            router_pipeline_cycles=base_sim.router_pipeline_cycles,
        )
        reasons = tuple(constraints.violations(estimate))
        verified = None
        if not reasons:
            # Routing verification runs last: it is the most expensive
            # screen, so only candidates that survived every cheaper
            # constraint pay for it.  A candidate whose compiled tables
            # fail (escape-CDG cycle, unreachable pair, ...) must never
            # reach the cycle-accurate stage — it could deadlock the
            # simulation or silently produce garbage statistics.
            report = verify_topology(topology, config=base_sim.network_config())
            verified = report.ok
            if not report.ok:
                reasons = tuple(
                    f"routing verification: [{violation.rule}] {violation.message}"
                    for violation in report.violations[:3]
                )
        records.append(
            ScreenRecord(
                candidate=candidate,
                feasible=not reasons,
                reasons=reasons,
                score=objective.screening_score(estimate),
                estimate=estimate,
                verified=verified,
            )
        )
    return records


def run_search(
    spec: SearchSpec,
    runner: ExperimentRunner | None = None,
    cache_dir: str | None = None,
    parallel: int | None = None,
    progress: bool = False,
    store: Any = None,
) -> SearchResult:
    """Execute a :class:`SearchSpec` and return the :class:`SearchResult`.

    Parameters
    ----------
    spec:
        The search to run.
    runner:
        The :class:`ExperimentRunner` executing the cycle-accurate stage;
        built from ``cache_dir``/``store`` when omitted.
    cache_dir:
        On-disk memoization directory (ignored when ``runner`` is given);
        ``None`` disables caching.
    parallel:
        Worker processes per rung (each rung's evaluations are independent).
    progress:
        Report per-evaluation completion lines on stderr during the
        cycle-accurate rungs (see
        :meth:`~repro.experiments.runner.ExperimentRunner.run`).
    store:
        Durable service result store
        (:class:`~repro.service.store.ResultStore` or path) used instead of
        ``cache_dir``; every rung evaluation is recorded under this
        search's :attr:`~repro.optimize.spec.SearchSpec.search_id`, so the
        store can be queried per search afterwards.

    Raises
    ------
    ValidationError
        When the search space is empty for the grid or no candidate
        satisfies the constraints.
    """
    objective = spec.build_objective()
    constraints = spec.build_constraints()
    candidates = spec.build_space().enumerate_candidates()
    if not candidates:
        raise ValidationError(
            "the search space contains no applicable candidates for "
            f"a {spec.rows}x{spec.cols} grid"
        )
    if runner is None:
        if store is not None and cache_dir is not None:
            raise ValidationError(
                "pass either cache_dir (directory cache) or store "
                "(service result store), not both"
            )
        if store is not None:
            runner = ExperimentRunner(store=store, search_id=spec.search_id)
        else:
            runner = ExperimentRunner(cache_dir=cache_dir)

    # ---------------------------------------------------- stage 1: screening
    screening = _screen(spec, candidates, objective, constraints)
    feasible = [record for record in screening if record.feasible]
    if not feasible:
        raise ValidationError(
            "no candidate satisfies the constraints; loosen the budgets or "
            "widen the search space"
        )
    feasible.sort(key=lambda record: (record.score, record.candidate.sort_key))
    survivors = [record.candidate for record in feasible[: spec.survivors]]

    # ------------------------------------- stage 2: successive halving rungs
    base_sim = SimulationConfig(**dict(spec.sim)) if spec.sim else SimulationConfig()
    workload_mode = objective.workload is not None
    num_rungs = max(1, math.ceil(math.log2(len(survivors)))) if len(survivors) > 1 else 1
    num_cached = 0
    rungs: list[RungRecord] = []
    current = survivors
    for rung in range(num_rungs):
        scale = 2 ** (num_rungs - 1 - rung)
        overrides = _rung_sim_overrides(base_sim, scale, workload_mode)
        specs = [
            spec.candidate_spec(candidate, sim_overrides=overrides)
            for candidate in current
        ]
        results = runner.run(specs, parallel=parallel, progress=progress)
        num_cached += results.num_cached
        entries = [
            RungEntry(
                candidate=candidate,
                spec_id=result.spec.spec_id,
                score=objective.prediction_score(result.prediction),
                cached=result.cached,
                prediction=result.prediction,
            )
            for candidate, result in zip(current, results)
        ]
        entries.sort(key=lambda entry: (entry.score, entry.candidate.sort_key))
        rungs.append(
            RungRecord(rung=rung, sim_overrides=overrides, entries=tuple(entries))
        )
        keep = max(1, (len(entries) + 1) // 2) if rung < num_rungs - 1 else 1
        current = [entry.candidate for entry in entries[:keep]]

    final_best = rungs[-1].entries[0]

    # ------------------------------------------------------------- baseline
    baseline_prediction: PredictionResult | None = None
    baseline_score: float | None = None
    baseline = spec.baseline_candidate()
    if baseline is not None:
        baseline_results = runner.run([spec.candidate_spec(baseline)], parallel=None)
        num_cached += baseline_results.num_cached
        baseline_prediction = baseline_results[0].prediction
        baseline_score = objective.prediction_score(baseline_prediction)

    return SearchResult(
        spec=spec,
        winner=final_best.candidate,
        winner_prediction=final_best.prediction,
        winner_score=final_best.score,
        baseline_prediction=baseline_prediction,
        baseline_score=baseline_score,
        screening=screening,
        rungs=rungs,
        num_cached=num_cached,
    )


__all__ = [
    "RungEntry",
    "RungRecord",
    "ScreenRecord",
    "SearchResult",
    "run_search",
]
