"""Search spaces over topology families and their parameters.

A :class:`SearchSpace` declares, per topology family, which parameterisations
the optimizer may consider; :meth:`SearchSpace.enumerate_candidates` expands
it into a deterministic, duplicate-free list of :class:`Candidate` entries.
Three block forms are supported per family:

``{}``
    The family's default instance (mesh, torus, flattened butterfly, ...).

``{"grid": {param: [values, ...], ...}}``
    A cartesian product over generator keyword arguments — e.g. Ruche
    ``row_skip``/``col_skip`` choices.

``{"max_configurations": N}``  (sparse Hamming graph only)
    Up to ``N`` ``(S_R, S_C)`` configurations chosen by
    :func:`repro.analysis.design_space.select_configurations`: exhaustive
    when the ``2^(R+C-4)`` space fits, otherwise a seeded random sample that
    always includes the mesh and flattened-butterfly endpoints.

Families that are not applicable to the grid (hypercube on non-power-of-two
grids, SlimNoC off its ``R*C = 2*q^2`` sizes) are skipped, mirroring
:meth:`repro.experiments.Campaign.grid`.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analysis.design_space import select_configurations
from repro.topologies.base import Topology
from repro.topologies.registry import (
    TOPOLOGY_FACTORIES,
    available_topologies,
    is_applicable,
    make_topology,
)
from repro.utils.validation import ValidationError, check_type


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: a topology family plus generator kwargs."""

    topology: str
    topology_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGY_FACTORIES:
            raise ValidationError(
                f"unknown topology {self.topology!r}; known: {available_topologies()}"
            )
        object.__setattr__(self, "topology_kwargs", dict(self.topology_kwargs))

    @property
    def sort_key(self) -> tuple[str, str]:
        """Deterministic tie-breaking key (family name, canonical kwargs)."""
        return (self.topology, json.dumps(self.topology_kwargs, sort_keys=True))

    def __hash__(self) -> int:
        # The generated hash would trip over the kwargs dict; the canonical
        # sort key carries the same identity and is hashable.
        return hash(self.sort_key)

    def build(self, rows: int, cols: int, endpoints_per_tile: int = 1) -> Topology:
        """Instantiate this candidate for an ``R x C`` grid.

        Raises
        ------
        ValidationError
            On generator kwargs the topology factory rejects (so a bad
            ``grid`` block or baseline fails fast with a clean message
            instead of a mid-search ``TypeError``).
        """
        try:
            return make_topology(
                self.topology,
                rows,
                cols,
                endpoints_per_tile=endpoints_per_tile,
                **dict(self.topology_kwargs),
            )
        except TypeError as error:
            raise ValidationError(
                f"invalid topology kwargs for {self.topology!r}: {error}"
            ) from error

    def describe(self) -> str:
        """Short human-readable label (family plus non-default kwargs)."""
        if not self.topology_kwargs:
            return self.topology
        return f"{self.topology} {json.dumps(self.topology_kwargs, sort_keys=True)}"


@dataclass(frozen=True)
class SearchSpace:
    """Declarative search space over topology families for one grid.

    Attributes
    ----------
    rows, cols:
        The tile grid every candidate is built for.
    families:
        Mapping of topology registry name to a parameter block (see module
        docstring for the three supported forms).
    seed:
        Seed of the sparse-Hamming configuration sampler (ignored when the
        configuration space is enumerated exhaustively).

    Examples
    --------
    >>> space = SearchSpace(
    ...     rows=4, cols=4,
    ...     families={
    ...         "mesh": {},
    ...         "torus": {},
    ...         "sparse_hamming": {"max_configurations": 8},
    ...     },
    ... )
    >>> len(space.enumerate_candidates())
    10
    """

    rows: int
    cols: int
    families: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        check_type("rows", self.rows, int)
        check_type("cols", self.cols, int)
        check_type("seed", self.seed, int)
        if self.rows < 1 or self.cols < 1 or self.rows * self.cols < 2:
            raise ValidationError("search space needs a grid of at least 2 tiles")
        if not self.families:
            raise ValidationError("search space needs at least one topology family")
        families = dict(self.families)
        for name, block in families.items():
            if name not in TOPOLOGY_FACTORIES:
                raise ValidationError(
                    f"unknown topology {name!r}; known: {available_topologies()}"
                )
            if not isinstance(block, Mapping):
                raise ValidationError(
                    f"family {name!r} block must be a mapping, got {block!r}"
                )
            block = dict(block)
            unknown = set(block) - {"grid", "max_configurations"}
            if unknown:
                raise ValidationError(
                    f"family {name!r}: unknown block keys {sorted(unknown)}; "
                    "known: ['grid', 'max_configurations']"
                )
            if "grid" in block and "max_configurations" in block:
                raise ValidationError(
                    f"family {name!r}: 'grid' and 'max_configurations' are "
                    "mutually exclusive"
                )
            if "max_configurations" in block:
                if name != "sparse_hamming":
                    raise ValidationError(
                        "'max_configurations' only applies to 'sparse_hamming'"
                    )
                count = block["max_configurations"]
                check_type("max_configurations", count, int)
                if count < 2:
                    raise ValidationError("max_configurations must be >= 2")
            if "grid" in block:
                grid = block["grid"]
                if not isinstance(grid, Mapping) or not all(
                    isinstance(values, (list, tuple)) for values in grid.values()
                ):
                    raise ValidationError(
                        f"family {name!r}: 'grid' must map parameter names to "
                        "value lists"
                    )
        object.__setattr__(self, "families", families)

    def enumerate_candidates(self) -> list[Candidate]:
        """Expand the space into a deterministic list of candidates.

        Families are visited in sorted name order; within a family, grid
        blocks expand in sorted-parameter cartesian order and sampled
        sparse-Hamming configurations keep the sampler's order (endpoints
        first).  Inapplicable families are skipped.  Duplicate candidates
        (identical family + kwargs) collapse to one entry.
        """
        candidates: list[Candidate] = []
        seen: set[tuple[str, str]] = set()

        def add(candidate: Candidate) -> None:
            if candidate.sort_key not in seen:
                seen.add(candidate.sort_key)
                candidates.append(candidate)

        for name in sorted(self.families):
            if not is_applicable(name, self.rows, self.cols):
                continue
            block = dict(self.families[name])
            if "max_configurations" in block:
                configurations = select_configurations(
                    self.rows, self.cols, block["max_configurations"], seed=self.seed
                )
                for s_r, s_c in configurations:
                    add(
                        Candidate(
                            topology=name,
                            topology_kwargs={"s_r": sorted(s_r), "s_c": sorted(s_c)},
                        )
                    )
            elif "grid" in block:
                grid = block["grid"]
                names = sorted(grid)
                for values in itertools.product(*(grid[key] for key in names)):
                    add(
                        Candidate(
                            topology=name,
                            topology_kwargs=dict(zip(names, values)),
                        )
                    )
            else:
                add(Candidate(topology=name))
        return candidates

    def size(self) -> int:
        """Number of distinct candidates the space expands to."""
        return len(self.enumerate_candidates())

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (the families block only).

        ``rows``, ``cols`` and ``seed`` live on the owning
        :class:`~repro.optimize.spec.SearchSpec` and are re-supplied on
        :meth:`from_dict`.
        """
        return {name: dict(block) for name, block in self.families.items()}

    @classmethod
    def from_dict(
        cls, families: Mapping[str, Any], rows: int, cols: int, seed: int = 0
    ) -> "SearchSpace":
        """Rebuild a space from a families block plus grid and seed."""
        return cls(rows=rows, cols=cols, families=families, seed=seed)


__all__ = ["Candidate", "SearchSpace"]
