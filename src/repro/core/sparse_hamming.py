"""The sparse Hamming graph topology (Section III of the paper).

Construction
------------
Let ``R`` and ``C`` be the number of rows and columns of tiles.  The topology
takes two parameter sets:

* ``S_R ⊆ {2, ..., C-1}`` — *row* skip distances.  For every row ``r``, every
  ``x in S_R`` and every start column ``i`` with ``i + x <= C``, a link
  ``T(r, i) - T(r, i + x)`` is added.
* ``S_C ⊆ {2, ..., R-1}`` — *column* skip distances, added analogously within
  every column.

Starting point is always a 2D mesh (skip distance 1 in both directions).  With
``S_R = S_C = {}`` the topology *is* the mesh; with the maximal sets
``S_R = {2..C-1}``, ``S_C = {2..R-1}`` it is the flattened butterfly.  Every
sparse Hamming graph is a subgraph of the 2D Hamming graph (the graph product
of two cliques), hence the name.

The number of distinct configurations for a given grid is
``2^(C-2) * 2^(R-2) = 2^(R+C-4)`` (Table I, last column).
"""

from __future__ import annotations

from typing import Collection, Iterable

from repro.topologies.base import Link, Topology
from repro.topologies.mesh import mesh_links
from repro.utils.validation import ValidationError, check_type


def validate_skip_sets(
    rows: int, cols: int, s_r: Collection[int], s_c: Collection[int]
) -> tuple[frozenset[int], frozenset[int]]:
    """Validate and normalise the parameter sets ``S_R`` and ``S_C``.

    ``S_R`` contains row skip distances and must be a subset of
    ``{2, ..., C-1}``; ``S_C`` contains column skip distances and must be a
    subset of ``{2, ..., R-1}`` (Section III-b of the paper).
    """
    normalized_r = set()
    for x in s_r:
        check_type("element of S_R", x, int)
        if not (2 <= x < cols):
            raise ValidationError(
                f"S_R element {x} outside the valid range [2, {cols - 1}] for C={cols}"
            )
        normalized_r.add(x)
    normalized_c = set()
    for x in s_c:
        check_type("element of S_C", x, int)
        if not (2 <= x < rows):
            raise ValidationError(
                f"S_C element {x} outside the valid range [2, {rows - 1}] for R={rows}"
            )
        normalized_c.add(x)
    return frozenset(normalized_r), frozenset(normalized_c)


def sparse_hamming_links(
    rows: int, cols: int, s_r: Collection[int], s_c: Collection[int]
) -> list[Link]:
    """Return the links of the sparse Hamming graph with parameters ``S_R``, ``S_C``.

    The construction follows Section III-b verbatim: start from the 2D mesh,
    then for each row add links of every skip distance in ``S_R`` at every
    feasible start column, and likewise for columns with ``S_C``.
    """
    s_r, s_c = validate_skip_sets(rows, cols, s_r, s_c)
    links = mesh_links(rows, cols)
    for r in range(rows):
        for x in sorted(s_r):
            for i in range(cols - x):
                links.append(Link.canonical(r * cols + i, r * cols + i + x))
    for c in range(cols):
        for x in sorted(s_c):
            for i in range(rows - x):
                links.append(Link.canonical(i * cols + c, (i + x) * cols + c))
    return links


class SparseHammingGraph(Topology):
    """Customizable sparse Hamming graph topology.

    Parameters
    ----------
    rows, cols:
        Tile grid dimensions.
    s_r:
        Row skip distances (``S_R`` in the paper), a subset of ``{2..C-1}``.
    s_c:
        Column skip distances (``S_C``), a subset of ``{2..R-1}``.
    endpoints_per_tile:
        Endpoints per tile (affects router radix only).

    With empty parameter sets the topology equals the 2D mesh; with maximal
    sets it equals the flattened butterfly.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        s_r: Iterable[int] = (),
        s_c: Iterable[int] = (),
        endpoints_per_tile: int = 1,
    ) -> None:
        s_r_set, s_c_set = validate_skip_sets(rows, cols, tuple(s_r), tuple(s_c))
        super().__init__(
            rows,
            cols,
            sparse_hamming_links(rows, cols, s_r_set, s_c_set),
            name="Sparse Hamming Graph",
            endpoints_per_tile=endpoints_per_tile,
        )
        self._s_r = s_r_set
        self._s_c = s_c_set

    # ------------------------------------------------------------ parameters
    @property
    def s_r(self) -> frozenset[int]:
        """Row skip distances ``S_R``."""
        return self._s_r

    @property
    def s_c(self) -> frozenset[int]:
        """Column skip distances ``S_C``."""
        return self._s_c

    def describe_configuration(self) -> str:
        """Human-readable configuration string, e.g. ``"S_R={4}, S_C={2,5}"``."""
        fmt = lambda s: "{" + ",".join(str(x) for x in sorted(s)) + "}"  # noqa: E731
        return f"S_R={fmt(self._s_r)}, S_C={fmt(self._s_c)}"

    # ----------------------------------------------------------- derivations
    def with_parameters(self, s_r: Iterable[int], s_c: Iterable[int]) -> "SparseHammingGraph":
        """Return a new sparse Hamming graph on the same grid with new parameters."""
        return SparseHammingGraph(
            self.rows,
            self.cols,
            s_r=s_r,
            s_c=s_c,
            endpoints_per_tile=self.endpoints_per_tile,
        )

    def add_row_skip(self, x: int) -> "SparseHammingGraph":
        """Return a copy with skip distance ``x`` added to ``S_R``."""
        return self.with_parameters(self._s_r | {x}, self._s_c)

    def add_col_skip(self, x: int) -> "SparseHammingGraph":
        """Return a copy with skip distance ``x`` added to ``S_C``."""
        return self.with_parameters(self._s_r, self._s_c | {x})

    def remove_row_skip(self, x: int) -> "SparseHammingGraph":
        """Return a copy with skip distance ``x`` removed from ``S_R``."""
        return self.with_parameters(self._s_r - {x}, self._s_c)

    def remove_col_skip(self, x: int) -> "SparseHammingGraph":
        """Return a copy with skip distance ``x`` removed from ``S_C``."""
        return self.with_parameters(self._s_r, self._s_c - {x})

    # ------------------------------------------------------------ properties
    def is_mesh(self) -> bool:
        """``True`` if the configuration equals the 2D mesh (empty parameter sets)."""
        return not self._s_r and not self._s_c

    def is_flattened_butterfly(self) -> bool:
        """``True`` if the configuration equals the flattened butterfly (maximal sets)."""
        full_r = frozenset(range(2, self.cols))
        full_c = frozenset(range(2, self.rows))
        return self._s_r == full_r and self._s_c == full_c

    def expected_row_diameter(self) -> int:
        """Diameter of a single row's sub-topology (a path with skip links)."""
        return _line_diameter(self.cols, self._s_r)

    def expected_col_diameter(self) -> int:
        """Diameter of a single column's sub-topology."""
        return _line_diameter(self.rows, self._s_c)

    def expected_diameter(self) -> int:
        """Network diameter: row sub-diameter plus column sub-diameter.

        All links are aligned, so any route decomposes into row moves and
        column moves; the diameter of the product structure is the sum of the
        two one-dimensional diameters.
        """
        return self.expected_row_diameter() + self.expected_col_diameter()

    def expected_radix(self) -> int:
        """Maximum router radix of this configuration (including endpoint ports).

        A tile in the middle of a row has at most ``2 * (|S_R| + 1)`` row links
        (one per skip distance and the mesh link, in both directions), capped
        by the number of reachable columns; likewise for columns.
        """
        max_row_links = max(self._row_links_at(c) for c in range(self.cols))
        max_col_links = max(self._col_links_at(r) for r in range(self.rows))
        return max_row_links + max_col_links + self.endpoints_per_tile

    def _row_links_at(self, col: int) -> int:
        distances = {1} | set(self._s_r)
        count = 0
        for x in distances:
            if col - x >= 0:
                count += 1
            if col + x <= self.cols - 1:
                count += 1
        return count

    def _col_links_at(self, row: int) -> int:
        distances = {1} | set(self._s_c)
        count = 0
        for x in distances:
            if row - x >= 0:
                count += 1
            if row + x <= self.rows - 1:
                count += 1
        return count


def _line_diameter(length: int, skips: frozenset[int]) -> int:
    """Diameter of a path of ``length`` nodes augmented with the given skip links.

    Computed exactly with an all-pairs BFS over the one-dimensional
    sub-topology (cheap: ``length`` is at most a few dozen).
    """
    if length == 1:
        return 0
    distances = {1} | set(skips)
    # BFS from every node.
    best = 0
    for start in range(length):
        dist = [-1] * length
        dist[start] = 0
        queue = [start]
        while queue:
            node = queue.pop(0)
            for x in distances:
                for neighbor in (node - x, node + x):
                    if 0 <= neighbor < length and dist[neighbor] == -1:
                        dist[neighbor] = dist[node] + 1
                        queue.append(neighbor)
        best = max(best, max(dist))
    return best
