"""Customization strategy for the sparse Hamming graph (Section V-a).

The paper's five-step strategy:

1. start with the simplest sparse Hamming graph, the mesh
   (``S_R = {}``, ``S_C = {}``);
2. use the prediction toolchain to estimate performance and cost of the
   current configuration on the target architecture;
3. compare the estimates against the design goals to identify insufficiencies;
4. follow the design principles to change ``S_R`` / ``S_C`` so that the
   insufficiencies are addressed (e.g. add skip links to reduce the diameter
   and improve throughput);
5. repeat from step 2 until the designer is satisfied.

This module automates the loop as a greedy search: in every iteration each
candidate change (adding one skip distance to ``S_R`` or ``S_C``) is
evaluated with the prediction toolchain, and the change that best improves the
objective while staying inside the area budget is applied.  The objective
matches the paper's evaluation: maximise saturation throughput (priority 1),
minimise zero-load latency (priority 2), never exceed the area-overhead budget
(40% in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.core.config_space import candidate_col_skips, candidate_row_skips
from repro.core.sparse_hamming import SparseHammingGraph
from repro.utils.validation import ValidationError, check_in_range, check_type


class PredictionLike(Protocol):
    """Minimal interface of a toolchain prediction used by the search.

    :class:`repro.toolchain.results.PredictionResult` satisfies this protocol.
    """

    area_overhead: float
    noc_power_w: float
    zero_load_latency_cycles: float
    saturation_throughput: float


Predictor = Callable[[SparseHammingGraph], PredictionLike]


@dataclass(frozen=True)
class CustomizationGoal:
    """Design goal for the customization search.

    Attributes
    ----------
    max_area_overhead:
        Upper bound on the NoC area overhead (fraction of total chip area);
        the paper uses 0.40.
    throughput_weight, latency_weight:
        Relative priority of the two performance metrics in the scalarised
        objective.  The defaults encode the paper's "throughput first, latency
        second" priority: a configuration with higher throughput always wins,
        latency only breaks near-ties.
    min_throughput_gain:
        Minimum saturation-throughput improvement (absolute, in fraction of
        capacity) for a candidate to be considered better on priority 1;
        below this the latency tie-break applies.
    """

    max_area_overhead: float = 0.40
    throughput_weight: float = 1.0
    latency_weight: float = 0.05
    min_throughput_gain: float = 0.005

    def __post_init__(self) -> None:
        check_in_range("max_area_overhead", self.max_area_overhead, 0.0, 1.0)

    def is_feasible(self, prediction: PredictionLike) -> bool:
        """Return ``True`` if ``prediction`` respects the area budget."""
        return prediction.area_overhead <= self.max_area_overhead

    def is_improvement(self, old: PredictionLike, new: PredictionLike) -> bool:
        """Return ``True`` if ``new`` is better than ``old`` under the goal.

        Priority 1 is saturation throughput; if the throughput change is
        within ``min_throughput_gain`` the zero-load latency decides.
        """
        gain = new.saturation_throughput - old.saturation_throughput
        if gain > self.min_throughput_gain:
            return True
        if gain < -self.min_throughput_gain:
            return False
        return new.zero_load_latency_cycles < old.zero_load_latency_cycles

    def score(self, prediction: PredictionLike) -> float:
        """Scalarised objective used to rank candidate configurations."""
        return (
            self.throughput_weight * prediction.saturation_throughput
            - self.latency_weight * prediction.zero_load_latency_cycles / 100.0
        )


@dataclass(frozen=True)
class CustomizationStep:
    """Record of one iteration of the customization loop."""

    iteration: int
    action: str
    s_r: frozenset[int]
    s_c: frozenset[int]
    area_overhead: float
    noc_power_w: float
    zero_load_latency_cycles: float
    saturation_throughput: float

    def describe(self) -> str:
        """One-line human-readable summary of the step."""
        return (
            f"iter {self.iteration}: {self.action:<18s} "
            f"S_R={sorted(self.s_r)} S_C={sorted(self.s_c)}  "
            f"area={self.area_overhead * 100:5.1f}%  "
            f"power={self.noc_power_w:6.2f} W  "
            f"lat={self.zero_load_latency_cycles:6.1f} cyc  "
            f"thr={self.saturation_throughput * 100:5.1f}%"
        )


@dataclass
class CustomizationResult:
    """Outcome of the customization search."""

    topology: SparseHammingGraph
    prediction: PredictionLike
    steps: list[CustomizationStep] = field(default_factory=list)
    evaluations: int = 0

    @property
    def s_r(self) -> frozenset[int]:
        """Final row skip distances."""
        return self.topology.s_r

    @property
    def s_c(self) -> frozenset[int]:
        """Final column skip distances."""
        return self.topology.s_c


def customize_sparse_hamming(
    rows: int,
    cols: int,
    predictor: Predictor,
    goal: CustomizationGoal | None = None,
    endpoints_per_tile: int = 1,
    max_iterations: int = 32,
    allow_removals: bool = True,
) -> CustomizationResult:
    """Run the five-step customization loop of Section V-a.

    Parameters
    ----------
    rows, cols:
        Tile grid of the target architecture.
    predictor:
        Callable mapping a :class:`SparseHammingGraph` to a prediction with
        ``area_overhead``, ``noc_power_w``, ``zero_load_latency_cycles`` and
        ``saturation_throughput`` attributes (the prediction toolchain).
    goal:
        Design goal; defaults to the paper's goal (max throughput, min
        latency, at most 40% area overhead).
    max_iterations:
        Safety bound on the number of greedy iterations.
    allow_removals:
        Also consider removing previously added skip distances (lets the
        search back out of choices that became unattractive).

    Returns
    -------
    CustomizationResult
        Final topology, its prediction, and the per-iteration trace.
    """
    check_type("max_iterations", max_iterations, int)
    if max_iterations < 1:
        raise ValidationError("max_iterations must be >= 1")
    if goal is None:
        goal = CustomizationGoal()

    current = SparseHammingGraph(
        rows, cols, s_r=(), s_c=(), endpoints_per_tile=endpoints_per_tile
    )
    current_prediction = predictor(current)
    evaluations = 1
    steps = [
        _record_step(0, "start (mesh)", current, current_prediction),
    ]
    if not goal.is_feasible(current_prediction):
        # Even the mesh violates the budget; the mesh is the cheapest
        # configuration, so report it as the best achievable.
        return CustomizationResult(
            topology=current,
            prediction=current_prediction,
            steps=steps,
            evaluations=evaluations,
        )

    for iteration in range(1, max_iterations + 1):
        best_candidate: SparseHammingGraph | None = None
        best_prediction: PredictionLike | None = None
        best_action = ""
        for candidate, action in _candidate_moves(current, allow_removals):
            prediction = predictor(candidate)
            evaluations += 1
            if not goal.is_feasible(prediction):
                continue
            if not goal.is_improvement(current_prediction, prediction):
                continue
            if best_prediction is None or goal.score(prediction) > goal.score(best_prediction):
                best_candidate = candidate
                best_prediction = prediction
                best_action = action
        if best_candidate is None or best_prediction is None:
            break
        current = best_candidate
        current_prediction = best_prediction
        steps.append(_record_step(iteration, best_action, current, current_prediction))

    return CustomizationResult(
        topology=current,
        prediction=current_prediction,
        steps=steps,
        evaluations=evaluations,
    )


def _candidate_moves(
    current: SparseHammingGraph, allow_removals: bool
) -> list[tuple[SparseHammingGraph, str]]:
    """Enumerate single-change neighbours of the current configuration."""
    moves: list[tuple[SparseHammingGraph, str]] = []
    for x in candidate_row_skips(current.cols):
        if x not in current.s_r:
            moves.append((current.add_row_skip(x), f"add {x} to S_R"))
        elif allow_removals:
            moves.append((current.remove_row_skip(x), f"remove {x} from S_R"))
    for x in candidate_col_skips(current.rows):
        if x not in current.s_c:
            moves.append((current.add_col_skip(x), f"add {x} to S_C"))
        elif allow_removals:
            moves.append((current.remove_col_skip(x), f"remove {x} from S_C"))
    return moves


def _record_step(
    iteration: int,
    action: str,
    topology: SparseHammingGraph,
    prediction: PredictionLike,
) -> CustomizationStep:
    return CustomizationStep(
        iteration=iteration,
        action=action,
        s_r=topology.s_r,
        s_c=topology.s_c,
        area_overhead=prediction.area_overhead,
        noc_power_w=prediction.noc_power_w,
        zero_load_latency_cycles=prediction.zero_load_latency_cycles,
        saturation_throughput=prediction.saturation_throughput,
    )
