"""The paper's primary contribution: the sparse Hamming graph NoC topology.

This package contains:

* :mod:`repro.core.sparse_hamming` — the customizable sparse Hamming graph
  topology generator (Section III of the paper),
* :mod:`repro.core.design_principles` — scoring of topologies against the four
  NoC topology design principles (Section II / Table I),
* :mod:`repro.core.config_space` — enumeration and counting of the
  ``2^(R+C-4)`` sparse-Hamming-graph configurations,
* :mod:`repro.core.customization` — the five-step customization strategy of
  Section V-a that tunes ``S_R``/``S_C`` to a design goal under an area budget.
"""

from repro.core.sparse_hamming import SparseHammingGraph, sparse_hamming_links
from repro.core.design_principles import (
    DesignPrincipleScores,
    score_design_principles,
)
from repro.core.config_space import (
    configuration_count,
    enumerate_configurations,
    random_configuration,
)
from repro.core.customization import (
    CustomizationGoal,
    CustomizationResult,
    CustomizationStep,
    customize_sparse_hamming,
)

__all__ = [
    "SparseHammingGraph",
    "sparse_hamming_links",
    "DesignPrincipleScores",
    "score_design_principles",
    "configuration_count",
    "enumerate_configurations",
    "random_configuration",
    "CustomizationGoal",
    "CustomizationResult",
    "CustomizationStep",
    "customize_sparse_hamming",
]
