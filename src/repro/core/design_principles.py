"""Scoring of topologies against the four NoC topology design principles.

Section II of the paper identifies four principles:

* ❶ use low-radix topologies (cost),
* ❷ design for link routability — short links (SL), aligned links (AL),
  uniform link density (ULD), optimized port placement (OPP) (cost),
* ❸ minimize the network diameter (performance),
* ❹ minimize the physical path length (performance), split into *presence* of
  physically-minimal paths and their *use* by hop-minimising routing.

Table I reports the compliance of every considered topology with these
principles.  This module derives the compliance ratings from the actual graph
structure (rather than hard-coding the table), so that the ratings can be
recomputed for arbitrary grids and arbitrary sparse-Hamming-graph
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.topologies.base import Topology
from repro.topologies.properties import TopologyProperties, analyze_topology


class Compliance(Enum):
    """Three-valued compliance rating used in Table I (✔ / ∼ / ✘)."""

    YES = "yes"
    PARTIAL = "partial"
    NO = "no"

    @property
    def symbol(self) -> str:
        """The symbol used in the paper's Table I."""
        return {"yes": "✔", "partial": "∼", "no": "✘"}[self.value]


@dataclass(frozen=True)
class DesignPrincipleScores:
    """Compliance of one topology with the four design principles.

    The thresholds used to map continuous graph metrics to the three-valued
    ratings are documented on each field; they are chosen so that the
    established topologies reproduce the ratings of Table I.
    """

    topology_name: str
    properties: TopologyProperties
    low_radix: Compliance
    short_links: Compliance
    aligned_links: Compliance
    uniform_link_density: Compliance
    optimized_port_placement: Compliance
    low_diameter: Compliance
    minimal_paths_present: Compliance
    minimal_paths_used: Compliance

    def as_row(self) -> dict[str, str]:
        """Return the Table I row for this topology (symbols, radix and diameter)."""
        return {
            "Topology": self.topology_name,
            "Router Radix": str(self.properties.router_radix),
            "SL": self.short_links.symbol,
            "AL": self.aligned_links.symbol,
            "ULD": self.uniform_link_density.symbol,
            "OPP": self.optimized_port_placement.symbol,
            "Network Diameter": str(self.properties.diameter),
            "Minimal Paths Present": self.minimal_paths_present.symbol,
            "Minimal Paths Used": self.minimal_paths_used.symbol,
        }


def score_design_principles(topology: Topology) -> DesignPrincipleScores:
    """Score ``topology`` against the four design principles of Section II.

    The ratings are computed from graph metrics:

    * *low radix* — ✔ if the maximum router-to-router degree is at most 6
      (mesh/torus class), ∼ up to ``sqrt(N) + 2``, ✘ beyond.
    * *short links* (SL) — ✔ if at least 90% of links connect grid-adjacent
      tiles, ∼ if the maximum link length is at most 2 tile pitches (folded
      torus class), ✘ otherwise.
    * *aligned links* (AL) — ✔ if every link stays within one row or column.
    * *uniform link density* (ULD) — based on the variance of per-channel link
      counts: ✔ if every inter-tile channel carries a similar number of link
      segments, ∼/✘ with growing imbalance (ring concentrates links in a few
      channels; SlimNoC is highly non-uniform).
    * *optimized port placement* (OPP) — ✔ if no tile needs more than a
      balanced number of ports on any single face; the ring is the classic
      violator because its snake embedding needs two ports on one face.
    * *low diameter* — ✔ if the diameter is at most ``ceil(log2(N))``,
      ∼ within 2x of that, ✘ beyond (mesh/ring class).
    * *minimal paths present / used* — taken directly from the exact
      all-pairs analysis in :mod:`repro.topologies.properties`.
    """
    props = analyze_topology(topology)
    n = topology.num_tiles

    max_degree = topology.max_degree()
    if max_degree <= 6:
        low_radix = Compliance.YES
    elif max_degree <= int(n**0.5) + 2:
        low_radix = Compliance.PARTIAL
    else:
        low_radix = Compliance.NO

    if props.fraction_short_links >= 0.9:
        short_links = Compliance.YES
    elif props.max_link_length <= 2:
        short_links = Compliance.PARTIAL
    else:
        short_links = Compliance.NO

    aligned_links = (
        Compliance.YES if props.fraction_aligned_links >= 0.999 else Compliance.NO
    )

    uniform_link_density = _uniform_link_density_rating(topology)
    optimized_port_placement = _port_placement_rating(topology)

    import math

    log_n = max(1, math.ceil(math.log2(n)))
    if props.diameter <= log_n:
        low_diameter = Compliance.YES
    elif props.diameter <= 2 * log_n:
        low_diameter = Compliance.PARTIAL
    else:
        low_diameter = Compliance.NO

    return DesignPrincipleScores(
        topology_name=topology.name,
        properties=props,
        low_radix=low_radix,
        short_links=short_links,
        aligned_links=aligned_links,
        uniform_link_density=uniform_link_density,
        optimized_port_placement=optimized_port_placement,
        low_diameter=low_diameter,
        minimal_paths_present=(
            Compliance.YES if props.minimal_paths_present else Compliance.NO
        ),
        minimal_paths_used=(
            Compliance.YES if props.minimal_paths_used else Compliance.NO
        ),
    )


def _channel_loads(topology: Topology) -> tuple[list[int], list[int]]:
    """Count link segments per horizontal and vertical inter-tile channel.

    A *horizontal channel* is the space between two adjacent columns of tiles
    within one row band; aligned links crossing that gap contribute one
    segment.  Non-aligned links are assigned to channels along an L-shaped
    (row-first) route, mirroring how the global router of the physical model
    treats them.  The resulting per-channel counts drive the ULD rating.
    """
    rows, cols = topology.rows, topology.cols
    # horizontal_channels[r][c] = segments crossing between column c and c+1 in row r
    horizontal = [[0] * max(cols - 1, 1) for _ in range(rows)]
    # vertical_channels[r][c] = segments crossing between row r and r+1 in column c
    vertical = [[0] * cols for _ in range(max(rows - 1, 1))]
    for link in topology.links:
        a = topology.coord(link.src)
        b = topology.coord(link.dst)
        #

        # Route row-first: move along the row of a, then along the column of b.
        c_low, c_high = sorted((a.col, b.col))
        for c in range(c_low, c_high):
            horizontal[a.row][c] += 1
        r_low, r_high = sorted((a.row, b.row))
        for r in range(r_low, r_high):
            vertical[r][b.col] += 1
    h_flat = [count for row in horizontal for count in row] if cols > 1 else []
    v_flat = [count for row in vertical for count in row] if rows > 1 else []
    return h_flat, v_flat


def _uniform_link_density_rating(topology: Topology) -> Compliance:
    """Rate the uniformity of link density across inter-tile channels."""
    h_flat, v_flat = _channel_loads(topology)
    loads = [x for x in h_flat + v_flat]
    if not loads:
        return Compliance.YES
    peak = max(loads)
    mean = sum(loads) / len(loads)
    if peak == 0:
        return Compliance.YES
    ratio = peak / mean if mean > 0 else float("inf")
    if ratio <= 1.5:
        return Compliance.YES
    if ratio <= 2.5:
        return Compliance.PARTIAL
    return Compliance.NO


def _port_placement_rating(topology: Topology) -> Compliance:
    """Rate whether ports can be spread evenly over the four tile faces.

    For every tile we count the links leaving towards each of the four
    directions (splitting non-aligned links into their dominant direction).
    If some face of some tile has to host a disproportionate share of the
    tile's ports (more than 60% while other faces are idle), port placement
    cannot be optimised — the situation of the ring topology in Figure 1a.
    """
    worst_imbalance = 0.0
    for tile in topology.tiles():
        coord = topology.coord(tile)
        per_face = {"N": 0, "S": 0, "E": 0, "W": 0}
        for neighbor in topology.neighbors(tile):
            other = topology.coord(neighbor)
            if other.row == coord.row:
                per_face["E" if other.col > coord.col else "W"] += 1
            elif other.col == coord.col:
                per_face["S" if other.row > coord.row else "N"] += 1
            else:
                # Non-aligned link: attribute to the dominant direction.
                if abs(other.col - coord.col) >= abs(other.row - coord.row):
                    per_face["E" if other.col > coord.col else "W"] += 1
                else:
                    per_face["S" if other.row > coord.row else "N"] += 1
        total = sum(per_face.values())
        if total <= 1:
            continue
        # Imbalance: fraction of ports on the busiest face relative to an even spread
        # over the faces that could host them (interior tiles have 4 usable faces).
        usable_faces = 4
        if coord.row in (0, topology.rows - 1):
            usable_faces -= 1
        if coord.col in (0, topology.cols - 1):
            usable_faces -= 1
        usable_faces = max(usable_faces, 1)
        busiest = max(per_face.values()) / total
        even = 1.0 / min(usable_faces, 4)
        worst_imbalance = max(worst_imbalance, busiest - even)
    if worst_imbalance <= 0.26:
        return Compliance.YES
    if worst_imbalance <= 0.5:
        return Compliance.PARTIAL
    return Compliance.NO
