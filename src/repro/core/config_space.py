"""Configuration space of the sparse Hamming graph.

For a given ``R x C`` grid the sparse Hamming graph has one boolean choice per
candidate skip distance: ``C - 2`` choices for ``S_R`` (distances 2..C-1) and
``R - 2`` choices for ``S_C`` (distances 2..R-1), giving ``2^(R+C-4)``
configurations (last column of Table I).  This module counts, enumerates and
samples that space; the customization strategy (Section V-a) explores it
greedily, the benchmarks use exhaustive or sampled sweeps.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterator

import numpy as np

from repro.utils.rng import make_rng
from repro.utils.validation import ValidationError, check_type


def configuration_count(rows: int, cols: int) -> int:
    """Number of sparse-Hamming-graph configurations for an ``R x C`` grid.

    Matches the ``2^(R+C-4)`` formula of Table I (for grids with at least two
    rows and two columns; degenerate single-row/column grids have fewer free
    choices).
    """
    check_type("rows", rows, int)
    check_type("cols", cols, int)
    if rows < 1 or cols < 1:
        raise ValidationError("rows and cols must be >= 1")
    row_choices = max(cols - 2, 0)
    col_choices = max(rows - 2, 0)
    return 2 ** (row_choices + col_choices)


def candidate_row_skips(cols: int) -> list[int]:
    """Valid elements of ``S_R`` for ``C`` columns: ``{2, ..., C-1}``."""
    return list(range(2, cols))


def candidate_col_skips(rows: int) -> list[int]:
    """Valid elements of ``S_C`` for ``R`` rows: ``{2, ..., R-1}``."""
    return list(range(2, rows))


def _powerset(items: list[int]) -> Iterator[frozenset[int]]:
    return (
        frozenset(subset)
        for subset in chain.from_iterable(
            combinations(items, k) for k in range(len(items) + 1)
        )
    )


def enumerate_configurations(
    rows: int, cols: int
) -> Iterator[tuple[frozenset[int], frozenset[int]]]:
    """Yield every ``(S_R, S_C)`` configuration for an ``R x C`` grid.

    The number of configurations grows as ``2^(R+C-4)``; callers should only
    enumerate exhaustively for small grids (the test suite and the
    configuration-count benchmarks do).
    """
    for s_r in _powerset(candidate_row_skips(cols)):
        for s_c in _powerset(candidate_col_skips(rows)):
            yield s_r, s_c


def random_configuration(
    rows: int,
    cols: int,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    density: float = 0.5,
) -> tuple[frozenset[int], frozenset[int]]:
    """Sample a random ``(S_R, S_C)`` configuration.

    Each candidate skip distance is included independently with probability
    ``density``.  Useful for randomised design-space exploration and for
    property-based tests.
    """
    if not (0.0 <= density <= 1.0):
        raise ValidationError(f"density must be in [0, 1], got {density}")
    if rng is None:
        rng = make_rng(seed, stream="config-space")
    s_r = frozenset(x for x in candidate_row_skips(cols) if rng.random() < density)
    s_c = frozenset(x for x in candidate_col_skips(rows) if rng.random() < density)
    return s_r, s_c
