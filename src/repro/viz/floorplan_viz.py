"""Text rendering of the physical model's intermediate artifacts (Figure 5).

``render_floorplan`` prints the chip geometry after spacing estimation
(step 3/4): tile dimensions, per-channel spacings and the chip bounding box.
``render_channel_loads`` prints the per-channel peak link counts produced by
the global router (step 2), which directly determine those spacings.
"""

from __future__ import annotations

from repro.physical.global_routing import GlobalRoutingResult
from repro.physical.model import PhysicalModelResult


def render_channel_loads(routing: GlobalRoutingResult) -> str:
    """Render the peak parallel-link count of every channel."""
    lines = ["horizontal channels (between tile rows): peak parallel links"]
    for channel in range(routing.horizontal_loads.shape[0]):
        lines.append(f"  H{channel:>2}: {routing.max_horizontal_load(channel)}")
    lines.append("vertical channels (between tile columns): peak parallel links")
    for channel in range(routing.vertical_loads.shape[0]):
        lines.append(f"  V{channel:>2}: {routing.max_vertical_load(channel)}")
    return "\n".join(lines)


def render_floorplan(result: PhysicalModelResult) -> str:
    """Render the floorplan summary of a physical-model evaluation."""
    geometry = result.tile_geometry
    grid = result.unit_cells
    lines = [
        f"floorplan of {result.topology.name} on architecture {result.params.name!r}",
        f"  tile: {geometry.width_mm:.3f} x {geometry.height_mm:.3f} mm "
        f"({geometry.tile_area_mm2:.3f} mm2, router {100 * geometry.router_area_fraction:.1f}%)",
        f"  unit cell: {grid.cell_width_mm * 1000:.1f} x {grid.cell_height_mm * 1000:.1f} um",
        f"  chip: {grid.chip_width_mm:.2f} x {grid.chip_height_mm:.2f} mm "
        f"({result.area.total_area_mm2:.2f} mm2, {grid.total_cells} unit cells)",
        f"  NoC area overhead: {100 * result.area_overhead:.2f}%",
        f"  NoC power: {result.noc_power_w:.2f} W",
        "  horizontal channel spacings (mm): "
        + ", ".join(f"{s:.3f}" for s in grid.horizontal_spacings_mm),
        "  vertical channel spacings (mm):   "
        + ", ".join(f"{s:.3f}" for s in grid.vertical_spacings_mm),
        f"  link latencies: avg {result.average_link_latency():.2f} cycles, "
        f"max {result.max_link_latency()} cycles",
        f"  detailed routing collisions: {result.detailed_routing.collisions}",
    ]
    return "\n".join(lines)
