"""ASCII rendering of NoC topologies (Figure 1 / Figure 2 analogues).

The renderer draws the tile grid with ``[rc]`` cells and marks direct
neighbour links with ``-`` and ``|``; longer (skip, wrap-around or
non-aligned) links are listed below the grid because they cannot be drawn
unambiguously in character graphics.
"""

from __future__ import annotations

from repro.topologies.base import Topology


def render_topology(topology: Topology, max_listed_links: int = 40) -> str:
    """Render ``topology`` as ASCII art plus a list of its long links."""
    rows, cols = topology.rows, topology.cols
    lines: list[str] = [f"{topology.name} ({rows}x{cols}, {topology.num_links} links)"]

    def cell(row: int, col: int) -> str:
        return f"[{row},{col}]"

    for row in range(rows):
        row_cells = []
        for col in range(cols):
            row_cells.append(cell(row, col))
            if col + 1 < cols:
                tile = topology.tile_index(row, col)
                right = topology.tile_index(row, col + 1)
                row_cells.append("--" if topology.has_link(tile, right) else "  ")
        lines.append("".join(row_cells))
        if row + 1 < rows:
            spacer = []
            for col in range(cols):
                tile = topology.tile_index(row, col)
                below = topology.tile_index(row + 1, col)
                mark = "  |  " if topology.has_link(tile, below) else "     "
                spacer.append(mark)
                if col + 1 < cols:
                    spacer.append("  ")
            lines.append("".join(spacer))

    long_links = [
        link for link in topology.links if topology.link_grid_length(link) > 1
    ]
    if long_links:
        lines.append(f"long links ({len(long_links)}):")
        for link in long_links[:max_listed_links]:
            a = topology.coord(link.src)
            b = topology.coord(link.dst)
            lines.append(f"  ({a.row},{a.col}) <-> ({b.row},{b.col})")
        if len(long_links) > max_listed_links:
            lines.append(f"  ... and {len(long_links) - max_listed_links} more")
    return "\n".join(lines)


def render_sparse_hamming_construction(rows: int, cols: int, s_r, s_c) -> str:
    """Describe the sparse-Hamming-graph construction step by step (Figure 2)."""
    from repro.core.sparse_hamming import SparseHammingGraph

    lines = [
        f"Sparse Hamming graph construction for a {rows}x{cols} grid",
        f"  parameters: S_R={sorted(s_r)} (row skips), S_C={sorted(s_c)} (column skips)",
        "  step 1: start from the 2D mesh (base links)",
    ]
    mesh = SparseHammingGraph(rows, cols)
    lines.append(f"    mesh links: {mesh.num_links}")
    step = 2
    current = mesh
    for x in sorted(s_r):
        current = current.add_row_skip(x)
        lines.append(
            f"  step {step}: add row links of length {x} "
            f"({cols - x} per row, {rows * (cols - x)} total) -> {current.num_links} links"
        )
        step += 1
    for x in sorted(s_c):
        current = current.add_col_skip(x)
        lines.append(
            f"  step {step}: add column links of length {x} "
            f"({rows - x} per column, {cols * (rows - x)} total) -> {current.num_links} links"
        )
        step += 1
    lines.append(render_topology(current))
    return "\n".join(lines)
