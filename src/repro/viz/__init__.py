"""Text-based visualisation of topologies and floorplans (Figures 1, 2 and 5)."""

from repro.viz.ascii_art import render_topology, render_sparse_hamming_construction
from repro.viz.floorplan_viz import render_floorplan, render_channel_loads

__all__ = [
    "render_topology",
    "render_sparse_hamming_construction",
    "render_floorplan",
    "render_channel_loads",
]
