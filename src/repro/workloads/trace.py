"""The replayable workload-trace format.

A :class:`WorkloadTrace` is a compact, versioned record of application-level
traffic: an ordered sequence of packet records ``(cycle, source, destination,
size_flits)`` plus a list of named, non-overlapping :class:`TracePhase`
windows (e.g. the layers of a DNN inference pass, or the reduce-scatter and
allgather halves of a ring allreduce).  Traces are pure data — they carry no
topology or simulator state — so one trace can be replayed on every topology
with the same tile count, which is exactly how the examples compare a mesh
against a customized sparse Hamming graph under identical traffic.

Two serialization backends are provided and selected by file suffix:

``.jsonl``
    A text format: one canonical JSON header line (format tag, version,
    name, tile count, phases, metadata) followed by one compact JSON array
    ``[cycle, src, dst, size]`` per record.  The byte stream is canonical
    (sorted header keys, fixed separators, ``\\n`` line endings), so a trace
    generated from a fixed seed serializes to byte-identical files — the
    golden tests pin SHA-256 digests of these bytes.

``.npz``
    ``numpy.savez_compressed`` with the four record columns as ``int64``
    arrays plus the JSON header.  Compact for long traces; the *loaded*
    trace round-trips exactly (the zip container itself embeds timestamps,
    so only the JSONL backend is byte-stable).

Both backends load back into a trace that compares equal to the original
(:meth:`WorkloadTrace.__eq__` is content equality, and
:attr:`WorkloadTrace.trace_id` — a content hash of the canonical JSONL
bytes — is identical across processes and backends).
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.utils.validation import ValidationError, check_type

#: Version stamp written into every serialized trace; bumped on any change to
#: the record or header layout.
TRACE_FORMAT_VERSION = 1

#: Header tag identifying the file as a repro workload trace.
TRACE_FORMAT_TAG = "repro-trace"


@dataclass(frozen=True)
class TracePhase:
    """One named window of a trace, ``[start_cycle, end_cycle)``.

    Phases partition the interesting part of a trace into application-level
    stages (DNN layers, collective steps, stencil iterations); the simulator
    attributes every packet to the phase containing its creation cycle and
    reports per-phase latency and throughput.
    """

    name: str
    start_cycle: int
    end_cycle: int

    def __post_init__(self) -> None:
        check_type("name", self.name, str)
        check_type("start_cycle", self.start_cycle, int)
        check_type("end_cycle", self.end_cycle, int)
        if not self.name:
            raise ValidationError("phase names must be non-empty")
        if self.start_cycle < 0 or self.end_cycle <= self.start_cycle:
            raise ValidationError(
                f"phase {self.name!r} needs 0 <= start < end, "
                f"got [{self.start_cycle}, {self.end_cycle})"
            )

    @property
    def duration(self) -> int:
        """Length of the phase window in cycles."""
        return self.end_cycle - self.start_cycle


class WorkloadTrace:
    """An ordered, validated sequence of packet records with named phases.

    Parameters
    ----------
    num_tiles:
        Tile count the trace addresses; replay requires a topology with the
        same number of tiles.
    cycles, sources, destinations, sizes:
        The record columns (converted to ``int64`` arrays).  ``cycles`` must
        be non-decreasing; sources and destinations must be distinct valid
        tile indices; sizes are flit counts ``>= 1``.
    phases:
        Ordered, non-overlapping :class:`TracePhase` windows with unique
        names.  May be empty (the replay then reports no per-phase stats).
    name:
        Free-form trace name (e.g. the generator identifier).
    meta:
        JSON-serializable provenance (generator parameters, seed, ...).

    Examples
    --------
    >>> trace = WorkloadTrace(
    ...     num_tiles=4,
    ...     cycles=[0, 0, 5],
    ...     sources=[0, 1, 2],
    ...     destinations=[1, 2, 3],
    ...     sizes=[4, 4, 2],
    ...     phases=[TracePhase("warm", 0, 4), TracePhase("hot", 4, 8)],
    ...     name="tiny",
    ... )
    >>> trace.num_packets, trace.total_flits, trace.duration
    (3, 10, 8)
    >>> trace == WorkloadTrace.from_jsonl_bytes(trace.to_jsonl_bytes())
    True
    """

    def __init__(
        self,
        num_tiles: int,
        cycles: Sequence[int] | np.ndarray,
        sources: Sequence[int] | np.ndarray,
        destinations: Sequence[int] | np.ndarray,
        sizes: Sequence[int] | np.ndarray,
        phases: Sequence[TracePhase] = (),
        name: str = "trace",
        meta: Mapping[str, Any] | None = None,
    ) -> None:
        check_type("num_tiles", num_tiles, int)
        if num_tiles < 2:
            raise ValidationError("a trace needs at least 2 tiles")
        self.num_tiles = num_tiles
        self.name = str(name)
        self.meta: dict[str, Any] = dict(meta or {})

        self.cycles = np.asarray(cycles, dtype=np.int64)
        self.sources = np.asarray(sources, dtype=np.int64)
        self.destinations = np.asarray(destinations, dtype=np.int64)
        self.sizes = np.asarray(sizes, dtype=np.int64)
        lengths = {
            arr.shape
            for arr in (self.cycles, self.sources, self.destinations, self.sizes)
        }
        if len(lengths) != 1 or self.cycles.ndim != 1:
            raise ValidationError("trace record columns must be 1-D and equally long")
        if self.cycles.size == 0:
            raise ValidationError("a trace needs at least one packet record")
        if self.cycles[0] < 0 or np.any(np.diff(self.cycles) < 0):
            raise ValidationError("trace cycles must be non-negative and non-decreasing")
        for label, column in (("source", self.sources), ("destination", self.destinations)):
            if np.any(column < 0) or np.any(column >= num_tiles):
                raise ValidationError(f"trace {label} tile index out of range [0, {num_tiles})")
        if np.any(self.sources == self.destinations):
            raise ValidationError("trace records must have distinct source and destination")
        if np.any(self.sizes < 1):
            raise ValidationError("trace packet sizes must be >= 1 flit")

        self.phases: tuple[TracePhase, ...] = tuple(phases)
        seen: set[str] = set()
        previous_end = 0
        for phase in self.phases:
            if not isinstance(phase, TracePhase):
                raise ValidationError(f"phases must be TracePhase, got {phase!r}")
            if phase.name in seen:
                raise ValidationError(f"duplicate phase name {phase.name!r}")
            seen.add(phase.name)
            if phase.start_cycle < previous_end:
                raise ValidationError(
                    f"phase {phase.name!r} overlaps or precedes the previous phase"
                )
            previous_end = phase.end_cycle

    # ------------------------------------------------------------ properties
    @property
    def num_packets(self) -> int:
        """Number of packet records."""
        return int(self.cycles.size)

    @property
    def total_flits(self) -> int:
        """Sum of all packet sizes in flits."""
        return int(self.sizes.sum())

    @property
    def duration(self) -> int:
        """Trace length in cycles: covers every record and every phase window."""
        last_record = int(self.cycles[-1]) + 1
        last_phase = max((phase.end_cycle for phase in self.phases), default=0)
        return max(last_record, last_phase)

    @property
    def phase_names(self) -> tuple[str, ...]:
        """Phase names in trace order."""
        return tuple(phase.name for phase in self.phases)

    @property
    def trace_id(self) -> str:
        """Stable content hash of the canonical JSONL bytes.

        Computed once and cached — the trace is effectively immutable after
        construction, and hashing re-serializes every record.
        """
        cached = getattr(self, "_trace_id", None)
        if cached is None:
            cached = "trace-" + hashlib.sha256(self.to_jsonl_bytes()).hexdigest()[:16]
            self._trace_id = cached
        return cached

    def records(self) -> Iterator[tuple[int, int, int, int]]:
        """Iterate ``(cycle, source, destination, size_flits)`` tuples."""
        for cycle, src, dst, size in zip(
            self.cycles, self.sources, self.destinations, self.sizes
        ):
            yield int(cycle), int(src), int(dst), int(size)

    def phase_of_cycle_table(self) -> list[int]:
        """Per-cycle phase index (``-1`` outside every phase), length :attr:`duration`."""
        table = [-1] * self.duration
        for index, phase in enumerate(self.phases):
            for cycle in range(phase.start_cycle, min(phase.end_cycle, self.duration)):
                table[cycle] = index
        return table

    def phase_record_counts(self) -> list[tuple[int, int]]:
        """Per-phase ``(packets, flits)`` of the records created inside each window."""
        counts = []
        for phase in self.phases:
            lo = int(np.searchsorted(self.cycles, phase.start_cycle, side="left"))
            hi = int(np.searchsorted(self.cycles, phase.end_cycle, side="left"))
            counts.append((hi - lo, int(self.sizes[lo:hi].sum())))
        return counts

    # -------------------------------------------------------------- equality
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkloadTrace):
            return NotImplemented
        return (
            self.num_tiles == other.num_tiles
            and self.name == other.name
            and self.meta == other.meta
            and self.phases == other.phases
            and np.array_equal(self.cycles, other.cycles)
            and np.array_equal(self.sources, other.sources)
            and np.array_equal(self.destinations, other.destinations)
            and np.array_equal(self.sizes, other.sizes)
        )

    def __hash__(self) -> int:
        return hash(self.trace_id)

    def __repr__(self) -> str:
        return (
            f"WorkloadTrace({self.name!r}, tiles={self.num_tiles}, "
            f"packets={self.num_packets}, phases={len(self.phases)}, "
            f"duration={self.duration})"
        )

    # --------------------------------------------------------- serialization
    def _header(self) -> dict[str, Any]:
        return {
            "format": TRACE_FORMAT_TAG,
            "version": TRACE_FORMAT_VERSION,
            "name": self.name,
            "num_tiles": self.num_tiles,
            "phases": [
                {
                    "name": phase.name,
                    "start_cycle": phase.start_cycle,
                    "end_cycle": phase.end_cycle,
                }
                for phase in self.phases
            ],
            "meta": self.meta,
        }

    @staticmethod
    def _parse_header(header: Mapping[str, Any]) -> dict[str, Any]:
        if not isinstance(header, Mapping):
            raise ValidationError("malformed trace header: not a JSON object")
        if header.get("format") != TRACE_FORMAT_TAG:
            raise ValidationError(
                f"not a workload trace (format tag {header.get('format')!r})"
            )
        version = header.get("version")
        if version != TRACE_FORMAT_VERSION:
            raise ValidationError(
                f"unsupported trace format version {version!r} "
                f"(this build reads version {TRACE_FORMAT_VERSION})"
            )
        try:
            return {
                "num_tiles": int(header["num_tiles"]),
                "name": header.get("name", "trace"),
                "meta": header.get("meta", {}),
                "phases": [
                    TracePhase(
                        name=entry["name"],
                        start_cycle=int(entry["start_cycle"]),
                        end_cycle=int(entry["end_cycle"]),
                    )
                    for entry in header.get("phases", ())
                ],
            }
        except (KeyError, TypeError, ValueError) as error:
            raise ValidationError(f"malformed trace header: {error!r}") from error

    def to_jsonl_bytes(self) -> bytes:
        """Canonical JSONL bytes: header line + one record array per line."""
        lines = [json.dumps(self._header(), sort_keys=True, separators=(",", ":"))]
        lines.extend(
            f"[{cycle},{src},{dst},{size}]" for cycle, src, dst, size in self.records()
        )
        return ("\n".join(lines) + "\n").encode("utf-8")

    @classmethod
    def from_jsonl_bytes(cls, data: bytes) -> "WorkloadTrace":
        """Rebuild a trace from :meth:`to_jsonl_bytes` output."""
        try:
            lines = data.decode("utf-8").splitlines()
        except UnicodeDecodeError as error:
            raise ValidationError(
                "malformed trace file: not UTF-8 text (an .npz trace renamed "
                "to .jsonl?)"
            ) from error
        if not lines:
            raise ValidationError("empty trace file")
        fields = cls._parse_header(json.loads(lines[0]))
        records = [json.loads(line) for line in lines[1:] if line.strip()]
        if not records:
            raise ValidationError("trace file has a header but no records")
        for number, record in enumerate(records, start=2):
            if (
                not isinstance(record, list)
                or len(record) != 4
                # bool is an int subclass; reject it along with floats/strings
                or not all(type(value) is int for value in record)
            ):
                raise ValidationError(
                    f"malformed trace record on line {number}: expected "
                    f"[cycle, src, dst, size] integers, got {record!r}"
                )
        columns = list(zip(*records))
        return cls(
            cycles=columns[0],
            sources=columns[1],
            destinations=columns[2],
            sizes=columns[3],
            **fields,
        )

    def to_jsonl(self, path: str | Path) -> Path:
        """Write the canonical JSONL form to ``path``; returns the path."""
        path = Path(path)
        path.write_bytes(self.to_jsonl_bytes())
        return path

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "WorkloadTrace":
        """Read a trace from a ``.jsonl`` file."""
        return cls.from_jsonl_bytes(Path(path).read_bytes())

    def to_npz(self, path: str | Path) -> Path:
        """Write the compressed-npz form to ``path``; returns the path."""
        path = Path(path)
        header = json.dumps(self._header(), sort_keys=True, separators=(",", ":"))
        with path.open("wb") as handle:
            np.savez_compressed(
                handle,
                header=np.array(header),
                cycles=self.cycles,
                sources=self.sources,
                destinations=self.destinations,
                sizes=self.sizes,
            )
        return path

    @classmethod
    def from_npz(cls, path: str | Path) -> "WorkloadTrace":
        """Read a trace from a ``.npz`` file."""
        try:
            with np.load(Path(path), allow_pickle=False) as data:
                fields = cls._parse_header(json.loads(str(data["header"])))
                return cls(
                    cycles=data["cycles"],
                    sources=data["sources"],
                    destinations=data["destinations"],
                    sizes=data["sizes"],
                    **fields,
                )
        except (ValueError, KeyError, OSError, zipfile.BadZipFile) as error:
            if isinstance(error, ValidationError):
                raise
            raise ValidationError(f"malformed npz trace {path}: {error!r}") from error

    def save(self, path: str | Path) -> Path:
        """Write the trace, choosing the backend by suffix (``.jsonl``/``.npz``)."""
        path = Path(path)
        if path.suffix == ".jsonl":
            return self.to_jsonl(path)
        if path.suffix == ".npz":
            return self.to_npz(path)
        raise ValidationError(
            f"unknown trace suffix {path.suffix!r}; use '.jsonl' or '.npz'"
        )

    @classmethod
    def load(cls, path: str | Path) -> "WorkloadTrace":
        """Read a trace, choosing the backend by suffix (``.jsonl``/``.npz``)."""
        path = Path(path)
        if path.suffix == ".jsonl":
            return cls.from_jsonl(path)
        if path.suffix == ".npz":
            return cls.from_npz(path)
        raise ValidationError(
            f"unknown trace suffix {path.suffix!r}; use '.jsonl' or '.npz'"
        )


def merge_traces(traces: Sequence[WorkloadTrace], name: str = "merged") -> WorkloadTrace:
    """Overlay several traces for the same tile count into one.

    Records are merged in cycle order (ties broken by the records' column
    values, so the result is deterministic regardless of input order); the
    phases of the *first* trace are kept — merging is meant for overlaying
    unphased background traffic (e.g. the ``onoff`` generator with
    ``phases=0``) onto a phased foreground workload.
    """
    if not traces:
        raise ValidationError("merge_traces needs at least one trace")
    tiles = {trace.num_tiles for trace in traces}
    if len(tiles) != 1:
        raise ValidationError(f"cannot merge traces with different tile counts: {sorted(tiles)}")
    rows = sorted(
        record for trace in traces for record in trace.records()
    )
    columns = list(zip(*rows))
    return WorkloadTrace(
        num_tiles=traces[0].num_tiles,
        cycles=columns[0],
        sources=columns[1],
        destinations=columns[2],
        sizes=columns[3],
        phases=traces[0].phases,
        name=name,
        meta={"merged_from": [trace.name for trace in traces]},
    )


__all__ = [
    "TRACE_FORMAT_TAG",
    "TRACE_FORMAT_VERSION",
    "TracePhase",
    "WorkloadTrace",
    "merge_traces",
]
