"""Trace-driven application workloads.

The subsystem complements the memoryless synthetic patterns of
:mod:`repro.simulator.traffic` with replayable, phase-structured application
traffic:

* :mod:`repro.workloads.trace` — the versioned trace format
  (:class:`WorkloadTrace`: packet records ``(cycle, src, dst, size)`` with
  named :class:`TracePhase` windows; JSONL and compressed-npz backends with
  deterministic round-trips and a stable ``trace_id`` content hash);
* :mod:`repro.workloads.generators` — workload generators that synthesize
  traces from application models (DNN inference, MPI collectives, 2-D
  stencil halo exchange, bursty ON/OFF background traffic), registered in
  :data:`WORKLOAD_FACTORIES` exactly like the traffic-pattern registry;
* replay — :func:`repro.simulator.sweep.replay_trace` (re-exported here)
  feeds a trace through the cycle-accurate simulator and returns
  :class:`~repro.simulator.statistics.SimulationStats` with per-phase
  latency/throughput in ``stats.phases``.

End-to-end, a workload enters an experiment through
``ExperimentSpec(workload={"name": ..., "seed": ..., "params": {...}})`` or
the ``repro gen-trace`` / ``repro replay`` CLI subcommands; see
``docs/WORKLOADS.md``.
"""

from repro.simulator.sweep import replay_trace
from repro.workloads.generators import (
    WORKLOAD_FACTORIES,
    available_workloads,
    check_workload_name,
    generate_dnn_inference,
    generate_mpi_collective,
    generate_onoff,
    generate_stencil2d,
    make_workload_trace,
)
from repro.workloads.trace import (
    TRACE_FORMAT_TAG,
    TRACE_FORMAT_VERSION,
    TracePhase,
    WorkloadTrace,
    merge_traces,
)

__all__ = [
    "TRACE_FORMAT_TAG",
    "TRACE_FORMAT_VERSION",
    "TracePhase",
    "WorkloadTrace",
    "merge_traces",
    "WORKLOAD_FACTORIES",
    "available_workloads",
    "check_workload_name",
    "generate_dnn_inference",
    "generate_mpi_collective",
    "generate_onoff",
    "generate_stencil2d",
    "make_workload_trace",
    "replay_trace",
]
