"""Application-workload generators: traces synthesized from traffic models.

Each generator turns a small application model into a replayable
:class:`~repro.workloads.trace.WorkloadTrace` for an ``rows x cols`` tile
grid.  Four families are provided, mirroring the workload classes that drive
real NoC evaluations:

``dnn_inference``
    Layer-wise activation exchange of a pipelined DNN inference pass (the
    MockSim-style decoder replay): tiles are striped across consecutive
    layers; during each layer window every producing tile scatters
    activation packets to a small fan-out of consumers of the next layer.
    One phase per layer.

``mpi_collective``
    MPI-style collectives over all tiles: ``allreduce_ring`` (reduce-scatter
    then allgather, one neighbour hop per step), ``allreduce_tree``
    (binary-tree reduce then broadcast), or ``alltoall`` (personalized
    exchange, one round per destination offset).  Phases follow the
    algorithm structure (``reduce_scatter``/``allgather``,
    ``reduce``/``broadcast``, or a single ``alltoall`` window).

``stencil2d``
    Iterative 2-D stencil halo exchange on the tile grid: in each iteration
    every tile sends one halo packet to each of its (up to four)
    non-periodic grid neighbours.  One phase per iteration.

``onoff``
    Bursty ON/OFF (Markov-modulated Bernoulli) background traffic with
    uniformly random destinations — the classic self-similar background
    load.  The trace is split into equal ``epoch<k>`` phases (set
    ``phases=0`` for an unphased background trace to overlay with
    :func:`~repro.workloads.trace.merge_traces`).

All generators are deterministic functions of ``(rows, cols, seed,
parameters)``: the RNG comes from :func:`repro.utils.rng.make_rng` with a
per-generator stream label, and records are emitted in canonical sorted
order, so repeated generation is byte-stable (pinned by the golden tests).

The :data:`WORKLOAD_FACTORIES` registry mirrors ``TRAFFIC_FACTORIES`` in
:mod:`repro.simulator.traffic`: one place to enumerate and instantiate every
workload by name.
"""

from __future__ import annotations

import inspect
from typing import Callable

import numpy as np

from repro.utils.rng import make_rng
from repro.utils.validation import ValidationError, check_in_range, check_type
from repro.workloads.trace import TracePhase, WorkloadTrace


def _check_positive(name: str, value: int) -> None:
    check_type(name, value, int)
    if value < 1:
        raise ValidationError(f"{name} must be >= 1, got {value}")


def _check_grid(rows: int, cols: int) -> None:
    check_type("rows", rows, int)
    check_type("cols", cols, int)
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValidationError(
            f"workload generation needs a grid of at least 2 tiles, got {rows}x{cols}"
        )


def _finalize(
    num_tiles: int,
    records: list[tuple[int, int, int, int]],
    phases: list[TracePhase],
    name: str,
    meta: dict,
) -> WorkloadTrace:
    """Sort records canonically and build the trace."""
    if not records:
        raise ValidationError(
            f"{name} produced no packet records for this grid and parameter set"
        )
    records.sort()
    columns = list(zip(*records))
    return WorkloadTrace(
        num_tiles=num_tiles,
        cycles=columns[0],
        sources=columns[1],
        destinations=columns[2],
        sizes=columns[3],
        phases=phases,
        name=name,
        meta=meta,
    )


# ------------------------------------------------------------ DNN inference
def generate_dnn_inference(
    rows: int,
    cols: int,
    seed: int = 0,
    layers: int = 4,
    layer_window: int = 64,
    activations_per_tile: int = 2,
    fan_out: int = 3,
    packet_size_flits: int = 4,
) -> WorkloadTrace:
    """Layer-wise activation exchange of a pipelined DNN inference pass.

    Tiles are striped round-robin over ``layers`` consecutive layers.  During
    the window of layer ``l``, every tile assigned to layer ``l`` emits
    ``activations_per_tile`` activation packets to ``fan_out`` consumers
    drawn from the tiles of layer ``l + 1`` (the last layer feeds back to
    layer 0 — the next pipelined inference), at cycles jittered uniformly
    across the window.  One :class:`TracePhase` per layer (``layer0``,
    ``layer1``, ...).
    """
    _check_grid(rows, cols)
    num_tiles = rows * cols
    _check_positive("layers", layers)
    _check_positive("layer_window", layer_window)
    _check_positive("activations_per_tile", activations_per_tile)
    _check_positive("fan_out", fan_out)
    _check_positive("packet_size_flits", packet_size_flits)
    if layers > num_tiles:
        raise ValidationError(
            f"dnn_inference needs layers <= num_tiles, got {layers} > {num_tiles}"
        )
    rng = make_rng(seed, stream="workload:dnn_inference")

    layer_tiles = [
        [tile for tile in range(num_tiles) if tile % layers == layer]
        for layer in range(layers)
    ]
    records: list[tuple[int, int, int, int]] = []
    phases: list[TracePhase] = []
    for layer in range(layers):
        start = layer * layer_window
        phases.append(TracePhase(f"layer{layer}", start, start + layer_window))
        consumers = layer_tiles[(layer + 1) % layers]
        for source in layer_tiles[layer]:
            for _ in range(activations_per_tile):
                cycle = start + int(rng.integers(layer_window))
                for _ in range(fan_out):
                    destination = int(consumers[int(rng.integers(len(consumers)))])
                    if destination == source:
                        # Step to the next consumer; with >= 2 tiles this
                        # always yields a tile different from the source.
                        destination = consumers[
                            (consumers.index(destination) + 1) % len(consumers)
                        ]
                    records.append((cycle, source, destination, packet_size_flits))
    return _finalize(
        num_tiles,
        records,
        phases,
        name="dnn_inference",
        meta={
            "generator": "dnn_inference",
            "seed": seed,
            "params": {
                "layers": layers,
                "layer_window": layer_window,
                "activations_per_tile": activations_per_tile,
                "fan_out": fan_out,
                "packet_size_flits": packet_size_flits,
            },
        },
    )


# ------------------------------------------------------------- collectives
_COLLECTIVES = ("allreduce_ring", "allreduce_tree", "alltoall")


def generate_mpi_collective(
    rows: int,
    cols: int,
    seed: int = 0,
    collective: str = "allreduce_ring",
    step_cycles: int = 8,
    chunk_size_flits: int = 4,
) -> WorkloadTrace:
    """MPI-style collective over all tiles (deterministic, seed-independent).

    ``allreduce_ring``
        ``N - 1`` reduce-scatter steps followed by ``N - 1`` allgather
        steps; in step ``s`` every tile sends one chunk to its ring
        successor ``(i + 1) mod N``.  Phases: ``reduce_scatter`` and
        ``allgather``.
    ``allreduce_tree``
        Binary-tree reduction (``ceil(log2 N)`` rounds of partner sends
        towards tile 0) followed by the mirrored broadcast.  Phases:
        ``reduce`` and ``broadcast``.
    ``alltoall``
        ``N - 1`` rounds of personalized exchange; in round ``r`` tile
        ``i`` sends to ``(i + r) mod N``.  Single phase ``alltoall``.
    """
    _check_grid(rows, cols)
    num_tiles = rows * cols
    if collective not in _COLLECTIVES:
        raise ValidationError(
            f"unknown collective {collective!r}; known: {list(_COLLECTIVES)}"
        )
    _check_positive("step_cycles", step_cycles)
    _check_positive("chunk_size_flits", chunk_size_flits)

    records: list[tuple[int, int, int, int]] = []
    phases: list[TracePhase] = []
    if collective == "allreduce_ring":
        steps = num_tiles - 1
        for step in range(steps):
            cycle = step * step_cycles
            for tile in range(num_tiles):
                records.append((cycle, tile, (tile + 1) % num_tiles, chunk_size_flits))
        for step in range(steps):
            cycle = (steps + step) * step_cycles
            for tile in range(num_tiles):
                records.append((cycle, tile, (tile + 1) % num_tiles, chunk_size_flits))
        phases = [
            TracePhase("reduce_scatter", 0, steps * step_cycles),
            TracePhase("allgather", steps * step_cycles, 2 * steps * step_cycles),
        ]
    elif collective == "allreduce_tree":
        rounds = max(1, (num_tiles - 1).bit_length())
        for round_index in range(rounds):
            cycle = round_index * step_cycles
            stride = 1 << round_index
            for tile in range(num_tiles):
                if tile % (2 * stride) == stride:
                    records.append((cycle, tile, tile - stride, chunk_size_flits))
        reduce_end = rounds * step_cycles
        for round_index in range(rounds):
            cycle = reduce_end + round_index * step_cycles
            stride = 1 << (rounds - 1 - round_index)
            for tile in range(num_tiles):
                if tile % (2 * stride) == 0 and tile + stride < num_tiles:
                    records.append((cycle, tile, tile + stride, chunk_size_flits))
        phases = [
            TracePhase("reduce", 0, reduce_end),
            TracePhase("broadcast", reduce_end, 2 * reduce_end),
        ]
    else:  # alltoall
        rounds = num_tiles - 1
        for round_index in range(rounds):
            cycle = round_index * step_cycles
            for tile in range(num_tiles):
                records.append(
                    (cycle, tile, (tile + round_index + 1) % num_tiles, chunk_size_flits)
                )
        phases = [TracePhase("alltoall", 0, rounds * step_cycles)]

    return _finalize(
        num_tiles,
        records,
        phases,
        name=f"mpi_{collective}",
        # No "seed" in the meta: the collective schedule is fully determined
        # by the grid and parameters (see SEED_INDEPENDENT_WORKLOADS).
        meta={
            "generator": "mpi_collective",
            "params": {
                "collective": collective,
                "step_cycles": step_cycles,
                "chunk_size_flits": chunk_size_flits,
            },
        },
    )


# ------------------------------------------------------------------ stencil
def generate_stencil2d(
    rows: int,
    cols: int,
    seed: int = 0,
    iterations: int = 4,
    iteration_window: int = 32,
    halo_size_flits: int = 2,
) -> WorkloadTrace:
    """Iterative 2-D stencil halo exchange on the tile grid.

    In each iteration, every tile sends one halo packet of
    ``halo_size_flits`` flits to each of its north/south/west/east grid
    neighbours (non-periodic: boundary tiles have fewer neighbours), at a
    cycle jittered uniformly inside the iteration window.  One phase per
    iteration (``iter0``, ``iter1``, ...).
    """
    _check_grid(rows, cols)
    num_tiles = rows * cols
    _check_positive("iterations", iterations)
    _check_positive("iteration_window", iteration_window)
    _check_positive("halo_size_flits", halo_size_flits)
    rng = make_rng(seed, stream="workload:stencil2d")

    records: list[tuple[int, int, int, int]] = []
    phases: list[TracePhase] = []
    for iteration in range(iterations):
        start = iteration * iteration_window
        phases.append(TracePhase(f"iter{iteration}", start, start + iteration_window))
        for row in range(rows):
            for col in range(cols):
                source = row * cols + col
                cycle = start + int(rng.integers(iteration_window))
                for d_row, d_col in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                    n_row, n_col = row + d_row, col + d_col
                    if 0 <= n_row < rows and 0 <= n_col < cols:
                        records.append(
                            (cycle, source, n_row * cols + n_col, halo_size_flits)
                        )
    return _finalize(
        num_tiles,
        records,
        phases,
        name="stencil2d",
        meta={
            "generator": "stencil2d",
            "seed": seed,
            "params": {
                "iterations": iterations,
                "iteration_window": iteration_window,
                "halo_size_flits": halo_size_flits,
            },
        },
    )


# ------------------------------------------------------------------ ON/OFF
def generate_onoff(
    rows: int,
    cols: int,
    seed: int = 0,
    duration: int = 256,
    burst_rate: float = 0.2,
    p_on_off: float = 0.1,
    p_off_on: float = 0.05,
    packet_size_flits: int = 4,
    phases: int = 4,
) -> WorkloadTrace:
    """Bursty ON/OFF background traffic (Markov-modulated Bernoulli).

    Every tile independently alternates between an ON and an OFF state
    (transition probabilities ``p_on_off`` / ``p_off_on`` per cycle,
    starting OFF); while ON it creates a packet to a uniformly random other
    tile with probability ``burst_rate / packet_size_flits`` per cycle, so
    the offered load of an ON tile is ``burst_rate`` flits per cycle.  The
    trace is split into ``phases`` equal ``epoch<k>`` windows; pass
    ``phases=0`` for an unphased background trace.
    """
    _check_grid(rows, cols)
    num_tiles = rows * cols
    _check_positive("duration", duration)
    _check_positive("packet_size_flits", packet_size_flits)
    check_type("phases", phases, int)
    if phases < 0:
        raise ValidationError("phases must be >= 0")
    if phases > duration:
        raise ValidationError("phases must not exceed the trace duration")
    check_in_range("burst_rate", burst_rate, 0.0, 1.0)
    check_in_range("p_on_off", p_on_off, 0.0, 1.0)
    check_in_range("p_off_on", p_off_on, 0.0, 1.0)
    rng = make_rng(seed, stream="workload:onoff")

    packet_probability = burst_rate / packet_size_flits
    on = np.zeros(num_tiles, dtype=bool)
    records: list[tuple[int, int, int, int]] = []
    for cycle in range(duration):
        transitions = rng.random(num_tiles)
        on = np.where(on, transitions >= p_on_off, transitions < p_off_on)
        draws = rng.random(num_tiles)
        for source in np.nonzero(on & (draws < packet_probability))[0]:
            source = int(source)
            destination = int(rng.integers(num_tiles - 1))
            if destination >= source:
                destination += 1
            records.append((cycle, source, destination, packet_size_flits))
    if not records:
        raise ValidationError(
            "onoff produced no records; raise burst_rate/p_off_on or the duration"
        )
    phase_list: list[TracePhase] = []
    if phases:
        edges = [round(k * duration / phases) for k in range(phases + 1)]
        phase_list = [
            TracePhase(f"epoch{k}", edges[k], edges[k + 1])
            for k in range(phases)
            if edges[k + 1] > edges[k]
        ]
    return _finalize(
        num_tiles,
        records,
        phase_list,
        name="onoff",
        meta={
            "generator": "onoff",
            "seed": seed,
            "params": {
                "duration": duration,
                "burst_rate": burst_rate,
                "p_on_off": p_on_off,
                "p_off_on": p_off_on,
                "packet_size_flits": packet_size_flits,
                "phases": phases,
            },
        },
    )


# --------------------------------------------------------------- registry
WorkloadFactory = Callable[..., WorkloadTrace]

WORKLOAD_FACTORIES: dict[str, WorkloadFactory] = {
    "dnn_inference": generate_dnn_inference,
    "mpi_collective": generate_mpi_collective,
    "stencil2d": generate_stencil2d,
    "onoff": generate_onoff,
}

#: Generators whose output does not depend on the RNG seed (fully determined
#: by the grid and parameters).  Experiment specs normalise the seed away for
#: these, so seed-distinct specs do not duplicate identical simulations.
SEED_INDEPENDENT_WORKLOADS = frozenset({"mpi_collective"})


def available_workloads() -> list[str]:
    """Return the identifiers of all registered workload generators."""
    return sorted(WORKLOAD_FACTORIES)


def check_workload_name(name: str) -> None:
    """Raise :class:`ValidationError` unless ``name`` is a registered workload."""
    if name not in WORKLOAD_FACTORIES:
        raise ValidationError(
            f"unknown workload {name!r}; known: {available_workloads()}"
        )


def check_workload_params(name: str, params: "dict | None") -> None:
    """Raise :class:`ValidationError` on parameter keys the generator rejects.

    Generators declare their parameters explicitly (no ``**kwargs``), so the
    signature is the authoritative key list; checking here lets specs and the
    CLI fail fast instead of raising ``TypeError`` mid-campaign.
    """
    check_workload_name(name)
    if not params:
        return
    allowed = set(inspect.signature(WORKLOAD_FACTORIES[name]).parameters)
    allowed -= {"rows", "cols", "seed"}
    unknown = set(params) - allowed
    if unknown:
        raise ValidationError(
            f"unknown parameters {sorted(unknown)} for workload {name!r}; "
            f"known: {sorted(allowed)}"
        )


def make_workload_trace(
    name: str, rows: int, cols: int, seed: int = 0, **kwargs
) -> WorkloadTrace:
    """Generate a registered workload trace by identifier.

    Extra keyword arguments are forwarded to the generator (e.g. ``layers``
    for ``dnn_inference`` or ``collective`` for ``mpi_collective``) and are
    validated against the generator's signature.
    """
    check_workload_params(name, kwargs)
    return WORKLOAD_FACTORIES[name](rows, cols, seed=seed, **kwargs)


def workload_trace_from_mapping(
    workload: "dict", rows: int, cols: int
) -> WorkloadTrace:
    """Build the trace a ``{"name", "seed", "params"}`` workload spec describes.

    The single construction path shared by :class:`ExperimentSpec` and the
    prediction toolchain, so the trace an experiment *reports* is always the
    trace it *replays*.
    """
    return make_workload_trace(
        workload["name"],
        rows,
        cols,
        seed=int(workload.get("seed", 0)),
        **dict(workload.get("params", {})),
    )


__all__ = [
    "WORKLOAD_FACTORIES",
    "available_workloads",
    "check_workload_name",
    "generate_dnn_inference",
    "generate_mpi_collective",
    "generate_onoff",
    "generate_stencil2d",
    "make_workload_trace",
]
