"""Static and runtime verification of the simulator and its routing tables.

Three layers (see ``docs/VERIFICATION.md``):

* :mod:`repro.verify.static` — the **static routing verifier**: builds the
  channel-dependency graph from a network's compiled routing tables and
  proves escape-layer acyclicity (Duato deadlock freedom), full (src, dst)
  reachability of both layers, hop-count minimality of the minimal layer,
  and VC/credit configuration sanity.  Violations carry a concrete witness
  (a cycle of channels, or the unreachable pair and the walked path).
* :class:`~repro.simulator.engine.sanitizer.SanitizerEngine` — the
  **runtime sanitizer**: the reference kernel plus per-cycle invariant
  checks (flit/credit conservation, buffer bounds, allocation consistency,
  timestamp monotonicity), selected with ``engine="sanitizer"``.  It lives
  under :mod:`repro.simulator.engine` (the engine registry imports it, so
  placing it here would be circular) and is re-exported for convenience.
* :mod:`repro.verify.lint` — the **determinism/consistency lint**: an
  AST-based pass over the source tree enforcing repo invariants (no
  unseeded global RNG calls, no wall-clock reads inside the simulator,
  registry entries name-consistent with their classes).

CLI: ``repro verify`` and ``repro lint`` (see
:mod:`repro.experiments.cli`); ``tools/lint_repro.py`` is a standalone
entry point for the lint.
"""

from repro.simulator.engine.sanitizer import SanitizerEngine, SanitizerError
from repro.verify.static import (
    LAYERS,
    VerificationReport,
    Violation,
    channel_dependency_graph,
    find_cycle,
    verify_network,
    verify_topologies,
    verify_topology,
)

__all__ = [
    "LAYERS",
    "SanitizerEngine",
    "SanitizerError",
    "VerificationReport",
    "Violation",
    "channel_dependency_graph",
    "find_cycle",
    "verify_network",
    "verify_topologies",
    "verify_topology",
]
