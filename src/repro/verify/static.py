"""Static verification of compiled routing tables.

The simulator's deadlock-freedom argument (see
:mod:`repro.simulator.routing_tables`) is Duato's: the adaptive layer may
request any hop-minimal output, but a blocked packet can always fall back to
the escape layer, and the escape layer's **channel-dependency graph (CDG)**
is acyclic.  That last clause is a property of the *tables*, not of the
code that built them — hand-written tables, future fault-rerouted tables, or
a bug in table construction can all silently break it.  This module checks
the property instead of assuming it.

From :meth:`~repro.simulator.network.Network.compiled_routes` (the exact
arrays the router's allocation loop indexes) the verifier proves, per
network:

* **escape-layer CDG acyclicity** — the classic Duato/Dally condition.  The
  CDG has one node per directed channel and an edge ``a -> b`` whenever some
  destination's route enters a node over ``a`` and leaves it over ``b``; a
  cycle is reported with the witness channel sequence;
* **full reachability** of both layers — for every ``(source, destination)``
  pair the table walk must terminate at the destination (a routing loop or a
  stuck node is reported with the witness pair and the looping node path);
* **hop-count minimality** of the minimal layer — the table walk from every
  source must take exactly as many hops as the topology graph's BFS
  distance (computed here from the link list, independently of the routing
  module's own ``hop_distance``);
* **VC/credit configuration sanity** — ``escape_vc < num_vcs``, buffer
  depths and pipeline latency at least 1.

Every violated property is reported as a :class:`Violation` carrying a
concrete witness; :class:`VerificationReport` aggregates them per network.
All checks are ``O(nodes^2)`` / ``O(channels * nodes)`` — cheap enough that
``repro.optimize`` runs them on every feasible candidate during analytical
screening (stage 1), so an auto-generated topology with broken tables never
reaches the cycle-accurate stage.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.simulator.network import Network, NetworkConfig, build_network
from repro.simulator.routing_tables import RoutingTables
from repro.topologies.base import Topology

#: Layer identifiers accepted by the per-layer helpers.
LAYERS = ("minimal", "escape")


@dataclass(frozen=True)
class Violation:
    """One violated routing/configuration property with a concrete witness.

    Attributes
    ----------
    rule:
        Stable machine-readable rule identifier, e.g. ``"escape-cdg-cycle"``,
        ``"unreachable"``, ``"non-minimal"``, ``"config"``.
    layer:
        ``"minimal"``, ``"escape"`` or ``""`` for layer-independent rules.
    message:
        Human-readable description including the witness.
    witness:
        Machine-readable witness: the channel ``(src, dst)`` pairs of a CDG
        cycle, the node path of a routing loop, or the offending
        ``(source, destination)`` pair.
    """

    rule: str
    layer: str
    message: str
    witness: tuple[Any, ...] = ()


@dataclass
class VerificationReport:
    """Outcome of statically verifying one network's routing tables.

    Attributes
    ----------
    topology_name:
        Human-readable topology name.
    num_nodes, num_channels:
        Size of the verified network.
    violations:
        Every violated property (empty when the network verifies).
    escape_cdg_edges, minimal_cdg_edges:
        Edge counts of the two channel-dependency graphs.
    minimal_cdg_cyclic:
        Whether the *adaptive* layer's CDG contains a cycle.  This is
        informational, not a violation: tori legitimately have cyclic
        adaptive layers — that is exactly why the escape layer exists.
    """

    topology_name: str
    num_nodes: int
    num_channels: int
    violations: list[Violation] = field(default_factory=list)
    escape_cdg_edges: int = 0
    minimal_cdg_edges: int = 0
    minimal_cdg_cyclic: bool = False

    @property
    def ok(self) -> bool:
        """``True`` when every checked property holds."""
        return not self.violations

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            return (
                f"{self.topology_name}: OK — escape CDG acyclic "
                f"({self.escape_cdg_edges} edges over {self.num_channels} "
                f"channels), both layers fully reachable, minimal layer "
                f"hop-optimal"
            )
        head = self.violations[0]
        return (
            f"{self.topology_name}: FAILED {len(self.violations)} check(s) — "
            f"first: [{head.rule}] {head.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (CLI ``--json`` output)."""
        return {
            "topology": self.topology_name,
            "num_nodes": self.num_nodes,
            "num_channels": self.num_channels,
            "ok": self.ok,
            "escape_cdg_edges": self.escape_cdg_edges,
            "minimal_cdg_edges": self.minimal_cdg_edges,
            "minimal_cdg_cyclic": self.minimal_cdg_cyclic,
            "violations": [
                {
                    "rule": violation.rule,
                    "layer": violation.layer,
                    "message": violation.message,
                    "witness": list(violation.witness),
                }
                for violation in self.violations
            ],
        }


# ------------------------------------------------------------------ CDG
def channel_dependency_graph(network: Network, layer: str) -> dict[int, set[int]]:
    """Channel-dependency graph of one routing layer.

    Nodes are directed-channel ids; an edge ``a -> b`` means some packet the
    table can route holds channel ``a`` while requesting channel ``b`` (it
    arrives at ``a``'s head over ``a`` and continues over ``b``).  Built from
    :meth:`Network.compiled_routes`, i.e. from exactly the arrays the router
    allocates against.
    """
    if layer not in LAYERS:
        raise ValueError(f"unknown routing layer {layer!r}; known: {LAYERS}")
    minimal, escape = network.compiled_routes()
    table = minimal if layer == "minimal" else escape
    graph: dict[int, set[int]] = {
        channel.channel_id: set() for channel in network.channels
    }
    num = network.num_nodes
    for channel in network.channels:
        u, v, cid = channel.source, channel.destination, channel.channel_id
        row_u, row_v = table[u], table[v]
        edges = graph[cid]
        for dst in range(num):
            if dst == v:
                continue  # the packet ejects at v; no further dependency
            if row_u[dst] == cid:
                edges.add(row_v[dst])
    return graph


def find_cycle(graph: dict[int, set[int]]) -> list[int] | None:
    """Return one cycle of ``graph`` as a node list, or ``None`` if acyclic.

    Iterative three-colour DFS (white/grey/black); the returned list is the
    witness cycle with ``cycle[0]`` reachable again from ``cycle[-1]``.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in graph}
    for root in graph:
        if colour[root] != WHITE:
            continue
        # Stack of (node, iterator over successors); `path` mirrors the grey
        # chain so a back edge can be turned into the witness cycle.
        stack = [(root, iter(sorted(graph[root])))]
        colour[root] = GREY
        path = [root]
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                if colour[successor] == GREY:
                    return path[path.index(successor):]
                if colour[successor] == WHITE:
                    colour[successor] = GREY
                    stack.append((successor, iter(sorted(graph[successor]))))
                    path.append(successor)
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
                path.pop()
    return None


def _cycle_witness(network: Network, cycle: list[int]) -> tuple[tuple[int, int], ...]:
    """Render a channel-id cycle as ``(source, destination)`` pairs."""
    return tuple(
        (network.channels[cid].source, network.channels[cid].destination)
        for cid in cycle
    )


# -------------------------------------------------------- table walking
def _walk_layer(
    network: Network, layer: str
) -> tuple[list[list[int]], list[tuple[int, int, list[int]]]]:
    """Hop counts of every table walk, plus the pairs that never arrive.

    For each destination the compiled table is a functional graph
    ``node -> next node``; a memoized walk classifies every source in
    amortized ``O(1)``: it either reaches the destination (hop count
    recorded) or runs into a routing loop / an already-doomed node.

    Returns ``(hops, failures)`` where ``hops[dst][node]`` is the walk
    length (``-1`` when the walk never arrives) and each failure is
    ``(source, destination, witness_node_path)``.
    """
    minimal, escape = network.compiled_routes()
    table = minimal if layer == "minimal" else escape
    channel_dest = [channel.destination for channel in network.channels]
    num = network.num_nodes
    all_hops: list[list[int]] = []
    failures: list[tuple[int, int, list[int]]] = []
    for dst in range(num):
        hops = [-2] * num  # -2 unknown, -1 known-unreachable, >=0 hop count
        hops[dst] = 0
        for start in range(num):
            if hops[start] != -2:
                continue
            chain = [start]
            node = start
            while True:
                cid = table[node][dst]
                nxt = channel_dest[cid] if cid >= 0 else dst
                if hops[nxt] != -2:
                    break
                if nxt in chain:
                    # Routing loop: everything on the chain is unreachable.
                    loop = chain[chain.index(nxt):] + [nxt]
                    failures.append((start, dst, loop))
                    for member in chain:
                        hops[member] = -1
                    chain = []
                    break
                chain.append(nxt)
                node = nxt
            if not chain:
                continue
            terminal = hops[nxt]
            if terminal < 0:
                for member in chain:
                    hops[member] = -1
                failures.append((start, dst, chain + [nxt]))
            else:
                for depth, member in enumerate(reversed(chain)):
                    hops[member] = terminal + depth + 1
        all_hops.append(hops)
    return all_hops, failures


def _bfs_distances(topology: Topology) -> list[list[int]]:
    """All-pairs hop distances recomputed from the raw link list.

    Deliberately *not* taken from :class:`RoutingTables.hop_distance` — the
    verifier must not trust the module under test for its ground truth.
    """
    num = topology.num_tiles
    adjacency: list[list[int]] = [[] for _ in range(num)]
    for link in topology.links:
        adjacency[link.src].append(link.dst)
        adjacency[link.dst].append(link.src)
    distances: list[list[int]] = []
    for source in range(num):
        dist = [-1] * num
        dist[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor in adjacency[node]:
                if dist[neighbor] == -1:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
        distances.append(dist)
    return distances


# ------------------------------------------------------------ main entry
def _config_violations(config: NetworkConfig) -> list[Violation]:
    """VC/credit configuration sanity checks.

    ``NetworkConfig`` validates these at construction too; the verifier
    re-checks them so hand-built or monkeypatched networks (and future
    config representations) cannot bypass the invariants the router's
    allocation loop indexes by.
    """
    violations: list[Violation] = []
    if not 0 <= config.escape_vc < config.num_vcs:
        violations.append(
            Violation(
                rule="config",
                layer="",
                message=(
                    f"escape_vc={config.escape_vc} outside the VC range "
                    f"[0, {config.num_vcs})"
                ),
                witness=(config.escape_vc, config.num_vcs),
            )
        )
    if config.buffer_depth_flits < 1:
        violations.append(
            Violation(
                rule="config",
                layer="",
                message=f"buffer_depth_flits={config.buffer_depth_flits} < 1",
                witness=(config.buffer_depth_flits,),
            )
        )
    if config.router_pipeline_cycles < 1:
        violations.append(
            Violation(
                rule="config",
                layer="",
                message=f"router_pipeline_cycles={config.router_pipeline_cycles} < 1",
                witness=(config.router_pipeline_cycles,),
            )
        )
    return violations


#: Cap on reported per-pair violations so a catastrophically broken table
#: (every pair unreachable) still yields a readable report.
_MAX_PAIR_VIOLATIONS = 16


def verify_network(network: Network) -> VerificationReport:
    """Statically verify one network's compiled routing tables.

    Checks escape-layer CDG acyclicity, full reachability of both layers,
    hop-count minimality of the minimal layer, and configuration sanity.
    """
    report = VerificationReport(
        topology_name=network.topology.name,
        num_nodes=network.num_nodes,
        num_channels=len(network.channels),
    )
    report.violations.extend(_config_violations(network.config))

    # --- channel-dependency graphs --------------------------------------
    escape_cdg = channel_dependency_graph(network, "escape")
    minimal_cdg = channel_dependency_graph(network, "minimal")
    report.escape_cdg_edges = sum(len(edges) for edges in escape_cdg.values())
    report.minimal_cdg_edges = sum(len(edges) for edges in minimal_cdg.values())
    report.minimal_cdg_cyclic = find_cycle(minimal_cdg) is not None

    cycle = find_cycle(escape_cdg)
    if cycle is not None:
        witness = _cycle_witness(network, cycle)
        rendered = " -> ".join(f"({u}->{v})" for u, v in witness)
        report.violations.append(
            Violation(
                rule="escape-cdg-cycle",
                layer="escape",
                message=(
                    "escape-layer channel-dependency graph has a cycle "
                    f"(deadlock possible): {rendered} -> "
                    f"({witness[0][0]}->{witness[0][1]})"
                ),
                witness=witness,
            )
        )

    # --- reachability of both layers ------------------------------------
    walks: dict[str, list[list[int]]] = {}
    for layer in LAYERS:
        hops, failures = _walk_layer(network, layer)
        walks[layer] = hops
        for source, dst, path in failures[:_MAX_PAIR_VIOLATIONS]:
            report.violations.append(
                Violation(
                    rule="unreachable",
                    layer=layer,
                    message=(
                        f"{layer} table never delivers {source} -> {dst}; "
                        f"walk visits {path}"
                    ),
                    witness=(source, dst, tuple(path)),
                )
            )
        if len(failures) > _MAX_PAIR_VIOLATIONS:
            report.violations.append(
                Violation(
                    rule="unreachable",
                    layer=layer,
                    message=(
                        f"... and {len(failures) - _MAX_PAIR_VIOLATIONS} more "
                        f"unreachable (source, destination) pairs on the "
                        f"{layer} layer"
                    ),
                    witness=(len(failures),),
                )
            )

    # --- hop minimality of the minimal layer ----------------------------
    distances = _bfs_distances(network.topology)
    minimal_hops = walks["minimal"]
    reported = 0
    for dst in range(network.num_nodes):
        for source in range(network.num_nodes):
            taken = minimal_hops[dst][source]
            shortest = distances[source][dst]
            if taken < 0 or taken == shortest:
                continue  # unreachable pairs are already reported above
            reported += 1
            if reported > _MAX_PAIR_VIOLATIONS:
                continue
            report.violations.append(
                Violation(
                    rule="non-minimal",
                    layer="minimal",
                    message=(
                        f"minimal table routes {source} -> {dst} in {taken} "
                        f"hops but the graph distance is {shortest}"
                    ),
                    witness=(source, dst, taken, shortest),
                )
            )
    if reported > _MAX_PAIR_VIOLATIONS:
        report.violations.append(
            Violation(
                rule="non-minimal",
                layer="minimal",
                message=(
                    f"... and {reported - _MAX_PAIR_VIOLATIONS} more "
                    "non-minimal pairs"
                ),
                witness=(reported,),
            )
        )
    return report


def verify_topology(
    topology: Topology,
    config: NetworkConfig | None = None,
    routing: RoutingTables | None = None,
) -> VerificationReport:
    """Build a network for ``topology`` and statically verify it.

    Convenience wrapper around :func:`verify_network`; link latencies do not
    affect any verified property, so none are needed.
    """
    network = build_network(topology, config=config, routing=routing)
    return verify_network(network)


def verify_topologies(
    items: Iterable[tuple[str, Topology]],
    config: NetworkConfig | None = None,
) -> dict[str, VerificationReport]:
    """Verify several named topologies; returns ``name -> report``."""
    return {name: verify_topology(topology, config=config) for name, topology in items}


__all__ = [
    "LAYERS",
    "VerificationReport",
    "Violation",
    "channel_dependency_graph",
    "find_cycle",
    "verify_network",
    "verify_topologies",
    "verify_topology",
]
