"""Determinism and consistency lint over the repo's own source tree.

The simulator's reproducibility contract — same inputs, bit-identical
statistics — only holds if nothing in the stack consumes hidden global
state.  This module enforces that contract statically, plus the registry
naming conventions the dynamic registries rely on:

``unseeded-global-rng``
    No calls to the *global-state* RNG APIs anywhere under ``src/repro``:
    the stdlib ``random`` module functions (``random.random()``,
    ``random.shuffle()``, ...) and the legacy ``numpy.random`` module
    functions (``np.random.rand()``, ``np.random.seed()``, ...).  All
    randomness must flow through explicitly seeded
    :class:`numpy.random.Generator` objects (see ``repro.utils.rng``).
``unseeded-default-rng``
    ``numpy.random.default_rng()`` without a seed argument is OS-entropy
    seeded and therefore irreproducible.  Only ``repro/utils/rng.py`` may
    call it unseeded (its ``make_rng(seed=None)`` escape hatch is the one
    sanctioned source of fresh entropy).
``wall-clock-in-simulator``
    No time reads (``time.time()``, ``time.perf_counter()``,
    ``datetime.now()``, ...) inside ``src/repro/simulator/``: simulated
    time must be a pure function of the inputs.  Wall-clock reads outside
    the simulator (progress reporting, benchmark harnesses) are fine.
``registry-name-mismatch``
    Every registry entry is name-consistent with what it builds: engine
    classes carry ``name`` equal to their :data:`ENGINE_FACTORIES` key,
    traffic patterns carry ``name`` equal to their
    :data:`TRAFFIC_FACTORIES` key, workload factories are the
    ``generate_<key>`` function for their :data:`WORKLOAD_FACTORIES` key,
    and every topology key has a display name and instantiates to a
    topology named exactly :data:`DISPLAY_NAMES[key]`.

The call rules are AST-based with import-alias resolution, so
``import numpy as np`` / ``from numpy import random as npr`` spellings are
all caught; annotations and attribute mentions that are not calls are not
flagged.  Entry points: ``repro lint`` and ``tools/lint_repro.py``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

#: Global-state functions of the stdlib ``random`` module.
_STDLIB_RANDOM_GLOBALS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Legacy global-state functions of the ``numpy.random`` module.
_NUMPY_RANDOM_GLOBALS = frozenset(
    {
        "beta",
        "binomial",
        "choice",
        "exponential",
        "gamma",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "seed",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)

#: Time-reading callables forbidden inside the simulator package.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.clock",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Files allowed to call ``numpy.random.default_rng()`` without a seed
#: (POSIX-style path suffixes).
_UNSEEDED_RNG_ALLOWLIST = ("repro/utils/rng.py",)


@dataclass(frozen=True)
class LintViolation:
    """One lint finding: ``rule`` violated at ``path:line``."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location}: [{self.rule}] {self.message}"


class _CallScanner(ast.NodeVisitor):
    """Collect fully-resolved dotted names of every call in a module.

    Import aliases are resolved module-wide first (``import numpy as np``
    maps ``np`` back to ``numpy``; ``from numpy.random import default_rng``
    maps ``default_rng`` back to ``numpy.random.default_rng``), then every
    ``Call`` whose callee is a name/attribute chain is reported with its
    canonical dotted name.
    """

    def __init__(self) -> None:
        self._aliases: dict[str, str] = {}
        #: ``(canonical_name, line, has_args)`` per call.
        self.calls: list[tuple[str, int, bool]] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self._aliases[alias.asname] = alias.name
            else:
                # ``import numpy.random`` binds the *top-level* name.
                top = alias.name.split(".", 1)[0]
                self._aliases.setdefault(top, top)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                bound = alias.asname or alias.name
                self._aliases[bound] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted_name(node.func)
        if dotted is not None:
            base, _, rest = dotted.partition(".")
            canonical = self._aliases.get(base, base) + (f".{rest}" if rest else "")
            has_args = bool(node.args or node.keywords)
            self.calls.append((canonical, node.lineno, has_args))
        self.generic_visit(node)

    @staticmethod
    def _dotted_name(func: ast.expr) -> str | None:
        parts: list[str] = []
        while isinstance(func, ast.Attribute):
            parts.append(func.attr)
            func = func.value
        if not isinstance(func, ast.Name):
            return None
        parts.append(func.id)
        return ".".join(reversed(parts))


def _relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(path: Path, root: Path, in_simulator: bool) -> list[LintViolation]:
    """Run the AST call rules over one Python source file."""
    rel = _relative(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintViolation(
                rel, exc.lineno or 0, "syntax-error", f"file does not parse: {exc.msg}"
            )
        ]
    scanner = _CallScanner()
    scanner.visit(tree)

    allow_unseeded = path.as_posix().endswith(_UNSEEDED_RNG_ALLOWLIST)
    violations: list[LintViolation] = []
    for name, line, has_args in scanner.calls:
        module, _, attr = name.rpartition(".")
        if module == "random" and attr in _STDLIB_RANDOM_GLOBALS:
            violations.append(
                LintViolation(
                    rel,
                    line,
                    "unseeded-global-rng",
                    f"call to stdlib global-state RNG `{name}()`; use a "
                    "seeded numpy Generator (repro.utils.rng.make_rng)",
                )
            )
        elif module == "numpy.random" and attr in _NUMPY_RANDOM_GLOBALS:
            violations.append(
                LintViolation(
                    rel,
                    line,
                    "unseeded-global-rng",
                    f"call to legacy numpy global-state RNG `{name}()`; use "
                    "a seeded numpy Generator (repro.utils.rng.make_rng)",
                )
            )
        elif name == "numpy.random.default_rng" and not has_args and not allow_unseeded:
            violations.append(
                LintViolation(
                    rel,
                    line,
                    "unseeded-default-rng",
                    "`default_rng()` without a seed is OS-entropy seeded; "
                    "pass a seed or use repro.utils.rng.make_rng",
                )
            )
        elif in_simulator and name in _WALL_CLOCK_CALLS:
            violations.append(
                LintViolation(
                    rel,
                    line,
                    "wall-clock-in-simulator",
                    f"`{name}()` inside the simulator: simulated time must "
                    "be a pure function of the inputs",
                )
            )
    return violations


def lint_tree(root: Path | str | None = None) -> list[LintViolation]:
    """Run the AST call rules over every ``*.py`` file under ``root``.

    ``root`` defaults to the ``src/repro`` package directory this module was
    imported from, so the lint works from any working directory.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent
    root = Path(root)
    simulator_dir = root / "simulator" if root.name == "repro" else root / "src" / "repro" / "simulator"
    violations: list[LintViolation] = []
    for path in sorted(root.rglob("*.py")):
        in_simulator = simulator_dir in path.parents or path.parent == simulator_dir
        violations.extend(lint_file(path, root, in_simulator))
    return violations


def lint_registries() -> list[LintViolation]:
    """Check name-consistency of every dynamic registry.

    These checks are necessarily runtime imports, not AST: the invariant is
    about the objects the registries produce, and several registrations are
    lazy factory functions.
    """
    from repro.simulator.engine import ENGINE_FACTORIES
    from repro.simulator.traffic import TRAFFIC_FACTORIES
    from repro.topologies.registry import (
        DISPLAY_NAMES,
        TOPOLOGY_FACTORIES,
        is_applicable,
        make_topology,
    )
    from repro.workloads.generators import WORKLOAD_FACTORIES

    violations: list[LintViolation] = []

    for key, engine_cls in ENGINE_FACTORIES.items():
        if engine_cls.name != key:
            violations.append(
                LintViolation(
                    "simulator/engine/__init__.py",
                    0,
                    "registry-name-mismatch",
                    f"ENGINE_FACTORIES[{key!r}] is {engine_cls.__name__} "
                    f"whose name is {engine_cls.name!r}",
                )
            )

    for key, factory in TRAFFIC_FACTORIES.items():
        pattern = factory(16, 4, 4)
        if pattern.name != key:
            violations.append(
                LintViolation(
                    "simulator/traffic.py",
                    0,
                    "registry-name-mismatch",
                    f"TRAFFIC_FACTORIES[{key!r}] builds "
                    f"{type(pattern).__name__} whose name is {pattern.name!r}",
                )
            )

    for key, factory in WORKLOAD_FACTORIES.items():
        expected = f"generate_{key}"
        if getattr(factory, "__name__", "") != expected:
            violations.append(
                LintViolation(
                    "workloads/generators.py",
                    0,
                    "registry-name-mismatch",
                    f"WORKLOAD_FACTORIES[{key!r}] is "
                    f"{getattr(factory, '__name__', factory)!r}, expected "
                    f"{expected!r}",
                )
            )

    for key in TOPOLOGY_FACTORIES:
        if key not in DISPLAY_NAMES:
            violations.append(
                LintViolation(
                    "topologies/registry.py",
                    0,
                    "registry-name-mismatch",
                    f"topology {key!r} has no DISPLAY_NAMES entry",
                )
            )
            continue
        grid = next(
            (
                (rows, cols)
                for rows, cols in ((4, 4), (3, 6), (2, 2), (3, 3))
                if is_applicable(key, rows, cols)
            ),
            None,
        )
        if grid is None:
            violations.append(
                LintViolation(
                    "topologies/registry.py",
                    0,
                    "registry-name-mismatch",
                    f"topology {key!r} is applicable to none of the lint's "
                    "probe grids",
                )
            )
            continue
        topology = make_topology(key, *grid)
        if topology.name != DISPLAY_NAMES[key]:
            violations.append(
                LintViolation(
                    "topologies/registry.py",
                    0,
                    "registry-name-mismatch",
                    f"topology {key!r} instantiates with name "
                    f"{topology.name!r}, but DISPLAY_NAMES says "
                    f"{DISPLAY_NAMES[key]!r}",
                )
            )
    for key in DISPLAY_NAMES:
        if key not in TOPOLOGY_FACTORIES:
            violations.append(
                LintViolation(
                    "topologies/registry.py",
                    0,
                    "registry-name-mismatch",
                    f"DISPLAY_NAMES entry {key!r} has no topology factory",
                )
            )
    return violations


def run_lint(root: Path | str | None = None) -> list[LintViolation]:
    """Run every lint rule (AST pass + registry checks)."""
    return lint_tree(root) + lint_registries()


__all__ = [
    "LintViolation",
    "lint_file",
    "lint_registries",
    "lint_tree",
    "run_lint",
]
