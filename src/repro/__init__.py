"""Reproduction of "Sparse Hamming Graph: A Customizable Network-on-Chip Topology".

The library is organised as:

* :mod:`repro.core` — the sparse Hamming graph topology, the design-principle
  scoring and the customization strategy (the paper's contributions);
* :mod:`repro.topologies` — the established baseline topologies and graph
  analysis;
* :mod:`repro.physical` — the area/power/link-latency model (approximate
  floorplanning and link routing);
* :mod:`repro.simulator` — the cycle-accurate VC-router simulator (BookSim2
  substitute) with pluggable, bit-identical engines (object-graph
  ``reference`` vs struct-of-arrays ``soa``) and the traffic-pattern
  registry;
* :mod:`repro.workloads` — trace-driven application workloads: the
  replayable trace format, the workload-generator registry (DNN inference,
  MPI collectives, stencil, ON/OFF), and trace replay with per-phase
  statistics;
* :mod:`repro.toolchain` — the end-to-end prediction toolchain;
* :mod:`repro.arch` — the KNC-like evaluation scenarios and the MemPool
  validation target;
* :mod:`repro.analysis` — Table I compliance, Pareto analysis, design-space
  sweeps;
* :mod:`repro.experiments` — the declarative experiment API: serializable
  :class:`ExperimentSpec`, :class:`Campaign` grids, the memoizing (optionally
  process-parallel) :class:`ExperimentRunner`, and the ``repro`` CLI;
* :mod:`repro.optimize` — the workload-driven topology search:
  :class:`SearchSpec` (objective + constraints + search space) and
  :func:`run_search` (analytical screening, then successive-halving
  cycle-accurate evaluation);
* :mod:`repro.viz` — text rendering of topologies and floorplans.
"""

from repro.core import (
    CustomizationGoal,
    CustomizationResult,
    SparseHammingGraph,
    customize_sparse_hamming,
)
from repro.experiments import (
    Campaign,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    ResultSet,
    figure6_campaign,
    run_campaign,
)
from repro.optimize import SearchResult, SearchSpec, run_search
from repro.physical import ArchitecturalParameters, NoCPhysicalModel
from repro.simulator import SimulationConfig, Simulator, available_engines
from repro.toolchain import PredictionResult, PredictionToolchain, predict
from repro.topologies import Topology, make_topology
from repro.workloads import WorkloadTrace, make_workload_trace, replay_trace

#: Single source of the package version: ``setup.py`` parses this assignment
#: and the CLI's ``repro --version`` prints it.
__version__ = "1.3.0"

__all__ = [
    "SparseHammingGraph",
    "CustomizationGoal",
    "CustomizationResult",
    "customize_sparse_hamming",
    "ArchitecturalParameters",
    "NoCPhysicalModel",
    "SimulationConfig",
    "Simulator",
    "available_engines",
    "PredictionToolchain",
    "PredictionResult",
    "predict",
    "Topology",
    "make_topology",
    "ExperimentSpec",
    "Campaign",
    "figure6_campaign",
    "ExperimentRunner",
    "ExperimentResult",
    "ResultSet",
    "run_campaign",
    "SearchSpec",
    "SearchResult",
    "run_search",
    "WorkloadTrace",
    "make_workload_trace",
    "replay_trace",
    "__version__",
]
