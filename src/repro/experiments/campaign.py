"""Campaigns: named collections of experiment specs with grid expansion.

A :class:`Campaign` is an ordered list of :class:`ExperimentSpec` with a name.
:meth:`Campaign.grid` expands a cartesian product of topologies x grid sizes x
traffic patterns x performance modes x scenarios into specs, automatically
skipping combinations the topology registry declares inapplicable (hypercube
on non-power-of-two grids, SlimNoC off its ``R*C = 2*q^2`` sizes) — exactly
the filtering the paper's Figure 6 evaluation applies.

Campaigns serialize to JSON in two forms: an explicit ``{"specs": [...]}``
list, or a declarative ``{"grid": {...}}`` block that is re-expanded on load,
so a whole design-space study fits in a few lines of checked-in JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.arch.knc import KNC_SCENARIOS
from repro.experiments.spec import ExperimentSpec
from repro.topologies.registry import PAPER_COMPARISON_ORDER, is_applicable
from repro.utils.validation import ValidationError


@dataclass
class Campaign:
    """A named, ordered batch of experiment specs.

    Parameters
    ----------
    specs:
        The :class:`~repro.experiments.spec.ExperimentSpec` entries, in
        execution order.
    name:
        Free-form campaign name used in reports and the CLI.

    Examples
    --------
    Expand a cartesian grid — inapplicable topology/size combinations
    (hypercube on non-power-of-two grids, SlimNoC off its supported sizes)
    are skipped automatically:

    >>> from repro.experiments import Campaign
    >>> campaign = Campaign.grid(
    ...     topologies=("mesh", "torus", "hypercube"),
    ...     sizes=((8, 8), (8, 12)),
    ...     traffics=("uniform", "tornado"),
    ...     scenarios=("a",),
    ... )
    >>> len(campaign)       # hypercube is skipped on the 8x12 grid
    10

    Campaigns round-trip through JSON (explicit spec list or declarative
    grid) so whole studies live in version control:

    >>> path = campaign.save("study.json")          # doctest: +SKIP
    >>> Campaign.load("study.json").name            # doctest: +SKIP
    'grid'
    """

    specs: list[ExperimentSpec] = field(default_factory=list)
    name: str = "campaign"

    def __post_init__(self) -> None:
        self.specs = list(self.specs)
        for spec in self.specs:
            if not isinstance(spec, ExperimentSpec):
                raise ValidationError(f"campaign entries must be ExperimentSpec, got {spec!r}")

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __getitem__(self, index: int) -> ExperimentSpec:
        return self.specs[index]

    def add(self, spec: ExperimentSpec) -> "Campaign":
        """Append a spec (returns self for chaining)."""
        if not isinstance(spec, ExperimentSpec):
            raise ValidationError(f"campaign entries must be ExperimentSpec, got {spec!r}")
        self.specs.append(spec)
        return self

    def extend(self, specs: Iterable[ExperimentSpec]) -> "Campaign":
        """Append several specs (returns self for chaining)."""
        for spec in specs:
            self.add(spec)
        return self

    def deduplicated(self) -> "Campaign":
        """Copy with duplicate specs (same ``spec_id``) removed, order kept."""
        seen: set[str] = set()
        unique = []
        for spec in self.specs:
            if spec.spec_id not in seen:
                seen.add(spec.spec_id)
                unique.append(spec)
        return Campaign(specs=unique, name=self.name)

    # ------------------------------------------------------------ expansion
    @classmethod
    def grid(
        cls,
        topologies: Sequence[str] | None = None,
        sizes: Sequence[tuple[int, int]] | None = None,
        traffics: Sequence[str] = ("uniform",),
        performance_modes: Sequence[str] = ("analytical",),
        scenarios: Sequence[str | None] = (None,),
        workloads: Sequence[str | Mapping[str, Any] | None] = (None,),
        topology_kwargs: Mapping[str, Mapping[str, Any]] | None = None,
        arch: Mapping[str, Any] | None = None,
        sim: Mapping[str, Any] | None = None,
        name: str = "grid",
        skip_inapplicable: bool = True,
    ) -> "Campaign":
        """Expand a cartesian grid of experiment specs.

        Parameters
        ----------
        topologies:
            Topology registry names; defaults to the paper's Figure 6
            comparison order.
        sizes:
            ``(rows, cols)`` grid sizes.  When omitted, each scenario supplies
            its own grid (and at least one scenario must be given).
        traffics, performance_modes, scenarios:
            Further grid axes; ``scenarios`` entries may be ``None`` for a
            scenario-less architecture built from ``arch`` overrides.
        workloads:
            Trace-driven workload axis.  Each entry is ``None`` (synthetic
            traffic, expanded over ``traffics`` x ``performance_modes`` as
            usual), a workload registry name, or a full ``{"name": ...,
            "seed": ..., "params": {...}}`` mapping.  Workload entries
            always run in cycle-accurate simulation mode (traces cannot be
            evaluated analytically), one spec per topology/size/scenario.
        topology_kwargs:
            Per-topology generator kwargs, keyed by topology name.
        arch, sim:
            Shared ArchitecturalParameters / SimulationConfig overrides.
        skip_inapplicable:
            Skip topology/size combinations the registry rejects (default);
            when ``False`` such combinations raise ``ValidationError``.
        """
        topologies = tuple(topologies) if topologies is not None else PAPER_COMPARISON_ORDER
        per_topology = dict(topology_kwargs or {})
        normalised_workloads: list[Mapping[str, Any] | None] = []
        for workload in workloads:
            if workload is None or isinstance(workload, Mapping):
                normalised_workloads.append(workload)
            elif isinstance(workload, str):
                normalised_workloads.append({"name": workload})
            else:
                raise ValidationError(
                    f"workloads entries must be None, a name, or a mapping, "
                    f"got {workload!r}"
                )
        specs: list[ExperimentSpec] = []
        for scenario in scenarios:
            if scenario is not None and scenario not in KNC_SCENARIOS:
                raise ValidationError(
                    f"unknown scenario {scenario!r}; known: {sorted(KNC_SCENARIOS)}"
                )
            if sizes is None:
                if scenario is None:
                    raise ValidationError(
                        "grid expansion needs explicit sizes or a scenario supplying them"
                    )
                target = KNC_SCENARIOS[scenario]
                scenario_sizes: Sequence[tuple[int, int]] = ((target.rows, target.cols),)
            else:
                scenario_sizes = sizes
            for rows, cols in scenario_sizes:
                for topology in topologies:
                    if not is_applicable(topology, rows, cols):
                        if skip_inapplicable:
                            continue
                        raise ValidationError(
                            f"topology {topology!r} is not applicable to a "
                            f"{rows}x{cols} grid"
                        )
                    base_kwargs = dict(
                        topology=topology,
                        rows=rows,
                        cols=cols,
                        topology_kwargs=per_topology.get(topology, {}),
                        scenario=scenario,
                        arch=arch or {},
                        sim=sim or {},
                    )
                    for workload in normalised_workloads:
                        if workload is not None:
                            # Trace replays are cycle-accurate only and carry
                            # their own traffic, so the traffic and mode axes
                            # do not multiply them.
                            specs.append(
                                ExperimentSpec(
                                    **base_kwargs,
                                    performance_mode="simulation",
                                    workload=workload,
                                )
                            )
                            continue
                        for traffic in traffics:
                            for mode in performance_modes:
                                specs.append(
                                    ExperimentSpec(
                                        **base_kwargs,
                                        traffic=traffic,
                                        performance_mode=mode,
                                    )
                                )
        return cls(specs=specs, name=name)

    # --------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form: name plus the explicit spec list."""
        return {"name": self.name, "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Campaign":
        """Rebuild a campaign from ``{"specs": [...]}`` or ``{"grid": {...}}``."""
        if "grid" in data:
            grid = dict(data["grid"])
            sizes = grid.get("sizes")
            if sizes is not None:
                grid["sizes"] = [tuple(size) for size in sizes]
            if "name" not in grid and "name" in data:
                grid["name"] = data["name"]
            return cls.grid(**grid)
        if "specs" not in data:
            raise ValidationError("campaign JSON needs a 'specs' list or a 'grid' block")
        specs = [ExperimentSpec.from_dict(entry) for entry in data["specs"]]
        return cls(specs=specs, name=data.get("name", "campaign"))

    def save(self, path: str | Path) -> Path:
        """Write the campaign to a JSON file; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Campaign":
        """Read a campaign from a JSON file (explicit or grid form)."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def figure6_campaign(
    scenario_key: str,
    performance_mode: str = "analytical",
    sim: Mapping[str, Any] | None = None,
    traffic: str = "uniform",
) -> Campaign:
    """The campaign behind one Figure 6 panel: every applicable topology of a
    KNC scenario, with the paper's sparse-Hamming-graph configuration.

    Parameters
    ----------
    scenario_key:
        KNC scenario (``"a"`` .. ``"d"``, Table II).
    performance_mode:
        ``"analytical"`` (fast, default) or ``"simulation"``
        (cycle-accurate, the paper's BookSim2 setup).
    sim:
        :class:`~repro.simulator.simulation.SimulationConfig` overrides
        shared by every spec (e.g. shortened phases for CI).
    traffic:
        Traffic pattern name (the paper evaluates ``"uniform"``).

    Returns
    -------
    Campaign
        One spec per topology applicable to the scenario's grid, in the
        paper's comparison order.

    Examples
    --------
    >>> from repro.experiments import figure6_campaign, run_campaign
    >>> campaign = figure6_campaign("a")
    >>> campaign.name
    'figure6a'
    >>> results = run_campaign(campaign)           # doctest: +SKIP
    >>> results.best_within_area_budget(0.40).topology_name  # doctest: +SKIP
    'Sparse Hamming Graph'
    """
    if scenario_key not in KNC_SCENARIOS:
        raise ValidationError(
            f"unknown scenario {scenario_key!r}; known: {sorted(KNC_SCENARIOS)}"
        )
    scenario = KNC_SCENARIOS[scenario_key]
    return Campaign.grid(
        topologies=PAPER_COMPARISON_ORDER,
        sizes=((scenario.rows, scenario.cols),),
        traffics=(traffic,),
        performance_modes=(performance_mode,),
        scenarios=(scenario_key,),
        topology_kwargs={
            "sparse_hamming": {
                "s_r": sorted(scenario.paper_s_r),
                "s_c": sorted(scenario.paper_s_c),
            }
        },
        sim=sim,
        name=f"figure6{scenario_key}",
    )


__all__ = ["Campaign", "figure6_campaign"]
