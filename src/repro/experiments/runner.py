"""Campaign execution: serial or process-parallel, with on-disk memoization.

:class:`ExperimentRunner` turns campaigns into :class:`ResultSet` objects.
Results are memoized on disk keyed by :attr:`ExperimentSpec.spec_id` (a
content hash of the spec), so re-running an identical campaign — the Figure 6
reproduction, a design-space sweep — is instant.  The serial path shares
prediction toolchains across specs that differ only in traffic pattern, which
lets the toolchain's per-topology routing-table cache skip redundant BFS work;
the parallel path fans specs out over a :class:`ProcessPoolExecutor`.

Cache entries and parallel-worker payloads round-trip through JSON (see
:mod:`repro.experiments.serialization`): the scalar prediction metrics and
the analytical performance details survive, while heavyweight intermediate
artifacts (the physical-model result, cycle-accurate sweep statistics) are
dropped.  When those artifacts are needed, run serially without a cache
directory — the serial uncached path returns the live
:class:`PredictionResult` objects untouched.

Memoization is pluggable (see :mod:`repro.experiments.cache`): ``cache_dir``
selects the classic one-file-per-spec :class:`DirectoryCache`, while
``store`` selects the durable content-addressed SQLite result store of
:mod:`repro.service` — the backend the campaign queue workers and the
``repro serve`` API share, so campaigns/optimize runs gain durability with
zero caller changes.
"""

from __future__ import annotations

import csv
import json
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence, TextIO

from repro.analysis.pareto import (
    ParetoPoint,
    best_within_area_budget,
    latency_rank,
    pareto_front,
)
from repro.experiments.cache import CacheBackend, DirectoryCache
from repro.experiments.campaign import Campaign
from repro.experiments.serialization import prediction_from_dict, prediction_to_dict
from repro.experiments.spec import ExperimentSpec, toolchain_key, topology_key
from repro.experiments.scheduler import plan_gangs, run_gang_detailed
from repro.toolchain.results import PredictionResult
from repro.utils.validation import ValidationError


def _predict_payload(spec_dict: dict[str, Any]) -> dict[str, Any]:
    """Process-pool worker: run one spec, return the serialized prediction."""
    spec = ExperimentSpec.from_dict(spec_dict)
    return prediction_to_dict(spec.run())


def _gang_payload(spec_dicts: list[dict[str, Any]]) -> dict[str, Any]:
    """Process-pool worker: run one gang of specs fused (or one spec solo).

    The pool fans out *across* gangs — each worker process runs one fused
    kernel — so a campaign spanning several compiled networks gangs each
    one while still using every core.
    """
    specs = [ExperimentSpec.from_dict(spec_dict) for spec_dict in spec_dicts]
    if len(specs) == 1:
        return {"results": [prediction_to_dict(specs[0].run())], "lanes": None}
    predictions, lanes = run_gang_detailed(specs)
    return {
        "results": [prediction_to_dict(prediction) for prediction in predictions],
        "lanes": lanes,
    }


class _ProgressReporter:
    """One stderr line per completed spec (or fused gang), with a crude ETA.

    Long campaigns (and the optimizer's simulation rungs) are otherwise
    silent for minutes; the runner calls :meth:`completed` after every
    *computed* spec and :meth:`group_completed` after every fused gang.
    Cache-hit specs are excluded from ``total`` up front (and reported once
    at construction), so the ETA extrapolates the mean time per *computed*
    spec over the specs actually left to compute — coarse, but honest about
    the remaining workload size, and not skewed toward zero by instant
    cache hits.
    """

    def __init__(self, total: int, num_cached: int = 0, stream: TextIO | None = None) -> None:
        self.total = total
        self.done = 0
        self.stream = stream if stream is not None else sys.stderr
        self._start = time.monotonic()
        if num_cached:
            tail = f"{total} to compute" if total else "nothing to compute"
            print(
                f"[repro] {num_cached} result(s) served from cache, {tail}",
                file=self.stream,
                flush=True,
            )

    def completed(self, spec: ExperimentSpec) -> None:
        """Report one computed spec."""
        self.done += 1
        print(
            f"[repro] {self.done}/{self.total} ({self._timing()}) {spec.describe()}",
            file=self.stream,
            flush=True,
        )

    def group_completed(
        self, specs: Sequence[ExperimentSpec], lanes: int | None = None
    ) -> None:
        """Report one fused gang: ``len(specs)`` specs finished at once."""
        self.done += len(specs)
        lane_note = f", {lanes} lanes" if lanes else ""
        print(
            f"[repro] {self.done}/{self.total} ({self._timing()}) "
            f"gang of {len(specs)} specs{lane_note}: {specs[0].describe()}",
            file=self.stream,
            flush=True,
        )

    def _timing(self) -> str:
        elapsed = time.monotonic() - self._start
        remaining = (elapsed / self.done) * (self.total - self.done)
        return f"{elapsed:.1f}s elapsed, ~{remaining:.1f}s left"


@dataclass(frozen=True)
class ExperimentResult:
    """One executed spec: the spec, its prediction, and cache provenance.

    Attributes
    ----------
    spec:
        The :class:`~repro.experiments.spec.ExperimentSpec` that was run.
    prediction:
        The resulting :class:`~repro.toolchain.results.PredictionResult`.
    cached:
        ``True`` when the prediction was served from the runner's on-disk
        cache instead of being computed.

    Examples
    --------
    >>> result = ExperimentRunner().run(spec)[0]        # doctest: +SKIP
    >>> result.cached                                   # doctest: +SKIP
    False
    >>> result.prediction.area_overhead < 0.40          # doctest: +SKIP
    True
    """

    spec: ExperimentSpec
    prediction: PredictionResult
    cached: bool = False


class ResultSet:
    """Ordered collection of experiment results with tabular export and
    Pareto/compliance helpers wrapping :mod:`repro.analysis`.

    Parameters
    ----------
    results:
        :class:`ExperimentResult` entries, in campaign order.

    Examples
    --------
    Run a campaign and export/analyse the results:

    >>> from repro.experiments import Campaign, ExperimentRunner
    >>> campaign = Campaign.grid(
    ...     topologies=("mesh", "torus", "sparse_hamming"),
    ...     sizes=((8, 8),), scenarios=("a",),
    ...     topology_kwargs={"sparse_hamming": {"s_r": [4], "s_c": [2, 5]}},
    ... )
    >>> results = ExperimentRunner().run(campaign)      # doctest: +SKIP
    >>> len(results)                                    # doctest: +SKIP
    3
    >>> results.to_csv("results.csv")                   # doctest: +SKIP
    PosixPath('results.csv')
    >>> results.best_within_area_budget(0.40).topology_name  # doctest: +SKIP
    'Sparse Hamming Graph'
    >>> [point.name for point in results.pareto_front()]     # doctest: +SKIP
    ['Sparse Hamming Graph', ...]
    """

    def __init__(self, results: Iterable[ExperimentResult]) -> None:
        self.results = list(results)

    @classmethod
    def from_store(cls, store: Any, **filters: Any) -> "ResultSet":
        """Build a ResultSet from a service result-store query (no execution).

        Parameters
        ----------
        store:
            A :class:`~repro.service.store.ResultStore` or the path to its
            SQLite file.
        **filters:
            Query filters forwarded to
            :meth:`~repro.service.store.ResultStore.query` — ``topology``,
            ``trace_id``, ``search_id``, ``scenario``, ``workload``,
            ``spec_id``, ``limit``.

        Returns
        -------
        ResultSet
            One entry per matching store row (every entry ``cached=True``),
            ready for the usual export/Pareto/compliance helpers.

        Examples
        --------
        >>> results = ResultSet.from_store("results.sqlite",
        ...                                topology="mesh")  # doctest: +SKIP
        >>> results.to_csv("mesh.csv")                       # doctest: +SKIP
        """
        from repro.service.store import ResultStore

        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        return store.result_set(**filters)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> ExperimentResult:
        return self.results[index]

    @property
    def predictions(self) -> list[PredictionResult]:
        """The predictions in campaign order."""
        return [result.prediction for result in self.results]

    @property
    def num_cached(self) -> int:
        """How many results were served from the on-disk cache."""
        return sum(1 for result in self.results if result.cached)

    def get(self, spec_id: str) -> ExperimentResult:
        """Result of the spec with the given ``spec_id``."""
        for result in self.results:
            if result.spec.spec_id == spec_id:
                return result
        raise KeyError(spec_id)

    def filter(self, predicate: Callable[[ExperimentResult], bool]) -> "ResultSet":
        """Subset of results satisfying ``predicate`` (as a new ResultSet)."""
        return ResultSet(result for result in self.results if predicate(result))

    def as_mapping(self) -> dict[str, PredictionResult]:
        """``{topology registry name: prediction}`` (last spec wins on clashes)."""
        return {result.spec.topology: result.prediction for result in self.results}

    # --------------------------------------------------------------- export
    def to_records(self) -> list[dict[str, Any]]:
        """Flat tabular rows: spec identity columns + the four Figure 6 metrics."""
        records = []
        for result in self.results:
            spec, prediction = result.spec, result.prediction
            records.append(
                {
                    "spec_id": spec.spec_id,
                    "topology": spec.topology,
                    "rows": spec.rows,
                    "cols": spec.cols,
                    "scenario": spec.scenario or "",
                    "traffic": spec.traffic,
                    "workload": spec.workload["name"] if spec.workload else "",
                    "performance_mode": spec.performance_mode,
                    "label": spec.label,
                    "cached": result.cached,
                    "area_overhead": prediction.area_overhead,
                    "total_area_mm2": prediction.total_area_mm2,
                    "noc_power_w": prediction.noc_power_w,
                    "zero_load_latency_cycles": prediction.zero_load_latency_cycles,
                    "saturation_throughput": prediction.saturation_throughput,
                }
            )
        return records

    def to_csv(self, path: str | Path) -> Path:
        """Write :meth:`to_records` as CSV; returns the path."""
        path = Path(path)
        records = self.to_records()
        if not records:
            path.write_text("")
            return path
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(records[0].keys()))
            writer.writeheader()
            writer.writerows(records)
        return path

    def to_json(self, path: str | Path | None = None) -> str | Path:
        """Dump specs + predictions as JSON; to ``path`` if given, else return text."""
        payload = [
            {
                "spec": result.spec.to_dict(),
                "result": prediction_to_dict(result.prediction),
                "cached": result.cached,
            }
            for result in self.results
        ]
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if path is None:
            return text
        path = Path(path)
        path.write_text(text)
        return path

    # ------------------------------------------------------------- analysis
    def pareto_front(self) -> list[ParetoPoint]:
        """Non-dominated predictions in the four-metric comparison."""
        return pareto_front(ParetoPoint.from_prediction(p) for p in self.predictions)

    def best_within_area_budget(self, max_area_overhead: float = 0.40) -> PredictionResult | None:
        """Best prediction under the paper's design goal (see :mod:`repro.analysis`)."""
        return best_within_area_budget(self.predictions, max_area_overhead)

    def latency_rank(self, topology_name: str) -> int:
        """1-based zero-load-latency rank of ``topology_name`` in this set."""
        return latency_rank(self.predictions, topology_name)


class ExperimentRunner:
    """Executes specs and campaigns, memoizing results on disk by spec_id.

    Parameters
    ----------
    cache_dir:
        Directory for the JSON result cache (a validated, atomic-write
        :class:`~repro.experiments.cache.DirectoryCache`); ``None`` disables
        memoization unless ``store`` is given.
    max_workers:
        Default process count for parallel runs (``run(..., parallel=...)``
        overrides per call); ``None`` or 1 runs serially.
    store:
        Durable alternative to ``cache_dir``: a
        :class:`~repro.service.store.ResultStore` (or a path to its SQLite
        file) used as the memoization backend.  Mutually exclusive with
        ``cache_dir``.
    search_id:
        Optional search identity recorded on every result written to the
        ``store`` backend (``repro.optimize`` threads its
        :attr:`~repro.optimize.spec.SearchSpec.search_id` through here so
        store rows are queryable per search).

    Examples
    --------
    Memoized execution — the second run is served entirely from the cache:

    >>> from repro.experiments import ExperimentRunner, ExperimentSpec
    >>> spec = ExperimentSpec(topology="mesh", rows=4, cols=4, scenario="a")
    >>> runner = ExperimentRunner(cache_dir=".repro-cache")  # doctest: +SKIP
    >>> runner.run(spec).num_cached                          # doctest: +SKIP
    0
    >>> runner.run(spec).num_cached                          # doctest: +SKIP
    1

    Fan a campaign out over four worker processes:

    >>> results = runner.run(campaign, parallel=4)           # doctest: +SKIP

    Use the durable service store instead of a cache directory:

    >>> runner = ExperimentRunner(store="results.sqlite")    # doctest: +SKIP
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        max_workers: int | None = None,
        store: Any = None,
        search_id: str | None = None,
    ) -> None:
        if cache_dir is not None and store is not None:
            raise ValidationError(
                "pass either cache_dir (directory cache) or store "
                "(service result store), not both"
            )
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_workers = max_workers
        self.cache: CacheBackend | None = None
        if store is not None:
            # Imported lazily: repro.service depends on this module.
            from repro.service.store import ResultStore, StoreCache

            if not isinstance(store, ResultStore):
                store = ResultStore(store)
            self.cache = StoreCache(store, search_id=search_id)
        elif self.cache_dir is not None:
            self.cache = DirectoryCache(self.cache_dir)

    # ---------------------------------------------------------------- cache
    def cache_path(self, spec: ExperimentSpec) -> Path | None:
        """On-disk location of the memoized result for ``spec``.

        ``None`` when memoization is disabled or the backend is not a
        directory cache (the store keeps results in one SQLite file).
        """
        if isinstance(self.cache, DirectoryCache):
            return self.cache.path_for(spec)
        return None

    def _load_cached(self, spec: ExperimentSpec) -> PredictionResult | None:
        if self.cache is None:
            return None
        return self.cache.load(spec)

    def _store(self, spec: ExperimentSpec, prediction: PredictionResult) -> None:
        if self.cache is not None:
            self.cache.save(spec, prediction)

    # ------------------------------------------------------------ execution
    def run(
        self,
        experiments: Campaign | ExperimentSpec | Sequence[ExperimentSpec],
        parallel: int | None = None,
        progress: bool = False,
    ) -> ResultSet:
        """Execute a campaign (or spec, or list of specs) and return results.

        Memoized results are served from the cache; the remainder runs
        serially (default) or across ``parallel`` worker processes.  Result
        order always matches the input spec order.  Cached and
        parallel-computed predictions carry only the scalar metrics and
        analytical details (``physical`` is ``None``); the serial uncached
        path returns full :class:`PredictionResult` objects.

        Specs that explicitly select ``sim={"engine": "vec"}`` and share a
        compiled network (see :func:`~repro.experiments.scheduler.gang_key`)
        are *ganged*: their sweeps run fused in one lane-recycled batched
        kernel instead of one at a time, with bit-identical results and
        unchanged memoization keys/payloads.  In parallel mode the process
        pool fans out across gangs (plus the remaining solo specs).

        With ``progress=True`` one line per completed (non-cached) spec or
        fused gang is written to stderr with elapsed time and a
        remaining-time estimate — ``repro campaign``/``repro optimize``
        enable this when stderr is a terminal.
        """
        if isinstance(experiments, ExperimentSpec):
            specs = [experiments]
        elif isinstance(experiments, Campaign):
            specs = list(experiments.specs)
        else:
            specs = list(experiments)
            for spec in specs:
                if not isinstance(spec, ExperimentSpec):
                    raise ValidationError(f"runner expects ExperimentSpec, got {spec!r}")
        if parallel is None:
            parallel = self.max_workers

        slots: list[ExperimentResult | None] = [None] * len(specs)
        pending: list[tuple[int, ExperimentSpec]] = []
        computed: dict[str, PredictionResult] = {}
        for index, spec in enumerate(specs):
            cached = self._load_cached(spec)
            if cached is not None:
                slots[index] = ExperimentResult(spec=spec, prediction=cached, cached=True)
            else:
                pending.append((index, spec))

        # Deduplicate identical pending specs so each unique spec runs once.
        unique: dict[str, ExperimentSpec] = {}
        for _, spec in pending:
            unique.setdefault(spec.spec_id, spec)

        reporter = (
            _ProgressReporter(total=len(unique), num_cached=len(specs) - len(pending))
            if progress and specs
            else None
        )

        # Specs that opted into the vec engine and share a compiled network
        # fuse into gangs; everything else runs through the classic paths.
        gangs = plan_gangs(unique.values()) if len(unique) > 1 else []
        ganged_ids = {spec.spec_id for gang in gangs for spec in gang}

        if parallel is not None and parallel > 1 and len(unique) > 1:
            solo = [
                spec for spec in unique.values() if spec.spec_id not in ganged_ids
            ]
            units: list[list[ExperimentSpec]] = list(gangs)
            units.extend([spec] for spec in solo)
            with ProcessPoolExecutor(max_workers=parallel) as pool:
                payloads = pool.map(
                    _gang_payload,
                    [[spec.to_dict() for spec in unit] for unit in units],
                )
                # pool.map yields in submission order, so progress lines
                # appear as each next-in-order unit finishes.
                for unit, payload in zip(units, payloads):
                    for spec, result in zip(unit, payload["results"]):
                        computed[spec.spec_id] = prediction_from_dict(result)
                    if reporter is None:
                        continue
                    if len(unit) > 1:
                        reporter.group_completed(unit, payload["lanes"])
                    else:
                        reporter.completed(unit[0])
        else:
            for gang in gangs:
                predictions, lanes = run_gang_detailed(gang)
                for spec, prediction in zip(gang, predictions):
                    computed[spec.spec_id] = prediction
                if reporter is not None:
                    reporter.group_completed(gang, lanes)
            # Share toolchains and topology objects between specs that agree
            # on them (so the toolchain's routing-table cache kicks in), but
            # evict each as soon as the last spec needing it has run — a
            # 4096-configuration design-space sweep must not hold 4096
            # routing tables in memory at once.
            solo = [
                spec for spec in unique.values() if spec.spec_id not in ganged_ids
            ]
            remaining_chain: dict[tuple, int] = {}
            remaining_topo: dict[tuple, int] = {}
            for spec in solo:
                remaining_chain[toolchain_key(spec)] = (
                    remaining_chain.get(toolchain_key(spec), 0) + 1
                )
                remaining_topo[topology_key(spec)] = (
                    remaining_topo.get(topology_key(spec), 0) + 1
                )
            toolchains: dict[tuple, Any] = {}
            topologies: dict[tuple, Any] = {}
            for spec in solo:
                chain_key, topo_key = toolchain_key(spec), topology_key(spec)
                chain = toolchains.get(chain_key)
                if chain is None:
                    chain = spec.build_toolchain()
                    toolchains[chain_key] = chain
                topo = topologies.get(topo_key)
                if topo is None:
                    topo = spec.build_topology()
                    topologies[topo_key] = topo
                computed[spec.spec_id] = chain.predict(topo, traffic=spec.traffic)
                if reporter is not None:
                    reporter.completed(spec)
                remaining_chain[chain_key] -= 1
                if remaining_chain[chain_key] == 0:
                    del toolchains[chain_key]
                remaining_topo[topo_key] -= 1
                if remaining_topo[topo_key] == 0:
                    del topologies[topo_key]

        for spec_id, prediction in computed.items():
            self._store(unique[spec_id], prediction)
        for index, spec in pending:
            slots[index] = ExperimentResult(
                spec=spec, prediction=computed[spec.spec_id], cached=False
            )
        return ResultSet(slots)


def run_campaign(
    campaign: Campaign,
    cache_dir: str | Path | None = None,
    parallel: int | None = None,
    progress: bool = False,
    store: Any = None,
) -> ResultSet:
    """One-shot convenience wrapper around :class:`ExperimentRunner`.

    Parameters
    ----------
    campaign:
        The campaign to execute.
    cache_dir:
        Directory for the JSON result cache; ``None`` disables memoization.
    parallel:
        Worker process count; ``None`` or 1 runs serially.
    progress:
        Report per-spec completion lines on stderr (see
        :meth:`ExperimentRunner.run`).
    store:
        Durable service result store (or path) used instead of
        ``cache_dir`` (see :class:`ExperimentRunner`).

    Returns
    -------
    ResultSet
        One result per spec, in campaign order.

    Examples
    --------
    >>> from repro.experiments import figure6_campaign, run_campaign
    >>> results = run_campaign(figure6_campaign("a"))   # doctest: +SKIP
    >>> len(results) > 0                                # doctest: +SKIP
    True
    """
    return ExperimentRunner(cache_dir=cache_dir, store=store).run(
        campaign, parallel=parallel, progress=progress
    )


__all__ = [
    "ExperimentResult",
    "ExperimentRunner",
    "ResultSet",
    "run_campaign",
    "prediction_to_dict",
    "prediction_from_dict",
]
