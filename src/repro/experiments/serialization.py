"""Prediction (de)serialization shared by every result persistence layer.

The runner's on-disk memoization, the parallel-worker payloads, the
``repro.service`` result store, and the HTTP API all move predictions
around as the same JSON shape: the scalar Figure 6 metrics plus the small
analytical/per-phase details (heavyweight artifacts — the physical-model
result, cycle-accurate sweep statistics — are dropped).  This module owns
that shape so the producers and consumers cannot drift apart.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from repro.simulator.statistics import PhaseStats, SimulationStats
from repro.toolchain.analytical import AnalyticalPerformance
from repro.toolchain.results import PredictionResult
from repro.utils.validation import ValidationError

#: Scalar PredictionResult attributes that survive serialization.
_RESULT_SCALARS = (
    "topology_name",
    "area_overhead",
    "total_area_mm2",
    "noc_power_w",
    "zero_load_latency_cycles",
    "saturation_throughput",
    "performance_mode",
)

#: Version of the serialized result payload shape.  Bump when
#: :func:`prediction_to_dict` changes incompatibly; the service store
#: records it per row so old payloads remain identifiable.
RESULT_SCHEMA_VERSION = 1


def prediction_to_dict(prediction: PredictionResult) -> dict[str, Any]:
    """JSON-serializable form of a prediction (scalar metrics + analytical details).

    Parameters
    ----------
    prediction:
        A live :class:`~repro.toolchain.results.PredictionResult`.

    Returns
    -------
    dict
        The scalar Figure 6 metrics plus, when present, the analytical
        performance details and a workload replay's per-phase statistics.
        Heavyweight artifacts (the physical-model result, cycle-accurate
        sweep/replay statistics) are dropped.

    Examples
    --------
    >>> payload = prediction_to_dict(spec.run())        # doctest: +SKIP
    >>> sorted(payload)[:3]                             # doctest: +SKIP
    ['analytical', 'area_overhead', 'noc_power_w']
    """
    data = {key: getattr(prediction, key) for key in _RESULT_SCALARS}
    analytical = prediction.details.get("analytical")
    if isinstance(analytical, AnalyticalPerformance):
        data["analytical"] = {
            "zero_load_latency_cycles": analytical.zero_load_latency_cycles,
            "saturation_throughput": analytical.saturation_throughput,
            "average_hops": analytical.average_hops,
            "max_channel_load": analytical.max_channel_load,
        }
    # Per-phase workload statistics are small and survive serialization (the
    # full replay SimulationStats does not), so cached/parallel workload
    # results keep their phase breakdown.  The overall packet counters are
    # kept too — they are the only delivery evidence for unphased traces,
    # and the optimizer's undelivered-packet penalty reads them.
    replay = prediction.details.get("replay")
    phases = (
        replay.phases if isinstance(replay, SimulationStats) else prediction.details.get("phases")
    )
    if phases:
        data["phases"] = {
            name: dataclasses.asdict(phase) for name, phase in phases.items()
        }
    if isinstance(replay, SimulationStats):
        data["replay_counts"] = {
            "packets_created": replay.packets_created,
            "packets_delivered": replay.packets_delivered,
        }
    elif prediction.details.get("replay_counts"):
        data["replay_counts"] = dict(prediction.details["replay_counts"])
    return data


def prediction_from_dict(data: Mapping[str, Any]) -> PredictionResult:
    """Rebuild a prediction from :func:`prediction_to_dict` output.

    Parameters
    ----------
    data:
        A mapping previously produced by :func:`prediction_to_dict` (e.g. a
        cache entry, a store row, or a parallel-worker payload).

    Returns
    -------
    PredictionResult
        The scalar metrics and analytical details; ``physical`` is ``None``
        (it does not survive serialization).

    Examples
    --------
    >>> rebuilt = prediction_from_dict(prediction_to_dict(p))  # doctest: +SKIP
    >>> rebuilt.zero_load_latency_cycles == p.zero_load_latency_cycles  # doctest: +SKIP
    True
    """
    details: dict[str, Any] = {}
    if "analytical" in data:
        details["analytical"] = AnalyticalPerformance(**data["analytical"])
    if "phases" in data:
        details["phases"] = {
            name: PhaseStats(**entry) for name, entry in data["phases"].items()
        }
    if "replay_counts" in data:
        details["replay_counts"] = dict(data["replay_counts"])
    return PredictionResult(
        **{key: data[key] for key in _RESULT_SCALARS},
        physical=None,
        details=details,
    )


def validate_result_payload(payload: Any) -> None:
    """Check that ``payload`` looks like :func:`prediction_to_dict` output.

    Persistence layers call this before trusting bytes read back from disk
    (a cache entry, a store row): a worker killed mid-write, a partially
    copied file, or a hand-edited entry must surface as a recoverable cache
    miss, not as a ``KeyError`` crash deep inside a campaign.

    Raises
    ------
    ValidationError
        When the payload is not a mapping or is missing scalar metrics.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError(
            f"result payload must be a mapping, got {type(payload).__name__}"
        )
    missing = [key for key in _RESULT_SCALARS if key not in payload]
    if missing:
        raise ValidationError(f"result payload is missing metrics: {missing}")


__all__ = [
    "RESULT_SCHEMA_VERSION",
    "prediction_to_dict",
    "prediction_from_dict",
    "validate_result_payload",
]
