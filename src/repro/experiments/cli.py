"""``repro`` — the command-line front end of the experiment API.

Subcommands
-----------
``repro list-topologies``
    Registered topology generators, optionally filtered by grid applicability.
``repro list-traffic``
    Registered traffic patterns.
``repro predict``
    Run one experiment spec built from command-line flags.
``repro campaign``
    Run a JSON campaign (explicit spec list or declarative grid) with
    optional process parallelism, on-disk memoization, and CSV/JSON export.
``repro figure6``
    Reproduce one (or all) Figure 6 panels of the paper.

The console script is registered in ``setup.py``; without installing, use
``PYTHONPATH=src python -m repro.experiments.cli ...``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.arch.knc import KNC_SCENARIOS
from repro.experiments.campaign import Campaign, figure6_campaign
from repro.experiments.runner import ExperimentRunner, ResultSet, prediction_to_dict
from repro.experiments.spec import ExperimentSpec
from repro.simulator.traffic import available_traffic_patterns
from repro.topologies.registry import (
    DISPLAY_NAMES,
    available_topologies,
    is_applicable,
)
from repro.utils.validation import ValidationError


def _print_table(rows: list[dict[str, Any]]) -> None:
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in columns}
    print(" | ".join(c.ljust(widths[c]) for c in columns))
    print("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        print(" | ".join(str(row[c]).ljust(widths[c]) for c in columns))


def _result_rows(results: ResultSet) -> list[dict[str, Any]]:
    rows = []
    for record in results.to_records():
        rows.append(
            {
                "topology": record["topology"],
                "grid": f"{record['rows']}x{record['cols']}",
                "scenario": record["scenario"] or "-",
                "traffic": record["traffic"],
                "mode": record["performance_mode"],
                "area ovh [%]": f"{100 * record['area_overhead']:.2f}",
                "power [W]": f"{record['noc_power_w']:.2f}",
                "latency [cyc]": f"{record['zero_load_latency_cycles']:.1f}",
                "sat. thr [%]": f"{100 * record['saturation_throughput']:.2f}",
                "cached": "yes" if record["cached"] else "no",
            }
        )
    return rows


def _emit_results(results: ResultSet, args: argparse.Namespace) -> None:
    if getattr(args, "json_out", None):
        results.to_json(args.json_out)
        print(f"wrote {len(results)} results to {args.json_out}")
    if getattr(args, "csv", None):
        results.to_csv(args.csv)
        print(f"wrote {len(results)} results to {args.csv}")
    if getattr(args, "as_json", False):
        print(results.to_json(), end="")
    else:
        _print_table(_result_rows(results))
        if results.num_cached:
            print(f"({results.num_cached}/{len(results)} results served from cache)")


# ------------------------------------------------------------- subcommands
def _cmd_list_topologies(args: argparse.Namespace) -> int:
    rows = []
    for key in available_topologies():
        row: dict[str, Any] = {"key": key, "name": DISPLAY_NAMES.get(key, key)}
        if args.rows and args.cols:
            row["applicable"] = "yes" if is_applicable(key, args.rows, args.cols) else "no"
        rows.append(row)
    if args.as_json:
        print(json.dumps(rows, indent=2))
    else:
        _print_table(rows)
    return 0


def _cmd_list_traffic(args: argparse.Namespace) -> int:
    patterns = available_traffic_patterns()
    if args.as_json:
        print(json.dumps(patterns, indent=2))
    else:
        for name in patterns:
            print(name)
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        topology=args.topology,
        rows=args.rows,
        cols=args.cols,
        topology_kwargs=json.loads(args.topology_kwargs),
        scenario=args.scenario,
        arch=json.loads(args.arch),
        traffic=args.traffic,
        performance_mode=args.mode,
        sim=json.loads(args.sim),
    )
    runner = ExperimentRunner(cache_dir=args.cache_dir)
    results = runner.run(spec)
    if args.as_json:
        print(
            json.dumps(
                {
                    "spec_id": spec.spec_id,
                    "spec": spec.to_dict(),
                    "result": prediction_to_dict(results[0].prediction),
                    "cached": results[0].cached,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"spec {spec.spec_id}: {spec.describe()}")
        _print_table(_result_rows(results))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    campaign = Campaign.load(args.spec)
    runner = ExperimentRunner(cache_dir=args.cache_dir)
    results = runner.run(campaign, parallel=args.parallel)
    if not args.as_json:
        print(f"campaign {campaign.name!r}: {len(campaign)} experiments")
    _emit_results(results, args)
    return 0


def _cmd_figure6(args: argparse.Namespace) -> int:
    keys = sorted(KNC_SCENARIOS) if args.scenario == "all" else [args.scenario]
    runner = ExperimentRunner(cache_dir=args.cache_dir)
    combined: list[Any] = []
    for key in keys:
        scenario = KNC_SCENARIOS[key]
        campaign = figure6_campaign(key, performance_mode=args.mode)
        results = runner.run(campaign, parallel=args.parallel)
        combined.extend(results)
        if args.as_json:
            continue
        print(f"Figure 6{key} — {scenario.description}")
        _print_table(_result_rows(results))
        best = results.best_within_area_budget(0.40)
        if best is not None:
            print(f"best within the 40% area budget: {best.topology_name}")
        print()
    # Exports cover every requested panel in one file (not one file per
    # panel overwriting the last), and --json emits a single JSON document.
    all_results = ResultSet(combined)
    if args.json_out:
        all_results.to_json(args.json_out)
        print(f"wrote {len(all_results)} results to {args.json_out}")
    if args.csv:
        all_results.to_csv(args.csv)
        print(f"wrote {len(all_results)} results to {args.csv}")
    if args.as_json:
        print(all_results.to_json(), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for docs and tests).

    Returns
    -------
    argparse.ArgumentParser
        Parser with one subparser per subcommand (``list-topologies``,
        ``list-traffic``, ``predict``, ``campaign``, ``figure6``); each sets
        a ``handler`` default that :func:`main` dispatches to.

    Examples
    --------
    >>> parser = build_parser()
    >>> args = parser.parse_args(["predict", "--topology", "mesh",
    ...                           "--rows", "4", "--cols", "4"])
    >>> args.command
    'predict'
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative experiment runner for the sparse-Hamming-graph NoC reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_topo = sub.add_parser("list-topologies", help="list registered topology generators")
    p_topo.add_argument("--rows", type=int, default=0, help="grid rows for applicability check")
    p_topo.add_argument("--cols", type=int, default=0, help="grid cols for applicability check")
    p_topo.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_topo.set_defaults(handler=_cmd_list_topologies)

    p_traffic = sub.add_parser("list-traffic", help="list registered traffic patterns")
    p_traffic.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_traffic.set_defaults(handler=_cmd_list_traffic)

    p_predict = sub.add_parser("predict", help="run one experiment spec")
    p_predict.add_argument("--topology", required=True, help="topology registry name")
    p_predict.add_argument("--rows", type=int, required=True)
    p_predict.add_argument("--cols", type=int, required=True)
    p_predict.add_argument(
        "--topology-kwargs", default="{}", help="JSON generator kwargs (e.g. s_r/s_c)"
    )
    p_predict.add_argument("--scenario", default=None, choices=sorted(KNC_SCENARIOS))
    p_predict.add_argument("--arch", default="{}", help="JSON ArchitecturalParameters overrides")
    p_predict.add_argument("--traffic", default="uniform")
    p_predict.add_argument("--mode", default="analytical", choices=("analytical", "simulation"))
    p_predict.add_argument("--sim", default="{}", help="JSON SimulationConfig overrides")
    p_predict.add_argument("--cache-dir", default=None, help="on-disk result cache directory")
    p_predict.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_predict.set_defaults(handler=_cmd_predict)

    p_campaign = sub.add_parser("campaign", help="run a JSON campaign file")
    p_campaign.add_argument("--spec", required=True, help="campaign JSON (specs list or grid)")
    p_campaign.add_argument("--parallel", type=int, default=None, help="worker processes")
    p_campaign.add_argument("--cache-dir", default=None, help="on-disk result cache directory")
    p_campaign.add_argument("--csv", default=None, help="write results as CSV")
    p_campaign.add_argument("--json-out", default=None, help="write results as JSON")
    p_campaign.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_campaign.set_defaults(handler=_cmd_campaign)

    p_fig6 = sub.add_parser("figure6", help="reproduce Figure 6 panels")
    p_fig6.add_argument(
        "--scenario", default="a", choices=sorted(KNC_SCENARIOS) + ["all"]
    )
    p_fig6.add_argument("--mode", default="analytical", choices=("analytical", "simulation"))
    p_fig6.add_argument("--parallel", type=int, default=None, help="worker processes")
    p_fig6.add_argument("--cache-dir", default=None, help="on-disk result cache directory")
    p_fig6.add_argument("--csv", default=None, help="write results as CSV")
    p_fig6.add_argument("--json-out", default=None, help="write results as JSON")
    p_fig6.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_fig6.set_defaults(handler=_cmd_figure6)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro`` console script.

    Parameters
    ----------
    argv:
        Argument list without the program name; ``None`` reads
        ``sys.argv[1:]`` (the console-script path).

    Returns
    -------
    int
        ``0`` on success, ``2`` on invalid input (unknown registry name,
        malformed JSON, missing campaign file) — matching the reference in
        ``README.md``.

    Examples
    --------
    >>> main(["list-traffic"])
    bit_complement
    hotspot
    neighbor
    tornado
    transpose
    uniform
    0
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: invalid JSON: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
