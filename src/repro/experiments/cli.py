"""``repro`` — the command-line front end of the experiment API.

Subcommands
-----------
``repro list-topologies``
    Registered topology generators, optionally filtered by grid applicability.
``repro list-traffic``
    Registered traffic patterns.
``repro list-workloads``
    Registered trace-driven workload generators.
``repro list-engines``
    Registered simulation engines (see :mod:`repro.simulator.engine`).
``repro predict``
    Run one experiment spec built from command-line flags.
``repro campaign``
    Run a JSON campaign (explicit spec list or declarative grid) with
    optional process parallelism, on-disk memoization, and CSV/JSON export.
``repro figure6``
    Reproduce one (or all) Figure 6 panels of the paper.
``repro gen-trace``
    Generate a workload trace and write it to a ``.jsonl``/``.npz`` file.
``repro replay``
    Replay a trace (from a file or generated on the fly) through the
    cycle-accurate simulator and report overall + per-phase statistics.
``repro optimize``
    Search a topology design space for an objective under constraints:
    analytical screening of the full space, then successive-halving
    cycle-accurate evaluation of the survivors (see ``docs/OPTIMIZER.md``).
``repro verify``
    Statically verify compiled routing tables (escape-CDG acyclicity,
    reachability, minimality, config sanity) for one topology or every
    registered one (see ``docs/VERIFICATION.md``).  Exits 1 on violations.
``repro lint``
    Run the determinism/consistency lint over the repo source tree
    (:mod:`repro.verify.lint`).  Exits 1 on violations.
``repro devtools replay-scenario``
    Rebuild one randomized differential scenario from its generator
    ``(seed, index)`` and re-run it under any set of engines, reporting
    statistics divergences field by field (see
    :mod:`repro.devtools.scenarios`).  Exits 1 on divergence.
``repro store migrate`` / ``repro store stats``
    Manage the content-addressed SQLite result store
    (:mod:`repro.service.store`): one-shot import of a legacy memoization
    directory, and store/queue statistics.
``repro query``
    Offline store lookups (by spec_id, topology, trace_id, search_id, ...)
    with the usual table/CSV/JSON exports — no simulation runs.
``repro enqueue``
    Enqueue a campaign as durable work items in the store's work queue
    (re-enqueueing a fully stored campaign enqueues nothing).
``repro work``
    Run one queue worker: claim jobs under an expiring lease, simulate,
    store, repeat until the queue is drained.  Run N of these (or restart
    after a crash) against one store file to shard a campaign.
``repro serve``
    Async query API (:mod:`repro.service.api`): answers predictions from
    the store, enqueues misses, optionally drains them with background
    worker threads (see ``docs/SERVICE.md``).

Every subcommand that launches cycle-accurate simulations (``predict``,
``replay``, ``campaign``, ``optimize``) accepts ``--engine`` to pick the
simulation kernel (``reference``, ``soa``, ``sanitizer`` or ``vec``; all
are bit-identical, so the choice only affects speed and checking — ``vec``
additionally batches sweep load points into one fused kernel), and either
``--cache-dir`` (per-spec JSON files) or ``--store`` (the durable SQLite
result store) for memoization.  ``repro --version`` prints the installed
package version.  ``campaign`` and ``optimize`` report per-experiment
progress on stderr when it is a terminal.

The console script is registered in ``setup.py``; without installing, use
``PYTHONPATH=src python -m repro.experiments.cli ...``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from pathlib import Path

from repro import __version__
from repro.analysis.phases import phase_records
from repro.analysis.search import compare_with_baseline, trajectory_records
from repro.arch.knc import KNC_SCENARIOS
from repro.optimize import SearchSpec, run_search
from repro.experiments.campaign import Campaign, figure6_campaign
from repro.experiments.runner import ExperimentRunner, ResultSet, prediction_to_dict
from repro.experiments.spec import ExperimentSpec, check_sim_overrides
from repro.service.queue import DEFAULT_LEASE_SECONDS
from repro.simulator.engine import available_engines
from repro.simulator.simulation import SimulationConfig
from repro.simulator.sweep import replay_trace
from repro.simulator.traffic import available_traffic_patterns
from repro.topologies.registry import (
    DISPLAY_NAMES,
    available_topologies,
    is_applicable,
    make_topology,
)
from repro.utils.validation import ValidationError
from repro.verify import verify_topology
from repro.verify.lint import run_lint
from repro.workloads import WorkloadTrace, available_workloads, make_workload_trace


def _print_table(rows: list[dict[str, Any]]) -> None:
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in columns}
    print(" | ".join(c.ljust(widths[c]) for c in columns))
    print("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        print(" | ".join(str(row[c]).ljust(widths[c]) for c in columns))


def _result_rows(results: ResultSet) -> list[dict[str, Any]]:
    rows = []
    for record in results.to_records():
        rows.append(
            {
                "topology": record["topology"],
                "grid": f"{record['rows']}x{record['cols']}",
                "scenario": record["scenario"] or "-",
                # Workload replays carry their own traffic; show the trace name.
                "traffic": record["workload"] or record["traffic"],
                "mode": record["performance_mode"],
                "area ovh [%]": f"{100 * record['area_overhead']:.2f}",
                "power [W]": f"{record['noc_power_w']:.2f}",
                "latency [cyc]": f"{record['zero_load_latency_cycles']:.1f}",
                "sat. thr [%]": f"{100 * record['saturation_throughput']:.2f}",
                "cached": "yes" if record["cached"] else "no",
            }
        )
    return rows


def _emit_results(results: ResultSet, args: argparse.Namespace) -> None:
    if getattr(args, "json_out", None):
        results.to_json(args.json_out)
        print(f"wrote {len(results)} results to {args.json_out}")
    if getattr(args, "csv", None):
        results.to_csv(args.csv)
        print(f"wrote {len(results)} results to {args.csv}")
    if getattr(args, "as_json", False):
        print(results.to_json(), end="")
    else:
        _print_table(_result_rows(results))
        if results.num_cached:
            print(f"({results.num_cached}/{len(results)} results served from cache)")


# ------------------------------------------------------------- subcommands
def _cmd_list_topologies(args: argparse.Namespace) -> int:
    rows = []
    for key in available_topologies():
        row: dict[str, Any] = {"key": key, "name": DISPLAY_NAMES.get(key, key)}
        if args.rows and args.cols:
            row["applicable"] = "yes" if is_applicable(key, args.rows, args.cols) else "no"
        rows.append(row)
    if args.as_json:
        print(json.dumps(rows, indent=2))
    else:
        _print_table(rows)
    return 0


def _cmd_list_traffic(args: argparse.Namespace) -> int:
    patterns = available_traffic_patterns()
    if args.as_json:
        print(json.dumps(patterns, indent=2))
    else:
        for name in patterns:
            print(name)
    return 0


def _cmd_list_workloads(args: argparse.Namespace) -> int:
    names = available_workloads()
    if args.as_json:
        print(json.dumps(names, indent=2))
    else:
        for name in names:
            print(name)
    return 0


def _cmd_list_engines(args: argparse.Namespace) -> int:
    names = available_engines()
    if args.as_json:
        print(json.dumps(names, indent=2))
    else:
        for name in names:
            print(name)
    return 0


def _merge_engine(
    sim_overrides: dict[str, Any],
    engine: str | None,
    audit_interval: int | None = None,
) -> dict[str, Any]:
    """Apply ``--engine``/``--audit-interval`` flags on top of ``--sim`` JSON.

    The flags win over conflicting entries in the JSON — the explicit flag
    is the more specific spelling.  Both knobs are excluded from spec
    identity (engines are bit-identical; the sanitizer audit only reads
    state), so neither splits the memoization key space.
    """
    if engine:
        sim_overrides = {**sim_overrides, "engine": engine}
    if audit_interval is not None:
        sim_overrides = {**sim_overrides, "audit_interval": audit_interval}
    return sim_overrides


def _progress_enabled() -> bool:
    """Progress lines are only useful (and only emitted) on a live terminal."""
    return sys.stderr.isatty()


def _build_runner(args: argparse.Namespace, search_id: str | None = None) -> ExperimentRunner:
    """Runner with the memoization backend the flags selected.

    ``--cache-dir`` picks the per-spec JSON directory cache, ``--store`` the
    durable SQLite result store; passing both is rejected by the runner.
    """
    return ExperimentRunner(
        cache_dir=args.cache_dir,
        store=getattr(args, "store", None),
        search_id=search_id,
    )


def _json_object(text: str, flag: str) -> dict[str, Any]:
    """Parse a JSON-object CLI argument, rejecting non-object values."""
    value = json.loads(text)
    if not isinstance(value, dict):
        raise ValidationError(f"{flag} must be a JSON object, got {value!r}")
    return value


def _build_trace(args: argparse.Namespace) -> WorkloadTrace:
    """Trace from ``--trace FILE`` or generated from ``--workload NAME``."""
    if getattr(args, "trace", None):
        if getattr(args, "workload", None):
            raise ValidationError(
                "--trace and --workload are mutually exclusive; pass one"
            )
        if getattr(args, "seed", 0) or getattr(args, "params", "{}") != "{}":
            # Generator flags have no effect on a loaded file; failing loudly
            # beats replaying a trace the user thinks they reconfigured.
            raise ValidationError(
                "--seed/--params only apply with --workload, not with --trace"
            )
        return WorkloadTrace.load(args.trace)
    if not getattr(args, "workload", None):
        raise ValidationError("provide --trace FILE or --workload NAME")
    return make_workload_trace(
        args.workload,
        args.rows,
        args.cols,
        seed=args.seed,
        **_json_object(args.params, "--params"),
    )


def _cmd_gen_trace(args: argparse.Namespace) -> int:
    trace = _build_trace(args)  # gen-trace has no --trace flag: always generates
    path = trace.save(args.output)
    print(
        f"wrote {trace.name}: {trace.num_packets} packets, "
        f"{trace.total_flits} flits, {len(trace.phases)} phases, "
        f"{trace.duration} cycles, {trace.num_tiles} tiles -> {path}"
    )
    print(f"trace id: {trace.trace_id}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = _build_trace(args)
    try:
        topology = make_topology(
            args.topology,
            args.rows,
            args.cols,
            **_json_object(args.topology_kwargs, "--topology-kwargs"),
        )
    except TypeError as error:
        # An unknown generator kwarg must exit 2 like every other bad input.
        raise ValidationError(
            f"invalid topology kwargs for {args.topology!r}: {error}"
        ) from error
    sim_overrides = _merge_engine(
        _json_object(args.sim, "--sim"), args.engine, args.audit_interval
    )
    if "traffic" in sim_overrides:
        raise ValidationError("trace replay ignores synthetic traffic; drop 'traffic'")
    check_sim_overrides(sim_overrides)
    stats = replay_trace(topology, trace, config=SimulationConfig(**sim_overrides))
    phases = phase_records(stats)
    if args.as_json:
        print(
            json.dumps(
                {
                    "trace": {
                        "name": trace.name,
                        "trace_id": trace.trace_id,
                        "num_packets": trace.num_packets,
                        "duration": trace.duration,
                    },
                    "topology": topology.name,
                    "average_packet_latency": stats.average_packet_latency,
                    "p99_packet_latency": stats.p99_packet_latency,
                    "accepted_load": stats.accepted_load,
                    "offered_load": stats.offered_load,
                    "packets_delivered": stats.packets_delivered,
                    "drained": stats.drained,
                    "phases": phases,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(
        f"replayed {trace.name} ({trace.num_packets} packets, "
        f"{trace.duration} cycles) on {topology.name}"
    )
    print(
        f"latency {stats.average_packet_latency:.2f} cyc "
        f"(p99 {stats.p99_packet_latency:.2f}), "
        f"accepted {stats.accepted_load:.4f} flits/tile/cyc, "
        f"delivered {stats.packets_delivered}/{stats.packets_created}, "
        f"drained {'yes' if stats.drained else 'NO'}"
    )
    if phases:
        rows = [
            {
                "phase": row["phase"],
                "window": f"{row['start_cycle']}..{row['end_cycle']}",
                "packets": f"{row['packets_delivered']}/{row['packets_created']}",
                "latency [cyc]": f"{row['average_packet_latency']:.2f}",
                "p99 [cyc]": f"{row['p99_packet_latency']:.2f}",
                "thr [f/t/c]": f"{row['throughput']:.4f}",
                "saturated": "yes" if row["saturated"] else "no",
            }
            for row in phases
        ]
        _print_table(rows)
    return 0


#: Fallback grids ``repro verify --all-topologies`` probes for topologies
#: that are not applicable to the requested grid (SlimNoC needs
#: ``R*C = 2*q^2``, so a 4x4 request would otherwise silently skip it).
_VERIFY_FALLBACK_GRIDS = ((4, 4), (3, 6), (2, 2), (3, 3))


def _cmd_verify(args: argparse.Namespace) -> int:
    if args.all_topologies:
        if args.topology:
            raise ValidationError("--topology and --all-topologies are exclusive")
        targets: list[tuple[str, int, int, dict[str, Any]]] = []
        for key in available_topologies():
            if is_applicable(key, args.rows, args.cols):
                targets.append((key, args.rows, args.cols, {}))
                continue
            grid = next(
                (g for g in _VERIFY_FALLBACK_GRIDS if is_applicable(key, *g)), None
            )
            if grid is None:
                raise ValidationError(
                    f"topology {key!r} is applicable to none of the probe grids"
                )
            targets.append((key, grid[0], grid[1], {}))
    else:
        if not args.topology:
            raise ValidationError("provide --topology NAME or --all-topologies")
        targets = [
            (
                args.topology,
                args.rows,
                args.cols,
                _json_object(args.topology_kwargs, "--topology-kwargs"),
            )
        ]

    reports = []
    for key, rows, cols, kwargs in targets:
        try:
            topology = make_topology(key, rows, cols, **kwargs)
        except TypeError as error:
            raise ValidationError(
                f"invalid topology kwargs for {key!r}: {error}"
            ) from error
        report = verify_topology(topology)
        reports.append((key, rows, cols, report))

    if args.as_json:
        print(
            json.dumps(
                [
                    {"key": key, "rows": rows, "cols": cols, **report.to_dict()}
                    for key, rows, cols, report in reports
                ],
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for key, rows, cols, report in reports:
            print(f"{key} ({rows}x{cols}): {report.summary()}")
            for violation in report.violations:
                print(f"  [{violation.rule}] {violation.message}")
    failed = sum(1 for _, _, _, report in reports if not report.ok)
    if failed:
        print(f"verify: {failed}/{len(reports)} topologies FAILED", file=sys.stderr)
        return 1
    if not args.as_json:
        print(f"verify: all {len(reports)} topologies OK")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    violations = run_lint(args.root)
    if args.as_json:
        print(
            json.dumps(
                [
                    {
                        "path": violation.path,
                        "line": violation.line,
                        "rule": violation.rule,
                        "message": violation.message,
                    }
                    for violation in violations
                ],
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for violation in violations:
            print(violation)
    if violations:
        print(f"lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    if not args.as_json:
        print("lint: clean")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    workload = None
    if args.workload:
        if args.workload.lstrip().startswith(("{", "[", '"')):
            # Looks like JSON: parse strictly so a typo in a long
            # {name, seed, params} spec surfaces as a JSON error, not as a
            # bogus registry-name miss.
            workload = json.loads(args.workload)
        else:
            workload = args.workload  # bare registry name
        if isinstance(workload, str):
            workload = {"name": workload}
    spec = ExperimentSpec(
        topology=args.topology,
        rows=args.rows,
        cols=args.cols,
        topology_kwargs=json.loads(args.topology_kwargs),
        scenario=args.scenario,
        arch=json.loads(args.arch),
        traffic=args.traffic,
        performance_mode="simulation" if workload is not None else args.mode,
        sim=_merge_engine(
            _json_object(args.sim, "--sim"), args.engine, args.audit_interval
        ),
        workload=workload,
    )
    runner = _build_runner(args)
    results = runner.run(spec)
    if args.as_json:
        print(
            json.dumps(
                {
                    "spec_id": spec.spec_id,
                    "spec": spec.to_dict(),
                    "result": prediction_to_dict(results[0].prediction),
                    "cached": results[0].cached,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"spec {spec.spec_id}: {spec.describe()}")
        _print_table(_result_rows(results))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    campaign = Campaign.load(args.spec)
    runner = _build_runner(args)
    specs = list(campaign.specs)
    if args.engine or args.audit_interval is not None:
        # Thread the engine through every spec of the campaign; the engine
        # (and the sanitizer's audit interval) is excluded from spec_id, so
        # memoized results stay shared.
        specs = [
            spec.with_overrides(
                sim=_merge_engine(dict(spec.sim), args.engine, args.audit_interval)
            )
            for spec in specs
        ]
    results = runner.run(specs, parallel=args.parallel, progress=_progress_enabled())
    if not args.as_json:
        print(f"campaign {campaign.name!r}: {len(campaign)} experiments")
    _emit_results(results, args)
    return 0


def _cmd_figure6(args: argparse.Namespace) -> int:
    keys = sorted(KNC_SCENARIOS) if args.scenario == "all" else [args.scenario]
    runner = _build_runner(args)
    combined: list[Any] = []
    for key in keys:
        scenario = KNC_SCENARIOS[key]
        campaign = figure6_campaign(key, performance_mode=args.mode)
        results = runner.run(campaign, parallel=args.parallel)
        combined.extend(results)
        if args.as_json:
            continue
        print(f"Figure 6{key} — {scenario.description}")
        _print_table(_result_rows(results))
        best = results.best_within_area_budget(0.40)
        if best is not None:
            print(f"best within the 40% area budget: {best.topology_name}")
        print()
    # Exports cover every requested panel in one file (not one file per
    # panel overwriting the last), and --json emits a single JSON document.
    all_results = ResultSet(combined)
    if args.json_out:
        all_results.to_json(args.json_out)
        print(f"wrote {len(all_results)} results to {args.json_out}")
    if args.csv:
        all_results.to_csv(args.csv)
        print(f"wrote {len(all_results)} results to {args.csv}")
    if args.as_json:
        print(all_results.to_json(), end="")
    return 0


#: Default families block of ``repro optimize``: the fixed Figure 6 baseline
#: families plus a sampled sparse-Hamming configuration space.
DEFAULT_SEARCH_SPACE = {
    "mesh": {},
    "torus": {},
    "folded_torus": {},
    "flattened_butterfly": {},
    "sparse_hamming": {"max_configurations": 64},
}


#: ``repro optimize`` flags that define the search itself (as opposed to how
#: it executes); a --spec file already fixes all of them, so combining the
#: two would silently ignore whichever the user thinks won.
_OPTIMIZE_SPEC_FLAG_DEFAULTS = {
    "rows": 0,
    "cols": 0,
    "space": None,  # compared against the parser default below
    "objective": "zero_load_latency",
    "workload": None,
    "phase": None,
    "scenario": None,
    "arch": "{}",
    "sim": "{}",
    "engine": None,
    "traffic": "uniform",
    "max_area_overhead": None,
    "max_power": None,
    "max_link_length": None,
    "survivors": 6,
    "seed": 0,
    "baseline": "mesh",
}


def _build_search_spec(args: argparse.Namespace) -> SearchSpec:
    """Assemble the :class:`SearchSpec` from ``repro optimize`` flags."""
    if args.spec:
        defaults = dict(_OPTIMIZE_SPEC_FLAG_DEFAULTS)
        defaults["space"] = json.dumps(DEFAULT_SEARCH_SPACE)
        overridden = sorted(
            f"--{name.replace('_', '-')}"
            for name, default in defaults.items()
            if getattr(args, name) != default
        )
        if overridden:
            raise ValidationError(
                f"--spec already defines the search; drop {', '.join(overridden)} "
                "(edit the spec file instead)"
            )
        return SearchSpec.from_json(Path(args.spec).read_text())
    if not args.rows or not args.cols:
        raise ValidationError("provide --rows and --cols (or a --spec file)")
    objective: dict[str, Any] = {"metric": args.objective}
    if args.workload:
        workload = (
            json.loads(args.workload)
            if args.workload.lstrip().startswith(("{", "[", '"'))
            else args.workload
        )
        if isinstance(workload, str):
            workload = {"name": workload}
        objective = {"metric": "workload_latency", "workload": workload}
    if args.phase:
        objective["phase"] = args.phase
    constraints: dict[str, Any] = {}
    if args.max_area_overhead is not None:
        constraints["max_area_overhead"] = args.max_area_overhead
    if args.max_power is not None:
        constraints["max_power_w"] = args.max_power
    if args.max_link_length is not None:
        constraints["max_link_length"] = args.max_link_length
    return SearchSpec(
        rows=args.rows,
        cols=args.cols,
        space=_json_object(args.space, "--space"),
        objective=objective,
        constraints=constraints,
        scenario=args.scenario,
        arch=_json_object(args.arch, "--arch"),
        sim=_merge_engine(
            _json_object(args.sim, "--sim"), args.engine, args.audit_interval
        ),
        traffic=args.traffic,
        survivors=args.survivors,
        seed=args.seed,
        baseline=None if args.baseline == "none" else args.baseline,
    )


def _cmd_optimize(args: argparse.Namespace) -> int:
    spec = _build_search_spec(args)
    result = run_search(
        spec,
        cache_dir=args.cache_dir,
        store=args.store,
        parallel=args.parallel,
        progress=_progress_enabled(),
    )

    if args.csv:
        rows = trajectory_records(result)
        import csv as _csv

        with open(args.csv, "w", newline="") as handle:
            writer = _csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
            writer.writeheader()
            writer.writerows(rows)
        print(f"wrote {len(rows)} trajectory rows to {args.csv}")
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote search result to {args.json_out}")
    if args.as_json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0

    print(f"search {spec.search_id}: {spec.describe()}")
    print(
        f"screened {result.candidates_screened} candidates "
        f"({result.candidates_feasible} feasible); "
        f"{result.candidates_simulated} entered the cycle-accurate stage "
        f"({result.simulations} simulations, "
        f"{result.screening_ratio:.1f}x screening ratio, "
        f"{result.num_cached} cached)"
    )
    for rung in result.rungs:
        budget = (
            ", ".join(f"{k}={v}" for k, v in sorted(rung.sim_overrides.items()))
            or "full budget"
        )
        best = rung.entries[0]
        print(
            f"  rung {rung.rung} ({budget}): {len(rung.entries)} candidates, "
            f"best {best.candidate.describe()} (score {best.score:.2f})"
        )
    winner = result.winner_prediction
    print(f"winner: {result.winner.describe()}")
    print(
        f"  latency {winner.zero_load_latency_cycles:.2f} cyc, "
        f"sat. thr {100 * winner.saturation_throughput:.2f}%, "
        f"area ovh {100 * winner.area_overhead:.2f}%, "
        f"power {winner.noc_power_w:.2f} W"
    )
    if result.baseline_prediction is not None:
        comparison = compare_with_baseline(result)
        baseline = result.baseline_prediction
        print(
            f"baseline {baseline.topology_name}: "
            f"latency {baseline.zero_load_latency_cycles:.2f} cyc, "
            f"sat. thr {100 * baseline.saturation_throughput:.2f}%"
        )
        print(f"objective speedup over baseline: {comparison['objective_speedup']:.2f}x")
        for phase, speedup in comparison.get("phase_speedups", {}).items():
            print(f"  {phase:>12s}: {speedup:5.2f}x")
    return 0


def _cmd_devtools_replay_scenario(args: argparse.Namespace) -> int:
    from repro.devtools.scenarios import diff_stats, get_scenario, run_scenario
    from repro.simulator.sweep import run_batch

    scenario = get_scenario(args.index, seed=args.seed)
    engines = (
        [name.strip() for name in args.engines.split(",") if name.strip()]
        if args.engines
        else available_engines()
    )
    print(f"scenario {scenario.label} (seed {args.seed}, index {args.index}):")
    print(
        f"  {scenario.topology} {scenario.rows}x{scenario.cols}, "
        f"{'workload ' + scenario.workload if scenario.workload else 'traffic ' + scenario.traffic}, "
        f"link latency {scenario.link_latency or 1}"
    )
    print(f"  config: {dict(scenario.config)}")

    per_engine = {engine: run_scenario(scenario, engine) for engine in engines}
    baseline_engine = engines[0]
    baseline = per_engine[baseline_engine]
    divergences = 0
    for engine in engines:
        stats = per_engine[engine]
        differences = diff_stats(baseline_engine, baseline, engine, stats)
        verdict = "match" if not differences else "DIVERGED"
        print(
            f"  {engine:10s} {verdict:8s} packets={stats.packets_delivered} "
            f"latency={stats.average_packet_latency:.4f} drained={stats.drained}"
        )
        for line in differences:
            print(f"    {line}")
        divergences += bool(differences)

    if args.batched and "vec" in engines:
        # Re-run the scenario as three fused vec lanes and compare each lane
        # against the solo vec run — catches batching-only divergences.
        topology = scenario.build_topology()
        link_latencies = (
            {link: scenario.link_latency for link in topology.links}
            if scenario.link_latency
            else None
        )
        config = scenario.simulation_config("vec")
        trace = scenario.build_trace()
        lanes = run_batch(
            topology,
            [config] * 3,
            link_latencies=link_latencies,
            traces=[trace] * 3 if trace is not None else None,
        )
        solo = per_engine.get("vec") or run_scenario(scenario, "vec")
        for lane_index, stats in enumerate(lanes):
            differences = diff_stats("vec-solo", solo, f"batched[{lane_index}]", stats)
            verdict = "match" if not differences else "DIVERGED"
            print(f"  vec batched lane {lane_index}: {verdict}")
            for line in differences:
                print(f"    {line}")
            divergences += bool(differences)

    if divergences:
        print(f"{divergences} divergence(s) — engines are required to be bit-identical")
        return 1
    print("all engines agree")
    return 0


# ------------------------------------------------------- service subcommands
def _cmd_store_migrate(args: argparse.Namespace) -> int:
    from repro.service.store import ResultStore

    store = ResultStore(args.db)
    report = store.import_cache_dir(args.cache_dir)
    if args.as_json:
        print(
            json.dumps(
                {
                    "imported": report.imported,
                    "already_present": report.already_present,
                    "invalid": [
                        {"file": name, "reason": reason}
                        for name, reason in report.invalid
                    ],
                    "total": report.total,
                    "store": str(store.path),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"migrated {args.cache_dir} -> {store.path}: {report.summary()}")
        for name, reason in report.invalid:
            print(f"  skipped {name}: {reason}")
    return 0


def _cmd_store_stats(args: argparse.Namespace) -> int:
    from repro.service.store import ResultStore

    stats = ResultStore(args.db).stats()
    if args.as_json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"store {stats['path']} (schema v{stats['store_schema_version']})")
    print(f"  results: {stats['results']} ({stats['size_bytes']} bytes on disk)")
    for topology, count in stats["by_topology"].items():
        print(f"    {topology}: {count}")
    if stats["by_workload"]:
        print("  workloads:")
        for workload, count in stats["by_workload"].items():
            print(f"    {workload}: {count}")
    if stats["searches"]:
        print(f"  searches recorded: {stats['searches']}")
    if stats["jobs"]:
        jobs = ", ".join(f"{status}={n}" for status, n in sorted(stats["jobs"].items()))
        print(f"  queue: {jobs}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.service.store import ResultStore

    store = ResultStore(args.db)
    filters = {
        key: getattr(args, key)
        for key in ("spec_id", "topology", "trace_id", "search_id", "scenario", "workload")
        if getattr(args, key) is not None
    }
    if args.limit is not None:
        filters["limit"] = args.limit
    results = store.result_set(**filters)
    if not args.as_json and not args.json_out and not args.csv:
        print(f"{len(results)} stored result(s) match")
    _emit_results(results, args)
    return 0


def _cmd_enqueue(args: argparse.Namespace) -> int:
    from repro.service.queue import WorkQueue

    campaign = Campaign.load(args.spec)
    queue = WorkQueue(args.db)
    report = queue.enqueue(campaign)
    if args.as_json:
        print(
            json.dumps(
                {
                    "campaign_id": report.campaign_id,
                    "total": report.total,
                    "enqueued": report.enqueued,
                    "already_stored": report.already_stored,
                    "already_queued": report.already_queued,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(report.summary())
        print(
            f"drain with: repro work --db {args.db}  "
            "(run several times or in parallel to shard)"
        )
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    from repro.service.worker import run_worker

    stats = run_worker(
        args.db,
        worker_id=args.worker_id,
        lease_seconds=args.lease,
        max_jobs=args.max_jobs,
        poll_seconds=args.poll,
        idle_exit=not args.keep_alive,
        progress=_progress_enabled() or args.verbose,
        batch_size=args.batch,
    )
    print(stats.summary())
    for spec_id, error in stats.errors:
        print(f"  failed {spec_id}: {error}", file=sys.stderr)
    return 1 if stats.failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.api import make_server

    server = make_server(
        args.db,
        host=args.host,
        port=args.port,
        workers=args.workers,
        batch_size=args.batch,
        verbose=args.verbose,
    )
    host, port = server.server_address[:2]
    print(
        f"repro serve: http://{host}:{port} "
        f"(store {args.db}, {args.workers} background worker(s)); Ctrl-C stops",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for docs and tests).

    Returns
    -------
    argparse.ArgumentParser
        Parser with one subparser per subcommand (``list-topologies``,
        ``list-traffic``, ``predict``, ``campaign``, ``figure6``); each sets
        a ``handler`` default that :func:`main` dispatches to.

    Examples
    --------
    >>> parser = build_parser()
    >>> args = parser.parse_args(["predict", "--topology", "mesh",
    ...                           "--rows", "4", "--cols", "4"])
    >>> args.command
    'predict'
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative experiment runner for the sparse-Hamming-graph NoC reproduction.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_topo = sub.add_parser("list-topologies", help="list registered topology generators")
    p_topo.add_argument("--rows", type=int, default=0, help="grid rows for applicability check")
    p_topo.add_argument("--cols", type=int, default=0, help="grid cols for applicability check")
    p_topo.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_topo.set_defaults(handler=_cmd_list_topologies)

    p_traffic = sub.add_parser("list-traffic", help="list registered traffic patterns")
    p_traffic.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_traffic.set_defaults(handler=_cmd_list_traffic)

    p_workloads = sub.add_parser(
        "list-workloads", help="list registered workload generators"
    )
    p_workloads.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_workloads.set_defaults(handler=_cmd_list_workloads)

    p_engines = sub.add_parser("list-engines", help="list registered simulation engines")
    p_engines.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_engines.set_defaults(handler=_cmd_list_engines)

    p_gen = sub.add_parser("gen-trace", help="generate a workload trace file")
    p_gen.add_argument("--workload", required=True, help="workload registry name")
    p_gen.add_argument("--rows", type=int, required=True)
    p_gen.add_argument("--cols", type=int, required=True)
    p_gen.add_argument("--seed", type=int, default=0, help="generator RNG seed")
    p_gen.add_argument(
        "--params", default="{}", help="JSON generator kwargs (e.g. layers, collective)"
    )
    p_gen.add_argument(
        "--output", required=True, help="trace path; suffix picks .jsonl or .npz"
    )
    p_gen.set_defaults(handler=_cmd_gen_trace)

    p_replay = sub.add_parser(
        "replay", help="replay a workload trace through the simulator"
    )
    p_replay.add_argument("--trace", default=None, help="trace file (.jsonl or .npz)")
    p_replay.add_argument(
        "--workload", default=None, help="generate this workload instead of loading a file"
    )
    p_replay.add_argument("--seed", type=int, default=0, help="generator RNG seed")
    p_replay.add_argument(
        "--params", default="{}", help="JSON generator kwargs (with --workload)"
    )
    p_replay.add_argument("--topology", required=True, help="topology registry name")
    p_replay.add_argument("--rows", type=int, required=True)
    p_replay.add_argument("--cols", type=int, required=True)
    p_replay.add_argument(
        "--topology-kwargs", default="{}", help="JSON generator kwargs (e.g. s_r/s_c)"
    )
    p_replay.add_argument("--sim", default="{}", help="JSON SimulationConfig overrides")
    p_replay.add_argument(
        "--engine",
        default=None,
        choices=available_engines(),
        help="simulation engine (bit-identical; soa is the fast kernel)",
    )
    p_replay.add_argument(
        "--audit-interval", type=int, default=None,
        help="sanitizer audit sampling period in cycles (default 1: every cycle)",
    )
    p_replay.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_replay.set_defaults(handler=_cmd_replay)

    p_predict = sub.add_parser("predict", help="run one experiment spec")
    p_predict.add_argument("--topology", required=True, help="topology registry name")
    p_predict.add_argument("--rows", type=int, required=True)
    p_predict.add_argument("--cols", type=int, required=True)
    p_predict.add_argument(
        "--topology-kwargs", default="{}", help="JSON generator kwargs (e.g. s_r/s_c)"
    )
    p_predict.add_argument("--scenario", default=None, choices=sorted(KNC_SCENARIOS))
    p_predict.add_argument("--arch", default="{}", help="JSON ArchitecturalParameters overrides")
    p_predict.add_argument("--traffic", default="uniform")
    p_predict.add_argument("--mode", default="analytical", choices=("analytical", "simulation"))
    p_predict.add_argument("--sim", default="{}", help="JSON SimulationConfig overrides")
    p_predict.add_argument(
        "--engine",
        default=None,
        choices=available_engines(),
        help="simulation engine (bit-identical; soa is the fast kernel)",
    )
    p_predict.add_argument(
        "--audit-interval", type=int, default=None,
        help="sanitizer audit sampling period in cycles (default 1: every cycle)",
    )
    p_predict.add_argument(
        "--workload",
        default=None,
        help="JSON workload spec or bare name (forces simulation mode)",
    )
    p_predict.add_argument("--cache-dir", default=None, help="on-disk result cache directory")
    p_predict.add_argument(
        "--store", default=None, help="durable SQLite result store (alternative to --cache-dir)"
    )
    p_predict.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_predict.set_defaults(handler=_cmd_predict)

    p_opt = sub.add_parser(
        "optimize", help="search a topology design space for an objective"
    )
    p_opt.add_argument("--spec", default=None, help="SearchSpec JSON file (overrides flags)")
    p_opt.add_argument("--rows", type=int, default=0)
    p_opt.add_argument("--cols", type=int, default=0)
    p_opt.add_argument(
        "--space",
        default=json.dumps(DEFAULT_SEARCH_SPACE),
        help="JSON families block (default: Figure 6 families + 64 sampled "
        "sparse-Hamming configurations)",
    )
    p_opt.add_argument(
        "--objective",
        default="zero_load_latency",
        choices=("zero_load_latency", "saturation_throughput", "workload_latency"),
    )
    p_opt.add_argument(
        "--workload",
        default=None,
        help="JSON workload spec or bare name (implies --objective workload_latency)",
    )
    p_opt.add_argument("--phase", default=None, help="optimize one named trace phase")
    p_opt.add_argument("--scenario", default=None, choices=sorted(KNC_SCENARIOS))
    p_opt.add_argument("--arch", default="{}", help="JSON ArchitecturalParameters overrides")
    p_opt.add_argument("--sim", default="{}", help="JSON SimulationConfig overrides")
    p_opt.add_argument(
        "--engine",
        default=None,
        choices=available_engines(),
        help="simulation engine for the cycle-accurate rungs",
    )
    p_opt.add_argument(
        "--audit-interval", type=int, default=None,
        help="sanitizer audit sampling period in cycles (default 1: every cycle)",
    )
    p_opt.add_argument("--traffic", default="uniform")
    p_opt.add_argument(
        "--max-area-overhead", type=float, default=None, help="area budget (fraction)"
    )
    p_opt.add_argument("--max-power", type=float, default=None, help="NoC power budget [W]")
    p_opt.add_argument(
        "--max-link-length", type=int, default=None, help="link-length budget [tile pitches]"
    )
    p_opt.add_argument(
        "--survivors", type=int, default=6, help="candidates entering the simulation stage"
    )
    p_opt.add_argument("--seed", type=int, default=0, help="search-space sampling seed")
    p_opt.add_argument(
        "--baseline", default="mesh", help="comparison topology ('none' disables)"
    )
    p_opt.add_argument("--parallel", type=int, default=None, help="worker processes per rung")
    p_opt.add_argument("--cache-dir", default=None, help="on-disk result cache directory")
    p_opt.add_argument(
        "--store", default=None, help="durable SQLite result store (alternative to --cache-dir)"
    )
    p_opt.add_argument("--csv", default=None, help="write the search trajectory as CSV")
    p_opt.add_argument("--json-out", default=None, help="write the search result as JSON")
    p_opt.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_opt.set_defaults(handler=_cmd_optimize)

    p_verify = sub.add_parser(
        "verify", help="statically verify compiled routing tables"
    )
    p_verify.add_argument("--topology", default=None, help="topology registry name")
    p_verify.add_argument(
        "--all-topologies",
        action="store_true",
        help="verify every registered topology (inapplicable grids fall "
        "back to the nearest applicable probe grid)",
    )
    p_verify.add_argument("--rows", type=int, default=4)
    p_verify.add_argument("--cols", type=int, default=4)
    p_verify.add_argument(
        "--topology-kwargs", default="{}", help="JSON generator kwargs (e.g. s_r/s_c)"
    )
    p_verify.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_verify.set_defaults(handler=_cmd_verify)

    p_lint = sub.add_parser(
        "lint", help="run the determinism/consistency lint over src/repro"
    )
    p_lint.add_argument(
        "--root", default=None, help="source root to lint (default: the installed repro package)"
    )
    p_lint.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_lint.set_defaults(handler=_cmd_lint)

    p_campaign = sub.add_parser("campaign", help="run a JSON campaign file")
    p_campaign.add_argument("--spec", required=True, help="campaign JSON (specs list or grid)")
    p_campaign.add_argument(
        "--engine",
        default=None,
        choices=available_engines(),
        help="simulation engine applied to every spec of the campaign",
    )
    p_campaign.add_argument(
        "--audit-interval", type=int, default=None,
        help="sanitizer audit sampling period in cycles (default 1: every cycle)",
    )
    p_campaign.add_argument("--parallel", type=int, default=None, help="worker processes")
    p_campaign.add_argument("--cache-dir", default=None, help="on-disk result cache directory")
    p_campaign.add_argument(
        "--store", default=None, help="durable SQLite result store (alternative to --cache-dir)"
    )
    p_campaign.add_argument("--csv", default=None, help="write results as CSV")
    p_campaign.add_argument("--json-out", default=None, help="write results as JSON")
    p_campaign.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_campaign.set_defaults(handler=_cmd_campaign)

    p_fig6 = sub.add_parser("figure6", help="reproduce Figure 6 panels")
    p_fig6.add_argument(
        "--scenario", default="a", choices=sorted(KNC_SCENARIOS) + ["all"]
    )
    p_fig6.add_argument("--mode", default="analytical", choices=("analytical", "simulation"))
    p_fig6.add_argument("--parallel", type=int, default=None, help="worker processes")
    p_fig6.add_argument("--cache-dir", default=None, help="on-disk result cache directory")
    p_fig6.add_argument(
        "--store", default=None, help="durable SQLite result store (alternative to --cache-dir)"
    )
    p_fig6.add_argument("--csv", default=None, help="write results as CSV")
    p_fig6.add_argument("--json-out", default=None, help="write results as JSON")
    p_fig6.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_fig6.set_defaults(handler=_cmd_figure6)

    p_dev = sub.add_parser(
        "devtools", help="developer utilities (differential-test tooling)"
    )
    dev_sub = p_dev.add_subparsers(dest="devtools_command", required=True)
    p_replay_scn = dev_sub.add_parser(
        "replay-scenario",
        help="rebuild one differential scenario from (seed, index) and re-run it",
        description=(
            "Reconstruct a randomized differential scenario from its generator "
            "seed and index (see repro.devtools.scenarios), run it under the "
            "given engines, and report any statistics divergence field by "
            "field.  Failing differential tests print the exact command to "
            "paste here."
        ),
    )
    p_replay_scn.add_argument(
        "--seed", type=int, default=2024, help="scenario-generator seed (default: 2024)"
    )
    p_replay_scn.add_argument(
        "--index", type=int, required=True, help="0-based scenario index"
    )
    p_replay_scn.add_argument(
        "--engines",
        default=None,
        help="comma-separated engine names (default: all registered engines)",
    )
    p_replay_scn.add_argument(
        "--batched",
        action="store_true",
        help="also cross-check the vec engine's batched path against solo runs",
    )
    p_replay_scn.set_defaults(handler=_cmd_devtools_replay_scenario)

    p_store = sub.add_parser(
        "store", help="manage the durable SQLite result store"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_migrate = store_sub.add_parser(
        "migrate",
        help="import a legacy --cache-dir memoization directory into a store",
    )
    p_migrate.add_argument("--db", required=True, help="SQLite store file")
    p_migrate.add_argument(
        "--cache-dir", required=True, help="legacy per-spec JSON cache directory"
    )
    p_migrate.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_migrate.set_defaults(handler=_cmd_store_migrate)
    p_stats = store_sub.add_parser("stats", help="summarize a store file")
    p_stats.add_argument("--db", required=True, help="SQLite store file")
    p_stats.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_stats.set_defaults(handler=_cmd_store_stats)

    p_query = sub.add_parser(
        "query", help="look up stored results offline (no simulation runs)"
    )
    p_query.add_argument("--db", required=True, help="SQLite store file")
    p_query.add_argument("--spec-id", dest="spec_id", default=None)
    p_query.add_argument("--topology", default=None, help="topology family filter")
    p_query.add_argument("--trace-id", dest="trace_id", default=None)
    p_query.add_argument("--search-id", dest="search_id", default=None)
    p_query.add_argument("--scenario", default=None, choices=sorted(KNC_SCENARIOS))
    p_query.add_argument("--workload", default=None, help="workload name filter")
    p_query.add_argument("--limit", type=int, default=None, help="max records returned")
    p_query.add_argument("--csv", default=None, help="write results as CSV")
    p_query.add_argument("--json-out", default=None, help="write results as JSON")
    p_query.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_query.set_defaults(handler=_cmd_query)

    p_enq = sub.add_parser(
        "enqueue", help="push a campaign's specs onto a store's work queue"
    )
    p_enq.add_argument("--db", required=True, help="SQLite store file")
    p_enq.add_argument("--spec", required=True, help="campaign JSON (specs list or grid)")
    p_enq.add_argument("--json", dest="as_json", action="store_true", help="emit JSON")
    p_enq.set_defaults(handler=_cmd_enqueue)

    p_work = sub.add_parser(
        "work", help="drain queued jobs (run N copies to shard a campaign)"
    )
    p_work.add_argument("--db", required=True, help="SQLite store file")
    p_work.add_argument(
        "--worker-id", default=None, help="lease identity (default: pid-<pid>)"
    )
    p_work.add_argument(
        "--lease", type=float, default=DEFAULT_LEASE_SECONDS,
        help="lease seconds per claim (heartbeats renew it while running)",
    )
    p_work.add_argument(
        "--max-jobs", type=int, default=None, help="stop after this many jobs"
    )
    p_work.add_argument(
        "--poll", type=float, default=0.5, help="idle poll interval with --keep-alive"
    )
    p_work.add_argument(
        "--keep-alive",
        action="store_true",
        help="keep polling when the queue is empty instead of exiting",
    )
    p_work.add_argument(
        "--batch", type=int, default=1,
        help="jobs leased per claim; >1 fuses gang-compatible jobs into one "
        "batched vec kernel (results stay bit-identical)",
    )
    p_work.add_argument(
        "--verbose", action="store_true", help="print one line per processed job"
    )
    p_work.set_defaults(handler=_cmd_work)

    p_serve = sub.add_parser(
        "serve", help="HTTP prediction/query API over a store"
    )
    p_serve.add_argument("--db", required=True, help="SQLite store file")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321)
    p_serve.add_argument(
        "--workers", type=int, default=0,
        help="background worker threads draining enqueued misses",
    )
    p_serve.add_argument(
        "--batch", type=int, default=8,
        help="jobs each background worker leases per claim; >1 drains "
        "gang-compatible miss storms as fused vec batches",
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="emit per-request access-log lines"
    )
    p_serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro`` console script.

    Parameters
    ----------
    argv:
        Argument list without the program name; ``None`` reads
        ``sys.argv[1:]`` (the console-script path).

    Returns
    -------
    int
        ``0`` on success, ``2`` on invalid input (unknown registry name,
        malformed JSON, missing campaign file) — matching the reference in
        ``README.md``.

    Examples
    --------
    >>> main(["list-traffic"])
    bit_complement
    hotspot
    neighbor
    tornado
    transpose
    uniform
    0
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: invalid JSON: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
