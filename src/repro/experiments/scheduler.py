"""Gang scheduler: fuse many specs' simulations into recycled vec kernels.

A campaign of simulation-mode specs over one topology used to pay one full
load sweep per spec, sequentially.  This module packs *cross-spec* work into
fused batched kernels instead:

1. **Grouping** — :func:`gang_key` buckets specs that can share one compiled
   :class:`~repro.simulator.network.Network`: same topology build
   (:func:`~repro.experiments.spec.topology_key`, which includes the
   architecture overrides that determine the physical link latencies) and
   same router-level :meth:`~repro.simulator.simulation.SimulationConfig.network_config`.
   Analytical specs and specs pinned to the ``sanitizer`` engine (whose
   per-cycle audits must actually run) never gang.
2. **Expansion** — :func:`run_gang` expands each spec into its sequence of
   simulation rounds: the saturation search's probe/coarse/bisection rounds
   (via :func:`~repro.simulator.sweep.saturation_plan`) or a single
   trace-replay lane for workload specs.
3. **Execution** — all rounds flow through one lane-recycled vec kernel
   (:func:`~repro.simulator.engine.vec.run_batched`): when a lane drains,
   the freed slot is immediately re-armed with the next pending config —
   the next spec's probe, a coarse batch, a bisection midpoint — so the
   batch axis stays full instead of waiting on the slowest lane.

Bit-identity contract: every lane is bit-identical to its solo run (the vec
kernel's guarantee), the saturation plan emits the same rounds and trims the
same points as the sequential search, and the per-spec
:class:`~repro.toolchain.results.PredictionResult` is assembled exactly as
:meth:`~repro.toolchain.predict.PredictionToolchain.predict` does — so
memoization keys *and* cached payloads are unchanged, and cross-engine cache
hits keep working.  Specs whose physical link latencies unexpectedly diverge
from their gang (which the gang key should prevent) fall back to solo
execution rather than sharing a mismatched network.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from typing import Iterable, Sequence

from repro.experiments.spec import ExperimentSpec, topology_key
from repro.physical.model import NoCPhysicalModel
from repro.simulator.engine.vec import run_batched
from repro.simulator.network import build_network
from repro.simulator.routing_tables import build_routing_tables
from repro.simulator.simulation import SimulationConfig, Simulator
from repro.simulator.statistics import SimulationStats
from repro.simulator.sweep import LoadSweepResult, saturation_plan
from repro.toolchain.results import PredictionResult
from repro.utils.validation import ValidationError

#: Engines whose specs must never be fused: the gang executes every lane on
#: the vec kernel, which would silently skip the sanitizer's runtime audits.
#: ``reference``/``soa``/``vec`` specs fuse freely — engines are
#: bit-identical, and the engine choice is excluded from spec identity.
UNFUSABLE_ENGINES = frozenset({"sanitizer"})

#: Default cap on the kernel's batch width.  Lanes beyond the cap queue as
#: pending work and recycle into freed slots; the cap bounds the kernel's
#: state arrays, not the amount of work a gang can execute.
DEFAULT_MAX_WIDTH = 64


def gang_key(spec: ExperimentSpec) -> tuple | None:
    """Compiled-network compatibility key of ``spec`` (``None``: not gangable).

    Specs with equal gang keys can share one compiled network — and with it
    one fused kernel.  Returns ``None`` for analytical specs (no simulation
    to fuse) and for specs pinned to an engine in :data:`UNFUSABLE_ENGINES`.
    """
    if spec.performance_mode != "simulation":
        return None
    if spec.sim.get("engine") in UNFUSABLE_ENGINES:
        return None
    return (topology_key(spec), spec.build_simulation_config().network_config())


def gang_key_id(spec: ExperimentSpec) -> str | None:
    """Stable string form of :func:`gang_key` (for the service job table).

    A content hash, identical across processes and Python versions — two
    workers computing the key of the same job JSON agree byte-for-byte.
    """
    key = gang_key(spec)
    if key is None:
        return None
    topo_part, net = key
    canonical = json.dumps(
        [
            list(topo_part),
            [
                net.num_vcs,
                net.buffer_depth_flits,
                net.router_pipeline_cycles,
                net.packet_size_flits,
            ],
        ],
        sort_keys=True,
        separators=(",", ":"),
    )
    return "gang-" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def plan_gangs(
    specs: Iterable[ExperimentSpec],
    engines: Sequence[str] = ("vec",),
    min_size: int = 2,
) -> list[list[ExperimentSpec]]:
    """Group ``specs`` into gangs worth fusing (order-preserving).

    ``engines`` restricts which explicit ``sim["engine"]`` choices opt a
    spec into ganging — the runner fuses only ``engine="vec"`` specs (the
    documented batched path), while the queue worker passes a wider set.
    Groups smaller than ``min_size`` are dropped: a width-1 "gang" loses to
    the solo sweep, whose coarse stage already batches six lanes wide.
    """
    groups: dict[tuple, list[ExperimentSpec]] = {}
    for spec in specs:
        if spec.sim.get("engine") not in engines:
            continue
        key = gang_key(spec)
        if key is None:
            continue
        groups.setdefault(key, []).append(spec)
    return [members for members in groups.values() if len(members) >= min_size]


class _SpecDriver:
    """Feeds one spec's simulation rounds into the shared kernel.

    Sweep specs wrap a :func:`~repro.simulator.sweep.saturation_plan`
    generator; workload specs issue a single trace-replay round.  The gang
    loop calls :meth:`next_round` with the previous round's statistics and
    arms the returned configs as fresh lanes.
    """

    def __init__(self, spec: ExperimentSpec) -> None:
        self.spec = spec
        self.config = spec.build_simulation_config()
        self.trace = spec.build_workload_trace()
        self.round_stats: list[SimulationStats | None] = []
        self.outstanding = 0
        self.replay_stats: SimulationStats | None = None
        self.sweep: LoadSweepResult | None = None
        self._plan = None if self.trace is not None else saturation_plan(
            self.config, batch_coarse=True
        )
        self._replay_issued = False

    def next_round(
        self, stats: "list[SimulationStats] | None"
    ) -> "list[SimulationConfig] | None":
        """Advance with the finished round's stats; return the next round."""
        if self._plan is not None:
            try:
                return self._plan.send(stats)
            except StopIteration as stop:
                self.sweep = stop.value
                return None
        if not self._replay_issued:
            self._replay_issued = True
            return [self.config]
        (self.replay_stats,) = stats
        return None


def run_gang_detailed(
    specs: Sequence[ExperimentSpec],
    max_width: int = DEFAULT_MAX_WIDTH,
) -> tuple[list[PredictionResult], int]:
    """:func:`run_gang` plus the total lane count (for progress reporting)."""
    specs = list(specs)
    if not specs:
        return [], 0
    key = gang_key(specs[0])
    if key is None:
        raise ValidationError(
            "run_gang needs simulation-mode specs (analytical and "
            "sanitizer-engine specs cannot be fused)"
        )
    for spec in specs[1:]:
        if gang_key(spec) != key:
            raise ValidationError(
                "all specs of a gang must share one gang_key(); "
                "group with plan_gangs() first"
            )

    topology = specs[0].build_topology()
    routing = build_routing_tables(topology)
    # Evaluate the physical model per spec (each PredictionResult carries
    # its own physical record, exactly like the sequential path).  The gang
    # key forces identical architecture overrides, so the link latencies
    # agree; any spec that still diverges falls back to solo execution.
    physicals = [
        NoCPhysicalModel(spec.build_parameters()).evaluate(topology)
        for spec in specs
    ]
    link_latencies = physicals[0].link_latencies
    fused_indices = [
        index
        for index in range(len(specs))
        if physicals[index].link_latencies == link_latencies
    ]
    solo_indices = [
        index for index in range(len(specs)) if index not in set(fused_indices)
    ]

    network = build_network(
        topology,
        config=specs[0].build_simulation_config().network_config(),
        link_latencies=link_latencies,
        routing=routing,
    )

    drivers = [_SpecDriver(specs[index]) for index in fused_indices]
    engine_meta: dict[int, tuple[_SpecDriver, int]] = {}
    lanes_used = 0

    def make_engines(driver: _SpecDriver, configs) -> list:
        nonlocal lanes_used
        driver.outstanding = len(configs)
        driver.round_stats = [None] * len(configs)
        engines = []
        for position, config in enumerate(configs):
            simulator = Simulator(
                topology,
                replace(config, engine="vec"),
                network=network,
                trace=driver.trace,
            )
            engine_meta[id(simulator.engine)] = (driver, position)
            engines.append(simulator.engine)
            lanes_used += 1
        return engines

    initial: list = []
    for driver in drivers:
        configs = driver.next_round(None)
        if configs:
            initial.extend(make_engines(driver, configs))

    def on_finish(engine, stats):
        driver, position = engine_meta.pop(id(engine))
        driver.round_stats[position] = stats
        driver.outstanding -= 1
        if driver.outstanding:
            return []
        configs = driver.next_round(driver.round_stats)
        if configs is None:
            return []
        return make_engines(driver, configs)

    if initial:
        run_batched(
            initial[:max_width], pending=initial[max_width:], on_finish=on_finish
        )

    results: list[PredictionResult | None] = [None] * len(specs)
    for driver_index, spec_index in enumerate(fused_indices):
        spec = specs[spec_index]
        driver = drivers[driver_index]
        physical = physicals[spec_index]
        if driver.trace is not None:
            stats = driver.replay_stats
            zero_load = stats.average_packet_latency
            saturation = stats.accepted_load
            details = {"replay": stats, "workload": dict(spec.workload)}
        else:
            sweep = driver.sweep
            zero_load = sweep.zero_load_latency
            saturation = sweep.saturation_throughput
            details = {
                "sweep_points": [(rate, stats) for rate, stats in sweep.points]
            }
        results[spec_index] = PredictionResult(
            topology_name=topology.name,
            area_overhead=physical.area_overhead,
            total_area_mm2=physical.area.total_area_mm2,
            noc_power_w=physical.noc_power_w,
            zero_load_latency_cycles=zero_load,
            saturation_throughput=saturation,
            performance_mode=spec.performance_mode,
            physical=physical,
            details=details,
        )
    for spec_index in solo_indices:
        results[spec_index] = specs[spec_index].run()
    return results, lanes_used


def run_gang(
    specs: Sequence[ExperimentSpec],
    max_width: int = DEFAULT_MAX_WIDTH,
) -> list[PredictionResult]:
    """Execute a gang of compatible specs through one lane-recycled kernel.

    All specs must share one :func:`gang_key` (raises
    :class:`~repro.utils.validation.ValidationError` otherwise).  Returns
    one :class:`~repro.toolchain.results.PredictionResult` per spec, in
    input order, bit-identical to ``[spec.run() for spec in specs]`` — the
    sweep points, replay statistics (phases included), and every scalar
    metric match the sequential path exactly.
    """
    return run_gang_detailed(specs, max_width=max_width)[0]


__all__ = [
    "DEFAULT_MAX_WIDTH",
    "UNFUSABLE_ENGINES",
    "gang_key",
    "gang_key_id",
    "plan_gangs",
    "run_gang",
    "run_gang_detailed",
]
