"""Declarative experiment specifications.

An :class:`ExperimentSpec` is a frozen, hashable, JSON-round-trippable
description of one prediction-toolchain run: which topology (by registry
name plus generator kwargs), on which architecture (a KNC scenario key plus
:class:`~repro.physical.parameters.ArchitecturalParameters` overrides), under
which traffic pattern, in which performance mode, with which simulation
configuration.  Because a spec is pure data, it can be stored in version
control, shipped between processes, expanded into campaign grids, and used as
a stable memoization key: :attr:`ExperimentSpec.spec_id` is a content hash of
the canonical JSON form, identical across processes and Python versions.

The spec resolves to live objects on demand: :meth:`build_topology`,
:meth:`build_parameters`, :meth:`build_simulation_config`,
:meth:`build_toolchain`, and :meth:`run` (the whole pipeline in one call).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from repro.arch.knc import KNC_SCENARIOS
from repro.physical.parameters import (
    AXI4_PROTOCOL,
    LIGHTWEIGHT_PROTOCOL,
    ArchitecturalParameters,
    TransportProtocolModel,
)
from repro.physical.technology import TECHNOLOGY_PRESETS
from repro.simulator.engine import check_engine_name
from repro.simulator.simulation import SimulationConfig
from repro.simulator.traffic import check_traffic_name
from repro.toolchain.predict import PredictionToolchain
from repro.toolchain.results import PredictionResult
from repro.topologies.base import Topology
from repro.topologies.registry import TOPOLOGY_FACTORIES, available_topologies, make_topology
from repro.utils.validation import ValidationError, check_type
from repro.workloads import check_workload_name
from repro.workloads.generators import (
    SEED_INDEPENDENT_WORKLOADS,
    check_workload_params,
    workload_trace_from_mapping,
)
from repro.workloads.trace import WorkloadTrace

#: Keys allowed in a spec's ``workload`` mapping.
_WORKLOAD_KEYS = ("name", "seed", "params")

#: Transport protocols addressable by name from a spec's ``arch`` overrides.
PROTOCOL_PRESETS: dict[str, TransportProtocolModel] = {
    AXI4_PROTOCOL.name: AXI4_PROTOCOL,
    LIGHTWEIGHT_PROTOCOL.name: LIGHTWEIGHT_PROTOCOL,
}

#: ``arch`` override keys that map straight onto ArchitecturalParameters fields.
_ARCH_SCALAR_KEYS = (
    "num_tiles",
    "endpoint_area_ge",
    "tile_aspect_ratio",
    "frequency_hz",
    "link_bandwidth_bits",
    "endpoints_per_tile",
    "name",
)

_ARCH_KEYS = _ARCH_SCALAR_KEYS + ("technology", "protocol")

_SIM_KEYS = tuple(f.name for f in fields(SimulationConfig))

#: Default endpoint area when no scenario and no override is given — the
#: KNC-like 35 MGE tile of the paper's main evaluation.
DEFAULT_ENDPOINT_AREA_GE = 35e6


def check_sim_overrides(overrides: Mapping[str, Any]) -> None:
    """Raise :class:`ValidationError` on keys that are not SimulationConfig fields.

    Shared by spec validation and the CLI's ``replay`` path so the accepted
    key set and the error wording cannot drift apart.
    """
    unknown = set(overrides) - set(_SIM_KEYS)
    if unknown:
        raise ValidationError(
            f"unknown simulation override(s) {sorted(unknown)}; "
            f"known: {sorted(_SIM_KEYS)}"
        )


def _normalise(value: Any, context: str) -> Any:
    """Coerce ``value`` into a canonical JSON-serializable form.

    Sets become sorted lists, tuples become lists, mapping keys must be
    strings; anything that JSON cannot express raises ``ValidationError`` so
    that a spec is serializable by construction.
    """
    if isinstance(value, (set, frozenset)):
        return sorted(_normalise(item, context) for item in value)
    if isinstance(value, (list, tuple)):
        return [_normalise(item, context) for item in value]
    if isinstance(value, Mapping):
        normalised = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValidationError(f"{context}: mapping keys must be strings, got {key!r}")
            normalised[key] = _normalise(item, context)
        return normalised
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ValidationError(
        f"{context}: value {value!r} of type {type(value).__name__} is not JSON-serializable"
    )


@dataclass(frozen=True, eq=False)
class ExperimentSpec:
    """One declarative toolchain experiment.

    A spec is frozen, hashable and JSON-round-trippable pure data: it can be
    stored in version control, shipped between processes, expanded into
    campaign grids, and used as a stable memoization key
    (:attr:`spec_id` is a content hash of the canonical JSON form).  It
    resolves to live objects on demand via :meth:`build_topology`,
    :meth:`build_parameters`, :meth:`build_simulation_config`,
    :meth:`build_toolchain`, and :meth:`run`.

    Examples
    --------
    Describe, identify and execute one Figure 6a experiment:

    >>> from repro.experiments import ExperimentSpec
    >>> spec = ExperimentSpec(
    ...     topology="sparse_hamming", rows=8, cols=8,
    ...     topology_kwargs={"s_r": [4], "s_c": [2, 5]}, scenario="a",
    ... )
    >>> spec.spec_id                    # stable content hash
    'exp-...'
    >>> spec == ExperimentSpec.from_json(spec.to_json())  # JSON round-trip
    True
    >>> result = spec.run()             # doctest: +SKIP
    >>> result.saturation_throughput    # doctest: +SKIP
    0.53...

    Derive a variant without mutating the original:

    >>> spec.with_overrides(traffic="tornado").traffic
    'tornado'

    Attributes
    ----------
    topology:
        Registry identifier (see ``repro.topologies.registry``).
    rows, cols:
        Tile-grid dimensions.
    topology_kwargs:
        Extra generator kwargs (e.g. ``{"s_r": [4], "s_c": [2, 5]}`` for the
        sparse Hamming graph).  Normalised to canonical JSON form on
        construction, so sets and tuples are accepted.
    scenario:
        Optional KNC scenario key (``"a"`` .. ``"d"``) supplying the baseline
        architecture; ``arch`` overrides are applied on top.
    arch:
        Overrides of :class:`ArchitecturalParameters` fields.  ``technology``
        and ``protocol`` are preset names (``"22nm-hp"``, ``"AXI4"``, ...).
    traffic:
        Traffic pattern name from the traffic registry (ignored when a
        ``workload`` is set — the trace supplies the traffic).
    performance_mode:
        ``"analytical"`` or ``"simulation"``.
    sim:
        Overrides of :class:`SimulationConfig` fields.  The ``engine``
        override selects the simulation kernel (see
        :mod:`repro.simulator.engine`) but is excluded from :attr:`spec_id`:
        engines are bit-identical, so engine-distinct specs share one
        identity (and one memoization cache entry).
    workload:
        Optional trace-driven workload: ``{"name": <registry id>, "seed":
        <int>, "params": {...}}`` (see
        :data:`repro.workloads.WORKLOAD_FACTORIES`).  The performance stage
        then replays the generated trace through the cycle-accurate
        simulator instead of sweeping Bernoulli loads, and requires
        ``performance_mode="simulation"``.  ``None`` (the default) keeps
        synthetic traffic — and keeps the spec's identity hash exactly as it
        was before workloads existed.
    label:
        Free-form tag for reports (not part of the identity hash).
    """

    topology: str
    rows: int
    cols: int
    topology_kwargs: Mapping[str, Any] = field(default_factory=dict)
    scenario: str | None = None
    arch: Mapping[str, Any] = field(default_factory=dict)
    traffic: str = "uniform"
    performance_mode: str = "analytical"
    sim: Mapping[str, Any] = field(default_factory=dict)
    workload: Mapping[str, Any] | None = None
    label: str = ""

    def __post_init__(self) -> None:
        check_type("rows", self.rows, int)
        check_type("cols", self.cols, int)
        if self.rows < 1 or self.cols < 1 or self.rows * self.cols < 2:
            raise ValidationError("spec needs a grid of at least 2 tiles")
        if self.topology not in TOPOLOGY_FACTORIES:
            raise ValidationError(
                f"unknown topology {self.topology!r}; known: {available_topologies()}"
            )
        if self.scenario is not None and self.scenario not in KNC_SCENARIOS:
            raise ValidationError(
                f"unknown scenario {self.scenario!r}; known: {sorted(KNC_SCENARIOS)}"
            )
        check_traffic_name(self.traffic)
        if self.performance_mode not in ("analytical", "simulation"):
            raise ValidationError(
                f"performance_mode must be 'analytical' or 'simulation', "
                f"got {self.performance_mode!r}"
            )
        for key in self.arch:
            if key not in _ARCH_KEYS:
                raise ValidationError(
                    f"unknown arch override {key!r}; known: {sorted(_ARCH_KEYS)}"
                )
        technology = self.arch.get("technology")
        if technology is not None and technology not in TECHNOLOGY_PRESETS:
            raise ValidationError(
                f"unknown technology preset {technology!r}; "
                f"known: {sorted(TECHNOLOGY_PRESETS)}"
            )
        protocol = self.arch.get("protocol")
        if protocol is not None and protocol not in PROTOCOL_PRESETS:
            raise ValidationError(
                f"unknown protocol preset {protocol!r}; known: {sorted(PROTOCOL_PRESETS)}"
            )
        if "traffic" in self.sim:
            # Two spellings for the same knob would make contradictory
            # specs constructible and split the memoization key space.
            raise ValidationError(
                "set the traffic pattern through the spec-level 'traffic' "
                "field, not a simulation override"
            )
        check_sim_overrides(self.sim)
        if "engine" in self.sim:
            # Validate the engine name now, not at run time — a campaign
            # with a typo'd engine must fail before any experiment runs.
            check_engine_name(self.sim["engine"])
        if self.workload is not None:
            if not isinstance(self.workload, Mapping):
                raise ValidationError(
                    "workload must be a mapping like "
                    "{'name': 'dnn_inference', 'seed': 0, 'params': {...}}"
                )
            unknown_keys = set(self.workload) - set(_WORKLOAD_KEYS)
            if unknown_keys:
                raise ValidationError(
                    f"unknown workload keys {sorted(unknown_keys)}; "
                    f"known: {sorted(_WORKLOAD_KEYS)}"
                )
            if "name" not in self.workload:
                raise ValidationError("workload needs a 'name' key")
            check_workload_name(self.workload["name"])
            seed = self.workload.get("seed", 0)
            check_type("workload seed", seed, int)
            params = self.workload.get("params", {})
            if not isinstance(params, Mapping):
                raise ValidationError("workload 'params' must be a mapping")
            check_workload_params(self.workload["name"], dict(params))
            if self.performance_mode != "simulation":
                raise ValidationError(
                    "trace-driven workloads require performance_mode='simulation'"
                )
        # Normalise the mapping fields so that equality, hashing and JSON
        # round-trips are all defined on the same canonical form.
        object.__setattr__(
            self, "topology_kwargs", _normalise(dict(self.topology_kwargs), "topology_kwargs")
        )
        object.__setattr__(self, "arch", _normalise(dict(self.arch), "arch"))
        object.__setattr__(self, "sim", _normalise(dict(self.sim), "sim"))
        if self.workload is not None:
            workload = dict(self.workload)
            if workload["name"] in SEED_INDEPENDENT_WORKLOADS:
                # The generator ignores its seed; normalising it away keeps
                # seed-distinct-but-identical specs on one spec_id (and one
                # memoization cache entry).
                workload.pop("seed", None)
            object.__setattr__(self, "workload", _normalise(workload, "workload"))

    # ------------------------------------------------------------- identity
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form of the spec (JSON-serializable)."""
        return {
            "topology": self.topology,
            "rows": self.rows,
            "cols": self.cols,
            "topology_kwargs": dict(self.topology_kwargs),
            "scenario": self.scenario,
            "arch": dict(self.arch),
            "traffic": self.traffic,
            "performance_mode": self.performance_mode,
            "sim": dict(self.sim),
            "workload": dict(self.workload) if self.workload is not None else None,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys rejected)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValidationError(f"unknown spec fields: {sorted(unknown)}")
        missing = {"topology", "rows", "cols"} - set(data)
        if missing:
            raise ValidationError(f"spec is missing required fields: {sorted(missing)}")
        return cls(**dict(data))

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def _identity_dict(self) -> dict[str, Any]:
        identity = self.to_dict()
        identity.pop("label")  # labels are cosmetic, not part of the identity
        if "engine" in identity["sim"] or "audit_interval" in identity["sim"]:
            # Engines are bit-identical (enforced by the cross-engine
            # differential tests), so the engine choice must not split the
            # identity: specs differing only in engine share one spec_id —
            # and with it the runner's on-disk memoization cache entry.
            # The sanitizer's audit sampling interval only changes how often
            # the (read-only) invariant checks run, never the statistics,
            # so it is excluded for the same reason.
            identity["sim"] = {
                key: value
                for key, value in identity["sim"].items()
                if key not in ("engine", "audit_interval")
            }
        if identity["workload"] is None:
            # Workload-less specs hash exactly as they did before the
            # workload field existed, so pre-existing spec_ids (and with
            # them on-disk memoization caches) stay valid.
            identity.pop("workload")
        else:
            # The trace supplies the traffic, so the (ignored) synthetic
            # pattern must not split the identity of workload specs.
            identity.pop("traffic")
        return identity

    @property
    def spec_id(self) -> str:
        """Stable content hash of the spec (identical across processes)."""
        canonical = json.dumps(self._identity_dict(), sort_keys=True, separators=(",", ":"))
        return "exp-" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExperimentSpec):
            return NotImplemented
        return self._identity_dict() == other._identity_dict()

    def __hash__(self) -> int:
        return hash(self.spec_id)

    def with_overrides(self, **changes) -> "ExperimentSpec":
        """Return a copy with some fields replaced (re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------------ resolution
    def build_topology(self) -> Topology:
        """Instantiate the topology described by this spec."""
        kwargs = dict(self.topology_kwargs)
        if (
            self.topology == "sparse_hamming"
            and self.scenario is not None
            and "s_r" not in kwargs
            and "s_c" not in kwargs
        ):
            # Default to the configuration the paper's customization selected
            # for this scenario (the Figure 6 setup).
            scenario = KNC_SCENARIOS[self.scenario]
            kwargs["s_r"] = sorted(scenario.paper_s_r)
            kwargs["s_c"] = sorted(scenario.paper_s_c)
        endpoints = kwargs.pop(
            "endpoints_per_tile", self.build_parameters().endpoints_per_tile
        )
        return make_topology(
            self.topology, self.rows, self.cols, endpoints_per_tile=endpoints, **kwargs
        )

    def build_parameters(self) -> ArchitecturalParameters:
        """Resolve the architectural parameters (scenario baseline + overrides)."""
        overrides = dict(self.arch)
        technology_name = overrides.pop("technology", None)
        protocol_name = overrides.pop("protocol", None)
        changes: dict[str, Any] = dict(overrides)
        if technology_name is not None:
            changes["technology"] = TECHNOLOGY_PRESETS[technology_name]
        if protocol_name is not None:
            changes["protocol"] = PROTOCOL_PRESETS[protocol_name]
        if self.scenario is not None:
            base = KNC_SCENARIOS[self.scenario].parameters()
            changes.setdefault("num_tiles", self.rows * self.cols)
            return base.scaled(**changes)
        changes.setdefault("num_tiles", self.rows * self.cols)
        changes.setdefault("endpoint_area_ge", DEFAULT_ENDPOINT_AREA_GE)
        changes.setdefault("name", self.label or "experiment")
        return ArchitecturalParameters(**changes)

    def build_simulation_config(self) -> SimulationConfig:
        """Resolve the simulation configuration (defaults + ``sim`` overrides)."""
        overrides = dict(self.sim)
        overrides.setdefault("traffic", self.traffic)
        return SimulationConfig(**overrides)

    def build_workload_trace(self) -> WorkloadTrace | None:
        """Generate the workload trace this spec replays (``None`` if synthetic).

        The trace is a deterministic function of the workload mapping and
        the spec's grid size, so two processes resolving the same spec
        replay byte-identical traces.
        """
        if self.workload is None:
            return None
        return workload_trace_from_mapping(dict(self.workload), self.rows, self.cols)

    def build_toolchain(self) -> PredictionToolchain:
        """Build the prediction toolchain this spec runs on."""
        return PredictionToolchain(
            params=self.build_parameters(),
            performance_mode=self.performance_mode,
            simulation_config=self.build_simulation_config(),
            traffic=self.traffic,
            workload=self.workload,
        )

    def run(self) -> PredictionResult:
        """Execute the spec: topology + architecture -> prediction."""
        return self.build_toolchain().predict(self.build_topology())

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [f"{self.topology} {self.rows}x{self.cols}"]
        if self.topology_kwargs:
            parts.append(json.dumps(dict(self.topology_kwargs), sort_keys=True))
        if self.scenario:
            parts.append(f"scenario={self.scenario}")
        if self.workload is not None:
            parts.append(f"workload={self.workload['name']}")
        else:
            parts.append(f"traffic={self.traffic}")
        parts.append(self.performance_mode)
        return " ".join(parts)


# Toolchain/topology sharing keys used by the runner: specs that differ only
# in traffic share a toolchain (and therefore its routing-table cache), and
# specs that describe the same graph share the topology object.
def toolchain_key(spec: ExperimentSpec) -> tuple:
    """Hashable key of everything the toolchain depends on except traffic."""
    return (
        spec.scenario,
        json.dumps(dict(spec.arch), sort_keys=True),
        spec.performance_mode,
        json.dumps(dict(spec.sim), sort_keys=True),
        json.dumps(dict(spec.workload), sort_keys=True) if spec.workload else None,
        spec.rows,
        spec.cols,
        spec.label,
    )


def topology_key(spec: ExperimentSpec) -> tuple:
    """Hashable key of everything the topology build depends on."""
    return (
        spec.topology,
        spec.rows,
        spec.cols,
        json.dumps(dict(spec.topology_kwargs), sort_keys=True),
        spec.scenario,
        json.dumps(dict(spec.arch), sort_keys=True),
    )


__all__ = [
    "ExperimentSpec",
    "PROTOCOL_PRESETS",
    "DEFAULT_ENDPOINT_AREA_GE",
    "check_sim_overrides",
    "toolchain_key",
    "topology_key",
]
