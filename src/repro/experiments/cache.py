"""Memoization backends of :class:`~repro.experiments.runner.ExperimentRunner`.

The runner talks to its cache through two methods — ``load(spec)`` and
``save(spec, prediction)`` — so durable backends can be swapped in without
touching any caller:

* :class:`DirectoryCache` — the original one-JSON-file-per-spec layout.
  Writes are atomic (temp file + :func:`os.replace`), so a worker killed
  mid-write can never leave a truncated entry behind; loads validate the
  payload shape *and* that the stored spec actually hashes to the requested
  ``spec_id``, treating any mismatch as a cache miss (warned once per cache,
  counted in :attr:`DirectoryCache.invalid_entries`).
* :class:`~repro.service.store.StoreCache` — the content-addressed SQLite
  result store of :mod:`repro.service` behind the same interface.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any, Mapping, Protocol

from repro.experiments.spec import ExperimentSpec
from repro.experiments.serialization import (
    prediction_from_dict,
    prediction_to_dict,
    validate_result_payload,
)
from repro.toolchain.results import PredictionResult
from repro.utils.validation import ValidationError


class CacheBackend(Protocol):
    """What the runner requires from a memoization backend."""

    def load(self, spec: ExperimentSpec) -> PredictionResult | None:
        """Return the memoized prediction for ``spec``, or ``None`` on a miss."""

    def save(self, spec: ExperimentSpec, prediction: PredictionResult) -> None:
        """Persist ``prediction`` under ``spec``'s identity."""


def validate_cache_payload(payload: Any, spec_id: str | None = None) -> None:
    """Validate a ``{"spec": ..., "result": ...}`` cache entry.

    Shared by :class:`DirectoryCache` loads and the store migration tool so
    both apply the same notion of "trustworthy entry".

    Parameters
    ----------
    payload:
        The decoded JSON payload.
    spec_id:
        When given, the spec the caller expects this entry to describe; the
        stored spec is rebuilt and re-hashed, and an id mismatch (a renamed
        file, a stale entry from an older spec schema) is rejected.

    Raises
    ------
    ValidationError
        On any structural problem — the entry must be treated as a miss.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError(
            f"cache entry must be a JSON object, got {type(payload).__name__}"
        )
    if "spec" not in payload or "result" not in payload:
        missing = [key for key in ("spec", "result") if key not in payload]
        raise ValidationError(f"cache entry is missing keys: {missing}")
    if not isinstance(payload["spec"], Mapping):
        raise ValidationError("cache entry 'spec' must be a mapping")
    stored_spec = ExperimentSpec.from_dict(payload["spec"])
    if spec_id is not None and stored_spec.spec_id != spec_id:
        raise ValidationError(
            f"cache entry describes spec {stored_spec.spec_id}, "
            f"but {spec_id} was requested"
        )
    validate_result_payload(payload["result"])


class DirectoryCache:
    """One JSON file per spec_id, with atomic writes and validated loads.

    Parameters
    ----------
    cache_dir:
        Directory holding ``<spec_id>.json`` entries (created if missing).

    Examples
    --------
    >>> cache = DirectoryCache("/tmp/repro-cache")      # doctest: +SKIP
    >>> cache.save(spec, spec.run())                    # doctest: +SKIP
    >>> cache.load(spec) is not None                    # doctest: +SKIP
    True
    """

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        #: Invalid entries encountered so far (truncated, mismatched, junk).
        self.invalid_entries = 0
        self._warned = False

    def path_for(self, spec: ExperimentSpec) -> Path:
        """On-disk location of the entry for ``spec``."""
        return self.cache_dir / f"{spec.spec_id}.json"

    def _reject(self, path: Path, reason: str) -> None:
        """Count an invalid entry; warn on the first one only."""
        self.invalid_entries += 1
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"ignoring invalid cache entry {path}: {reason} "
                "(recomputing; further invalid entries in this cache are "
                "skipped silently)",
                RuntimeWarning,
                stacklevel=3,
            )

    def load(self, spec: ExperimentSpec) -> PredictionResult | None:
        """Validated load: any malformed or mismatched entry is a miss."""
        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            self._reject(path, f"not valid JSON ({error})")
            return None
        try:
            validate_cache_payload(payload, spec_id=spec.spec_id)
            return prediction_from_dict(payload["result"])
        except (ValidationError, KeyError, TypeError) as error:
            self._reject(path, str(error))
            return None

    def save(self, spec: ExperimentSpec, prediction: PredictionResult) -> None:
        """Atomic write: temp file in the same directory, then ``os.replace``.

        A worker killed between the two steps leaves either the old entry or
        no entry — never a truncated one that would poison later runs.  The
        temp name carries the PID so concurrent writers of the same spec
        (e.g. two queue workers racing on an expired lease) cannot clobber
        each other's half-written files; last ``os.replace`` wins, and both
        payloads are identical by determinism.
        """
        path = self.path_for(spec)
        payload = {"spec": spec.to_dict(), "result": prediction_to_dict(prediction)}
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(text)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # replace failed midway; don't litter
                tmp.unlink()


__all__ = ["CacheBackend", "DirectoryCache", "validate_cache_payload"]
