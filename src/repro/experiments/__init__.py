"""Declarative experiment API: the canonical way to run anything in the repo.

The subsystem has four layers:

* :mod:`repro.experiments.spec` — :class:`ExperimentSpec`, a frozen, hashable,
  JSON-round-trippable description of one toolchain run with a stable
  ``spec_id`` content hash;
* :mod:`repro.experiments.campaign` — :class:`Campaign`, cartesian grid
  expansion over topologies x sizes x traffic x modes x scenarios with
  automatic applicability filtering, plus :func:`figure6_campaign`;
* :mod:`repro.experiments.runner` — :class:`ExperimentRunner` (serial or
  process-parallel execution with on-disk memoization by ``spec_id``) and
  :class:`ResultSet` (tabular export and Pareto/compliance helpers);
* :mod:`repro.experiments.cache` — pluggable memoization backends: the
  atomic, validated :class:`DirectoryCache` and (via
  :mod:`repro.service.store`) the durable SQLite result store;
* :mod:`repro.experiments.serialization` — the JSON prediction payload
  shared by caches, worker processes, the service store, and the HTTP API;
* :mod:`repro.experiments.cli` — the ``repro`` console script.

The declarative search layer lives in :mod:`repro.optimize`; its
:class:`SearchSpec` (the search-level sibling of :class:`ExperimentSpec`) and
:func:`run_search` are re-exported here so experiment code has one import
surface.
"""

from repro.experiments.spec import ExperimentSpec, PROTOCOL_PRESETS
from repro.experiments.cache import DirectoryCache
from repro.experiments.campaign import Campaign, figure6_campaign
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRunner,
    ResultSet,
    prediction_from_dict,
    prediction_to_dict,
    run_campaign,
)
from repro.optimize import SearchResult, SearchSpec, run_search

__all__ = [
    "ExperimentSpec",
    "PROTOCOL_PRESETS",
    "Campaign",
    "figure6_campaign",
    "DirectoryCache",
    "ExperimentResult",
    "ExperimentRunner",
    "ResultSet",
    "run_campaign",
    "prediction_to_dict",
    "prediction_from_dict",
    "SearchResult",
    "SearchSpec",
    "run_search",
]
