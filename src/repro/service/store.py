"""Content-addressed result store: SQLite rows keyed by ``spec_id``.

The store is the durable successor of the runner's one-JSON-file-per-spec
memoization directory.  Every row holds one executed
:class:`~repro.experiments.spec.ExperimentSpec` — the canonical spec JSON,
the serialized prediction payload (see
:mod:`repro.experiments.serialization`), and denormalized identity columns
(topology family, grid, scenario, workload name, ``trace_id``,
``search_id``) with secondary indexes so accumulated campaigns can be
*queried* without re-running anything.

Properties the rest of the service layer builds on:

* **Content addressing** — the primary key is
  :attr:`~repro.experiments.spec.ExperimentSpec.spec_id`, a content hash of
  the spec, so a row can only ever describe one experiment and re-running
  any campaign against the store is a 100% hit.
* **Atomic upserts** — writes are single ``INSERT .. ON CONFLICT DO
  UPDATE`` statements inside SQLite transactions; a killed worker can never
  leave a torn row.  Results are deterministic, so concurrent writers of
  the same spec converge on identical payloads.
* **Schema versioning** — a ``meta`` table records the store schema
  version and every row records the result-payload schema version; opening
  a store written by a newer layout fails loudly instead of corrupting it.
* **Migration** — :meth:`ResultStore.import_cache_dir` imports a legacy
  memoization directory in one shot, validating each entry (including that
  the file name matches the content hash of the stored spec).

Concurrency model: every operation opens its own short-lived connection
(WAL journal, 30 s busy timeout), which makes the store safe to share
between threads *and* processes — the queue workers, the HTTP API, and
offline ``repro query`` calls all point at the same file.
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import closing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.experiments.cache import validate_cache_payload
from repro.experiments.runner import ExperimentResult, ResultSet
from repro.experiments.serialization import (
    RESULT_SCHEMA_VERSION,
    prediction_from_dict,
    prediction_to_dict,
    validate_result_payload,
)
from repro.experiments.scheduler import gang_key_id
from repro.experiments.spec import ExperimentSpec
from repro.toolchain.results import PredictionResult
from repro.utils.validation import ValidationError

#: Version of the SQLite layout (tables/columns/indexes) itself.
#: v2 added ``jobs.gang_key`` (compiled-network compatibility hash used by
#: the batch-claiming gang worker); v1 stores are migrated in place on open.
STORE_SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    spec_id          TEXT PRIMARY KEY,
    schema_version   INTEGER NOT NULL,
    topology         TEXT NOT NULL,
    rows             INTEGER NOT NULL,
    cols             INTEGER NOT NULL,
    scenario         TEXT,
    traffic          TEXT,
    workload         TEXT,
    trace_id         TEXT,
    search_id        TEXT,
    performance_mode TEXT NOT NULL,
    spec_json        TEXT NOT NULL,
    result_json      TEXT NOT NULL,
    created_at       REAL NOT NULL,
    updated_at       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_topology ON results (topology);
CREATE INDEX IF NOT EXISTS idx_results_trace    ON results (trace_id);
CREATE INDEX IF NOT EXISTS idx_results_search   ON results (search_id);
CREATE TABLE IF NOT EXISTS jobs (
    spec_id      TEXT PRIMARY KEY,
    campaign_id  TEXT,
    spec_json    TEXT NOT NULL,
    status       TEXT NOT NULL,
    worker_id    TEXT,
    lease_expires REAL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    completions  INTEGER NOT NULL DEFAULT 0,
    error        TEXT,
    enqueued_at  REAL NOT NULL,
    completed_at REAL,
    gang_key     TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_status   ON jobs (status);
CREATE INDEX IF NOT EXISTS idx_jobs_campaign ON jobs (campaign_id);
CREATE INDEX IF NOT EXISTS idx_jobs_gang     ON jobs (gang_key);
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id TEXT NOT NULL,
    position    INTEGER NOT NULL,
    spec_id     TEXT NOT NULL,
    name        TEXT,
    PRIMARY KEY (campaign_id, position)
);
"""


@dataclass(frozen=True)
class StoredResult:
    """One store row, decoded.

    Attributes
    ----------
    spec_id:
        Content hash of the spec (the primary key).
    spec:
        The spec as plain data (``ExperimentSpec.to_dict`` form).
    result:
        The serialized prediction payload
        (:func:`~repro.experiments.serialization.prediction_to_dict` form).
    trace_id, search_id:
        Secondary identities (``None`` when not applicable).
    schema_version:
        Result-payload schema version the row was written with.
    created_at, updated_at:
        Unix timestamps of first insert and last upsert.
    """

    spec_id: str
    spec: dict[str, Any]
    result: dict[str, Any]
    topology: str
    rows: int
    cols: int
    scenario: str | None
    traffic: str | None
    workload: str | None
    trace_id: str | None
    search_id: str | None
    performance_mode: str
    schema_version: int
    created_at: float
    updated_at: float

    def build_spec(self) -> ExperimentSpec:
        """Rebuild the live :class:`ExperimentSpec` this row describes."""
        return ExperimentSpec.from_dict(self.spec)

    def prediction(self) -> PredictionResult:
        """Rebuild the stored prediction."""
        return prediction_from_dict(self.result)


@dataclass
class MigrationReport:
    """Outcome of :meth:`ResultStore.import_cache_dir`.

    Attributes
    ----------
    imported:
        Entries upserted into the store.
    already_present:
        Entries whose spec_id was already stored (payload refreshed).
    invalid:
        ``(file name, reason)`` pairs for entries that failed validation.
    """

    imported: int = 0
    already_present: int = 0
    invalid: list[tuple[str, str]] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Files examined."""
        return self.imported + self.already_present + len(self.invalid)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        return (
            f"{self.imported} imported, {self.already_present} refreshed, "
            f"{len(self.invalid)} invalid of {self.total} entries"
        )


class ResultStore:
    """Content-addressed, indexed prediction store in one SQLite file.

    Parameters
    ----------
    path:
        SQLite database file (created, along with parent directories, if
        missing).  In-memory databases are rejected: the store's whole point
        is durability, and the per-operation connections would each see a
        different empty database.

    Examples
    --------
    >>> store = ResultStore("results.sqlite")           # doctest: +SKIP
    >>> store.put(spec, prediction_to_dict(spec.run())) # doctest: +SKIP
    >>> store.get(spec.spec_id).result["noc_power_w"]   # doctest: +SKIP
    1.57
    >>> len(store.query(topology="mesh"))               # doctest: +SKIP
    12
    """

    def __init__(self, path: str | Path) -> None:
        if str(path) == ":memory:":
            raise ValidationError(
                "ResultStore needs a file path; in-memory databases do not "
                "survive the store's per-operation connections"
            )
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._init_schema()

    # ------------------------------------------------------------ plumbing
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA busy_timeout = 30000")
        return conn

    def _init_schema(self) -> None:
        with closing(self._connect()) as conn:
            # WAL lets readers (the serve API) proceed while a worker writes.
            conn.execute("PRAGMA journal_mode = WAL")
            # Old tables must grow their new columns before _SCHEMA's
            # CREATE INDEX statements reference them.
            job_columns = {
                row[1] for row in conn.execute("PRAGMA table_info(jobs)")
            }
            if job_columns and "gang_key" not in job_columns:
                conn.execute("ALTER TABLE jobs ADD COLUMN gang_key TEXT")
            conn.executescript(_SCHEMA)
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'store_schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('store_schema_version', ?)",
                    (str(STORE_SCHEMA_VERSION),),
                )
                conn.commit()
            elif int(row["value"]) > STORE_SCHEMA_VERSION:
                raise ValidationError(
                    f"store {self.path} uses schema version {row['value']}, "
                    f"newer than this code understands ({STORE_SCHEMA_VERSION}); "
                    "upgrade repro instead of rewriting the store"
                )
            elif int(row["value"]) < STORE_SCHEMA_VERSION:
                self._migrate_to_v2(conn)

    @staticmethod
    def _migrate_to_v2(conn: sqlite3.Connection) -> None:
        """Backfill ``jobs.gang_key`` for a v1 store (column added above)."""
        rows = conn.execute("SELECT spec_id, spec_json FROM jobs").fetchall()
        for row in rows:
            try:
                key = gang_key_id(ExperimentSpec.from_dict(json.loads(row["spec_json"])))
            except (ValidationError, ValueError, KeyError, TypeError):
                # An undecodable legacy job simply never gangs.
                key = None
            conn.execute(
                "UPDATE jobs SET gang_key = ? WHERE spec_id = ?",
                (key, row["spec_id"]),
            )
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'store_schema_version'",
            (str(STORE_SCHEMA_VERSION),),
        )
        conn.commit()

    # -------------------------------------------------------------- writes
    def put(
        self,
        spec: ExperimentSpec,
        result: Mapping[str, Any],
        search_id: str | None = None,
    ) -> str:
        """Atomically upsert one result; returns the ``spec_id`` row key.

        Parameters
        ----------
        spec:
            The executed spec (its ``spec_id`` is the row key; identity
            columns and the workload's ``trace_id`` are derived from it).
        result:
            Serialized prediction
            (:func:`~repro.experiments.serialization.prediction_to_dict`).
        search_id:
            Optional owning search; on upsert an existing non-NULL
            ``search_id`` is preserved when the new write has none.
        """
        validate_result_payload(result)
        trace_id = None
        if spec.workload is not None:
            # Trace generation is deterministic and cheap next to the
            # simulation that produced the result; regenerating here keeps
            # trace_id an intrinsic property instead of caller-supplied data.
            trace_id = spec.build_workload_trace().trace_id
        now = time.time()
        with closing(self._connect()) as conn:
            conn.execute(
                """
                INSERT INTO results (
                    spec_id, schema_version, topology, rows, cols, scenario,
                    traffic, workload, trace_id, search_id, performance_mode,
                    spec_json, result_json, created_at, updated_at
                ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT (spec_id) DO UPDATE SET
                    schema_version   = excluded.schema_version,
                    result_json      = excluded.result_json,
                    search_id        = COALESCE(excluded.search_id, results.search_id),
                    updated_at       = excluded.updated_at
                """,
                (
                    spec.spec_id,
                    RESULT_SCHEMA_VERSION,
                    spec.topology,
                    spec.rows,
                    spec.cols,
                    spec.scenario,
                    None if spec.workload is not None else spec.traffic,
                    spec.workload["name"] if spec.workload is not None else None,
                    trace_id,
                    search_id,
                    spec.performance_mode,
                    spec.to_json(),
                    json.dumps(dict(result), sort_keys=True),
                    now,
                    now,
                ),
            )
            conn.commit()
        return spec.spec_id

    def delete(self, spec_id: str) -> bool:
        """Remove one row; returns whether it existed."""
        with closing(self._connect()) as conn:
            cursor = conn.execute("DELETE FROM results WHERE spec_id = ?", (spec_id,))
            conn.commit()
            return cursor.rowcount > 0

    # --------------------------------------------------------------- reads
    @staticmethod
    def _decode(row: sqlite3.Row) -> StoredResult:
        return StoredResult(
            spec_id=row["spec_id"],
            spec=json.loads(row["spec_json"]),
            result=json.loads(row["result_json"]),
            topology=row["topology"],
            rows=row["rows"],
            cols=row["cols"],
            scenario=row["scenario"],
            traffic=row["traffic"],
            workload=row["workload"],
            trace_id=row["trace_id"],
            search_id=row["search_id"],
            performance_mode=row["performance_mode"],
            schema_version=row["schema_version"],
            created_at=row["created_at"],
            updated_at=row["updated_at"],
        )

    def get(self, spec_id: str) -> StoredResult | None:
        """The row for ``spec_id``, or ``None``."""
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT * FROM results WHERE spec_id = ?", (spec_id,)
            ).fetchone()
        return self._decode(row) if row is not None else None

    def __contains__(self, spec_id: str) -> bool:
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT 1 FROM results WHERE spec_id = ?", (spec_id,)
            ).fetchone()
        return row is not None

    def __len__(self) -> int:
        with closing(self._connect()) as conn:
            return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def spec_ids(self) -> list[str]:
        """All stored spec_ids, in insertion order."""
        with closing(self._connect()) as conn:
            rows = conn.execute("SELECT spec_id FROM results ORDER BY rowid").fetchall()
        return [row["spec_id"] for row in rows]

    def query(
        self,
        spec_id: str | None = None,
        topology: str | None = None,
        trace_id: str | None = None,
        search_id: str | None = None,
        scenario: str | None = None,
        workload: str | None = None,
        limit: int | None = None,
    ) -> list[StoredResult]:
        """Indexed lookup over the identity columns (AND of the given filters).

        Rows come back in insertion order, so repeated queries over an
        append-only store are stable.
        """
        clauses, params = [], []
        for column, value in (
            ("spec_id", spec_id),
            ("topology", topology),
            ("trace_id", trace_id),
            ("search_id", search_id),
            ("scenario", scenario),
            ("workload", workload),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = "SELECT * FROM results"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY rowid"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with closing(self._connect()) as conn:
            rows = conn.execute(sql, params).fetchall()
        return [self._decode(row) for row in rows]

    def result_set(self, **filters: Any) -> ResultSet:
        """Materialize a query as an analysis-ready :class:`ResultSet`.

        Every entry is marked ``cached=True`` — nothing was computed, the
        predictions come straight out of the store.
        """
        return ResultSet(
            ExperimentResult(
                spec=row.build_spec(), prediction=row.prediction(), cached=True
            )
            for row in self.query(**filters)
        )

    def stats(self) -> dict[str, Any]:
        """Row counts, per-family/workload breakdowns, queue state, file size."""
        with closing(self._connect()) as conn:
            total = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
            by_topology = {
                row["topology"]: row["n"]
                for row in conn.execute(
                    "SELECT topology, COUNT(*) AS n FROM results "
                    "GROUP BY topology ORDER BY topology"
                )
            }
            by_workload = {
                (row["workload"] or "(synthetic)"): row["n"]
                for row in conn.execute(
                    "SELECT workload, COUNT(*) AS n FROM results "
                    "GROUP BY workload ORDER BY workload"
                )
            }
            searches = conn.execute(
                "SELECT COUNT(DISTINCT search_id) FROM results "
                "WHERE search_id IS NOT NULL"
            ).fetchone()[0]
            jobs = {
                row["status"]: row["n"]
                for row in conn.execute(
                    "SELECT status, COUNT(*) AS n FROM jobs "
                    "GROUP BY status ORDER BY status"
                )
            }
        return {
            "path": str(self.path),
            "store_schema_version": STORE_SCHEMA_VERSION,
            "result_schema_version": RESULT_SCHEMA_VERSION,
            "results": total,
            "by_topology": by_topology,
            "by_workload": by_workload,
            "searches": searches,
            "jobs": jobs,
            "size_bytes": self.path.stat().st_size if self.path.exists() else 0,
        }

    # ----------------------------------------------------------- migration
    def import_cache_dir(self, cache_dir: str | Path) -> MigrationReport:
        """One-shot import of a legacy memoization directory.

        Every ``*.json`` entry is validated exactly like a
        :class:`~repro.experiments.cache.DirectoryCache` load — including
        that the file name matches the content hash of the stored spec — and
        then upserted.  Invalid entries are reported, not fatal.

        Parameters
        ----------
        cache_dir:
            A directory previously used as ``ExperimentRunner(cache_dir=...)``.

        Returns
        -------
        MigrationReport
            Counts plus a ``(file, reason)`` list of rejected entries.
        """
        cache_dir = Path(cache_dir)
        if not cache_dir.is_dir():
            raise ValidationError(f"cache directory {cache_dir} does not exist")
        report = MigrationReport()
        for path in sorted(cache_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                validate_cache_payload(payload, spec_id=path.stem)
            except (OSError, json.JSONDecodeError, ValidationError) as error:
                report.invalid.append((path.name, str(error)))
                continue
            spec = ExperimentSpec.from_dict(payload["spec"])
            existed = spec.spec_id in self
            self.put(spec, payload["result"])
            if existed:
                report.already_present += 1
            else:
                report.imported += 1
        return report

    def __iter__(self) -> Iterator[StoredResult]:
        return iter(self.query())


class StoreCache:
    """:class:`ResultStore` behind the runner's cache-backend interface.

    Selecting ``ExperimentRunner(store=...)`` routes every memoization load
    and save through here, which is how campaigns, ``repro optimize`` and
    the search rungs gain durability with zero caller changes.

    Parameters
    ----------
    store:
        The backing :class:`ResultStore`.
    search_id:
        Recorded on every save (see :meth:`ResultStore.put`).
    """

    def __init__(self, store: ResultStore, search_id: str | None = None) -> None:
        self.store = store
        self.search_id = search_id

    def load(self, spec: ExperimentSpec) -> PredictionResult | None:
        row = self.store.get(spec.spec_id)
        return row.prediction() if row is not None else None

    def save(self, spec: ExperimentSpec, prediction: PredictionResult) -> None:
        self.store.put(spec, prediction_to_dict(prediction), search_id=self.search_id)


__all__ = [
    "STORE_SCHEMA_VERSION",
    "MigrationReport",
    "ResultStore",
    "StoreCache",
    "StoredResult",
]
