"""Campaign service: durable result store, sharded runner, query API.

The production-serving layer on top of :mod:`repro.experiments`:

* :mod:`repro.service.store` — content-addressed SQLite
  :class:`ResultStore` keyed by ``spec_id`` with ``trace_id``/``search_id``/
  topology indexes, schema versioning, atomic upserts, and one-shot
  migration from legacy memoization directories.  Doubles as a runner cache
  backend (:class:`StoreCache`), so campaigns and optimizer runs gain
  durability with zero caller changes.
* :mod:`repro.service.queue` — durable :class:`WorkQueue` in the same
  SQLite file: campaigns become work items claimed under expiring leases,
  so any number of workers (or restarts after a crash) drain one queue
  without duplicating work.
* :mod:`repro.service.worker` — :func:`run_worker`, the claim ->
  simulate -> store -> complete loop with lease heartbeats.
* :mod:`repro.service.api` — ``repro serve``: a stdlib threading HTTP
  server answering predictions from the store and enqueueing misses.

See ``docs/SERVICE.md`` for the store schema, queue semantics, and a
deployment sketch.
"""

from repro.service.api import ReproServer, make_server
from repro.service.queue import EnqueueReport, Job, WorkQueue, campaign_id_for
from repro.service.store import (
    MigrationReport,
    ResultStore,
    StoreCache,
    StoredResult,
)
from repro.service.worker import WorkerStats, run_worker

__all__ = [
    "EnqueueReport",
    "Job",
    "MigrationReport",
    "ReproServer",
    "ResultStore",
    "StoreCache",
    "StoredResult",
    "WorkQueue",
    "WorkerStats",
    "campaign_id_for",
    "make_server",
    "run_worker",
]
