"""Durable, sharded campaign work queue with lease-based claiming.

Campaigns are enqueued as one work item per unique ``spec_id`` in the same
SQLite file as the :class:`~repro.service.store.ResultStore`, so a result
and the job that produced it commit through one database.  N worker
processes (or repeated single-worker invocations after a crash) drain the
same queue without duplicating work:

* **Claiming is atomic.** :meth:`WorkQueue.claim` selects and marks one
  runnable job inside a single ``BEGIN IMMEDIATE`` transaction, so two
  workers can never claim the same job concurrently.
  :meth:`WorkQueue.claim_batch` extends this to gangs: up to ``batch_size``
  jobs sharing one ``gang_key`` (compiled-network compatibility, see
  :func:`~repro.experiments.scheduler.gang_key_id`) lease together in one
  transaction, so a batch worker can fuse them into a single vec kernel.
* **Ownership is a lease, not a lock.** A claimed job carries
  ``(worker_id, lease_expires)``.  A worker that dies — SIGKILL, OOM, power
  loss — simply stops renewing its lease; once the lease expires the job
  becomes claimable again.  No recovery step, no stale-lock cleanup.
* **Completion is guarded.** :meth:`complete`/:meth:`fail` only apply if
  the caller still owns the lease, so a slow worker that lost its lease
  cannot clobber the reclaiming worker's outcome (its recomputed result is
  bit-identical anyway — specs are deterministic).
* **Re-enqueue is idempotent.** Enqueueing a campaign whose results are
  already stored creates zero jobs (reported as ``already_stored``); a
  completed campaign re-runs as a 100% store hit.

The ``completions`` counter increments exactly when a job transitions to
``done``, which is how the crash/resume tests prove every spec was computed
*exactly once* across arbitrary worker kills and restarts.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from contextlib import closing
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.experiments.campaign import Campaign
from repro.experiments.scheduler import gang_key_id
from repro.experiments.spec import ExperimentSpec
from repro.service.store import ResultStore
from repro.utils.validation import ValidationError

#: Default lease duration.  Generous: a lease only matters when its worker
#: is dead, and a false expiry (slow simulation, no heartbeat) would cause
#: harmless-but-wasteful duplicate computation.
DEFAULT_LEASE_SECONDS = 300.0

#: Claims per job before it is parked as ``failed`` instead of retried —
#: a deterministic crasher must not wedge the queue forever.
DEFAULT_MAX_ATTEMPTS = 5


def campaign_id_for(specs: Sequence[ExperimentSpec], name: str = "") -> str:
    """Stable content id of a campaign: hash of its name + ordered spec_ids."""
    digest = hashlib.sha256(
        json.dumps([name, [spec.spec_id for spec in specs]]).encode("utf-8")
    )
    return "cmp-" + digest.hexdigest()[:16]


@dataclass(frozen=True)
class Job:
    """One claimed work item.

    Attributes
    ----------
    spec_id:
        Identity of the spec to compute.
    spec:
        The spec as plain data (rebuild with :meth:`build_spec`).
    campaign_id:
        Campaign the job was last enqueued under (``None`` for ad-hoc jobs).
    worker_id:
        The worker holding the lease.
    lease_expires:
        Unix time at which the lease lapses.
    attempts:
        Total claims so far, including this one.
    gang_key:
        Compiled-network compatibility hash
        (:func:`~repro.experiments.scheduler.gang_key_id`); ``None`` for
        jobs that cannot fuse (analytical mode, sanitizer engine).
    """

    spec_id: str
    spec: dict[str, Any]
    campaign_id: str | None
    worker_id: str
    lease_expires: float
    attempts: int
    gang_key: str | None = None

    def build_spec(self) -> ExperimentSpec:
        """Rebuild the live :class:`ExperimentSpec` to execute."""
        return ExperimentSpec.from_dict(self.spec)


@dataclass
class EnqueueReport:
    """Outcome of :meth:`WorkQueue.enqueue`.

    ``enqueued`` counts *new or revived* jobs — a re-enqueued, fully stored
    campaign reports ``enqueued == 0``.
    """

    campaign_id: str
    total: int = 0
    enqueued: int = 0
    already_stored: int = 0
    already_queued: int = 0

    def summary(self) -> str:
        """One-line human-readable outcome."""
        return (
            f"campaign {self.campaign_id}: {self.enqueued} job(s) enqueued, "
            f"{self.already_stored} already stored, "
            f"{self.already_queued} already queued "
            f"({self.total} unique spec(s))"
        )


class WorkQueue:
    """Lease-based work queue sharing the result store's SQLite file.

    Parameters
    ----------
    store:
        The :class:`~repro.service.store.ResultStore` (or its path) whose
        database holds the ``jobs`` table.
    clock:
        Time source for leases (returns Unix seconds).  Injectable so tests
        can expire leases deterministically instead of sleeping.
    max_attempts:
        Claims per job before it is parked as ``failed``.

    Examples
    --------
    >>> queue = WorkQueue("results.sqlite")             # doctest: +SKIP
    >>> queue.enqueue(campaign).summary()               # doctest: +SKIP
    'campaign cmp-...: 12 job(s) enqueued, ...'
    >>> job = queue.claim("worker-1")                   # doctest: +SKIP
    >>> queue.complete(job.spec_id, "worker-1")         # doctest: +SKIP
    True
    """

    def __init__(
        self,
        store: ResultStore | str | Path,
        clock: Callable[[], float] | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self._clock = clock if clock is not None else time.time
        if max_attempts < 1:
            raise ValidationError("max_attempts must be at least 1")
        self.max_attempts = max_attempts

    def _connect(self):
        conn = self.store._connect()
        # Manual transaction control: claim needs BEGIN IMMEDIATE.
        conn.isolation_level = None
        return conn

    # ------------------------------------------------------------- enqueue
    def enqueue(
        self,
        experiments: Campaign | ExperimentSpec | Iterable[ExperimentSpec],
        name: str | None = None,
    ) -> EnqueueReport:
        """Enqueue a campaign (or spec, or spec list) as durable work items.

        Specs whose results are already in the store create no jobs; specs
        already pending/running are left untouched; previously ``failed``
        jobs are revived with a fresh attempt budget.  The campaign's
        membership (ordered spec_ids) is recorded so
        :meth:`campaign_status` can report it as a unit.
        """
        if isinstance(experiments, ExperimentSpec):
            specs = [experiments]
            campaign_name = name or "adhoc"
        elif isinstance(experiments, Campaign):
            specs = list(experiments.specs)
            campaign_name = name or experiments.name
        else:
            specs = list(experiments)
            for spec in specs:
                if not isinstance(spec, ExperimentSpec):
                    raise ValidationError(f"queue expects ExperimentSpec, got {spec!r}")
            campaign_name = name or "adhoc"

        unique: dict[str, ExperimentSpec] = {}
        for spec in specs:
            unique.setdefault(spec.spec_id, spec)
        campaign_id = campaign_id_for(specs, campaign_name)
        report = EnqueueReport(campaign_id=campaign_id, total=len(unique))
        now = self._clock()

        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            stored = {
                row[0]
                for row in conn.execute(
                    f"SELECT spec_id FROM results WHERE spec_id IN "
                    f"({','.join('?' * len(unique))})",
                    list(unique),
                )
            } if unique else set()
            for position, (spec_id, spec) in enumerate(unique.items()):
                conn.execute(
                    "INSERT OR REPLACE INTO campaigns "
                    "(campaign_id, position, spec_id, name) VALUES (?, ?, ?, ?)",
                    (campaign_id, position, spec_id, campaign_name),
                )
                if spec_id in stored:
                    report.already_stored += 1
                    continue
                row = conn.execute(
                    "SELECT status FROM jobs WHERE spec_id = ?", (spec_id,)
                ).fetchone()
                if row is not None and row["status"] in ("pending", "running"):
                    report.already_queued += 1
                    continue
                # New job, or a done/failed one whose result is gone: (re)arm.
                conn.execute(
                    """
                    INSERT INTO jobs (spec_id, campaign_id, spec_json, status,
                                      attempts, completions, enqueued_at, gang_key)
                    VALUES (?, ?, ?, 'pending', 0, 0, ?, ?)
                    ON CONFLICT (spec_id) DO UPDATE SET
                        campaign_id = excluded.campaign_id,
                        status      = 'pending',
                        worker_id   = NULL,
                        lease_expires = NULL,
                        attempts    = 0,
                        error       = NULL,
                        enqueued_at = excluded.enqueued_at,
                        gang_key    = excluded.gang_key
                    """,
                    (spec_id, campaign_id, spec.to_json(), now, gang_key_id(spec)),
                )
                report.enqueued += 1
            conn.execute("COMMIT")
        return report

    # ------------------------------------------------------------ claiming
    def claim(
        self,
        worker_id: str,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ) -> Job | None:
        """Atomically claim one runnable job, or return ``None``.

        Runnable means ``pending``, or ``running`` with an expired lease
        (the previous worker is presumed dead).  The oldest-enqueued
        runnable job wins, and its attempt counter increments — a job
        claimed ``max_attempts`` times without completing is parked as
        ``failed`` rather than retried forever.
        """
        jobs = self.claim_batch(worker_id, 1, lease_seconds=lease_seconds)
        return jobs[0] if jobs else None

    def claim_batch(
        self,
        worker_id: str,
        batch_size: int,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        compatible_with: str | None = None,
    ) -> list[Job]:
        """Atomically lease up to ``batch_size`` gang-compatible jobs.

        One ``BEGIN IMMEDIATE`` transaction claims the oldest runnable job
        (the *seed*) and then keeps claiming the oldest runnable job with
        the **same non-NULL** ``gang_key`` until the batch is full or the
        gang is exhausted — so either every returned job fuses into one
        batched kernel, or the batch is a singleton (a job with
        ``gang_key IS NULL`` can never fuse and always claims alone).
        Other workers see all-or-nothing: the transaction commits every
        lease at once, and two concurrent batch claims can never share a
        job.

        ``compatible_with`` restricts the seed to a specific gang key (for
        a worker that wants to top up a gang it is already running);
        ``None`` means any runnable job seeds the batch.  Each claimed
        job's attempt counter increments exactly as with :meth:`claim`,
        and jobs over their attempt budget are parked as ``failed`` and
        skipped inside the same transaction.
        """
        if batch_size < 1:
            raise ValidationError("batch_size must be at least 1")
        now = self._clock()
        expires = now + float(lease_seconds)
        claimed: list[sqlite3.Row] = []
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                while len(claimed) < batch_size:
                    sql = (
                        "SELECT spec_id, campaign_id, spec_json, attempts, "
                        "gang_key FROM jobs WHERE (status = 'pending' "
                        "OR (status = 'running' AND lease_expires < ?))"
                    )
                    params: list[Any] = [now]
                    seed_key = claimed[0]["gang_key"] if claimed else compatible_with
                    if seed_key is not None:
                        sql += " AND gang_key = ?"
                        params.append(seed_key)
                    sql += " ORDER BY enqueued_at, rowid LIMIT 1"
                    row = conn.execute(sql, params).fetchone()
                    if row is None:
                        break
                    if row["attempts"] + 1 > self.max_attempts:
                        conn.execute(
                            "UPDATE jobs SET status = 'failed', worker_id = NULL, "
                            "error = COALESCE(error, 'exceeded max attempts') "
                            "WHERE spec_id = ?",
                            (row["spec_id"],),
                        )
                        continue
                    conn.execute(
                        "UPDATE jobs SET status = 'running', worker_id = ?, "
                        "lease_expires = ?, attempts = attempts + 1 WHERE spec_id = ?",
                        (worker_id, expires, row["spec_id"]),
                    )
                    claimed.append(row)
                    if row["gang_key"] is None:
                        break
            finally:
                if conn.in_transaction:
                    conn.execute("COMMIT")
        return [
            Job(
                spec_id=row["spec_id"],
                spec=json.loads(row["spec_json"]),
                campaign_id=row["campaign_id"],
                worker_id=worker_id,
                lease_expires=expires,
                attempts=row["attempts"] + 1,
                gang_key=row["gang_key"],
            )
            for row in claimed
        ]

    def heartbeat(
        self,
        spec_id: str,
        worker_id: str,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ) -> bool:
        """Renew the lease; ``False`` means ownership was lost (stop work)."""
        expires = self._clock() + float(lease_seconds)
        with closing(self._connect()) as conn:
            # Autocommit connection: the single UPDATE is already atomic.
            cursor = conn.execute(
                "UPDATE jobs SET lease_expires = ? "
                "WHERE spec_id = ? AND worker_id = ? AND status = 'running'",
                (expires, spec_id, worker_id),
            )
            return cursor.rowcount == 1

    def complete(self, spec_id: str, worker_id: str) -> bool:
        """Mark a claimed job done (lease-guarded); ``False`` if not owner."""
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE jobs SET status = 'done', completions = completions + 1, "
                "completed_at = ?, error = NULL "
                "WHERE spec_id = ? AND worker_id = ? AND status = 'running'",
                (self._clock(), spec_id, worker_id),
            )
            return cursor.rowcount == 1

    def fail(self, spec_id: str, worker_id: str, error: str) -> bool:
        """Record a failed execution (lease-guarded).

        The job returns to ``pending`` for another attempt until its attempt
        budget is spent, at which point it is parked as ``failed``.
        """
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                """
                UPDATE jobs SET
                    status = CASE WHEN attempts >= ? THEN 'failed' ELSE 'pending' END,
                    worker_id = NULL, lease_expires = NULL, error = ?
                WHERE spec_id = ? AND worker_id = ? AND status = 'running'
                """,
                (self.max_attempts, error, spec_id, worker_id),
            )
            return cursor.rowcount == 1

    # --------------------------------------------------------------- state
    def job_status(self, spec_id: str) -> dict[str, Any] | None:
        """The job row for ``spec_id`` as plain data, or ``None``."""
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT spec_id, campaign_id, status, worker_id, lease_expires, "
                "attempts, completions, error, enqueued_at, completed_at "
                "FROM jobs WHERE spec_id = ?",
                (spec_id,),
            ).fetchone()
        return dict(row) if row is not None else None

    def counts(self) -> dict[str, int]:
        """Job counts by status (always includes the four statuses)."""
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
            ).fetchall()
        counts = {"pending": 0, "running": 0, "done": 0, "failed": 0}
        counts.update({row["status"]: row["n"] for row in rows})
        return counts

    def claimable(self) -> int:
        """Jobs a worker could claim right now (pending + expired leases)."""
        now = self._clock()
        with closing(self._connect()) as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE status = 'pending' "
                "OR (status = 'running' AND lease_expires < ?)",
                (now,),
            ).fetchone()[0]

    def campaign_status(self, campaign_id: str) -> dict[str, Any]:
        """Progress of one campaign: stored results vs outstanding jobs."""
        with closing(self._connect()) as conn:
            members = [
                row["spec_id"]
                for row in conn.execute(
                    "SELECT spec_id FROM campaigns WHERE campaign_id = ? "
                    "ORDER BY position",
                    (campaign_id,),
                )
            ]
            if not members:
                raise ValidationError(f"unknown campaign {campaign_id!r}")
            placeholders = ",".join("?" * len(members))
            stored = conn.execute(
                f"SELECT COUNT(*) FROM results WHERE spec_id IN ({placeholders})",
                members,
            ).fetchone()[0]
            jobs = {
                row["spec_id"]: row["status"]
                for row in conn.execute(
                    f"SELECT spec_id, status FROM jobs WHERE spec_id IN ({placeholders})",
                    members,
                )
            }
        by_status = {"pending": 0, "running": 0, "done": 0, "failed": 0}
        for status in jobs.values():
            by_status[status] += 1
        return {
            "campaign_id": campaign_id,
            "specs": len(members),
            "stored": stored,
            "complete": stored == len(members),
            **by_status,
        }


__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MAX_ATTEMPTS",
    "EnqueueReport",
    "Job",
    "WorkQueue",
    "campaign_id_for",
]
