"""Queue worker: claim -> simulate -> store -> complete, restart-safe.

:func:`run_worker` is the execution half of the campaign service.  Any
number of workers (processes on one machine, or repeated invocations after
crashes) point at the same SQLite file and drain the same queue; the
lease/heartbeat protocol of :class:`~repro.service.queue.WorkQueue`
guarantees no job runs on two live workers at once, and the
content-addressed :class:`~repro.service.store.ResultStore` makes the rare
post-crash recomputation idempotent (specs are deterministic, so a reclaimed
job writes a bit-identical payload).

The result is written to the store *before* the job is marked done: a crash
between the two steps re-runs the job, which merely re-upserts the same
payload — never the other way around, where a "done" job would have no
result.

With ``batch_size > 1`` (CLI ``repro work --batch N``) the worker leases up
to N gang-compatible jobs per claim
(:meth:`~repro.service.queue.WorkQueue.claim_batch`) and executes them as
one fused vec kernel (:func:`~repro.experiments.scheduler.run_gang`); the
heartbeat renews every lease of the batch, and each job still follows its
own store-before-complete sequence, so crash semantics are identical to the
single-job path.  If the fused run raises, the batch falls back to per-spec
execution under the same leases — one poison spec fails alone instead of
taking its gang down with it.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence, TextIO

from repro.experiments.scheduler import run_gang
from repro.experiments.serialization import prediction_to_dict
from repro.experiments.spec import ExperimentSpec
from repro.service.queue import DEFAULT_LEASE_SECONDS, WorkQueue
from repro.service.store import ResultStore
from repro.utils.validation import ValidationError


@dataclass
class WorkerStats:
    """What one :func:`run_worker` invocation did.

    Attributes
    ----------
    worker_id:
        Identity the worker claimed jobs under.
    computed:
        Jobs executed and marked done by this worker.
    failed:
        Jobs whose execution raised (recorded via ``WorkQueue.fail``).
    lost_leases:
        Jobs computed whose lease was lost before completion (another
        worker reclaimed them; the store write was idempotent).
    errors:
        ``(spec_id, error)`` pairs for the failed jobs.
    """

    worker_id: str
    computed: int = 0
    failed: int = 0
    lost_leases: int = 0
    errors: list[tuple[str, str]] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        return (
            f"worker {self.worker_id}: {self.computed} computed, "
            f"{self.failed} failed, {self.lost_leases} lost lease(s)"
        )


class _LeaseHeartbeat:
    """Daemon thread renewing one or more leases while their jobs execute.

    Simulations can outlast any fixed lease; renewing at a third of the
    lease period keeps ownership alive for as long as the worker process
    actually lives — which is exactly the semantics a lease should have.
    A batch worker holds every lease of its gang through one heartbeat
    thread: :attr:`lost` collects the spec_ids whose lease could not be
    renewed (another worker reclaimed them), and the thread keeps renewing
    the rest.
    """

    def __init__(
        self,
        queue: WorkQueue,
        spec_ids: str | Iterable[str],
        worker_id: str,
        lease_seconds: float,
    ) -> None:
        self._queue = queue
        self._spec_ids = (
            [spec_ids] if isinstance(spec_ids, str) else list(spec_ids)
        )
        self._worker_id = worker_id
        self._lease_seconds = lease_seconds
        self._stop = threading.Event()
        self.lost: set[str] = set()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        interval = max(self._lease_seconds / 3.0, 0.05)
        while not self._stop.wait(interval):
            for spec_id in self._spec_ids:
                if spec_id in self.lost:
                    continue
                if not self._queue.heartbeat(
                    spec_id, self._worker_id, self._lease_seconds
                ):
                    self.lost.add(spec_id)
            if len(self.lost) == len(self._spec_ids):
                return

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def default_worker_id() -> str:
    """Process-unique worker identity (``pid-<pid>``)."""
    return f"pid-{os.getpid()}"


def _execute_specs(
    specs: Sequence[ExperimentSpec],
) -> tuple[dict[str, dict], dict[str, str]]:
    """Run ``specs`` (fused when >1), returning per-spec payloads and errors.

    A multi-spec batch first attempts one fused :func:`run_gang` kernel; any
    exception there (including a single poison spec crashing the batch)
    falls back to per-spec execution so the failure is attributed to the
    one job that actually raises, not the whole gang.
    """
    payloads: dict[str, dict] = {}
    errors: dict[str, str] = {}
    if len(specs) > 1:
        try:
            predictions = run_gang(specs)
        except Exception:  # noqa: BLE001 — isolate the poison spec below
            predictions = None
        if predictions is not None:
            for spec, prediction in zip(specs, predictions):
                payloads[spec.spec_id] = prediction_to_dict(prediction)
            return payloads, errors
    for spec in specs:
        try:
            payloads[spec.spec_id] = prediction_to_dict(spec.run())
        except Exception as error:  # noqa: BLE001 — any failure is job data
            errors[spec.spec_id] = repr(error)
    return payloads, errors


def run_worker(
    queue: WorkQueue | ResultStore | str | Path,
    worker_id: str | None = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    max_jobs: int | None = None,
    idle_exit: bool = True,
    poll_seconds: float = 0.5,
    stop: threading.Event | None = None,
    progress: bool = False,
    stream: TextIO | None = None,
    batch_size: int = 1,
) -> WorkerStats:
    """Drain jobs from a queue until it is empty (or told to stop).

    Parameters
    ----------
    queue:
        A :class:`WorkQueue`, or a :class:`ResultStore`/path to build one on.
    worker_id:
        Lease identity; defaults to a process-unique id.
    lease_seconds:
        Lease duration per claim; a heartbeat thread renews it while the
        job executes, so this only bounds how long a *dead* worker's job
        stays unclaimable.
    max_jobs:
        Stop after claiming this many jobs (``None`` = unbounded).
    idle_exit:
        When ``True`` (the default), return as soon as no job is claimable —
        the "drain the queue" mode of ``repro work``.  When ``False``, keep
        polling every ``poll_seconds`` until ``stop`` is set — the mode of
        the ``repro serve`` background workers.
    stop:
        Cooperative stop signal (checked between jobs).
    progress:
        Emit one line per processed claim on ``stream`` (default stderr).
    batch_size:
        Lease up to this many gang-compatible jobs per claim and execute
        them as one fused vec kernel.  ``1`` (the default) preserves the
        classic one-job-at-a-time loop; higher values change throughput
        only — every job's payload, store write, and completion are
        identical to the single-job path.

    Returns
    -------
    WorkerStats
        Per-worker counters; ``stats.failed`` jobs remain in the queue as
        ``pending``/``failed`` for inspection.
    """
    if batch_size < 1:
        raise ValidationError("batch_size must be >= 1")
    if not isinstance(queue, WorkQueue):
        queue = WorkQueue(queue)
    worker_id = worker_id or default_worker_id()
    stream = stream if stream is not None else sys.stderr
    stats = WorkerStats(worker_id=worker_id)

    while stop is None or not stop.is_set():
        processed = stats.computed + stats.failed
        if max_jobs is not None and processed >= max_jobs:
            break
        want = batch_size
        if max_jobs is not None:
            want = min(want, max_jobs - processed)
        jobs = queue.claim_batch(worker_id, want, lease_seconds=lease_seconds)
        if not jobs:
            if idle_exit:
                break
            time.sleep(poll_seconds)
            continue
        specs = [job.build_spec() for job in jobs]
        if progress:
            if len(jobs) == 1:
                print(
                    f"[repro.worker {worker_id}] {jobs[0].spec_id} "
                    f"(attempt {jobs[0].attempts}): {specs[0].describe()}",
                    file=stream,
                    flush=True,
                )
            else:
                print(
                    f"[repro.worker {worker_id}] batch of {len(jobs)} "
                    f"({jobs[0].gang_key}): {specs[0].describe()}",
                    file=stream,
                    flush=True,
                )
        with _LeaseHeartbeat(
            queue, [job.spec_id for job in jobs], worker_id, lease_seconds
        ) as beat:
            payloads, errors = _execute_specs(specs)
        for job, spec in zip(jobs, specs):
            if job.spec_id in errors:
                queue.fail(job.spec_id, worker_id, errors[job.spec_id])
                stats.failed += 1
                stats.errors.append((job.spec_id, errors[job.spec_id]))
                continue
            queue.store.put(spec, payloads[job.spec_id])
            if job.spec_id in beat.lost or not queue.complete(
                job.spec_id, worker_id
            ):
                # Lease expired mid-run and someone else owns (or finished)
                # the job now; our store write was idempotent, so just
                # account for it.
                stats.lost_leases += 1
            else:
                stats.computed += 1
    if progress:
        print(f"[repro.worker] {stats.summary()}", file=stream, flush=True)
    return stats


__all__ = ["WorkerStats", "default_worker_id", "run_worker"]
