"""Queue worker: claim -> simulate -> store -> complete, restart-safe.

:func:`run_worker` is the execution half of the campaign service.  Any
number of workers (processes on one machine, or repeated invocations after
crashes) point at the same SQLite file and drain the same queue; the
lease/heartbeat protocol of :class:`~repro.service.queue.WorkQueue`
guarantees no job runs on two live workers at once, and the
content-addressed :class:`~repro.service.store.ResultStore` makes the rare
post-crash recomputation idempotent (specs are deterministic, so a reclaimed
job writes a bit-identical payload).

The result is written to the store *before* the job is marked done: a crash
between the two steps re-runs the job, which merely re-upserts the same
payload — never the other way around, where a "done" job would have no
result.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TextIO

from repro.experiments.serialization import prediction_to_dict
from repro.service.queue import DEFAULT_LEASE_SECONDS, WorkQueue
from repro.service.store import ResultStore


@dataclass
class WorkerStats:
    """What one :func:`run_worker` invocation did.

    Attributes
    ----------
    worker_id:
        Identity the worker claimed jobs under.
    computed:
        Jobs executed and marked done by this worker.
    failed:
        Jobs whose execution raised (recorded via ``WorkQueue.fail``).
    lost_leases:
        Jobs computed whose lease was lost before completion (another
        worker reclaimed them; the store write was idempotent).
    errors:
        ``(spec_id, error)`` pairs for the failed jobs.
    """

    worker_id: str
    computed: int = 0
    failed: int = 0
    lost_leases: int = 0
    errors: list[tuple[str, str]] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        return (
            f"worker {self.worker_id}: {self.computed} computed, "
            f"{self.failed} failed, {self.lost_leases} lost lease(s)"
        )


class _LeaseHeartbeat:
    """Daemon thread renewing the lease while a job executes.

    Simulations can outlast any fixed lease; renewing at a third of the
    lease period keeps ownership alive for as long as the worker process
    actually lives — which is exactly the semantics a lease should have.
    """

    def __init__(
        self, queue: WorkQueue, spec_id: str, worker_id: str, lease_seconds: float
    ) -> None:
        self._queue = queue
        self._spec_id = spec_id
        self._worker_id = worker_id
        self._lease_seconds = lease_seconds
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        interval = max(self._lease_seconds / 3.0, 0.05)
        while not self._stop.wait(interval):
            if not self._queue.heartbeat(
                self._spec_id, self._worker_id, self._lease_seconds
            ):
                self.lost = True
                return

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def default_worker_id() -> str:
    """Process-unique worker identity (``pid-<pid>``)."""
    return f"pid-{os.getpid()}"


def run_worker(
    queue: WorkQueue | ResultStore | str | Path,
    worker_id: str | None = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    max_jobs: int | None = None,
    idle_exit: bool = True,
    poll_seconds: float = 0.5,
    stop: threading.Event | None = None,
    progress: bool = False,
    stream: TextIO | None = None,
) -> WorkerStats:
    """Drain jobs from a queue until it is empty (or told to stop).

    Parameters
    ----------
    queue:
        A :class:`WorkQueue`, or a :class:`ResultStore`/path to build one on.
    worker_id:
        Lease identity; defaults to a process-unique id.
    lease_seconds:
        Lease duration per claim; a heartbeat thread renews it while the
        job executes, so this only bounds how long a *dead* worker's job
        stays unclaimable.
    max_jobs:
        Stop after claiming this many jobs (``None`` = unbounded).
    idle_exit:
        When ``True`` (the default), return as soon as no job is claimable —
        the "drain the queue" mode of ``repro work``.  When ``False``, keep
        polling every ``poll_seconds`` until ``stop`` is set — the mode of
        the ``repro serve`` background workers.
    stop:
        Cooperative stop signal (checked between jobs).
    progress:
        Emit one line per processed job on ``stream`` (default stderr).

    Returns
    -------
    WorkerStats
        Per-worker counters; ``stats.failed`` jobs remain in the queue as
        ``pending``/``failed`` for inspection.
    """
    if not isinstance(queue, WorkQueue):
        queue = WorkQueue(queue)
    worker_id = worker_id or default_worker_id()
    stream = stream if stream is not None else sys.stderr
    stats = WorkerStats(worker_id=worker_id)

    while stop is None or not stop.is_set():
        if max_jobs is not None and stats.computed + stats.failed >= max_jobs:
            break
        job = queue.claim(worker_id, lease_seconds=lease_seconds)
        if job is None:
            if idle_exit:
                break
            time.sleep(poll_seconds)
            continue
        spec = job.build_spec()
        if progress:
            print(
                f"[repro.worker {worker_id}] {job.spec_id} "
                f"(attempt {job.attempts}): {spec.describe()}",
                file=stream,
                flush=True,
            )
        with _LeaseHeartbeat(queue, job.spec_id, worker_id, lease_seconds) as beat:
            try:
                payload = prediction_to_dict(spec.run())
            except Exception as error:  # noqa: BLE001 — any failure is job data
                queue.fail(job.spec_id, worker_id, repr(error))
                stats.failed += 1
                stats.errors.append((job.spec_id, repr(error)))
                continue
        queue.store.put(spec, payload)
        if beat.lost or not queue.complete(job.spec_id, worker_id):
            # Lease expired mid-run and someone else owns (or finished) the
            # job now; our store write was idempotent, so just account for it.
            stats.lost_leases += 1
        else:
            stats.computed += 1
    if progress:
        print(f"[repro.worker] {stats.summary()}", file=stream, flush=True)
    return stats


__all__ = ["WorkerStats", "default_worker_id", "run_worker"]
