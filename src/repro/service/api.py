"""``repro serve`` — asynchronous prediction/query API over the store.

A stdlib :class:`~http.server.ThreadingHTTPServer` (no new dependencies)
answering from the :class:`~repro.service.store.ResultStore` immediately and
pushing misses onto the :class:`~repro.service.queue.WorkQueue`:

========================  =====================================================
Endpoint                  Behaviour
========================  =====================================================
``GET /healthz``          Liveness probe — ``{"ok": true}``.
``GET /stats``            Store + queue statistics.
``GET /predict?spec_id=`` Store hit -> ``200`` with the result; known job ->
                          ``202`` with its status; unknown -> ``404``.
``POST /predict``         Body = spec JSON.  Store hit -> ``200`` with the
                          result (no simulation runs); miss -> the spec is
                          enqueued and ``202`` reports the job status.
``GET /status?spec_id=``  Job status for a spec (``404`` when never seen).
``GET /query?...``        Store query (``topology``, ``trace_id``,
                          ``search_id``, ``scenario``, ``workload``,
                          ``limit``) -> record list.
========================  =====================================================

Misses drain asynchronously: pass ``workers >= 1`` (CLI ``--workers``) to
run background :func:`~repro.service.worker.run_worker` threads inside the
server process, or run separate ``repro work`` processes against the same
store file — the lease protocol makes both equivalent.  A client POSTs a
spec, polls ``/status`` until ``done``, then GETs ``/predict`` — cached
predictions are served instantly while simulation traffic drains in the
background.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.experiments.spec import ExperimentSpec
from repro.service.queue import DEFAULT_LEASE_SECONDS, WorkQueue
from repro.service.store import ResultStore
from repro.service.worker import run_worker
from repro.utils.validation import ValidationError

#: Query-string filters ``GET /query`` forwards to ``ResultStore.query``.
_QUERY_FILTERS = ("spec_id", "topology", "trace_id", "search_id", "scenario", "workload")


class ServiceHandler(BaseHTTPRequestHandler):
    """Request handler; state lives on the owning :class:`ReproServer`."""

    server: "ReproServer"
    protocol_version = "HTTP/1.1"

    # Quiet by default: one access-log line per request drowns test output.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------- plumbing
    def _send(self, code: int, payload: dict[str, Any]) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _query_params(self) -> dict[str, str]:
        return {
            key: values[0]
            for key, values in parse_qs(urlparse(self.path).query).items()
        }

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        route = urlparse(self.path).path.rstrip("/") or "/"
        try:
            if route == "/healthz":
                self._send(200, {"ok": True})
            elif route == "/stats":
                self._send(
                    200,
                    {"store": self.server.store.stats(), "queue": self.server.queue.counts()},
                )
            elif route == "/predict":
                self._get_predict()
            elif route == "/status":
                self._get_status()
            elif route == "/query":
                self._get_query()
            else:
                self._send(404, {"error": f"unknown endpoint {route!r}"})
        except ValidationError as error:
            self._send(400, {"error": str(error)})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        route = urlparse(self.path).path.rstrip("/")
        if route != "/predict":
            self._send(404, {"error": f"unknown endpoint {route!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length)
            data = json.loads(raw) if raw else None
            if not isinstance(data, dict):
                raise ValidationError("POST /predict expects a JSON spec object")
            # Accept both a bare spec and a {"spec": {...}} envelope.
            spec = ExperimentSpec.from_dict(data.get("spec", data))
        except json.JSONDecodeError as error:
            self._send(400, {"error": f"invalid JSON: {error}"})
            return
        except ValidationError as error:
            self._send(400, {"error": str(error)})
            return
        row = self.server.store.get(spec.spec_id)
        if row is not None:
            self._send(
                200,
                {
                    "spec_id": spec.spec_id,
                    "source": "store",
                    "result": row.result,
                    "spec": row.spec,
                },
            )
            return
        report = self.server.queue.enqueue(spec, name="api")
        job = self.server.queue.job_status(spec.spec_id) or {}
        self._send(
            202,
            {
                "spec_id": spec.spec_id,
                "source": "queue",
                "status": job.get("status", "pending"),
                "enqueued": bool(report.enqueued),
                "attempts": job.get("attempts", 0),
            },
        )

    # ------------------------------------------------------------- handlers
    def _require_spec_id(self) -> str:
        spec_id = self._query_params().get("spec_id")
        if not spec_id:
            raise ValidationError("missing required query parameter 'spec_id'")
        return spec_id

    def _get_predict(self) -> None:
        spec_id = self._require_spec_id()
        row = self.server.store.get(spec_id)
        if row is not None:
            self._send(
                200,
                {
                    "spec_id": spec_id,
                    "source": "store",
                    "result": row.result,
                    "spec": row.spec,
                },
            )
            return
        job = self.server.queue.job_status(spec_id)
        if job is not None:
            self._send(
                202,
                {"spec_id": spec_id, "source": "queue", "status": job["status"],
                 "attempts": job["attempts"], "error": job["error"]},
            )
            return
        self._send(
            404,
            {
                "spec_id": spec_id,
                "error": "spec_id not in store and not queued; "
                "POST the full spec to /predict to enqueue it",
            },
        )

    def _get_status(self) -> None:
        spec_id = self._require_spec_id()
        job = self.server.queue.job_status(spec_id)
        stored = spec_id in self.server.store
        if job is None and not stored:
            self._send(404, {"spec_id": spec_id, "error": "never seen"})
            return
        payload: dict[str, Any] = {"spec_id": spec_id, "stored": stored}
        if job is not None:
            payload["job"] = job
        self._send(200, payload)

    def _get_query(self) -> None:
        params = self._query_params()
        unknown = set(params) - set(_QUERY_FILTERS) - {"limit"}
        if unknown:
            raise ValidationError(
                f"unknown query filter(s) {sorted(unknown)}; "
                f"known: {sorted(_QUERY_FILTERS)} + ['limit']"
            )
        filters: dict[str, Any] = {
            key: params[key] for key in _QUERY_FILTERS if key in params
        }
        if "limit" in params:
            try:
                filters["limit"] = int(params["limit"])
            except ValueError:
                raise ValidationError("'limit' must be an integer") from None
        rows = self.server.store.query(**filters)
        self._send(
            200,
            {
                "count": len(rows),
                "results": [
                    {
                        "spec_id": row.spec_id,
                        "topology": row.topology,
                        "rows": row.rows,
                        "cols": row.cols,
                        "scenario": row.scenario,
                        "traffic": row.traffic,
                        "workload": row.workload,
                        "trace_id": row.trace_id,
                        "search_id": row.search_id,
                        "result": row.result,
                    }
                    for row in rows
                ],
            },
        )


class ReproServer(ThreadingHTTPServer):
    """The serving process: HTTP front end + optional background workers.

    Parameters
    ----------
    address:
        ``(host, port)`` bind address (port ``0`` picks a free one — handy
        for tests; the bound port is ``server.server_address[1]``).
    store:
        The shared :class:`ResultStore`.
    queue:
        The shared :class:`WorkQueue` (built on ``store`` when omitted).
    workers:
        Background worker threads draining the queue inside this process;
        ``0`` serves the store read-only and leaves draining to external
        ``repro work`` processes.
    batch_size:
        Jobs each background worker leases per claim; values above ``1``
        make miss storms of gang-compatible specs drain as fused vec
        batches (see :func:`~repro.service.worker.run_worker`).
    verbose:
        Emit per-request access-log lines.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        store: ResultStore,
        queue: WorkQueue | None = None,
        workers: int = 0,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        batch_size: int = 1,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ServiceHandler)
        self.store = store
        self.queue = queue if queue is not None else WorkQueue(store)
        self.verbose = verbose
        self._stop = threading.Event()
        self._workers: list[threading.Thread] = []
        for index in range(workers):
            thread = threading.Thread(
                target=run_worker,
                kwargs={
                    "queue": self.queue,
                    "worker_id": f"serve-{index}",
                    "lease_seconds": lease_seconds,
                    "idle_exit": False,
                    "poll_seconds": 0.2,
                    "stop": self._stop,
                    "batch_size": batch_size,
                },
                daemon=True,
                name=f"repro-serve-worker-{index}",
            )
            thread.start()
            self._workers.append(thread)

    def shutdown(self) -> None:
        """Stop serving and signal the background workers to wind down."""
        self._stop.set()
        super().shutdown()
        for thread in self._workers:
            thread.join(timeout=5.0)


def make_server(
    store: ResultStore | str | Path,
    host: str = "127.0.0.1",
    port: int = 8321,
    workers: int = 0,
    batch_size: int = 1,
    verbose: bool = False,
) -> ReproServer:
    """Build a :class:`ReproServer` bound to ``(host, port)`` (not yet serving).

    Examples
    --------
    >>> server = make_server("results.sqlite", port=0)  # doctest: +SKIP
    >>> server.server_address                           # doctest: +SKIP
    ('127.0.0.1', 43817)
    >>> server.serve_forever()                          # doctest: +SKIP
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    return ReproServer(
        (host, port),
        store=store,
        workers=workers,
        batch_size=batch_size,
        verbose=verbose,
    )


__all__ = ["ReproServer", "ServiceHandler", "make_server"]
