"""Batch analytical screening of many topologies on one architecture.

The optimizer's first stage (see :mod:`repro.optimize`) has to rank the full
search space — potentially hundreds of candidate topologies — before any
cycle-accurate simulation runs.  :func:`screen_topologies` evaluates each
candidate with the cheap models only: the physical model for area, power and
per-link latencies, and the analytical performance model for zero-load
latency and saturation throughput.  One :class:`~repro.physical.model.NoCPhysicalModel`
is shared across the whole batch, and a :class:`~repro.workloads.trace.WorkloadTrace`
can be supplied to additionally score every candidate under the application's
own traffic matrix (via :func:`~repro.toolchain.analytical.pair_weights_from_trace`).

The estimates deliberately mirror the fields the cycle-accurate
:class:`~repro.toolchain.results.PredictionResult` reports, so screening
scores and simulation scores are directly comparable in search trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.physical.model import NoCPhysicalModel
from repro.physical.parameters import ArchitecturalParameters
from repro.simulator.routing_tables import build_routing_tables
from repro.toolchain.analytical import analytical_performance, pair_weights_from_trace
from repro.topologies.base import Topology

if TYPE_CHECKING:  # imported for type hints only; no runtime dependency
    from repro.workloads.trace import WorkloadTrace


@dataclass(frozen=True)
class ScreeningEstimate:
    """Cheap-model estimates for one screened topology.

    Attributes
    ----------
    topology_name:
        Name of the screened topology.
    area_overhead, total_area_mm2, noc_power_w:
        Physical-model cost estimates.
    max_link_length:
        Longest link in tile pitches (Manhattan) — the cheap proxy for the
        optimizer's link-length budget.
    zero_load_latency_cycles, saturation_throughput, average_hops:
        Analytical performance under the synthetic ``traffic`` pattern.
    trace_latency_cycles, trace_saturation_throughput:
        Analytical performance under the supplied trace's traffic matrix
        (``None`` when no trace was given): latency averaged over the pairs
        the application exercises, and the channel-load saturation bound on
        the links its traffic concentrates on.
    """

    topology_name: str
    area_overhead: float
    total_area_mm2: float
    noc_power_w: float
    max_link_length: int
    zero_load_latency_cycles: float
    saturation_throughput: float
    average_hops: float
    trace_latency_cycles: float | None = None
    trace_saturation_throughput: float | None = None


def max_link_length(topology: Topology) -> int:
    """Longest link of ``topology`` in tile pitches (Manhattan distance)."""
    return max(topology.link_grid_length(link) for link in topology.links)


def screen_topology(
    topology: Topology,
    model: NoCPhysicalModel,
    traffic: str = "uniform",
    trace: "WorkloadTrace | None" = None,
    packet_size_flits: int = 4,
    router_pipeline_cycles: int = 2,
) -> ScreeningEstimate:
    """Screen one topology with the physical + analytical models.

    The physical model supplies the per-link latency estimates that
    parameterise the analytical latency, exactly as in the full prediction
    toolchain — screening and simulation disagree only in how the performance
    numbers are obtained, never in the physical inputs.
    """
    physical = model.evaluate(topology)
    routing = build_routing_tables(topology)
    analytical = analytical_performance(
        topology,
        link_latencies=physical.link_latencies,
        routing=routing,
        traffic=traffic,
        packet_size_flits=packet_size_flits,
        router_pipeline_cycles=router_pipeline_cycles,
    )
    trace_latency: float | None = None
    trace_saturation: float | None = None
    if trace is not None:
        workload = analytical_performance(
            topology,
            link_latencies=physical.link_latencies,
            routing=routing,
            packet_size_flits=packet_size_flits,
            router_pipeline_cycles=router_pipeline_cycles,
            pair_weights=pair_weights_from_trace(trace),
        )
        trace_latency = workload.zero_load_latency_cycles
        trace_saturation = workload.saturation_throughput
    return ScreeningEstimate(
        topology_name=topology.name,
        area_overhead=physical.area_overhead,
        total_area_mm2=physical.area.total_area_mm2,
        noc_power_w=physical.noc_power_w,
        max_link_length=max_link_length(topology),
        zero_load_latency_cycles=analytical.zero_load_latency_cycles,
        saturation_throughput=analytical.saturation_throughput,
        average_hops=analytical.average_hops,
        trace_latency_cycles=trace_latency,
        trace_saturation_throughput=trace_saturation,
    )


def screen_topologies(
    topologies: Iterable[Topology],
    params: ArchitecturalParameters,
    traffic: str = "uniform",
    trace: "WorkloadTrace | None" = None,
    packet_size_flits: int = 4,
    router_pipeline_cycles: int = 2,
) -> list[ScreeningEstimate]:
    """Screen a batch of topologies, sharing one physical model.

    Parameters
    ----------
    topologies:
        The candidate topologies, all built for the same grid.
    params:
        Architectural parameters of the target chip (shared by the batch).
    traffic:
        Synthetic pattern for the generic performance estimate.
    trace:
        Optional workload trace; when given, every estimate additionally
        carries the trace-weighted latency and saturation bound.
    packet_size_flits, router_pipeline_cycles:
        Analytical-model knobs, mirroring the simulator configuration.

    Returns
    -------
    list[ScreeningEstimate]
        One estimate per topology, in input order.
    """
    model = NoCPhysicalModel(params)
    return [
        screen_topology(
            topology,
            model,
            traffic=traffic,
            trace=trace,
            packet_size_flits=packet_size_flits,
            router_pipeline_cycles=router_pipeline_cycles,
        )
        for topology in topologies
    ]


__all__ = [
    "ScreeningEstimate",
    "max_link_length",
    "screen_topology",
    "screen_topologies",
]
