"""Fast analytical performance model.

The paper obtains zero-load latency and saturation throughput from
cycle-accurate BookSim2 simulations.  For large design-space sweeps (hundreds
of sparse-Hamming-graph configurations, the customization search, the Figure 6
benchmarks at full chip size) a Python cycle-accurate simulation is too slow,
so the toolchain also provides a standard analytical model that uses exactly
the same inputs — the routing tables and the physical model's per-link latency
estimates:

* **zero-load latency**: averaged over all source/destination pairs, a packet
  experiences one router traversal per hop (``router_pipeline_cycles`` each),
  the latency of every link on its path (from the physical model), the
  injection/ejection overhead, and the serialization latency of its remaining
  ``packet_size - 1`` flits.

* **saturation throughput**: the classical channel-load bound.  Under a given
  traffic pattern each directed channel sees an expected number of flits per
  injected flit; the network saturates when the most-loaded channel reaches
  its capacity of one flit per cycle.  A calibration factor (default 0.75)
  accounts for flow-control and allocation inefficiencies relative to the
  ideal bound; the factor was chosen so that the analytical results match the
  cycle-accurate simulator on small networks (see
  ``tests/integration/test_toolchain_consistency.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.simulator.routing_tables import RoutingTables, build_routing_tables
from repro.simulator.traffic import TrafficPattern, UniformRandomTraffic, make_traffic_pattern
from repro.topologies.base import Link, Topology
from repro.utils.validation import ValidationError, check_in_range, check_positive

if TYPE_CHECKING:  # imported for type hints only; no runtime dependency
    from repro.workloads.trace import WorkloadTrace


@dataclass(frozen=True)
class AnalyticalPerformance:
    """Analytical performance estimate of one topology.

    Attributes
    ----------
    zero_load_latency_cycles:
        Average packet latency at zero load.
    saturation_throughput:
        Saturation injection rate as a fraction of capacity.
    average_hops:
        Mean hop count under the traffic pattern.
    max_channel_load:
        Expected flits per cycle on the most-loaded channel at an injection
        rate of one flit per tile per cycle.
    """

    zero_load_latency_cycles: float
    saturation_throughput: float
    average_hops: float
    max_channel_load: float


def _pair_weights(
    topology: Topology, pattern: TrafficPattern, samples: int = 0
) -> dict[tuple[int, int], float]:
    """Probability of each (source, destination) pair under the traffic pattern.

    Uniform traffic has a closed form; deterministic permutation patterns
    (transpose, tornado, ...) map each source to one destination; other
    patterns are estimated by sampling.
    """
    num = topology.num_tiles
    if isinstance(pattern, UniformRandomTraffic):
        weight = 1.0 / (num * (num - 1))
        return {(s, d): weight for s in range(num) for d in range(num) if s != d}
    rng = np.random.default_rng(0)
    weights: dict[tuple[int, int], float] = {}
    draws = max(1, samples) if samples else 32
    total = num * draws
    for source in range(num):
        for _ in range(draws):
            destination = pattern.destination(source, rng)
            key = (source, destination)
            weights[key] = weights.get(key, 0.0) + 1.0 / total
    return weights


def pair_weights_from_trace(trace: "WorkloadTrace") -> dict[tuple[int, int], float]:
    """Pair probabilities proportional to a trace's per-pair flit volume.

    The trace's ``(source, destination)`` records, weighted by packet size,
    define the spatial traffic matrix an application actually offers.  Feeding
    these weights into :func:`analytical_performance` turns the generic
    analytical model into a *workload-aware* screening model: the zero-load
    latency is averaged over the pairs the application really exercises, and
    the channel-load bound reflects the links its traffic concentrates on.
    """
    weights: dict[tuple[int, int], float] = {}
    total = float(trace.total_flits)
    for source, destination, size in zip(trace.sources, trace.destinations, trace.sizes):
        key = (int(source), int(destination))
        weights[key] = weights.get(key, 0.0) + float(size) / total
    return weights


def analytical_performance(
    topology: Topology,
    link_latencies: dict[Link, int] | None = None,
    routing: RoutingTables | None = None,
    traffic: str = "uniform",
    packet_size_flits: int = 4,
    router_pipeline_cycles: int = 2,
    injection_ejection_cycles: int = 2,
    flow_control_efficiency: float = 0.75,
    pair_weights: Mapping[tuple[int, int], float] | None = None,
) -> AnalyticalPerformance:
    """Estimate zero-load latency and saturation throughput analytically.

    Parameters mirror the simulator configuration so that both performance
    paths of the toolchain are driven by the same knobs.  When
    ``pair_weights`` is given (e.g. from :func:`pair_weights_from_trace`) it
    replaces the synthetic traffic pattern as the source/destination
    distribution; ``traffic`` is then ignored.
    """
    check_positive("packet_size_flits", packet_size_flits)
    check_positive("router_pipeline_cycles", router_pipeline_cycles)
    check_in_range("flow_control_efficiency", flow_control_efficiency, 0.1, 1.0)

    routing = routing or build_routing_tables(topology)
    latencies = link_latencies or {}
    if pair_weights is None:
        pattern = make_traffic_pattern(traffic, topology)
        weights = _pair_weights(topology, pattern)
    else:
        weights = {}
        for (source, destination), weight in pair_weights.items():
            if not (0 <= source < topology.num_tiles) or not (
                0 <= destination < topology.num_tiles
            ):
                raise ValidationError(
                    f"pair ({source}, {destination}) outside the "
                    f"{topology.num_tiles}-tile grid"
                )
            if source != destination and weight > 0:
                weights[(source, destination)] = float(weight)
        if not weights:
            raise ValidationError("pair_weights contains no usable pairs")

    num = topology.num_tiles
    channel_load: dict[tuple[int, int], float] = {}
    total_latency = 0.0
    total_hops = 0.0
    total_weight = 0.0

    for (source, destination), weight in weights.items():
        path = routing.path(source, destination)
        hops = len(path) - 1
        path_link_latency = 0
        for a, b in zip(path[:-1], path[1:]):
            link = Link.canonical(a, b)
            path_link_latency += max(1, int(latencies.get(link, 1)))
            channel_load[(a, b)] = channel_load.get((a, b), 0.0) + weight
        latency = (
            hops * router_pipeline_cycles
            + path_link_latency
            + injection_ejection_cycles
            + (packet_size_flits - 1)
        )
        total_latency += weight * latency
        total_hops += weight * hops
        total_weight += weight

    average_latency = total_latency / total_weight
    average_hops = total_hops / total_weight

    # channel_load currently holds flits per channel per injected flit per tile,
    # normalised by the pair probabilities; at an injection rate of 1 flit per
    # tile per cycle, every tile contributes its share, so scale by N.
    max_channel_load = max(channel_load.values()) * num if channel_load else 0.0
    if max_channel_load <= 0:
        ideal_bound = 1.0
    else:
        # Channel-load bound, additionally capped by the injection/ejection
        # bandwidth of one flit per tile per cycle.
        ideal_bound = min(1.0, 1.0 / max_channel_load)
    saturation = min(1.0, flow_control_efficiency * ideal_bound)

    return AnalyticalPerformance(
        zero_load_latency_cycles=average_latency,
        saturation_throughput=saturation,
        average_hops=average_hops,
        max_channel_load=max_channel_load,
    )
