"""The prediction toolchain: topology + architecture -> cost and performance.

This is the programmatic equivalent of Figure 3 of the paper: the physical
model produces area, power and per-link latency estimates; the link latencies
then parameterise the performance evaluation (cycle-accurate simulation or the
fast analytical model), which yields zero-load latency and saturation
throughput.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.physical.model import NoCPhysicalModel
from repro.physical.parameters import ArchitecturalParameters
from repro.simulator.network import build_network
from repro.simulator.routing_tables import RoutingTables, build_routing_tables
from repro.simulator.simulation import SimulationConfig
from repro.simulator.sweep import find_saturation_throughput, replay_trace
from repro.toolchain.analytical import analytical_performance
from repro.toolchain.results import PredictionResult
from repro.topologies.base import Topology
from repro.utils.validation import ValidationError


@dataclass
class PredictionToolchain:
    """Reusable toolchain bound to one target architecture.

    Attributes
    ----------
    params:
        Architectural parameters of the target chip (Table II).
    performance_mode:
        ``"analytical"`` (default, fast — used for design-space sweeps and the
        full-size Figure 6 benchmarks) or ``"simulation"`` (cycle-accurate,
        mirrors the paper's BookSim2 usage; practical for small networks or
        reduced cycle counts).
    simulation_config:
        Configuration of the cycle-accurate runs (ignored in analytical mode
        except for the packet size and router pipeline length, which both
        modes share).
    traffic:
        Traffic pattern name; the paper's evaluation uses ``"uniform"``.
    workload:
        Optional trace-driven workload spec ``{"name": ..., "seed": ...,
        "params": {...}}`` (see :data:`repro.workloads.WORKLOAD_FACTORIES`).
        When set, the performance stage replays the generated trace instead
        of running a Bernoulli load sweep: the reported "zero-load latency"
        is the replay's average packet latency and the reported "saturation
        throughput" is the replay's accepted load.  Requires
        ``performance_mode="simulation"``.
    """

    params: ArchitecturalParameters
    performance_mode: str = "analytical"
    simulation_config: SimulationConfig = field(default_factory=SimulationConfig)
    traffic: str = "uniform"
    workload: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.performance_mode not in ("analytical", "simulation"):
            raise ValidationError(
                f"performance_mode must be 'analytical' or 'simulation', "
                f"got {self.performance_mode!r}"
            )
        if self.workload is not None:
            from repro.workloads.generators import check_workload_params

            if not isinstance(self.workload, Mapping) or "name" not in self.workload:
                raise ValidationError("workload must be a mapping with a 'name' key")
            check_workload_params(
                self.workload["name"], dict(self.workload.get("params", {}))
            )
            if self.performance_mode != "simulation":
                raise ValidationError(
                    "trace-driven workloads require performance_mode='simulation'"
                )
        self._physical_model = NoCPhysicalModel(self.params)
        # Routing tables depend only on the topology, not on the traffic or
        # injection rate, so sweeps that vary only those knobs reuse the BFS
        # work.  Keyed by object identity with a weakref guard against id()
        # reuse after garbage collection.
        self._routing_cache: dict[int, tuple[weakref.ref, RoutingTables]] = {}

    def routing_for(self, topology: Topology) -> RoutingTables:
        """Routing tables for ``topology``, memoized per topology object."""
        key = id(topology)
        entry = self._routing_cache.get(key)
        if entry is not None and entry[0]() is topology:
            return entry[1]
        routing = build_routing_tables(topology)
        if len(self._routing_cache) >= 256:
            self._routing_cache = {
                k: (ref, tables)
                for k, (ref, tables) in self._routing_cache.items()
                if ref() is not None
            }
        self._routing_cache[key] = (weakref.ref(topology), routing)
        return routing

    def predict(self, topology: Topology, traffic: str | None = None) -> PredictionResult:
        """Predict cost and performance of ``topology`` on this architecture.

        ``traffic`` overrides the toolchain's default traffic pattern for this
        call only (used by campaign sweeps that vary the pattern while keeping
        the architecture fixed).
        """
        physical = self._physical_model.evaluate(topology)
        routing = self.routing_for(topology)
        traffic = self.traffic if traffic is None else traffic

        if self.workload is not None:
            from repro.workloads.generators import workload_trace_from_mapping

            trace = workload_trace_from_mapping(
                dict(self.workload), topology.rows, topology.cols
            )
            stats = replay_trace(
                topology,
                trace,
                config=self.simulation_config,
                link_latencies=physical.link_latencies,
                routing=routing,
            )
            # Trace replays have no load sweep: report the replay's average
            # packet latency in the latency slot and its accepted load in
            # the throughput slot (both documented on the workload field).
            zero_load = stats.average_packet_latency
            saturation = stats.accepted_load
            details = {"replay": stats, "workload": dict(self.workload)}
        elif self.performance_mode == "simulation":
            config = self.simulation_config
            if traffic != config.traffic:
                config = replace(config, traffic=traffic)
            # Build the simulation network once up front (with the physical
            # model's link latencies baked in) so that every load point of
            # the sweep shares it — and with it the compiled routing arrays.
            network = build_network(
                topology,
                config=config.network_config(),
                link_latencies=physical.link_latencies,
                routing=routing,
            )
            sweep = find_saturation_throughput(
                topology,
                config=config,
                routing=routing,
                network=network,
            )
            zero_load = sweep.zero_load_latency
            saturation = sweep.saturation_throughput
            details = {"sweep_points": [(rate, stats) for rate, stats in sweep.points]}
        else:
            analytical = analytical_performance(
                topology,
                link_latencies=physical.link_latencies,
                routing=routing,
                traffic=traffic,
                packet_size_flits=self.simulation_config.packet_size_flits,
                router_pipeline_cycles=self.simulation_config.router_pipeline_cycles,
            )
            zero_load = analytical.zero_load_latency_cycles
            saturation = analytical.saturation_throughput
            details = {"analytical": analytical}

        return PredictionResult(
            topology_name=topology.name,
            area_overhead=physical.area_overhead,
            total_area_mm2=physical.area.total_area_mm2,
            noc_power_w=physical.noc_power_w,
            zero_load_latency_cycles=zero_load,
            saturation_throughput=saturation,
            performance_mode=self.performance_mode,
            physical=physical,
            details=details,
        )

    def __call__(self, topology: Topology, traffic: str | None = None) -> PredictionResult:
        """Alias for :meth:`predict` (lets the toolchain act as a plain predictor)."""
        return self.predict(topology, traffic=traffic)


def predict(
    topology: Topology,
    params: ArchitecturalParameters,
    performance_mode: str = "analytical",
    simulation_config: SimulationConfig | None = None,
    traffic: str = "uniform",
    workload: Mapping[str, Any] | None = None,
) -> PredictionResult:
    """One-shot convenience wrapper around :class:`PredictionToolchain`."""
    toolchain = PredictionToolchain(
        params=params,
        performance_mode=performance_mode,
        simulation_config=simulation_config or SimulationConfig(),
        traffic=traffic,
        workload=workload,
    )
    return toolchain.predict(topology)
