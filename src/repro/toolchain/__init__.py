"""End-to-end prediction toolchain (Figure 3 of the paper).

Given a topology and a set of architectural parameters, the toolchain

1. runs the physical model (:mod:`repro.physical`) to obtain the area
   estimate, the power estimate and the per-link latency estimates, and
2. evaluates the NoC's performance — zero-load latency and saturation
   throughput — either with the cycle-accurate simulator
   (:mod:`repro.simulator`, the faithful but slow path that mirrors the
   paper's use of BookSim2) or with a fast analytical model
   (:mod:`repro.toolchain.analytical`) that uses the same routing tables and
   link latencies and is used for large design-space sweeps.
"""

from repro.toolchain.results import PredictionResult
from repro.toolchain.analytical import (
    AnalyticalPerformance,
    analytical_performance,
    pair_weights_from_trace,
)
from repro.toolchain.predict import PredictionToolchain, predict
from repro.toolchain.screening import (
    ScreeningEstimate,
    screen_topologies,
    screen_topology,
)

__all__ = [
    "PredictionResult",
    "AnalyticalPerformance",
    "analytical_performance",
    "pair_weights_from_trace",
    "PredictionToolchain",
    "predict",
    "ScreeningEstimate",
    "screen_topologies",
    "screen_topology",
]
