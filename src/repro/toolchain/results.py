"""Result container of the prediction toolchain."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.physical.model import PhysicalModelResult


@dataclass
class PredictionResult:
    """All four outputs of the toolchain for one topology (Figure 3).

    Attributes
    ----------
    topology_name:
        Name of the evaluated topology.
    area_overhead:
        NoC area overhead (fraction of the total chip area).
    total_area_mm2:
        Total chip area in mm².
    noc_power_w:
        NoC power consumption in watts.
    zero_load_latency_cycles:
        Average packet latency at (close to) zero load, in cycles.
    saturation_throughput:
        Saturation throughput as a fraction of the injection capacity
        (1 flit per tile per cycle); the paper reports this in percent.
    performance_mode:
        ``"simulation"`` or ``"analytical"`` — how the performance numbers
        were obtained.
    physical:
        The full physical model result (intermediate artifacts included).
    details:
        Free-form extra data (sweep points, simulation statistics, ...).
    """

    topology_name: str
    area_overhead: float
    total_area_mm2: float
    noc_power_w: float
    zero_load_latency_cycles: float
    saturation_throughput: float
    performance_mode: str
    physical: PhysicalModelResult | None = None
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def saturation_throughput_percent(self) -> float:
        """Saturation throughput in percent (as plotted in Figure 6)."""
        return 100.0 * self.saturation_throughput

    @property
    def area_overhead_percent(self) -> float:
        """Area overhead in percent (as plotted in Figure 6)."""
        return 100.0 * self.area_overhead

    def as_row(self) -> dict[str, float | str]:
        """Return the Figure-6-style comparison row for this topology."""
        return {
            "Topology": self.topology_name,
            "NoC Area Overhead [%]": round(self.area_overhead_percent, 2),
            "NoC Power [W]": round(self.noc_power_w, 2),
            "Zero-Load Latency [cycles]": round(self.zero_load_latency_cycles, 2),
            "Saturation Throughput [%]": round(self.saturation_throughput_percent, 2),
        }
