"""Shared utilities: validation helpers, prime/prime-power math, geometry, RNG."""

from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
    ValidationError,
)
from repro.utils.primes import is_prime, is_prime_power, prime_power_root, next_prime_power
from repro.utils.geometry import Point, Rect, manhattan_distance
from repro.utils.rng import make_rng

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "ValidationError",
    "is_prime",
    "is_prime_power",
    "prime_power_root",
    "next_prime_power",
    "Point",
    "Rect",
    "manhattan_distance",
    "make_rng",
]
