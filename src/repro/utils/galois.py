"""Finite field (Galois field) arithmetic for small prime powers.

The SlimNoC topology is built from MMS (McKay-Miller-Siran) graphs whose
construction requires arithmetic over ``GF(q)`` for a prime power ``q``.  The
tile counts relevant to NoCs are small (``q`` up to a few dozen), so a simple
table-free implementation with polynomial arithmetic is fully sufficient.

Elements of ``GF(p^k)`` are represented as integers in ``[0, p^k)`` whose
base-``p`` digits are the coefficients of the representative polynomial
(least-significant digit = constant term).  For prime ``q`` this degenerates
to plain modular arithmetic.
"""

from __future__ import annotations

from functools import lru_cache

from repro.utils.primes import prime_power_root
from repro.utils.validation import ValidationError, check_type


class GaloisField:
    """Arithmetic in ``GF(q)`` for a prime power ``q = p^k``.

    The field is constructed from a monic irreducible polynomial of degree
    ``k`` over ``GF(p)``, found by exhaustive search (cheap for the small
    fields used here).
    """

    def __init__(self, q: int) -> None:
        check_type("q", q, int)
        root = prime_power_root(q)
        if root is None:
            raise ValidationError(f"GF({q}) does not exist: {q} is not a prime power")
        self._q = q
        self._p, self._k = root
        if self._k == 1:
            self._modulus_coeffs: tuple[int, ...] = ()
        else:
            self._modulus_coeffs = _find_irreducible(self._p, self._k)

    # ------------------------------------------------------------ properties
    @property
    def order(self) -> int:
        """Number of field elements ``q``."""
        return self._q

    @property
    def characteristic(self) -> int:
        """Field characteristic ``p``."""
        return self._p

    @property
    def degree(self) -> int:
        """Extension degree ``k`` with ``q = p^k``."""
        return self._k

    def elements(self) -> range:
        """All field elements as integers ``0 .. q-1``."""
        return range(self._q)

    # ------------------------------------------------------------ arithmetic
    def add(self, a: int, b: int) -> int:
        """Field addition."""
        self._check(a)
        self._check(b)
        if self._k == 1:
            return (a + b) % self._p
        return self._from_coeffs(
            [(x + y) % self._p for x, y in zip(self._to_coeffs(a), self._to_coeffs(b))]
        )

    def neg(self, a: int) -> int:
        """Additive inverse."""
        self._check(a)
        if self._k == 1:
            return (-a) % self._p
        return self._from_coeffs([(-x) % self._p for x in self._to_coeffs(a)])

    def sub(self, a: int, b: int) -> int:
        """Field subtraction ``a - b``."""
        return self.add(a, self.neg(b))

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        self._check(a)
        self._check(b)
        if self._k == 1:
            return (a * b) % self._p
        prod = [0] * (2 * self._k - 1)
        ca = self._to_coeffs(a)
        cb = self._to_coeffs(b)
        for i, x in enumerate(ca):
            if x == 0:
                continue
            for j, y in enumerate(cb):
                prod[i + j] = (prod[i + j] + x * y) % self._p
        return self._from_coeffs(self._reduce(prod))

    def pow(self, a: int, exponent: int) -> int:
        """Field exponentiation ``a ** exponent`` for ``exponent >= 0``."""
        check_type("exponent", exponent, int)
        if exponent < 0:
            raise ValidationError("exponent must be non-negative")
        result = 1
        base = a
        e = exponent
        while e > 0:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    def inverse(self, a: int) -> int:
        """Multiplicative inverse of a non-zero element."""
        self._check(a)
        if a == 0:
            raise ValidationError("0 has no multiplicative inverse")
        # a^(q-2) = a^-1 in GF(q)*
        return self.pow(a, self._q - 2)

    # ----------------------------------------------------------- structure
    @lru_cache(maxsize=None)
    def primitive_element(self) -> int:
        """Return a generator of the multiplicative group ``GF(q)*``."""
        group_order = self._q - 1
        if group_order == 1:
            return 1
        prime_factors = _prime_factors(group_order)
        for candidate in range(2, self._q):
            if all(
                self.pow(candidate, group_order // f) != 1 for f in prime_factors
            ):
                return candidate
        raise RuntimeError(f"no primitive element found in GF({self._q})")  # pragma: no cover

    def powers_of_primitive(self) -> list[int]:
        """Return ``[xi^0, xi^1, ..., xi^(q-2)]`` for a primitive element ``xi``."""
        xi = self.primitive_element()
        powers = []
        value = 1
        for _ in range(self._q - 1):
            powers.append(value)
            value = self.mul(value, xi)
        return powers

    # -------------------------------------------------------------- helpers
    def _check(self, a: int) -> None:
        check_type("field element", a, int)
        if not (0 <= a < self._q):
            raise ValidationError(f"{a} is not an element of GF({self._q})")

    def _to_coeffs(self, a: int) -> list[int]:
        coeffs = []
        for _ in range(self._k):
            coeffs.append(a % self._p)
            a //= self._p
        return coeffs

    def _from_coeffs(self, coeffs: list[int]) -> int:
        value = 0
        for coeff in reversed(coeffs[: self._k]):
            value = value * self._p + (coeff % self._p)
        return value

    def _reduce(self, poly: list[int]) -> list[int]:
        """Reduce a coefficient list modulo the irreducible modulus polynomial."""
        p = self._p
        k = self._k
        coeffs = list(poly)
        for deg in range(len(coeffs) - 1, k - 1, -1):
            factor = coeffs[deg]
            if factor == 0:
                continue
            coeffs[deg] = 0
            # modulus is monic: x^k = -(lower coefficients)
            for i, m in enumerate(self._modulus_coeffs):
                coeffs[deg - k + i] = (coeffs[deg - k + i] - factor * m) % p
        return coeffs[:k]

    def __repr__(self) -> str:
        return f"GaloisField(q={self._q})"


def _prime_factors(n: int) -> list[int]:
    factors = []
    f = 2
    while f * f <= n:
        if n % f == 0:
            factors.append(f)
            while n % f == 0:
                n //= f
        f += 1
    if n > 1:
        factors.append(n)
    return factors


def _find_irreducible(p: int, k: int) -> tuple[int, ...]:
    """Find the lower coefficients of a monic irreducible degree-``k`` polynomial.

    Returns the coefficients ``(c_0, ..., c_{k-1})`` of
    ``x^k + c_{k-1} x^{k-1} + ... + c_0`` such that the polynomial has no roots
    and no non-trivial factors over ``GF(p)``.  Exhaustive search over the
    ``p^k`` candidates is fine for the tiny fields used in NoC construction.
    """
    for encoded in range(p**k):
        coeffs = []
        v = encoded
        for _ in range(k):
            coeffs.append(v % p)
            v //= p
        if _is_irreducible(coeffs, p, k):
            return tuple(coeffs)
    raise RuntimeError(f"no irreducible polynomial of degree {k} over GF({p})")  # pragma: no cover


def _is_irreducible(lower_coeffs: list[int], p: int, k: int) -> bool:
    """Check irreducibility of ``x^k + sum(lower_coeffs[i] x^i)`` over GF(p)."""
    full = list(lower_coeffs) + [1]

    def poly_mod(a: list[int], m: list[int]) -> list[int]:
        a = list(a)
        dm = len(m) - 1
        while len(a) - 1 >= dm and any(a):
            if a[-1] == 0:
                a.pop()
                continue
            factor = a[-1]
            shift = len(a) - 1 - dm
            for i, coeff in enumerate(m):
                a[shift + i] = (a[shift + i] - factor * coeff) % p
            while a and a[-1] == 0:
                a.pop()
        return a if a else [0]

    def poly_mul(a: list[int], b: list[int]) -> list[int]:
        out = [0] * (len(a) + len(b) - 1)
        for i, x in enumerate(a):
            for j, y in enumerate(b):
                out[i + j] = (out[i + j] + x * y) % p
        return out

    def poly_pow_mod(base: list[int], exponent: int, m: list[int]) -> list[int]:
        result = [1]
        base = poly_mod(base, m)
        while exponent > 0:
            if exponent & 1:
                result = poly_mod(poly_mul(result, base), m)
            base = poly_mod(poly_mul(base, base), m)
            exponent >>= 1
        return result

    def poly_monic(a: list[int]) -> list[int]:
        a = list(a)
        while len(a) > 1 and a[-1] == 0:
            a.pop()
        lead = a[-1]
        if lead not in (0, 1):
            inv = pow(lead, p - 2, p)
            a = [(c * inv) % p for c in a]
        return a

    def poly_gcd(a: list[int], b: list[int]) -> list[int]:
        a = list(a)
        b = list(b)
        while any(b):
            b = poly_monic(b)
            a, b = b, poly_mod(a, b)
        return a

    # Rabin's irreducibility test: x^(p^k) == x (mod f), and for every prime
    # divisor d of k, gcd(x^(p^(k/d)) - x, f) == constant.
    x = [0, 1]
    xq = poly_pow_mod(x, p**k, full)
    # x^(p^k) - x must be 0 mod f
    diff = [0] * max(len(xq), 2)
    for i, c in enumerate(xq):
        diff[i] = c
    diff[1] = (diff[1] - 1) % p
    if any(diff):
        return False
    for d in _prime_factors(k):
        xe = poly_pow_mod(x, p ** (k // d), full)
        diff = [0] * max(len(xe), 2)
        for i, c in enumerate(xe):
            diff[i] = c
        diff[1] = (diff[1] - 1) % p
        while len(diff) > 1 and diff[-1] == 0:
            diff.pop()
        g = poly_gcd(full, diff)
        if len([c for c in g if c != 0]) == 0:
            continue
        # gcd must be a (non-zero) constant
        while len(g) > 1 and g[-1] == 0:
            g.pop()
        if len(g) > 1:
            return False
    return True
