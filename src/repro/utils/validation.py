"""Input validation helpers used across the library.

All public constructors and functions validate their inputs eagerly and raise
:class:`ValidationError` (a subclass of ``ValueError``) with a descriptive
message.  Centralising the checks keeps error messages consistent and the
calling code short.
"""

from __future__ import annotations

from typing import Any


class ValidationError(ValueError):
    """Raised when a user-supplied parameter is invalid."""


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Raise :class:`ValidationError` unless ``value`` is an instance of ``expected``.

    Booleans are rejected when an integer is expected because ``bool`` is a
    subclass of ``int`` in Python and accepting ``True``/``False`` for counts
    almost always hides a bug.
    """
    if isinstance(value, bool) and expected in (int, (int,), float, (float,), (int, float)):
        raise ValidationError(f"{name} must be {_type_name(expected)}, got bool {value!r}")
    if not isinstance(value, expected):
        raise ValidationError(
            f"{name} must be {_type_name(expected)}, got {type(value).__name__} {value!r}"
        )


def check_positive(name: str, value: float) -> None:
    """Raise unless ``value`` is a number strictly greater than zero."""
    check_type(name, value, (int, float))
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise unless ``value`` is a number greater than or equal to zero."""
    check_type(name, value, (int, float))
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise unless ``low <= value <= high``."""
    check_type(name, value, (int, float))
    if not (low <= value <= high):
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")


def _type_name(expected: type | tuple[type, ...]) -> str:
    if isinstance(expected, tuple):
        return " or ".join(t.__name__ for t in expected)
    return expected.__name__
