"""Prime and prime-power arithmetic.

SlimNoC (one of the baseline topologies of the paper) is only constructible
when the number of tiles ``N`` satisfies ``N = 2 * p**2`` for a prime power
``p``.  These helpers provide the primality and prime-power tests needed for
that applicability check and for the MMS-graph construction itself.
"""

from __future__ import annotations

from repro.utils.validation import ValidationError, check_type


def is_prime(n: int) -> bool:
    """Return ``True`` if ``n`` is a prime number.

    Uses trial division, which is more than fast enough for the tile counts
    that occur in NoC design (at most a few thousand).
    """
    check_type("n", n, int)
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def is_prime_power(n: int) -> bool:
    """Return ``True`` if ``n = p**k`` for a prime ``p`` and integer ``k >= 1``."""
    check_type("n", n, int)
    if n < 2:
        return False
    return prime_power_root(n) is not None


def prime_power_root(n: int) -> tuple[int, int] | None:
    """Return ``(p, k)`` with ``n == p**k`` and ``p`` prime, or ``None``.

    If ``n`` is not a prime power, ``None`` is returned.
    """
    check_type("n", n, int)
    if n < 2:
        return None
    # The smallest prime factor of a prime power must be the prime itself.
    p = _smallest_prime_factor(n)
    m = n
    k = 0
    while m % p == 0:
        m //= p
        k += 1
    if m != 1:
        return None
    return (p, k)


def next_prime_power(n: int) -> int:
    """Return the smallest prime power greater than or equal to ``n``."""
    check_type("n", n, int)
    if n < 2:
        return 2
    candidate = n
    while not is_prime_power(candidate):
        candidate += 1
    return candidate


def _smallest_prime_factor(n: int) -> int:
    if n % 2 == 0:
        return 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return f
        f += 2
    return n
