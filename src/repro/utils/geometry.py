"""Small geometric primitives used by the physical model.

The floorplanning and routing steps of the prediction model (Section IV-B of
the paper) operate on axis-aligned rectangles (tiles, channels) and integer
grid coordinates (unit cells).  These classes keep that code readable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class Point:
    """A point in chip coordinates (millimetres) or grid coordinates."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle defined by its lower-left corner and size."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        check_non_negative("width", self.width)
        check_non_negative("height", self.height)

    @property
    def x2(self) -> float:
        """Right edge of the rectangle."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge of the rectangle."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Area of the rectangle."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Centre point of the rectangle."""
        return Point(self.x + self.width / 2.0, self.y + self.height / 2.0)

    def contains(self, point: Point) -> bool:
        """Return ``True`` if ``point`` lies inside or on the boundary."""
        return self.x <= point.x <= self.x2 and self.y <= point.y <= self.y2

    def intersects(self, other: "Rect") -> bool:
        """Return ``True`` if the two rectangles overlap with positive area."""
        return not (
            self.x2 <= other.x
            or other.x2 <= self.x
            or self.y2 <= other.y
            or other.y2 <= self.y
        )


def manhattan_distance(a: Point, b: Point) -> float:
    """Return the L1 (Manhattan) distance between two points.

    On-chip wires run along preferred horizontal/vertical directions per metal
    layer (Section II-A), so physical link length is Manhattan, not Euclidean.
    """
    return abs(a.x - b.x) + abs(a.y - b.y)
