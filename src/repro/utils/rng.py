"""Deterministic random-number-generator construction.

Every stochastic component (traffic injection, randomized tie-breaks) receives
its generator through this helper so that simulations are reproducible given a
seed, and so that independent components use independent streams.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_type


def make_rng(seed: int | None = None, stream: str = "") -> np.random.Generator:
    """Create a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Base seed.  ``None`` draws entropy from the OS (non-reproducible).
    stream:
        Optional label mixed into the seed so that different components
        (e.g. ``"traffic"`` vs ``"arbiter"``) derive independent streams from
        the same base seed.
    """
    if seed is None:
        return np.random.default_rng()
    check_type("seed", seed, int)
    if stream:
        # Mix the stream label into the seed sequence; SeedSequence accepts a
        # list of integers as entropy.
        mixed = [seed] + [ord(ch) for ch in stream]
        return np.random.default_rng(np.random.SeedSequence(mixed))
    return np.random.default_rng(seed)
