"""2D torus topology (Figure 1c of the paper).

A 2D mesh plus wrap-around links that close every row and every column into a
cycle.  The wrap-around links halve the network diameter compared to the mesh
(``R/2 + C/2``) but they span the full width/height of the chip, violating the
*short links* routability criterion; the paper's Table I therefore marks the
torus with "SL: ✘".
"""

from __future__ import annotations

from repro.topologies.base import Link, Topology
from repro.topologies.mesh import mesh_links


def torus_links(rows: int, cols: int) -> list[Link]:
    """Return the links of an ``rows x cols`` 2D torus (mesh + wrap-around)."""
    links = mesh_links(rows, cols)
    for r in range(rows):
        if cols > 2:
            links.append(Link.canonical(r * cols, r * cols + cols - 1))
    for c in range(cols):
        if rows > 2:
            links.append(Link.canonical(c, (rows - 1) * cols + c))
    return links


class TorusTopology(Topology):
    """2D torus: every row and every column of tiles forms a cycle."""

    def __init__(self, rows: int, cols: int, endpoints_per_tile: int = 1) -> None:
        super().__init__(
            rows,
            cols,
            torus_links(rows, cols),
            name="2D Torus",
            endpoints_per_tile=endpoints_per_tile,
        )

    def expected_diameter(self) -> int:
        """Diameter formula from Table I: ``R/2 + C/2``."""
        return self.rows // 2 + self.cols // 2
