"""SlimNoC topology (Figure 1f of the paper), built from MMS graphs.

SlimNoC [Besta et al., ASPLOS'18] brings the Slim Fly / MMS
(McKay-Miller-Siran) graph family on chip: a two-part Cayley-like graph with
network diameter 2 and router radix close to ``sqrt(R*C)``.  It is only
applicable when the number of tiles is ``N = 2 * q**2`` for a prime power
``q`` (Table I footnote ‡).

Construction (following the Slim Fly description):

* Vertices are triples ``(s, x, y)`` with ``s in {0, 1}`` and ``x, y in GF(q)``.
* ``(0, x, y) ~ (0, x, y')``  iff ``y - y' in X1``  (intra-group links, part 0)
* ``(1, m, c) ~ (1, m, c')``  iff ``c - c' in X2``  (intra-group links, part 1)
* ``(0, x, y) ~ (1, m, c)``   iff ``y = m*x + c``   (inter-part links)

The generator sets ``X1``/``X2`` depend on ``q mod 4`` (``q = 4w + delta``):

* ``delta = +1``: ``X1`` = even powers of a primitive element, ``X2`` = odd
  powers (the exact MMS construction, diameter 2).
* ``delta = 0`` (``q`` a power of two): the first ``q/2`` even powers and the
  first ``q/2`` odd powers.  In characteristic 2 these sets are automatically
  symmetric.  This is a faithful-size approximation of Hafner's generalised
  construction; the resulting graph has the correct radix ``(3q)/2`` and a
  diameter of 2 or 3 (validated in the test suite, documented in
  EXPERIMENTS.md).
* ``delta = -1``: symmetric sets ``{±xi^(2i)}`` / ``{±xi^(2i+1)}`` of size
  ``(q+1)/2``, again matching the radix ``(3q+1)/2`` of the MMS family.

Tiles are mapped onto the ``R x C`` grid in row-major order of the vertex
index ``s*q^2 + x*q + y``; this produces the characteristically *non-aligned*
links and non-uniform link density that Table I reports for SlimNoC.
"""

from __future__ import annotations

from repro.topologies.base import Link, Topology
from repro.utils.galois import GaloisField
from repro.utils.primes import prime_power_root
from repro.utils.validation import ValidationError


def slimnoc_q(num_tiles: int) -> int | None:
    """Return the prime power ``q`` with ``num_tiles == 2 * q**2``, or ``None``."""
    if num_tiles < 2 or num_tiles % 2 != 0:
        return None
    half = num_tiles // 2
    q = int(round(half**0.5))
    for candidate in (q - 1, q, q + 1):
        # q = 2 is excluded: the MMS construction needs q = 4w + delta with
        # delta in {-1, 0, 1}, which q = 2 does not satisfy.
        if candidate >= 3 and candidate * candidate == half:
            if prime_power_root(candidate) is not None:
                return candidate
    return None


def slimnoc_applicable(rows: int, cols: int) -> bool:
    """SlimNoC applicability test from Table I: ``R*C = 2*q^2`` for a prime power ``q``."""
    return slimnoc_q(rows * cols) is not None


def _generator_sets(field: GaloisField) -> tuple[set[int], set[int]]:
    """Return the intra-group generator sets ``(X1, X2)`` for the MMS graph."""
    q = field.order
    powers = field.powers_of_primitive()  # xi^0 .. xi^(q-2)
    delta = ((q + 1) % 4) - 1 if q % 4 == 3 else q % 4  # maps 1->1, 0->0, 3->-1
    if q % 4 == 1:
        x1 = {powers[i] for i in range(0, q - 1, 2)}
        x2 = {powers[i] for i in range(1, q - 1, 2)}
    elif q % 4 == 0:
        half = q // 2
        x1 = {powers[(2 * i) % (q - 1)] for i in range(half)}
        x2 = {powers[(2 * i + 1) % (q - 1)] for i in range(half)}
    elif q % 4 == 3:
        size = (q + 1) // 2
        x1: set[int] = set()
        x2: set[int] = set()
        i = 0
        while len(x1) < size:
            element = powers[(2 * i) % (q - 1)]
            x1.add(element)
            x1.add(field.neg(element))
            i += 1
        i = 0
        while len(x2) < size:
            element = powers[(2 * i + 1) % (q - 1)]
            x2.add(element)
            x2.add(field.neg(element))
            i += 1
    else:  # q % 4 == 2 can only happen for q == 2, which is below the minimum size
        raise ValidationError(f"SlimNoC is not constructible for q={q}")
    del delta
    return x1, x2


def slimnoc_links(rows: int, cols: int) -> list[Link]:
    """Return the links of the SlimNoC (MMS graph) topology on an ``R x C`` grid."""
    num_tiles = rows * cols
    q = slimnoc_q(num_tiles)
    if q is None:
        raise ValidationError(
            f"SlimNoC requires R*C = 2*q^2 for a prime power q; got {num_tiles} tiles"
        )
    field = GaloisField(q)
    x1, x2 = _generator_sets(field)

    def vertex(s: int, x: int, y: int) -> int:
        return s * q * q + x * q + y

    links: set[Link] = set()
    # Intra-group links in both parts.
    for x in range(q):
        for y1 in range(q):
            for y2 in range(y1 + 1, q):
                difference = field.sub(y1, y2)
                if difference in x1 or field.neg(difference) in x1:
                    links.add(Link.canonical(vertex(0, x, y1), vertex(0, x, y2)))
                if difference in x2 or field.neg(difference) in x2:
                    links.add(Link.canonical(vertex(1, x, y1), vertex(1, x, y2)))
    # Inter-part links: (0, x, y) ~ (1, m, c) iff y = m*x + c.
    for x in range(q):
        for m in range(q):
            for c in range(q):
                y = field.add(field.mul(m, x), c)
                links.add(Link.canonical(vertex(0, x, y), vertex(1, m, c)))
    return sorted(links)


class SlimNoCTopology(Topology):
    """SlimNoC: low-diameter MMS-graph topology, applicable when ``R*C = 2*q^2``."""

    def __init__(self, rows: int, cols: int, endpoints_per_tile: int = 1) -> None:
        super().__init__(
            rows,
            cols,
            slimnoc_links(rows, cols),
            name="SlimNoC",
            endpoints_per_tile=endpoints_per_tile,
        )
        self._q = slimnoc_q(rows * cols)

    @property
    def q(self) -> int:
        """The prime power ``q`` with ``R*C = 2*q^2``."""
        if self._q is None:
            # Not an assert: asserts vanish under ``python -O``, and callers
            # (e.g. expected_radix) depend on this being a hard error.
            raise ValidationError(
                f"SlimNoC is not applicable to a {self.rows}x{self.cols} "
                "grid: R*C must equal 2*q^2 for a prime power q"
            )
        return self._q

    def expected_diameter(self) -> int:
        """Diameter of the exact MMS construction (Table I): 2."""
        return 2

    def expected_radix(self) -> int:
        """Approximate router radix from Table I: ``~sqrt(R*C)`` router-to-router links."""
        delta = {1: 1, 0: 0, 3: -1}[self.q % 4]
        return (3 * self.q - delta) // 2 + self.endpoints_per_tile
