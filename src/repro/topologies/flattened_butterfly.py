"""Flattened butterfly topology (Figure 1g of the paper).

Every row and every column of tiles is fully connected, giving a network
diameter of 2 (one row hop plus one column hop).  The router radix is
``R + C - 2`` plus endpoint ports, which makes the flattened butterfly the
most expensive of the established topologies; it is the dense end of the
sparse Hamming graph design space (``S_R`` and ``S_C`` maximal).
"""

from __future__ import annotations

from repro.topologies.base import Link, Topology


def flattened_butterfly_links(rows: int, cols: int) -> list[Link]:
    """Return the links of a flattened butterfly: all-to-all rows and columns."""
    links: list[Link] = []
    for r in range(rows):
        for c1 in range(cols):
            for c2 in range(c1 + 1, cols):
                links.append(Link.canonical(r * cols + c1, r * cols + c2))
    for c in range(cols):
        for r1 in range(rows):
            for r2 in range(r1 + 1, rows):
                links.append(Link.canonical(r1 * cols + c, r2 * cols + c))
    return links


class FlattenedButterflyTopology(Topology):
    """Flattened butterfly: rows and columns of tiles are fully connected."""

    def __init__(self, rows: int, cols: int, endpoints_per_tile: int = 1) -> None:
        super().__init__(
            rows,
            cols,
            flattened_butterfly_links(rows, cols),
            name="Flattened Butterfly",
            endpoints_per_tile=endpoints_per_tile,
        )

    def expected_diameter(self) -> int:
        """Diameter formula from Table I: 2 (1 row hop + 1 column hop)."""
        if self.rows == 1 or self.cols == 1:
            return 1
        return 2

    def expected_radix(self) -> int:
        """Router radix formula from Table I: ``R + C - 2`` (plus endpoints)."""
        return self.rows + self.cols - 2 + self.endpoints_per_tile
