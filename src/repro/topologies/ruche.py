"""Ruche network topology.

Ruche networks [Jung et al., NOCS'20] are 2D meshes augmented with
length-adjustable "skip" links: every tile additionally connects to the tile
``rho`` positions away in each row and/or column.  The paper's related-work
section points out that Ruche networks are a strict subset of sparse Hamming
graphs (a Ruche network with row skip ``rho_x`` and column skip ``rho_y`` is
the sparse Hamming graph with ``S_R = {rho_x}``, ``S_C = {rho_y}``), offering
far fewer configurations.

This module provides the Ruche network as a standalone baseline so that the
subset relationship can be validated in tests and exercised in ablations.
"""

from __future__ import annotations

from repro.topologies.base import Link, Topology
from repro.topologies.mesh import mesh_links
from repro.utils.validation import ValidationError, check_type


def ruche_links(rows: int, cols: int, row_skip: int, col_skip: int) -> list[Link]:
    """Return the links of a Ruche network: mesh plus fixed-length skip links.

    ``row_skip`` adds links ``T(r, c) - T(r, c + row_skip)`` in every row and
    ``col_skip`` adds links ``T(r, c) - T(r + col_skip, c)`` in every column.
    A skip of 0 disables the extra links in that direction.
    """
    check_type("row_skip", row_skip, int)
    check_type("col_skip", col_skip, int)
    if row_skip < 0 or col_skip < 0:
        raise ValidationError("skip lengths must be non-negative")
    if row_skip in (1,) or col_skip in (1,):
        raise ValidationError("a skip length of 1 duplicates the mesh links; use 0 to disable")
    if row_skip >= cols and row_skip != 0:
        raise ValidationError(f"row_skip={row_skip} does not fit into {cols} columns")
    if col_skip >= rows and col_skip != 0:
        raise ValidationError(f"col_skip={col_skip} does not fit into {rows} rows")

    links = mesh_links(rows, cols)
    if row_skip >= 2:
        for r in range(rows):
            for c in range(cols - row_skip):
                links.append(Link.canonical(r * cols + c, r * cols + c + row_skip))
    if col_skip >= 2:
        for c in range(cols):
            for r in range(rows - col_skip):
                links.append(Link.canonical(r * cols + c, (r + col_skip) * cols + c))
    return links


class RucheTopology(Topology):
    """Ruche network: 2D mesh plus fixed-length skip links in rows and columns."""

    def __init__(
        self,
        rows: int,
        cols: int,
        row_skip: int = 2,
        col_skip: int = 2,
        endpoints_per_tile: int = 1,
    ) -> None:
        super().__init__(
            rows,
            cols,
            ruche_links(rows, cols, row_skip, col_skip),
            name="Ruche Network",
            endpoints_per_tile=endpoints_per_tile,
        )
        self._row_skip = row_skip
        self._col_skip = col_skip

    @property
    def row_skip(self) -> int:
        """Length of the skip links added within each row (0 = none)."""
        return self._row_skip

    @property
    def col_skip(self) -> int:
        """Length of the skip links added within each column (0 = none)."""
        return self._col_skip
