"""2D mesh topology (Figure 1b of the paper).

Neighbouring tiles in the grid are connected.  The mesh is the base of the
sparse Hamming graph construction: it fulfils all *design for routability*
criteria and has the minimum router radix of 4 + endpoints, but its network
diameter of ``R + C - 2`` grows linearly with the grid dimensions.
"""

from __future__ import annotations

from repro.topologies.base import Link, Topology


def mesh_links(rows: int, cols: int) -> list[Link]:
    """Return the links of an ``rows x cols`` 2D mesh."""
    links: list[Link] = []
    for r in range(rows):
        for c in range(cols):
            tile = r * cols + c
            if c + 1 < cols:
                links.append(Link.canonical(tile, tile + 1))
            if r + 1 < rows:
                links.append(Link.canonical(tile, tile + cols))
    return links


class MeshTopology(Topology):
    """2D mesh: each tile is connected to its north/south/east/west neighbours."""

    def __init__(self, rows: int, cols: int, endpoints_per_tile: int = 1) -> None:
        super().__init__(
            rows,
            cols,
            mesh_links(rows, cols),
            name="2D Mesh",
            endpoints_per_tile=endpoints_per_tile,
        )

    def expected_diameter(self) -> int:
        """Diameter formula from Table I: ``R + C - 2``."""
        return self.rows + self.cols - 2
