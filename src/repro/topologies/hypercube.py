"""Hypercube topology (Figure 1e of the paper).

Tiles are connected if their binary IDs differ in exactly one bit.  Following
Figure 1e, the IDs are assigned to grid positions in *Gray-code* order per
dimension: the column bits of the ID are the Gray code of the column index and
the row bits are the Gray code of the row index.  Grid-adjacent tiles then
differ in exactly one bit, so the hypercube contains all mesh links (providing
physically minimal paths, "Present: ✔" in Table I) and every link stays within
one row or column ("AL: ✔").

The hypercube is only applicable when both ``R`` and ``C`` are powers of two
(Table I footnote †).
"""

from __future__ import annotations

from repro.topologies.base import Link, Topology
from repro.utils.validation import ValidationError


def is_power_of_two(n: int) -> bool:
    """Return ``True`` if ``n`` is a positive power of two (1, 2, 4, 8, ...)."""
    return n >= 1 and (n & (n - 1)) == 0


def hypercube_applicable(rows: int, cols: int) -> bool:
    """Hypercube applicability test from Table I: both dimensions powers of two."""
    return is_power_of_two(rows) and is_power_of_two(cols) and rows * cols >= 2


def gray_code(index: int) -> int:
    """Return the Gray code of ``index`` (consecutive codes differ in one bit)."""
    return index ^ (index >> 1)


def hypercube_links(rows: int, cols: int) -> list[Link]:
    """Return the links of a hypercube over ``rows * cols`` tiles.

    Each grid position ``(r, c)`` is assigned the hypercube node ID
    ``gray(r) * cols + gray(c)``; two tiles are linked whenever their IDs
    differ in exactly one bit.
    """
    if not hypercube_applicable(rows, cols):
        raise ValidationError(
            f"hypercube requires power-of-two grid dimensions, got {rows}x{cols}"
        )
    num_tiles = rows * cols
    dimension = num_tiles.bit_length() - 1

    # Map hypercube node IDs to grid tile indices via per-dimension Gray codes.
    id_to_tile = {}
    for row in range(rows):
        for col in range(cols):
            node_id = gray_code(row) * cols + gray_code(col)
            id_to_tile[node_id] = row * cols + col

    links: list[Link] = []
    for node_id in range(num_tiles):
        for bit in range(dimension):
            other_id = node_id ^ (1 << bit)
            if other_id > node_id:
                links.append(Link.canonical(id_to_tile[node_id], id_to_tile[other_id]))
    return links


class HypercubeTopology(Topology):
    """Hypercube: tiles connected iff their binary IDs differ in one bit."""

    def __init__(self, rows: int, cols: int, endpoints_per_tile: int = 1) -> None:
        super().__init__(
            rows,
            cols,
            hypercube_links(rows, cols),
            name="Hypercube",
            endpoints_per_tile=endpoints_per_tile,
        )

    def expected_diameter(self) -> int:
        """Diameter formula from Table I: ``log2(R*C)``."""
        return (self.rows * self.cols).bit_length() - 1
