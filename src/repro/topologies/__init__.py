"""NoC topology substrate.

This package provides the graph-level model of a network-on-chip topology
(:class:`~repro.topologies.base.Topology`), generators for all established
topologies the paper compares against (Figure 1 / Table I), and analysis of
graph-level properties (router radix, network diameter, minimal physical
paths).

The paper's primary contribution, the sparse Hamming graph, lives in
:mod:`repro.core.sparse_hamming` but is registered here as well so that all
topologies can be enumerated uniformly.
"""

from repro.topologies.base import Topology, Link, TileCoord
from repro.topologies.ring import RingTopology
from repro.topologies.mesh import MeshTopology
from repro.topologies.torus import TorusTopology
from repro.topologies.folded_torus import FoldedTorusTopology
from repro.topologies.hypercube import HypercubeTopology
from repro.topologies.flattened_butterfly import FlattenedButterflyTopology
from repro.topologies.slimnoc import SlimNoCTopology
from repro.topologies.ruche import RucheTopology
from repro.topologies.properties import TopologyProperties, analyze_topology
from repro.topologies.registry import (
    TOPOLOGY_FACTORIES,
    available_topologies,
    make_topology,
    applicable_topologies,
)

__all__ = [
    "Topology",
    "Link",
    "TileCoord",
    "RingTopology",
    "MeshTopology",
    "TorusTopology",
    "FoldedTorusTopology",
    "HypercubeTopology",
    "FlattenedButterflyTopology",
    "SlimNoCTopology",
    "RucheTopology",
    "TopologyProperties",
    "analyze_topology",
    "TOPOLOGY_FACTORIES",
    "available_topologies",
    "make_topology",
    "applicable_topologies",
]
